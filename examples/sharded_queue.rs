//! Quickstart for the sharded relaxed front (`bgpq-shard`).
//!
//! Four producer/consumer threads share a 4-shard, c = 2 sampled
//! queue: inserts stay sticky per thread (each thread feeds "its"
//! shard, keeping that BGPQ's partial buffer hot), deletes sample two
//! shards' root-min hints and take a whole batch from the better one.
//! At the end we print the relaxation price actually paid: mean/max
//! rank error, steals, exact sweeps, and load imbalance.
//!
//! Run: `cargo run --release -p bgpq-examples --bin sharded_queue`

use bgpq::BgpqOptions;
use bgpq_shard::{CpuShardedBgpq, ShardedOptions};
use pq_api::{BatchPriorityQueue, Entry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    const K: usize = 64; // node capacity per shard
    const OPS: usize = 2_000; // batches per thread
    let q = CpuShardedBgpq::<u32, u32>::new(ShardedOptions::new(
        4,
        2,
        BgpqOptions { node_capacity: K, max_nodes: 1 << 14, ..Default::default() },
    ));

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let q = &q;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                let mut out = Vec::with_capacity(K);
                for _ in 0..OPS {
                    let n = rng.gen_range(1..=K);
                    let items: Vec<Entry<u32, u32>> =
                        (0..n).map(|_| Entry::new(rng.gen_range(0..1 << 30), t as u32)).collect();
                    q.insert_batch(&items);
                    out.clear();
                    q.delete_min_batch(&mut out, n);
                }
            });
        }
    });

    let quality = q.inner().quality();
    println!("residual items : {}", q.len());
    println!("deletes        : {}", quality.deletes);
    println!(
        "rank error     : mean {:.3}, max {} (bound S-c = {})",
        quality.mean_rank_error(),
        quality.rank_error_max,
        q.inner().num_shards() - q.inner().sample()
    );
    println!("steals / sweeps: {} / {}", quality.steals, quality.full_sweeps);
    println!("load imbalance : {:.2}", q.inner().load_imbalance());

    // The exact sweep makes the final drain precise even though
    // individual deletes were relaxed.
    let mut out = Vec::new();
    let mut drained = 0usize;
    loop {
        out.clear();
        let got = q.delete_min_batch(&mut out, K);
        if got == 0 {
            break;
        }
        drained += got;
    }
    println!("drained        : {drained}");
    assert!(q.is_empty());
    let merged = q.inner().merged_stats().snapshot();
    println!(
        "buffer hit rate: {:.2} (inserts absorbed without heapify, all shards)",
        merged.insert_buffer_hit_rate()
    );
}
