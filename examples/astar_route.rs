//! A* route planning on an obstacle grid (§6.5 of the paper).
//!
//! ```text
//! cargo run --release -p bgpq-examples --bin astar_route [side] [obstacle%] [threads]
//! ```
//!
//! Generates a random obstacle grid with a guaranteed path, runs
//! parallel A* over BGPQ and over a baseline (coarse-locked heap), and
//! verifies both find the same optimal cost as the sequential
//! reference.

use apps::{solve_astar, solve_astar_sequential, AstarNode};
use bgpq::{BgpqOptions, CpuBgpq};
use pq_api::ItemwiseBatch;
use workloads::{Grid, GridSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let obst: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(20.0) / 100.0;
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let grid = Grid::generate(GridSpec::new(side, obst, 7));
    println!(
        "grid {side}x{side}, {:.0}% obstacles (actual {:.1}%), 8-direction movement",
        obst * 100.0,
        grid.actual_obstacle_rate() * 100.0
    );

    let t0 = std::time::Instant::now();
    let seq = solve_astar_sequential(&grid);
    println!(
        "sequential A*: cost {:?}, {} expansions, {:?}",
        seq.cost,
        seq.nodes_expanded,
        t0.elapsed()
    );

    let q: CpuBgpq<u64, AstarNode> =
        CpuBgpq::new(BgpqOptions { node_capacity: 128, max_nodes: 1 << 16, ..Default::default() });
    let t1 = std::time::Instant::now();
    let par = solve_astar(&grid, &q, threads);
    println!(
        "parallel A* over BGPQ ({threads} threads): cost {:?}, {} expansions, {:?}",
        par.cost,
        par.nodes_expanded,
        t1.elapsed()
    );
    assert_eq!(par.cost, seq.cost, "parallel A* must find the optimal cost");

    let baseline = ItemwiseBatch::new(baseline_heaps::CoarseLockPq::<u64, AstarNode>::new(), 128);
    let t2 = std::time::Instant::now();
    let base = solve_astar(&grid, &baseline, threads);
    println!(
        "parallel A* over coarse-locked heap:   cost {:?}, {} expansions, {:?}",
        base.cost,
        base.nodes_expanded,
        t2.elapsed()
    );
    assert_eq!(base.cost, seq.cost);

    println!("optimal cost confirmed by all three solvers ✓");
}
