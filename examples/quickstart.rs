//! Quickstart: the batched priority-queue API in five minutes.
//!
//! ```text
//! cargo run --release -p bgpq-examples --bin quickstart
//! ```
//!
//! Builds a BGPQ on the CPU platform, shows batched inserts and
//! delete-mins (1..=k items per call), concurrent use from several
//! threads, and the operation statistics that explain *why* the design
//! is fast (partial-buffer hits, root-cache hits, collaborations).

use bgpq::{BgpqOptions, CpuBgpq};
use pq_api::{BatchPriorityQueue, Entry};

fn main() {
    // A queue with 64-key batch nodes, sized for ~100k items.
    let q: CpuBgpq<u32, &'static str> = CpuBgpq::new(BgpqOptions::with_capacity_for(64, 100_000));

    // --- batched inserts: 1..=k entries per call, any order ----------
    q.insert_batch(&[Entry::new(30, "thirty"), Entry::new(10, "ten"), Entry::new(20, "twenty")]);
    q.insert_batch(&[Entry::new(5, "five")]);
    println!("after 2 inserts: {} items", q.len());

    // --- batched delete-min: up to k smallest, ascending --------------
    let mut out = Vec::new();
    let got = q.delete_min_batch(&mut out, 2);
    println!(
        "delete_min_batch(2) -> {got} items: {:?}",
        out.iter().map(|e| (e.key, e.value)).collect::<Vec<_>>()
    );
    assert_eq!(out[0].key, 5);
    assert_eq!(out[1].key, 10);

    // --- concurrent use: the queue is `Sync`; share by reference ------
    out.clear();
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let q = &q;
            s.spawn(move || {
                let items: Vec<Entry<u32, &'static str>> =
                    (0..64).map(|i| Entry::new(t * 1000 + i, "worker")).collect();
                for _ in 0..50 {
                    q.insert_batch(&items);
                    let mut mine = Vec::new();
                    q.delete_min_batch(&mut mine, 64);
                }
            });
        }
    });
    println!("after concurrent phase: {} items", q.len());

    // --- drain and verify global order ---------------------------------
    let mut drained = Vec::new();
    while q.delete_min_batch(&mut drained, 64) > 0 {}
    assert!(drained.windows(2).all(|w| w[0].key <= w[1].key));
    println!("drained {} items in ascending key order", drained.len());

    // --- the §4.3 mechanisms, visible in the stats ---------------------
    let s = q.inner().stats().snapshot();
    println!(
        "stats: {} inserts ({} buffered, {} heapifies), {} delete-mins \
         ({} root-served, {} heapifies), {} collaborations",
        s.inserts,
        s.inserts_buffered,
        s.insert_heapifies,
        s.delete_mins,
        s.deletes_from_root,
        s.delete_heapifies,
        s.collaborations,
    );
}
