//! Simulator observability demo: event traces, schedule fuzzing, and
//! per-block load-balance diagnostics.
//!
//! ```text
//! cargo run --release -p bgpq-examples --bin sim_trace [blocks] [fuzz_seeds]
//! ```
//!
//! Runs a small contended BGPQ kernel with the scheduler's event trace
//! enabled, prints the first events of the lock protocol around the
//! root, then sweeps fuzz seeds to show interleaving diversity (each
//! seed is a distinct, reproducible schedule — the mechanism behind the
//! linearizability fuzz tests).

use bgpq::{Bgpq, BgpqOptions};
use bgpq_runtime::SimPlatform;
use gpu_sim::{launch, GpuConfig, TraceKind};
use pq_api::Entry;

type Q = Bgpq<u32, u32, SimPlatform>;

/// Returns (report, linearization fingerprint): the fingerprint hashes
/// which operation received which linearization slot, so two runs with
/// different interleavings fingerprint differently even when symmetric
/// blocks make their makespans identical.
fn kernel(cfg: GpuConfig, trace: bool) -> (gpu_sim::SimReport, u64) {
    let opts = BgpqOptions { node_capacity: 2, max_nodes: 8192, ..Default::default() };
    let (report, shared) = launch(
        cfg,
        |sched| {
            if trace {
                sched.enable_trace(64);
            }
            let p = SimPlatform::new(sched, opts.max_nodes + 1, cfg.cost, cfg.block_dim);
            (
                Bgpq::<u32, u32, _>::with_platform(p, opts).with_history(),
                std::sync::Arc::clone(sched),
            )
        },
        |ctx, (q, _): &(Q, std::sync::Arc<gpu_sim::Scheduler>)| {
            let bid = ctx.block_id() as u32;
            let mut out = Vec::new();
            for i in 0..40u32 {
                q.insert(
                    ctx.worker(),
                    &[Entry::new(i * 64 + bid, bid), Entry::new(i * 64 + bid + 32, bid)],
                );
                out.clear();
                q.delete_min(ctx.worker(), &mut out, 2);
            }
        },
    );
    let (q, sched) = &shared;
    q.check_invariants();
    let mut fingerprint = 0u64;
    for e in q.take_history() {
        let tag = match &e.op {
            bgpq::HistoryOp::Insert { keys } => keys.first().copied().unwrap_or(0) as u64,
            bgpq::HistoryOp::DeleteMin { keys, .. } => {
                0x8000_0000u64 | keys.first().copied().unwrap_or(0) as u64
            }
        };
        fingerprint = fingerprint
            .rotate_left(7)
            .wrapping_add(e.seq.wrapping_mul(0x9E37_79B9).wrapping_add(tag));
    }
    if trace {
        println!("--- first scheduler events (root lock = lock #1) ---");
        for e in sched.take_trace().iter().take(16) {
            let what = match e.kind {
                TraceKind::Granted => "granted CPU".to_string(),
                TraceKind::LockWait(l) => format!("blocked on lock #{l}"),
                TraceKind::LockAcquired(l) => format!("acquired lock #{l}"),
                TraceKind::LockReleased(l) => format!("released lock #{l}"),
                TraceKind::BarrierArrive(b) => format!("arrived at barrier #{b}"),
                TraceKind::Finished => "finished".to_string(),
            };
            println!("  t={:>8}  block {:>2}  {}", e.vtime, e.agent, what);
        }
    }
    (report, fingerprint)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let blocks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    let (report, _) = kernel(GpuConfig::new(blocks, 128), true);
    println!(
        "\nbaseline schedule: {} cycles ({:.3} sim ms), block balance {:.2}",
        report.makespan_cycles,
        report.makespan_ms,
        report.balance()
    );
    println!(
        "lock acquisitions: {} ({} contended, {} wait cycles)",
        report.metrics.lock_acquisitions,
        report.metrics.lock_contended,
        report.metrics.lock_wait_cycles
    );

    println!("\n--- schedule fuzzing: {seeds} seeds ---");
    let mut distinct = std::collections::HashSet::new();
    for seed in 0..seeds {
        let (r, fp) = kernel(GpuConfig::new(blocks, 128).with_fuzz_seed(seed), false);
        distinct.insert(fp);
        println!(
            "  seed {seed:>2}: makespan {} cycles, linearization fingerprint {fp:#018x}",
            r.makespan_cycles
        );
    }
    println!(
        "{} distinct interleavings out of {seeds} seeds (each reproducible; every one is \
         checked for linearizability in the test suite)",
        distinct.len()
    );
}
