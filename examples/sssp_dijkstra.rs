//! Parallel Dijkstra SSSP over BGPQ — the motivating workload of the
//! paper's introduction ("the Dijkstra's algorithm in graph theory").
//!
//! ```text
//! cargo run --release -p bgpq-examples --bin sssp_dijkstra [vertices] [degree] [threads]
//! ```

use apps::{solve_sssp, SsspNode};
use bgpq::{BgpqOptions, CpuBgpq};
use workloads::{Graph, GraphSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let vertices: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let degree: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let graph = Graph::generate(GraphSpec::new(vertices, degree, 2024));
    println!("graph: {} vertices, {} edges", graph.vertices(), graph.edge_count());

    let t0 = std::time::Instant::now();
    let reference = graph.dijkstra_reference(0);
    println!("sequential Dijkstra: {:?}", t0.elapsed());

    let q: CpuBgpq<u64, SsspNode> =
        CpuBgpq::new(BgpqOptions { node_capacity: 256, max_nodes: 1 << 16, ..Default::default() });
    let t1 = std::time::Instant::now();
    let par = solve_sssp(&graph, 0, &q, threads);
    println!(
        "parallel over BGPQ ({threads} threads): {:?}, {} labels expanded",
        t1.elapsed(),
        par.nodes_expanded
    );
    assert_eq!(par.dist, reference, "distances must match sequential Dijkstra");

    let reachable = par.dist.iter().filter(|&&d| d != u64::MAX).count();
    let max_d = par.dist.iter().filter(|&&d| d != u64::MAX).max().unwrap();
    println!("verified: {reachable}/{} reachable, eccentricity {}", vertices, max_d);
}
