//! Branch-and-bound 0/1 knapsack on BGPQ (§6.5 of the paper).
//!
//! ```text
//! cargo run --release -p bgpq-examples --bin knapsack_solver [items] [threads]
//! ```
//!
//! Generates a Pisinger-style instance, solves it in parallel over a
//! BGPQ, cross-checks against the sequential reference (and, when the
//! instance is small enough, exact dynamic programming), and prints
//! search statistics.

use apps::{solve_knapsack, solve_knapsack_sequential, KsNode};
use bgpq::{BgpqOptions, CpuBgpq};
use workloads::{Correlation, KnapsackInstance, KnapsackSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let items: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(60);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let inst = KnapsackInstance::generate(KnapsackSpec::new(items, Correlation::Weak, 42));
    println!(
        "instance: {} items, capacity {}, weakly correlated (seed 42)",
        inst.items(),
        inst.capacity
    );

    // Parallel branch-and-bound over BGPQ.
    let q: CpuBgpq<u64, KsNode> =
        CpuBgpq::new(BgpqOptions { node_capacity: 64, max_nodes: 1 << 16, ..Default::default() });
    let t0 = std::time::Instant::now();
    let par = solve_knapsack(&inst, &q, threads);
    let t_par = t0.elapsed();

    // Sequential reference.
    let t1 = std::time::Instant::now();
    let seq = solve_knapsack_sequential(&inst);
    let t_seq = t1.elapsed();

    println!(
        "parallel ({threads} threads over BGPQ): profit {} | {} nodes expanded | {:?}",
        par.best_profit, par.nodes_expanded, t_par
    );
    println!(
        "sequential reference:                  profit {} | {} nodes expanded | {:?}",
        seq.best_profit, seq.nodes_expanded, t_seq
    );
    assert_eq!(par.best_profit, seq.best_profit, "parallel B&B must find the optimum");

    if items <= 64 {
        let dp = inst.optimum_dp();
        assert_eq!(par.best_profit, dp, "must match exact DP");
        println!("exact DP cross-check: {dp} ✓");
    }

    let s = q.inner().stats().snapshot();
    println!(
        "queue stats: {} inserts / {} delete-mins, buffer hit rate {:.2}",
        s.inserts,
        s.delete_mins,
        s.insert_buffer_hit_rate()
    );
}
