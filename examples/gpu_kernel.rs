//! BGPQ inside a simulated GPU kernel — the paper's actual deployment
//! model, reproduced on the virtual-time SIMT simulator.
//!
//! ```text
//! cargo run --release -p bgpq-examples --bin gpu_kernel [blocks] [block_dim] [capacity]
//! ```
//!
//! Launches `blocks` thread blocks that concurrently hammer one BGPQ,
//! prints the simulated makespan at the device clock, and contrasts it
//! with a single-block launch to show the inter-node (task) parallelism
//! the design exposes.

use bgpq::{Bgpq, BgpqOptions};
use bgpq_runtime::SimPlatform;
use gpu_sim::{launch, GpuConfig};
use pq_api::Entry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn run(blocks: usize, block_dim: u32, k: usize, batches_total: usize) -> (f64, u64) {
    let gpu = GpuConfig::new(blocks, block_dim);
    let opts = BgpqOptions::with_capacity_for(k, batches_total * k + 2 * k);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (report, q) = launch(
        gpu,
        |sched| {
            let platform = SimPlatform::new(sched, opts.max_nodes + 1, gpu.cost, gpu.block_dim);
            Bgpq::<u32, u32, _>::with_platform(platform, opts)
        },
        |ctx, q| {
            let mut rng = StdRng::seed_from_u64(ctx.block_id() as u64);
            let mut out = Vec::with_capacity(k);
            // Work-stealing style: blocks pull batch indices until done.
            loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= batches_total {
                    break;
                }
                let items: Vec<Entry<u32, u32>> =
                    (0..k).map(|_| Entry::new(rng.gen_range(0..1 << 30), i as u32)).collect();
                q.insert(ctx.worker(), &items);
                if i % 2 == 1 {
                    out.clear();
                    q.delete_min(ctx.worker(), &mut out, k);
                }
            }
        },
    );
    let collabs = q.stats().snapshot().collaborations;
    q.check_invariants();
    (report.makespan_ms, collabs)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let blocks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let block_dim: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(512);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1024);
    let batches = 256usize;

    println!("kernel: {batches} mixed batch-ops, node capacity {k}, block dim {block_dim}");
    let (one_ms, _) = run(1, block_dim, k, batches);
    println!("  1 block:          {one_ms:>8.3} simulated ms");
    let (many_ms, collabs) = run(blocks, block_dim, k, batches);
    println!("  {blocks:>3} blocks:       {many_ms:>8.3} simulated ms  (speedup {:.1}x, {collabs} TARGET/MARKED collaborations)",
        one_ms / many_ms);
    println!("(virtual-time simulation — see DESIGN.md §2 for the substitution rationale)");
}
