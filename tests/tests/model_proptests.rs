//! Model-based property tests applied uniformly to every strict queue
//! implementation in the workspace: arbitrary operation sequences must
//! match `std::collections::BinaryHeap` exactly.

use baseline_heaps::{CoarseLockPq, FineHeapPq};
use bgpq::{BgpqOptions, CpuBgpq};
use cbpq::CbpqPq;
use pq_api::{BatchPriorityQueue, Entry, ItemwiseBatch};
use proptest::prelude::*;
use psync::SeqBatchHeap;
use skiplist_pq::{LindenJonssonPq, LotanShavitPq};
use std::collections::BinaryHeap;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u32>),
    Delete(usize),
}

fn ops_strategy(max_batch: usize, len: usize) -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        proptest::collection::vec(any::<u32>().prop_map(|x| x % (1 << 30)), 1..=max_batch)
            .prop_map(Op::Insert),
        (1..=max_batch).prop_map(Op::Delete),
    ];
    proptest::collection::vec(op, 1..len)
}

fn drive(
    q: &dyn BatchPriorityQueue<u32, u32>,
    ops: &[Op],
    batch: usize,
) -> Result<(), TestCaseError> {
    let mut model: BinaryHeap<std::cmp::Reverse<u32>> = BinaryHeap::new();
    let mut out = Vec::new();
    for op in ops {
        match op {
            Op::Insert(keys) => {
                let items: Vec<Entry<u32, u32>> = keys.iter().map(|&k| Entry::new(k, k)).collect();
                q.insert_batch(&items);
                for &k in keys {
                    model.push(std::cmp::Reverse(k));
                }
            }
            Op::Delete(n) => {
                out.clear();
                let want = (*n).min(batch);
                let got = q.delete_min_batch(&mut out, want);
                let mut expect = Vec::new();
                for _ in 0..want {
                    match model.pop() {
                        Some(std::cmp::Reverse(k)) => expect.push(k),
                        None => break,
                    }
                }
                prop_assert_eq!(got, expect.len());
                let got_keys: Vec<u32> = out.iter().map(|e| e.key).collect();
                prop_assert_eq!(got_keys, expect);
                // Payloads must still match their keys.
                for e in &out {
                    prop_assert_eq!(e.value, e.key);
                }
            }
        }
        prop_assert_eq!(q.len(), model.len());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn coarse_matches_model(ops in ops_strategy(8, 80)) {
        let q = ItemwiseBatch::new(CoarseLockPq::<u32, u32>::new(), 8);
        drive(&q, &ops, 8)?;
    }

    #[test]
    fn fine_heap_matches_model(ops in ops_strategy(8, 80)) {
        let q = ItemwiseBatch::new(FineHeapPq::<u32, u32>::new(1 << 12), 8);
        drive(&q, &ops, 8)?;
        q.inner().check_invariants();
    }

    #[test]
    fn ljsl_matches_model(ops in ops_strategy(8, 80)) {
        let q = ItemwiseBatch::new(LindenJonssonPq::<u32, u32>::new(4), 8);
        drive(&q, &ops, 8)?;
        q.inner().list().check_invariants();
    }

    #[test]
    fn stsl_matches_model(ops in ops_strategy(8, 80)) {
        let q = ItemwiseBatch::new(LotanShavitPq::<u32, u32>::new(), 8);
        drive(&q, &ops, 8)?;
        q.inner().list().check_invariants();
    }

    #[test]
    fn cbpq_matches_model(ops in ops_strategy(8, 80)) {
        let q = ItemwiseBatch::new(CbpqPq::<u32, u32>::new(8), 8);
        drive(&q, &ops, 8)?;
        q.inner().check_invariants();
    }

    #[test]
    fn bgpq_matches_model(ops in ops_strategy(8, 80)) {
        let q = CpuBgpq::<u32, u32>::new(BgpqOptions {
            node_capacity: 8,
            max_nodes: 512,
            ..Default::default()
        });
        drive(&q, &ops, 8)?;
        q.inner().check_invariants();
    }

    #[test]
    fn seq_batch_heap_matches_model(ops in ops_strategy(8, 80)) {
        // psync's substrate, same contract (single-threaded).
        let mut h = SeqBatchHeap::<u32, u32>::new(8);
        let mut model: BinaryHeap<std::cmp::Reverse<u32>> = BinaryHeap::new();
        let mut out = Vec::new();
        for op in &ops {
            match op {
                Op::Insert(keys) => {
                    let items: Vec<Entry<u32, u32>> =
                        keys.iter().map(|&k| Entry::new(k, k)).collect();
                    h.insert_batch(&items);
                    for &k in keys {
                        model.push(std::cmp::Reverse(k));
                    }
                }
                Op::Delete(n) => {
                    out.clear();
                    let want = (*n).min(8);
                    let got = h.delete_min_batch(&mut out, want);
                    let mut expect = Vec::new();
                    for _ in 0..want {
                        match model.pop() {
                            Some(std::cmp::Reverse(k)) => expect.push(k),
                            None => break,
                        }
                    }
                    prop_assert_eq!(got, expect.len());
                    let got_keys: Vec<u32> = out.iter().map(|e| e.key).collect();
                    prop_assert_eq!(got_keys, expect);
                }
            }
            prop_assert_eq!(h.len(), model.len());
        }
        h.check_invariants();
    }
}
