//! Recovery drills: salvage after every crash-drill injection point on
//! both platforms, the salvage conservation identity under proptest,
//! and a chaos soak that proves the sharded front self-heals.
//!
//! These extend the crash drills (`crash_drills.rs`) past fail-stop:
//! after the queue poisons, `bgpq-recover` must walk every settled key
//! back out, account for every key it cannot find, and hand back a
//! serving queue. The assertions lean on the documented loss-accounting
//! contract:
//!
//! * **Conservation** — `recovered + lost == expected` always.
//! * **No invention** — recovered keys are a sub(multi)set of the keys
//!   offered to the queue, disjoint from the keys already deleted.
//! * **Conservative loss** — the *count* of lost keys is exact-or-over,
//!   but their *identity* is unspecified: a crashed insert-heapify may
//!   have merged its own batch into the root while carrying previously
//!   settled keys on its stack, so we never assert which keys died,
//!   only how many (`recovered >= outstanding - lost`).

use bgpq::{check_history, Bgpq, BgpqOptions, CpuBgpq, HistoryEvent, HistoryOp};
use bgpq_runtime::{CpuPlatform, FaultAction, FaultPlan, InjectionPoint, SimPlatform};
use gpu_sim::{launch, GpuConfig, Scheduler};
use pq_api::{BatchPriorityQueue, Entry, QueueError};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Key multiset of all linearized inserts and deletes in `events`.
fn committed_multisets(events: &[HistoryEvent<u32>]) -> (HashMap<u32, i64>, HashMap<u32, i64>) {
    let mut inserted: HashMap<u32, i64> = HashMap::new();
    let mut deleted: HashMap<u32, i64> = HashMap::new();
    for e in events {
        match &e.op {
            HistoryOp::Insert { keys } => {
                for &k in keys {
                    *inserted.entry(k).or_default() += 1;
                }
            }
            HistoryOp::DeleteMin { keys, .. } => {
                for &k in keys {
                    *deleted.entry(k).or_default() += 1;
                }
            }
        }
    }
    (inserted, deleted)
}

/// Assert the recovered keys obey the no-invention contract against the
/// drill's deterministic key space: every key is one the drill offered,
/// no key appears twice, and no key was already returned by a delete.
fn assert_no_invention(
    recovered: &[Entry<u32, u32>],
    offered: &HashSet<u32>,
    deleted: &HashMap<u32, i64>,
) {
    let mut seen = HashSet::new();
    for e in recovered {
        assert!(offered.contains(&e.key), "salvage invented key {} (never offered)", e.key);
        assert!(seen.insert(e.key), "salvage duplicated key {}", e.key);
        assert!(
            deleted.get(&e.key).copied().unwrap_or(0) == 0,
            "salvage resurrected key {} that a delete already returned",
            e.key
        );
    }
}

/// One CPU salvage drill: run the crash-drill traffic mix with a panic
/// injected at `point`, then salvage whatever is left — poisoned or not
/// — and check accounting against the committed history.
fn cpu_salvage_drill(point: InjectionPoint, nth: u64) {
    let opts = BgpqOptions { node_capacity: 4, max_nodes: 1 << 10, ..Default::default() };
    let plan = Arc::new(FaultPlan::new().with_rule(point, nth, FaultAction::Panic));
    let platform = CpuPlatform::new(opts.max_nodes + 1)
        .with_watchdog(Duration::from_millis(75))
        .with_faults(plan.clone());
    let mut q: CpuBgpq<u32, u32> = CpuBgpq::on_platform(platform, opts).with_history();

    // Every key the drill can possibly offer (unique by construction).
    let mut offered: HashSet<u32> = HashSet::new();
    for t in 0..4u32 {
        for i in 0..300u32 {
            if i % 4 != 3 {
                let key = t * 1_000_000 + i;
                offered.insert(key);
                offered.insert(key + 500_000);
            }
        }
    }

    std::thread::scope(|s| {
        for t in 0..4u32 {
            let q = &q;
            s.spawn(move || {
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    let mut out = Vec::new();
                    for i in 0..300u32 {
                        let key = t * 1_000_000 + i;
                        if i % 4 != 3 {
                            match q.try_insert_batch(&[
                                Entry::new(key, t),
                                Entry::new(key + 500_000, t),
                            ]) {
                                Ok(()) | Err(QueueError::Full { .. }) => {}
                                Err(QueueError::Poisoned) => break,
                                Err(_) => {}
                            }
                        } else {
                            out.clear();
                            match q.try_delete_min_batch(&mut out, 4) {
                                Ok(_) | Err(QueueError::Full { .. }) => {}
                                Err(QueueError::Poisoned) => break,
                                Err(_) => {}
                            }
                        }
                    }
                }));
            });
        }
    });

    if point != InjectionPoint::MarkedSpin {
        assert!(plan.fired_count() >= 1, "{point:?}: drill never reached the injection point");
    }

    let events = q.inner().take_history();
    if let Some(v) = check_history(&events) {
        panic!("{point:?}: truncated history does not linearize at seq {}: {}", v.seq, v.detail);
    }
    let (inserted, deleted) = committed_multisets(&events);
    let committed_outstanding: i64 = inserted.values().sum::<i64>() - deleted.values().sum::<i64>();
    let was_poisoned = q.inner().is_poisoned();

    let mut recovered = Vec::new();
    let report = bgpq_recover::salvage(&mut q, &mut recovered);

    assert!(report.conserves(), "{point:?}: recovered + lost != expected: {report:?}");
    assert_eq!(report.was_poisoned, was_poisoned, "{point:?}");
    assert_eq!(report.keys_recovered, recovered.len(), "{point:?}");
    assert_no_invention(&recovered, &offered, &deleted);
    // Conservative loss: everything the committed history still owes is
    // either in the salvage output or explicitly reported lost. (The
    // reverse bound does not hold key-by-key — see module docs.)
    assert!(
        recovered.len() as i64 >= committed_outstanding - report.keys_lost as i64,
        "{point:?}: silent loss — {} recovered, {} outstanding, {} reported lost",
        recovered.len(),
        committed_outstanding,
        report.keys_lost
    );

    // The salvaged queue serves again: fresh, empty, un-poisoned.
    assert!(!q.inner().is_poisoned(), "{point:?}: salvage must clear the poison flag");
    assert_eq!(q.len(), 0);
    q.inner().check_invariants();
    assert!(q.inner().stats().snapshot().salvages >= 1);
    q.try_insert_batch(&[Entry::new(7, 7), Entry::new(3, 3)]).expect("post-salvage insert");
    let mut out = Vec::new();
    assert_eq!(q.try_delete_min_batch(&mut out, 2).expect("post-salvage delete"), 2);
    assert_eq!(out[0].key, 3, "{point:?}: salvaged queue must order correctly again");
}

#[test]
fn cpu_salvage_after_panic_every_injection_point() {
    for (point, nth) in [
        (InjectionPoint::PreLockAcquire, 201),
        (InjectionPoint::PostLockAcquire, 201),
        (InjectionPoint::PreLockRelease, 200),
        (InjectionPoint::MidInsertHeapify, 5),
        (InjectionPoint::MidDeleteHeapify, 5),
        // MarkedSpin rarely fires under plain traffic; the drill then
        // degenerates to healthy drain-and-reset, which must also hold.
        (InjectionPoint::MarkedSpin, 1),
        // Crash *during a salvage walk*: the first salvage attempt dies,
        // the queue stays poisoned, and a second attempt succeeds — this
        // path is exercised by `salvage_survives_a_crashed_salvage`.
    ] {
        cpu_salvage_drill(point, nth);
    }
}

#[test]
fn salvage_survives_a_crashed_salvage() {
    // A fault during the walk itself (SalvageWalk injection point) must
    // leave the queue poisoned-and-salvageable, not torn: the reset only
    // happens after a complete walk.
    let opts = BgpqOptions { node_capacity: 4, max_nodes: 64, ..Default::default() };
    let plan =
        Arc::new(FaultPlan::new().with_rule(InjectionPoint::SalvageWalk, 3, FaultAction::Panic));
    let platform = CpuPlatform::new(opts.max_nodes + 1).with_faults(plan.clone());
    let mut q: CpuBgpq<u32, u32> = CpuBgpq::on_platform(platform, opts);
    for i in 0..40u32 {
        q.try_insert_batch(&[Entry::new(i, i)]).unwrap();
    }

    let mut partial = Vec::new();
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        let mut w = bgpq_runtime::CpuWorker::new();
        bgpq_recover::salvage_shared(&q, &mut w, &mut partial)
    }));
    assert!(crashed.is_err(), "the third walked node must panic the salvage");
    assert!(plan.fired_count() >= 1);

    // Partial output must be discarded — the entries are still in
    // storage. A clean re-run recovers everything exactly once.
    let mut recovered = Vec::new();
    let report = bgpq_recover::salvage(&mut q, &mut recovered);
    assert!(report.conserves());
    assert_eq!(report.keys_recovered, 40);
    assert_eq!(report.keys_lost, 0);
    let mut keys: Vec<u32> = recovered.iter().map(|e| e.key).collect();
    keys.sort_unstable();
    assert_eq!(keys, (0..40).collect::<Vec<_>>());
    q.inner().check_invariants();
}

type SimQueue = Arc<Bgpq<u32, u32, SimPlatform>>;

/// One simulator salvage drill: the crash-drill traffic with a panic at
/// a virtual-time-exact step; afterwards the queue and scheduler are
/// pulled out of the wreckage and `salvage_reset` runs generically (no
/// lock force-reset exists on the sim platform — `Crit`'s unwind
/// release means none is needed).
fn sim_salvage_drill(point: InjectionPoint, nth: u64) {
    let cfg = GpuConfig::new(6, 32).with_fuzz_seed(7);
    let opts = BgpqOptions { node_capacity: 2, max_nodes: 4096, ..Default::default() };
    let plan = Arc::new(FaultPlan::new().with_rule(point, nth, FaultAction::Panic));
    type Stash = std::sync::Mutex<Option<(Arc<Scheduler>, SimQueue)>>;
    let stash: Stash = std::sync::Mutex::new(None);

    let mut offered: HashSet<u32> = HashSet::new();
    for bid in 0..6u32 {
        for i in 0..40u32 {
            let key = bid * 1_000_000 + i;
            offered.insert(key);
            offered.insert(key + 500_000);
        }
    }

    let _ = catch_unwind(AssertUnwindSafe(|| {
        launch(
            cfg,
            |sched| {
                let p = SimPlatform::new(sched, opts.max_nodes + 1, cfg.cost, cfg.block_dim)
                    .with_faults(plan.clone());
                let q: SimQueue = Arc::new(Bgpq::with_platform(p, opts).with_history());
                *stash.lock().unwrap() = Some((Arc::clone(sched), q.clone()));
                q
            },
            |ctx, q: &SimQueue| {
                let bid = ctx.block_id() as u32;
                let mut out = Vec::new();
                for i in 0..40u32 {
                    let key = bid * 1_000_000 + i;
                    if q.try_insert(
                        ctx.worker(),
                        &[Entry::new(key, bid), Entry::new(key + 500_000, bid)],
                    )
                    .is_err()
                    {
                        return;
                    }
                    if i % 2 == 1 {
                        out.clear();
                        if q.try_delete_min(ctx.worker(), &mut out, 2).is_err() {
                            return;
                        }
                    }
                }
            },
        );
    }));

    let (sched, q) = stash.lock().unwrap().take().expect("setup closure ran");
    if point != InjectionPoint::MarkedSpin {
        assert!(plan.fired_count() >= 1, "{point:?}: sim drill never reached the point");
    }

    let events = q.take_history();
    if let Some(v) = check_history(&events) {
        panic!("{point:?}: sim history does not linearize at seq {}: {}", v.seq, v.detail);
    }
    let (inserted, deleted) = committed_multisets(&events);
    let committed_outstanding: i64 = inserted.values().sum::<i64>() - deleted.values().sum::<i64>();
    let was_poisoned = q.is_poisoned();

    // All agent threads were joined by `launch` (even on the panic
    // path), so the queue is quiescent; `Crit`'s unwind-time release
    // already returned any crashed holder's locks to the arena. A fresh
    // never-begun worker is inert — salvage only uses it for fault
    // injection, and no `SalvageWalk` rule is armed here.
    let mut w = sched.worker(0);
    let mut recovered = Vec::new();
    let outcome = q.salvage_reset(&mut w, &mut recovered);

    assert_eq!(outcome.recovered + outcome.lost(), outcome.expected, "{point:?}: {outcome:?}");
    assert_eq!(outcome.was_poisoned, was_poisoned, "{point:?}");
    assert_no_invention(&recovered, &offered, &deleted);
    assert!(
        recovered.len() as i64 >= committed_outstanding - outcome.lost() as i64,
        "{point:?}: silent loss on sim — {} recovered, {} outstanding, {} reported lost",
        recovered.len(),
        committed_outstanding,
        outcome.lost()
    );
    assert!(!q.is_poisoned(), "{point:?}: salvage must clear the poison flag");
    assert_eq!(q.len(), 0);
    q.check_invariants();
    assert!(q.stats().snapshot().salvages >= 1);
}

#[test]
fn sim_salvage_after_panic_every_injection_point() {
    for (point, nth) in [
        (InjectionPoint::PreLockAcquire, 40),
        (InjectionPoint::PostLockAcquire, 40),
        (InjectionPoint::PreLockRelease, 40),
        (InjectionPoint::MidInsertHeapify, 3),
        (InjectionPoint::MidDeleteHeapify, 3),
        (InjectionPoint::MarkedSpin, 1),
    ] {
        sim_salvage_drill(point, nth);
    }
}

mod conservation {
    use super::*;
    use pq_api::BatchPriorityQueue;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The salvage conservation identity on healthy queues:
        /// `recovered + reported_lost == inserted − deleted`, with
        /// `reported_lost == 0` at quiescence, and the recovered ∪
        /// deleted multiset equal to the inserted one.
        #[test]
        fn salvage_conserves_inserted_minus_deleted(
            keys in proptest::collection::vec(0u32..50_000, 0..300),
            delete_target in 0usize..160,
            k in 1usize..9,
        ) {
            let mut q: CpuBgpq<u32, u32> = CpuBgpq::new(BgpqOptions {
                node_capacity: k,
                max_nodes: 1 << 10,
                ..Default::default()
            });
            for chunk in keys.chunks(k) {
                let items: Vec<Entry<u32, u32>> =
                    chunk.iter().map(|&key| Entry::new(key, key)).collect();
                q.insert_batch(&items);
            }
            let mut removed = Vec::new();
            while removed.len() < delete_target {
                if q.delete_min_batch(&mut removed, k) == 0 {
                    break;
                }
            }

            let mut recovered = Vec::new();
            let report = bgpq_recover::salvage(&mut q, &mut recovered);

            prop_assert!(report.conserves());
            prop_assert_eq!(report.keys_lost, 0, "healthy quiescent salvage loses nothing");
            prop_assert_eq!(
                report.keys_recovered + removed.len(),
                keys.len(),
                "recovered + reported_lost == inserted − deleted"
            );
            let mut got: Vec<u32> = recovered
                .iter()
                .chain(removed.iter())
                .map(|e| e.key)
                .collect();
            got.sort_unstable();
            let mut expect = keys.clone();
            expect.sort_unstable();
            prop_assert_eq!(got, expect, "recovered ∪ deleted must equal inserted");
            q.inner().check_invariants();
        }
    }
}

/// Chaos soak: a sharded front with recovery enabled, crash faults armed
/// on two shards, mixed concurrent traffic, then a pump phase that keeps
/// the router ticking until every crashed shard has been salvaged and
/// re-admitted. Ends with a full-accounting drain: zero silent key loss.
///
/// `#[ignore]`d for the default test run; the CI chaos-soak job runs it
/// explicitly under a wall-clock cap.
#[test]
#[ignore = "chaos soak: run explicitly (CI chaos-soak job)"]
fn chaos_soak_self_heals_without_silent_loss() {
    use bgpq_shard::{BreakerState, RecoveryOptions, ShardedBgpq, ShardedOptions};
    use std::sync::Mutex;

    const SHARDS: usize = 4;
    const THREADS: u32 = 4;
    const OPS: u32 = 3_000;
    let queue = BgpqOptions { node_capacity: 4, max_nodes: 512, ..Default::default() };

    // Shards 0 and 2 each carry one insert-heapify panic; both crashes
    // happen under concurrent traffic from their sticky producers.
    let plans: Vec<Option<Arc<FaultPlan>>> = (0..SHARDS)
        .map(|i| match i {
            0 => Some(Arc::new(FaultPlan::new().with_rule(
                InjectionPoint::MidInsertHeapify,
                5,
                FaultAction::Panic,
            ))),
            2 => Some(Arc::new(FaultPlan::new().with_rule(
                InjectionPoint::MidInsertHeapify,
                9,
                FaultAction::Panic,
            ))),
            _ => None,
        })
        .collect();
    let platforms: Vec<CpuPlatform> = plans
        .iter()
        .map(|p| {
            let plat =
                CpuPlatform::new(queue.max_nodes + 1).with_watchdog(Duration::from_millis(75));
            match p {
                Some(plan) => plat.with_faults(plan.clone()),
                None => plat,
            }
        })
        .collect();
    let opts = ShardedOptions::new(SHARDS, 2, queue).with_recovery(RecoveryOptions {
        base_backoff_ops: 32,
        max_backoff_ops: 512,
        trial_ops: 4,
        max_generations: 8,
    });
    let q: ShardedBgpq<u32, u32, CpuPlatform> =
        ShardedBgpq::with_platforms_recovering(platforms, opts, bgpq_recover::salvage_heap);

    // Ground truth, recorded only for operations that returned Ok: keys
    // the queue definitely accepted and keys it definitely gave back.
    let accepted: Mutex<Vec<u32>> = Mutex::new(Vec::new());
    let removed: Mutex<Vec<u32>> = Mutex::new(Vec::new());
    let insert_panics = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let q = &q;
            let accepted = &accepted;
            let removed = &removed;
            let insert_panics = &insert_panics;
            s.spawn(move || {
                let mut w = bgpq_runtime::CpuWorker::new();
                let mut rng = 0x9E37_79B9u64 + t as u64;
                for i in 0..OPS {
                    let key = t * 1_000_000 + i;
                    // Insert-heavy (3:1, net +2 keys per 4 ops): the
                    // shards must actually grow multi-level lock paths
                    // or the heapify injection points are never hit.
                    if i % 4 != 3 {
                        let batch = [Entry::new(key, t), Entry::new(key + 500_000, t)];
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            q.try_insert(&mut w, t as usize, &batch)
                        }));
                        match r {
                            Ok(Ok(())) => {
                                accepted.lock().unwrap().extend(batch.iter().map(|e| e.key))
                            }
                            Ok(Err(_)) => {}
                            Err(_) => {
                                // The injected crash: the batch died with
                                // this op, but part of it may already
                                // have merged — the invention allowance.
                                insert_panics.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                    } else {
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            let mut out = Vec::new();
                            let got = q.try_delete_min(&mut w, &mut rng, &mut out, 4);
                            (got, out)
                        }));
                        if let Ok((Ok(n), out)) = r {
                            assert_eq!(n, out.len());
                            removed.lock().unwrap().extend(out.iter().map(|e| e.key));
                        }
                    }
                }
            });
        }
    });

    // Both armed faults must have fired under the soak load.
    for (i, plan) in plans.iter().enumerate() {
        if let Some(p) = plan {
            assert!(p.fired_count() >= 1, "shard {i}'s fault never fired under soak load");
        }
    }

    // Pump phase: tracked single-producer traffic with rotating affinity
    // until every breaker has closed again (bounded, so a wedged breaker
    // fails loudly instead of hanging the suite).
    let mut w = bgpq_runtime::CpuWorker::new();
    let mut pumped = 0u32;
    for round in 0..40_000u32 {
        let all_closed = (0..SHARDS).all(|i| q.breaker_state(i) == BreakerState::Closed);
        if all_closed && q.quality().salvages >= 1 && q.quality().readmissions >= 1 {
            break;
        }
        assert!(round < 39_999, "breakers failed to close: {:?}", q.quality());
        let key = 9_000_000 + pumped;
        if q.try_insert(&mut w, (round as usize) % SHARDS, &[Entry::new(key, 0)]).is_ok() {
            accepted.lock().unwrap().push(key);
            pumped += 1;
        }
    }

    let quality = q.quality();
    assert!(quality.salvages >= 2, "both crashed shards must be salvaged: {quality:?}");
    assert!(quality.readmissions >= 2, "both crashed shards must re-admit: {quality:?}");
    assert!(quality.probes >= quality.salvages);
    assert_eq!(q.quarantined_count(), 0, "soak must end with every shard serving");

    // Final drain, then the books: with all shards salvaged and serving,
    // every accepted key is either returned or counted in a
    // SalvageReport (surfaced as `keys_lost`) — loss is never silent.
    let mut rng = 17u64;
    let mut out = Vec::new();
    while q.try_delete_min(&mut w, &mut rng, &mut out, 4).expect("healed front drains") > 0 {}
    removed.lock().unwrap().extend(out.iter().map(|e| e.key));

    let accepted = accepted.into_inner().unwrap();
    let removed = removed.into_inner().unwrap();
    let invention_allowance = 2 * insert_panics.load(std::sync::atomic::Ordering::Relaxed) as i64;
    let missing = accepted.len() as i64 - removed.len() as i64;
    assert!(
        missing <= quality.keys_lost as i64,
        "silent key loss: {} accepted, {} returned, only {} reported lost",
        accepted.len(),
        removed.len(),
        quality.keys_lost
    );
    assert!(
        missing >= -invention_allowance,
        "key invention beyond crashed in-flight batches: missing={missing}, \
         allowance={invention_allowance}"
    );
    // No key is fabricated or duplicated: every returned key was offered
    // exactly once (accepted, or part of a crashed batch).
    let mut offered: HashSet<u32> = accepted.iter().copied().collect();
    for t in 0..THREADS {
        for i in 0..OPS {
            let key = t * 1_000_000 + i;
            offered.insert(key);
            offered.insert(key + 500_000);
        }
    }
    let mut seen = HashSet::new();
    for k in &removed {
        assert!(offered.contains(k), "returned key {k} was never offered");
        assert!(seen.insert(*k), "key {k} returned twice");
    }

    // The healed front still serves.
    q.try_insert(&mut w, 0, &[Entry::new(1, 1)]).expect("post-soak insert");
    out.clear();
    assert_eq!(q.try_delete_min(&mut w, &mut rng, &mut out, 1).unwrap(), 1);
    assert_eq!(out[0].key, 1);
    q.check_invariants();
}
