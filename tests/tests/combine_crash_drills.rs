//! Crash drills through the coalescing front: PR 2's fault points fire
//! *inside batched backend calls issued by a combiner serving other
//! threads' requests*, which is exactly where a combining design can
//! wedge — a crashed combiner must not strand parked submitters.
//!
//! Contract under test (ISSUE 6): a poisoned backend surfaces to every
//! submitter as `QueueError::Poisoned`; no submitter ever blocks
//! forever; the injected panic itself never unwinds a submitting
//! thread (the front converts it to the typed error).

use bgpq::{Bgpq, BgpqOptions, CpuBgpq};
use bgpq_combine::{CombineBackend, CombineShared, Combiner, CombinerOptions, Op};
use bgpq_runtime::{CpuPlatform, FaultAction, FaultPlan, InjectionPoint, Platform, SimPlatform};
use gpu_sim::sched::SimWorker;
use gpu_sim::{launch, GpuConfig};
use pq_api::{Entry, QueueError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One CPU drill: four threads of single-op traffic through the
/// combiner against a backend whose platform fires `action` at the
/// `nth` hit of `point`. Returns whether the front ended up poisoned.
///
/// Note there is deliberately **no** `catch_unwind` in the submitter
/// threads: the front must contain the backend's panic and hand every
/// thread a typed error instead.
fn cpu_combine_drill(point: InjectionPoint, nth: u64, action: FaultAction) -> bool {
    let opts = BgpqOptions { node_capacity: 4, max_nodes: 1 << 10, ..Default::default() };
    let plan = Arc::new(FaultPlan::new().with_rule(point, nth, action));
    let platform = CpuPlatform::new(opts.max_nodes + 1)
        .with_watchdog(Duration::from_millis(75))
        .with_faults(plan.clone());
    let q = Combiner::wrap(CpuBgpq::<u32, u32>::on_platform(platform, opts));

    let poisoned_seen = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let q = &q;
            let poisoned_seen = &poisoned_seen;
            s.spawn(move || {
                for i in 0..400u32 {
                    let key = t * 1_000_000 + i;
                    let r = if i % 4 != 3 {
                        q.try_insert(key, t)
                    } else {
                        q.try_delete_min().map(|_| ())
                    };
                    match r {
                        Ok(()) | Err(QueueError::Full { .. }) => {}
                        Err(QueueError::Poisoned) => {
                            poisoned_seen.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        // A watchdog timeout is per-operation: the
                        // front stays live and the next op may work.
                        Err(QueueError::LockTimeout { .. }) => {}
                        // Tripped-front fast-fail; every PROBE_INTERVAL-th
                        // submission still probes and reports Poisoned.
                        Err(QueueError::Unavailable) => {}
                    }
                }
            });
        }
    });
    // Reaching here is the no-hang claim for every drill variant.

    assert!(
        plan.fired_count() >= 1,
        "{point:?}/{action:?}: combined load never reached the injection point"
    );
    if q.is_poisoned() {
        // Fail-stop through the front: immediate typed refusal for
        // both kinds (fast-fail `Unavailable`, or `Poisoned` when the
        // submission lands on a probe ticket), and at least one
        // in-flight submitter saw the poison itself.
        assert!(matches!(
            q.try_insert(1, 0),
            Err(QueueError::Poisoned) | Err(QueueError::Unavailable)
        ));
        assert!(matches!(
            q.try_delete_min(),
            Err(QueueError::Poisoned) | Err(QueueError::Unavailable)
        ));
        assert!(q.stats().snapshot().poison_events >= 1);
        assert!(poisoned_seen.load(Ordering::Relaxed) >= 1);
        // The backend itself may or may not be poisoned: a pre-entry
        // panic (e.g. PreLockAcquire) dies before the heap's Crit
        // guard engages, leaving the heap healthy. The front still
        // poisons conservatively — it cannot know which of the
        // round's requests committed.
    } else {
        // Healthy survivor (stall variants): the front still serves.
        q.try_insert(42, 0).expect("surviving front serves inserts");
        assert!(q.try_delete_min().expect("surviving front serves deletes").is_some());
    }
    q.is_poisoned()
}

#[test]
fn cpu_combined_panic_drills_poison_not_hang() {
    let mut any_poisoned = false;
    for (point, nth) in [
        (InjectionPoint::PreLockAcquire, 151),
        (InjectionPoint::PostLockAcquire, 151),
        (InjectionPoint::PreLockRelease, 150),
        (InjectionPoint::MidInsertHeapify, 5),
        (InjectionPoint::MidDeleteHeapify, 5),
    ] {
        any_poisoned |= cpu_combine_drill(point, nth, FaultAction::Panic);
    }
    assert!(any_poisoned, "panic drills must poison through the front at least once");
}

#[test]
fn cpu_combined_stall_drills_time_out_not_hang() {
    // 150 ms stall against a 75 ms watchdog: submitters see LockTimeout
    // (or a mid-op poison) but never hang, with the combiner parked
    // between them and the stalled backend.
    for (point, nth) in [
        (InjectionPoint::PreLockAcquire, 151),
        (InjectionPoint::PostLockAcquire, 151),
        (InjectionPoint::MidInsertHeapify, 5),
        (InjectionPoint::MidDeleteHeapify, 5),
    ] {
        cpu_combine_drill(point, nth, FaultAction::Stall { units: 150_000 });
    }
}

// ---------------------------------------------------------------------
// Simulator drill: polling waiters against a crashing backend.
// ---------------------------------------------------------------------

struct SimBackend<'a> {
    q: &'a Bgpq<u32, u32, SimPlatform>,
    w: &'a mut SimWorker,
    lane: usize,
}

impl CombineBackend<u32, u32> for SimBackend<'_> {
    const CAN_PARK: bool = false;

    fn batch_capacity(&self) -> usize {
        self.q.node_capacity()
    }

    fn try_insert_batch(&mut self, items: &[Entry<u32, u32>]) -> Result<(), QueueError> {
        self.q.try_insert(self.w, items)
    }

    fn try_delete_min_batch(
        &mut self,
        out: &mut Vec<Entry<u32, u32>>,
        count: usize,
    ) -> Result<usize, QueueError> {
        self.q.try_delete_min(self.w, out, count)
    }

    fn relax(&mut self) {
        self.q.platform().backoff(self.w);
    }

    fn lane(&self) -> usize {
        self.lane
    }
}

type SimState = (Arc<Bgpq<u32, u32, SimPlatform>>, CombineShared<u32, u32>, AtomicU64);

/// A panic injected inside a combiner-issued batch on the simulator:
/// the front converts it to `Poisoned` for every polling agent and the
/// launch completes — the injected death never escapes the engine.
#[test]
fn sim_combined_panic_drill_completes_with_typed_errors() {
    let cfg = GpuConfig::new(4, 32).with_fuzz_seed(23);
    let opts = BgpqOptions { node_capacity: 4, max_nodes: 1 << 10, ..Default::default() };
    let plan = Arc::new(FaultPlan::new().with_rule(
        InjectionPoint::MidInsertHeapify,
        3,
        FaultAction::Panic,
    ));

    let (_report, st) = launch(
        cfg,
        |sched| {
            let p = SimPlatform::new(sched, opts.max_nodes + 1, cfg.cost, cfg.block_dim)
                .with_faults(plan.clone());
            let q = Arc::new(Bgpq::with_platform(p, opts));
            let front = CombineShared::new(q.node_capacity(), CombinerOptions::default());
            let st: SimState = (q, front, AtomicU64::new(0));
            st
        },
        |ctx, st: &SimState| {
            let lane = ctx.block_id();
            let mut backend = SimBackend { q: &st.0, w: ctx.worker(), lane };
            let bid = lane as u32;
            for i in 0..80u32 {
                let r = if i % 3 == 2 {
                    st.1.submit(&mut backend, Op::DeleteMin).map(|_| ())
                } else {
                    st.1.submit(&mut backend, Op::Insert(Entry::new(bid * 1000 + i, bid)))
                        .map(|_| ())
                };
                match r {
                    Ok(()) | Err(QueueError::Full { .. }) => {}
                    Err(QueueError::Poisoned) => {
                        st.2.fetch_add(1, Ordering::Relaxed);
                        return; // graceful fail-stop, agent exits cleanly
                    }
                    Err(QueueError::LockTimeout { .. }) => {}
                    // Tripped-front fast-fail: keep polling — a later
                    // probe ticket surfaces the underlying Poisoned.
                    Err(QueueError::Unavailable) => {}
                }
            }
        },
    );

    // The launch returned at all (no deadlocked agents), the fault
    // fired, and every consequence was a typed error.
    assert!(plan.fired_count() >= 1, "sim drill never reached the injection point");
    let (q, front, poisoned_agents) = st;
    assert!(q.is_poisoned(), "injected heapify panic must poison the sim heap");
    assert!(front.is_poisoned(), "backend poison must propagate to the front");
    assert!(
        poisoned_agents.load(Ordering::Relaxed) >= 1,
        "at least one polling agent observed Poisoned"
    );
    // Late submissions keep failing fast rather than touching the dead
    // heap — checked via the front's flag since all agents retired.
    assert!(front.stats().snapshot().poison_events >= 1);
}
