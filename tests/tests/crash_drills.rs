//! Crash drills: deterministic fault injection at every [`InjectionPoint`]
//! with both a panic and a stall, on both platforms.
//!
//! Each drill asserts the failure-model contract (DESIGN.md "Failure
//! model"):
//!
//! * **No deadlock** — the drill terminates; a stalled/dead lock holder
//!   is either waited out (sim hand-off) or timed out (CPU watchdog).
//! * **No key loss among committed operations** — the multiset of keys
//!   returned by linearized DELETEMINs is contained in the multiset
//!   inserted by linearized INSERTs, and when the queue survives
//!   unpoisoned, draining recovers the difference exactly.
//! * **Truncated histories linearize** — events are recorded at each
//!   operation's linearization point, so a crash after that point leaves
//!   the committed operation visible and `check_history` must still
//!   accept the prefix that actually committed.
//! * **Fail-stop visibility** — a worker dying mid-critical-section
//!   poisons the queue; every later operation refuses with
//!   `QueueError::Poisoned` instead of touching torn state.

use bgpq::{check_history, Bgpq, BgpqOptions, CpuBgpq, HistoryEvent, HistoryOp};
use bgpq_runtime::{CpuPlatform, FaultAction, FaultPlan, InjectionPoint, SimPlatform};
use gpu_sim::{launch, GpuConfig};
use pq_api::{Entry, QueueError};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Key multiset of all linearized inserts and deletes in `events`.
fn committed_multisets(events: &[HistoryEvent<u32>]) -> (HashMap<u32, i64>, HashMap<u32, i64>) {
    let mut inserted: HashMap<u32, i64> = HashMap::new();
    let mut deleted: HashMap<u32, i64> = HashMap::new();
    for e in events {
        match &e.op {
            HistoryOp::Insert { keys } => {
                for &k in keys {
                    *inserted.entry(k).or_default() += 1;
                }
            }
            HistoryOp::DeleteMin { keys, .. } => {
                for &k in keys {
                    *deleted.entry(k).or_default() += 1;
                }
            }
        }
    }
    (inserted, deleted)
}

/// Assert `deleted ⊆ inserted` as multisets; return the difference size.
fn assert_conservation(inserted: &HashMap<u32, i64>, deleted: &HashMap<u32, i64>) -> i64 {
    for (k, &n) in deleted {
        let have = inserted.get(k).copied().unwrap_or(0);
        assert!(
            n <= have,
            "key {k} deleted {n} times but inserted only {have} times — keys were fabricated"
        );
    }
    let ins: i64 = inserted.values().sum();
    let del: i64 = deleted.values().sum();
    ins - del
}

/// One CPU drill: four threads of mixed traffic against a queue whose
/// platform fires `action` on the `nth` hit of `point`. Threads use the
/// `try_*` APIs and stop on `Poisoned`; the injected panic itself is
/// contained per thread.
fn cpu_drill(point: InjectionPoint, nth: u64, action: FaultAction) {
    let opts = BgpqOptions { node_capacity: 4, max_nodes: 1 << 10, ..Default::default() };
    let plan = Arc::new(FaultPlan::new().with_rule(point, nth, action));
    let platform = CpuPlatform::new(opts.max_nodes + 1)
        .with_watchdog(Duration::from_millis(75))
        .with_faults(plan.clone());
    let q: CpuBgpq<u32, u32> = CpuBgpq::on_platform(platform, opts).with_history();

    std::thread::scope(|s| {
        for t in 0..4u32 {
            let q = &q;
            s.spawn(move || {
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    // Insert-heavy mix (3:1, two keys per insert, k per
                    // delete): the heap must actually grow a multi-level
                    // lock path, or the heapify injection points are
                    // never reached.
                    let mut out = Vec::new();
                    for i in 0..300u32 {
                        let key = t * 1_000_000 + i;
                        if i % 4 != 3 {
                            match q.try_insert_batch(&[
                                Entry::new(key, t),
                                Entry::new(key + 500_000, t),
                            ]) {
                                Ok(()) | Err(QueueError::Full { .. }) => {}
                                Err(QueueError::Poisoned) => break,
                                Err(QueueError::LockTimeout { .. })
                                | Err(QueueError::Unavailable) => {}
                            }
                        } else {
                            out.clear();
                            match q.try_delete_min_batch(&mut out, 4) {
                                Ok(_) | Err(QueueError::Full { .. }) => {}
                                Err(QueueError::Poisoned) => break,
                                Err(QueueError::LockTimeout { .. })
                                | Err(QueueError::Unavailable) => {}
                            }
                        }
                    }
                }));
            });
        }
    });
    // Reaching this line at all is the no-deadlock claim: every blocked
    // acquisition was bounded by the watchdog.

    if point != InjectionPoint::MarkedSpin {
        assert!(
            plan.fired_count() >= 1,
            "{point:?}/{action:?}: drill load never reached the injection point"
        );
    }

    let events = q.inner().take_history();
    if let Some(v) = check_history(&events) {
        panic!(
            "{point:?}/{action:?}: truncated history does not linearize at seq {}: {}",
            v.seq, v.detail
        );
    }
    let (inserted, deleted) = committed_multisets(&events);
    let outstanding = assert_conservation(&inserted, &deleted);

    if q.inner().is_poisoned() {
        assert!(q.inner().stats().snapshot().poison_events >= 1);
        // Fail-stop: the poisoned queue refuses promptly, without
        // blocking and without emitting keys.
        let mut out = Vec::new();
        assert!(matches!(q.try_delete_min_batch(&mut out, 1), Err(QueueError::Poisoned)));
        assert!(matches!(q.try_insert_batch(&[Entry::new(1, 0)]), Err(QueueError::Poisoned)));
        assert!(out.is_empty());
    } else {
        // Healthy survivor: draining recovers exactly the outstanding
        // keys of the committed history.
        let mut rest = Vec::new();
        while q.try_delete_min_batch(&mut rest, 4).expect("healthy queue") > 0 {}
        assert_eq!(rest.len() as i64, outstanding, "{point:?}/{action:?}: drain size mismatch");
        let mut remaining = inserted.clone();
        for e in &rest {
            *remaining.entry(e.key).or_default() -= 1;
        }
        for (k, &n) in &deleted {
            *remaining.entry(*k).or_default() -= n;
        }
        assert!(
            remaining.values().all(|&n| n == 0),
            "{point:?}/{action:?}: drained keys are not the inserted-minus-deleted multiset"
        );
        q.inner().check_invariants();
    }
}

#[test]
fn cpu_panic_drill_every_injection_point() {
    for (point, nth) in [
        (InjectionPoint::PreLockAcquire, 201),
        (InjectionPoint::PostLockAcquire, 201),
        (InjectionPoint::PreLockRelease, 200),
        (InjectionPoint::MidInsertHeapify, 5),
        (InjectionPoint::MidDeleteHeapify, 5),
        // MarkedSpin needs an engineered collaboration; the dedicated
        // drill in fault_collaboration.rs covers it. Here it simply
        // must not break anything if it never fires.
        (InjectionPoint::MarkedSpin, 1),
    ] {
        cpu_drill(point, nth, FaultAction::Panic);
    }
}

#[test]
fn cpu_stall_drill_every_injection_point() {
    // 150 ms stall against a 75 ms watchdog: waiters must time out (or
    // poison mid-op) rather than hang, and the stalled thread resumes
    // into a world that moved on.
    for (point, nth) in [
        (InjectionPoint::PreLockAcquire, 201),
        (InjectionPoint::PostLockAcquire, 201),
        (InjectionPoint::PreLockRelease, 200),
        (InjectionPoint::MidInsertHeapify, 5),
        (InjectionPoint::MidDeleteHeapify, 5),
        (InjectionPoint::MarkedSpin, 1),
    ] {
        cpu_drill(point, nth, FaultAction::Stall { units: 150_000 });
    }
}

type SimQueue = Arc<Bgpq<u32, u32, SimPlatform>>;

/// One simulator drill: six blocks of mixed traffic, deterministic
/// schedule, fault at a virtual-time-exact step. The queue is stashed
/// through an `Arc` so the aftermath is inspectable even when the
/// injected panic unwinds out of `launch`.
fn sim_drill(point: InjectionPoint, nth: u64, action: FaultAction) {
    let cfg = GpuConfig::new(6, 32).with_fuzz_seed(7);
    let opts = BgpqOptions { node_capacity: 2, max_nodes: 4096, ..Default::default() };
    let plan = Arc::new(FaultPlan::new().with_rule(point, nth, action));
    let stash: std::sync::Mutex<Option<SimQueue>> = std::sync::Mutex::new(None);

    let run = catch_unwind(AssertUnwindSafe(|| {
        launch(
            cfg,
            |sched| {
                let p = SimPlatform::new(sched, opts.max_nodes + 1, cfg.cost, cfg.block_dim)
                    .with_faults(plan.clone());
                let q: SimQueue = Arc::new(Bgpq::with_platform(p, opts).with_history());
                *stash.lock().unwrap() = Some(q.clone());
                q
            },
            |ctx, q: &SimQueue| {
                let bid = ctx.block_id() as u32;
                let mut out = Vec::new();
                // Net-growth mix so the heap develops real depth and the
                // heapify injection points are exercised.
                for i in 0..40u32 {
                    let key = bid * 1_000_000 + i;
                    if q.try_insert(
                        ctx.worker(),
                        &[Entry::new(key, bid), Entry::new(key + 500_000, bid)],
                    )
                    .is_err()
                    {
                        return; // graceful fail-stop: survivors exit cleanly
                    }
                    if i % 2 == 1 {
                        out.clear();
                        if q.try_delete_min(ctx.worker(), &mut out, 2).is_err() {
                            return;
                        }
                    }
                }
            },
        );
    }));

    let q = stash.lock().unwrap().take().expect("setup closure ran");
    if point != InjectionPoint::MarkedSpin {
        assert!(
            plan.fired_count() >= 1,
            "{point:?}/{action:?}: sim drill load never reached the injection point"
        );
    }
    match action {
        FaultAction::Panic if plan.fired_count() > 0 => {
            assert!(run.is_err(), "{point:?}: injected panic must propagate out of launch");
        }
        _ => assert!(run.is_ok(), "{point:?}/{action:?}: non-panic drill must complete"),
    }

    let events = q.take_history();
    if let Some(v) = check_history(&events) {
        panic!(
            "{point:?}/{action:?}: sim history does not linearize at seq {}: {}",
            v.seq, v.detail
        );
    }
    let (inserted, deleted) = committed_multisets(&events);
    let outstanding = assert_conservation(&inserted, &deleted);
    if !q.is_poisoned() {
        assert_eq!(q.len() as i64, outstanding, "{point:?}/{action:?}: length drift");
        q.check_invariants();
    } else {
        assert!(q.stats().snapshot().poison_events >= 1);
    }
}

#[test]
fn sim_panic_drill_every_injection_point() {
    for (point, nth) in [
        (InjectionPoint::PreLockAcquire, 40),
        (InjectionPoint::PostLockAcquire, 40),
        (InjectionPoint::PreLockRelease, 40),
        (InjectionPoint::MidInsertHeapify, 3),
        (InjectionPoint::MidDeleteHeapify, 3),
        (InjectionPoint::MarkedSpin, 1),
    ] {
        sim_drill(point, nth, FaultAction::Panic);
    }
}

#[test]
fn sim_stall_drill_every_injection_point() {
    // A sim stall is a huge virtual-time jump: waiters spin in virtual
    // time (escalating to the long backoff) but the bound must not trip
    // and the run must complete with an intact history.
    for (point, nth) in [
        (InjectionPoint::PreLockAcquire, 40),
        (InjectionPoint::PostLockAcquire, 40),
        (InjectionPoint::PreLockRelease, 40),
        (InjectionPoint::MidInsertHeapify, 3),
        (InjectionPoint::MidDeleteHeapify, 3),
        (InjectionPoint::MarkedSpin, 1),
    ] {
        sim_drill(point, nth, FaultAction::Stall { units: 1_000_000 });
    }
}

#[test]
fn sim_panic_drills_are_deterministic() {
    // Same seed, same plan ⇒ the same operation dies at the same
    // virtual-time step: both runs commit the identical history.
    let run = || {
        let cfg = GpuConfig::new(4, 32).with_fuzz_seed(11);
        let opts = BgpqOptions { node_capacity: 2, max_nodes: 1024, ..Default::default() };
        let plan = Arc::new(FaultPlan::new().with_rule(
            InjectionPoint::MidInsertHeapify,
            2,
            FaultAction::Panic,
        ));
        let stash: std::sync::Mutex<Option<SimQueue>> = std::sync::Mutex::new(None);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            launch(
                cfg,
                |sched| {
                    let p = SimPlatform::new(sched, opts.max_nodes + 1, cfg.cost, cfg.block_dim)
                        .with_faults(plan.clone());
                    let q: SimQueue = Arc::new(Bgpq::with_platform(p, opts).with_history());
                    *stash.lock().unwrap() = Some(q.clone());
                    q
                },
                |ctx, q: &SimQueue| {
                    let bid = ctx.block_id() as u32;
                    let mut out = Vec::new();
                    for i in 0..20u32 {
                        if q.try_insert(ctx.worker(), &[Entry::new(bid * 100 + i, 0)]).is_err() {
                            return;
                        }
                        out.clear();
                        if q.try_delete_min(ctx.worker(), &mut out, 1).is_err() {
                            return;
                        }
                    }
                },
            );
        }));
        let q = stash.lock().unwrap().take().unwrap();
        q.take_history()
    };
    let h1 = run();
    let h2 = run();
    assert_eq!(h1, h2, "fault drills on the simulator must be reproducible");
    assert!(!h1.is_empty());
}

#[test]
fn sharded_front_quarantines_crashed_shard_and_serves_on() {
    use bgpq_shard::{ShardedBgpq, ShardedOptions};

    // Shard 1 carries a fault plan that kills its first delete heapify;
    // shards 0 and 2 are healthy. After the crash the router must
    // quarantine shard 1 and keep serving from the survivors.
    let queue = BgpqOptions { node_capacity: 2, max_nodes: 128, ..Default::default() };
    let plan = Arc::new(FaultPlan::new().with_rule(
        InjectionPoint::MidDeleteHeapify,
        1,
        FaultAction::Panic,
    ));
    let platforms: Vec<CpuPlatform> = (0..3)
        .map(|i| {
            let p = CpuPlatform::new(queue.max_nodes + 1).with_watchdog(Duration::from_millis(75));
            if i == 1 {
                p.with_faults(plan.clone())
            } else {
                p
            }
        })
        .collect();
    let q: ShardedBgpq<u32, u32, CpuPlatform> =
        ShardedBgpq::with_platforms(platforms, ShardedOptions::new(3, 3, queue));
    let mut w = bgpq_runtime::CpuWorker::new();

    // Fill every shard, then hammer deletes until the fault fires on
    // shard 1. Because deletes route by best hint, the faulty shard is
    // hit eventually; its panic is contained by the drill thread.
    for a in 0..3usize {
        for i in 0..32u32 {
            q.try_insert(
                &mut w,
                a,
                &[Entry::new(a as u32 * 1000 + i, 0), Entry::new(a as u32 * 1000 + i + 500, 0)],
            )
            .unwrap();
        }
    }
    let total = q.len();
    let drained = std::thread::scope(|s| {
        s.spawn(|| {
            let mut w = bgpq_runtime::CpuWorker::new();
            let mut rng = 17u64;
            let mut out = Vec::new();
            let mut n = 0usize;
            loop {
                let r = catch_unwind(AssertUnwindSafe(|| {
                    let mut tmp = Vec::new();
                    let got = q.try_delete_min(&mut w, &mut rng, &mut tmp, 2);
                    (got, tmp)
                }));
                match r {
                    Ok((Ok(0), _)) => break,
                    Ok((Ok(got), tmp)) => {
                        n += got;
                        out.extend(tmp);
                    }
                    Ok((Err(_), _)) => break,
                    Err(_) => {} // shard 1's injected panic; keep going
                }
            }
            n
        })
        .join()
        .unwrap()
    });

    assert!(plan.fired_count() >= 1, "the delete-heapify fault must have fired");
    assert!(q.is_quarantined(1), "crashed shard must be quarantined");
    assert_eq!(q.quarantined_count(), 1);
    assert!(q.quality().quarantines >= 1);
    // Survivor shards drained fully; shard 1's keys are the casualty,
    // so strictly fewer than `total` came back but both live shards hit
    // empty cleanly (try_delete_min returned Ok(0), not an error).
    assert!(drained < total);
    assert_eq!(q.len(), 0, "live shards are empty");
    q.check_invariants();
    // Inserts keep working, redistributed away from the dead shard.
    q.try_insert(&mut w, 1, &[Entry::new(7, 7)]).expect("redistributed insert");
    assert_eq!(q.len(), 1);
}
