//! The sharded relaxed front end-to-end: rank-error bounds, exact
//! emptiness under concurrency, and the paper's applications running
//! on top of relaxed delete-min.

use apps::{
    solve_astar, solve_astar_sequential, solve_knapsack, solve_knapsack_sequential, solve_sssp,
    AstarNode, KsNode, SsspNode,
};
use bgpq::BgpqOptions;
use bgpq_runtime::{CpuPlatform, CpuWorker};
use bgpq_shard::{CpuShardedBgpq, ShardedBgpq, ShardedBgpqFactory, ShardedOptions};
use pq_api::{BatchPriorityQueue, Entry, QueueFactory};
use proptest::prelude::*;
use workloads::{
    generate_keys, Correlation, Graph, GraphSpec, Grid, GridSpec, KeyDist, KnapsackInstance,
    KnapsackSpec,
};

fn router(shards: usize, sample: usize, k: usize) -> ShardedBgpq<u32, u32, CpuPlatform> {
    let queue = BgpqOptions { node_capacity: k, max_nodes: 1 << 10, ..Default::default() };
    let platforms = (0..shards).map(|_| CpuPlatform::new(queue.max_nodes + 1)).collect();
    ShardedBgpq::with_platforms(platforms, ShardedOptions::new(shards, sample, queue))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// At quiescent single-consumer replay the root-min hints are exact
    /// (or over-estimates for cold shards), so the measured rank error
    /// of every delete is bounded by the theoretical `S - c` of
    /// c-of-S sampling. The error statistics must never exceed it.
    #[test]
    fn rank_error_never_exceeds_c_of_s_bound(
        (shards, sample) in (1usize..=6).prop_flat_map(|s| (Just(s), 1usize..=s)),
        keys in prop::collection::vec(0u32..10_000, 1..400),
        seed in 1u64..u64::MAX,
    ) {
        let q = router(shards, sample, 8);
        let mut w = CpuWorker::new();
        // Quiescent producer phase: batches spread round-robin.
        for (i, chunk) in keys.chunks(8).enumerate() {
            let items: Vec<Entry<u32, u32>> =
                chunk.iter().map(|&k| Entry::new(k, 0)).collect();
            q.insert(&mut w, i, &items);
        }
        // Quiescent single-consumer replay.
        let mut rng = seed;
        let mut out = Vec::new();
        let mut drained = 0usize;
        loop {
            let got = q.delete_min(&mut w, &mut rng, &mut out, 8);
            if got == 0 {
                break;
            }
            drained += got;
        }
        prop_assert_eq!(drained, keys.len());
        prop_assert!(q.is_empty());
        let quality = q.quality();
        let bound = (shards - sample) as u64;
        prop_assert!(
            quality.rank_error_max <= bound,
            "max rank error {} exceeds S-c bound {} (S={}, c={})",
            quality.rank_error_max, bound, shards, sample
        );
    }
}

/// A delete must find work wherever it hides: one item in one shard,
/// wide sampling misses, the steal/sweep path still returns it.
#[test]
fn delete_finds_lone_item_in_any_shard() {
    for target in 0..8usize {
        let q = router(8, 1, 4);
        let mut w = CpuWorker::new();
        q.insert(&mut w, target, &[Entry::new(7u32, 77)]);
        let mut rng = 0x5EED + target as u64;
        let mut out = Vec::new();
        assert_eq!(q.delete_min(&mut w, &mut rng, &mut out, 4), 1, "shard {target}");
        assert_eq!((out[0].key, out[0].value), (7, 77));
        assert!(q.is_empty());
    }
}

/// Exact emptiness under concurrent producers: consumers spinning on
/// delete_min_batch must collectively recover *every* inserted key once
/// producers finish — a relaxed router that lost track of a shard
/// would either under-deliver or hang.
#[test]
fn exact_drain_under_concurrent_producers() {
    let q = std::sync::Arc::new(CpuShardedBgpq::<u32, u32>::new(ShardedOptions::new(
        4,
        2,
        BgpqOptions { node_capacity: 16, max_nodes: 1 << 12, ..Default::default() },
    )));
    let producers = 4usize;
    let per_producer = 3_000usize;
    let total = producers * per_producer;
    let taken = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for p in 0..producers {
            let q = q.clone();
            s.spawn(move || {
                let keys = generate_keys(per_producer, KeyDist::Random, p as u64);
                let mut items = Vec::with_capacity(16);
                for chunk in keys.chunks(16) {
                    items.clear();
                    items.extend(chunk.iter().map(|&k| Entry::new(k, p as u32)));
                    q.insert_batch(&items);
                }
            });
        }
        // Consumers spin until every key has been taken somewhere;
        // `taken` is monotone, so a miss (got == 0) before that point
        // just means producers are still ahead or a race emptied the
        // sampled shards — the exact sweep guarantees a miss at
        // `taken == total` really is the end.
        for _ in 0..2 {
            let q = q.clone();
            let taken = &taken;
            s.spawn(move || {
                let mut out = Vec::new();
                loop {
                    out.clear();
                    let got = q.delete_min_batch(&mut out, 16);
                    taken.fetch_add(got, std::sync::atomic::Ordering::AcqRel);
                    if got == 0 {
                        if taken.load(std::sync::atomic::Ordering::Acquire) >= total {
                            return;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    assert_eq!(taken.load(std::sync::atomic::Ordering::Acquire), total);
    assert!(q.is_empty());
    assert_eq!(q.inner().check_invariants(), 0);
}

/// A* over the sharded relaxed queue must still find the optimal path
/// (stale-entry guards + incumbent pruning absorb out-of-order pops).
#[test]
fn astar_over_sharded_matches_sequential() {
    let factory = ShardedBgpqFactory::new(4, 2, 16);
    for spec in [GridSpec::new(24, 0.10, 1), GridSpec::new(32, 0.20, 9), GridSpec::new(16, 0.35, 4)]
    {
        let grid = Grid::generate(spec);
        let q: <ShardedBgpqFactory as QueueFactory<u64, AstarNode>>::Queue = factory.build(1 << 15);
        let par = solve_astar(&grid, &q, 4);
        let seq = solve_astar_sequential(&grid);
        assert_eq!(par.cost, seq.cost);
        assert!(q.is_empty(), "search must drain the open set");
    }
}

/// SSSP over the sharded queue reaches Dijkstra's fixpoint.
#[test]
fn sssp_over_sharded_matches_dijkstra() {
    let factory = ShardedBgpqFactory::new(4, 2, 16);
    for spec in [GraphSpec::new(200, 3, 1), GraphSpec::new(500, 5, 2)] {
        let graph = Graph::generate(spec);
        let q: <ShardedBgpqFactory as QueueFactory<u64, SsspNode>>::Queue = factory.build(1 << 15);
        let r = solve_sssp(&graph, 0, &q, 4);
        assert_eq!(r.dist, graph.dijkstra_reference(0));
        assert!(q.is_empty());
    }
}

/// Knapsack B&B over the sharded queue proves the same optimum: the
/// best-bound incumbent check makes pop order irrelevant to
/// correctness, and the exact-emptiness sweep certifies termination.
#[test]
fn knapsack_over_sharded_matches_dp() {
    let factory = ShardedBgpqFactory::new(4, 2, 8);
    for (n, c, s) in [
        (16, Correlation::Uncorrelated, 1u64),
        (20, Correlation::Weak, 2),
        (18, Correlation::Strong, 3),
    ] {
        let inst = KnapsackInstance::generate(KnapsackSpec::new(n, c, s));
        let q: <ShardedBgpqFactory as QueueFactory<u64, KsNode>>::Queue = factory.build(1 << 15);
        let got = solve_knapsack(&inst, &q, 4);
        assert_eq!(got.best_profit, inst.optimum_dp());
        assert_eq!(got.best_profit, solve_knapsack_sequential(&inst).best_profit);
        assert!(q.is_empty(), "queue must drain");
    }
}
