//! The coalescing submission front end-to-end: conservation under
//! concurrent single-op traffic, quiescent latency, occupancy-histogram
//! shape across fronts, and the same combining protocol driven by
//! polling simulator agents.

use bgpq::{Bgpq, BgpqOptions, CpuBgpq};
use bgpq_combine::{CombineBackend, CombineShared, Combiner, CombinerOptions, Op};
use bgpq_runtime::{Platform, SimPlatform};
use bgpq_shard::{CpuShardedBgpq, ShardedOptions};
use gpu_sim::sched::SimWorker;
use gpu_sim::{launch, GpuConfig};
use pq_api::{Entry, PriorityQueue, QueueError};
use proptest::prelude::*;
use std::sync::Arc;

fn bgpq_front(k: usize) -> Combiner<u32, u32, CpuBgpq<u32, u32>> {
    Combiner::wrap(CpuBgpq::new(BgpqOptions {
        node_capacity: k,
        max_nodes: 1 << 10,
        ..Default::default()
    }))
}

proptest! {
    // Each case spawns real threads; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation + no duplication: across concurrent inserters and
    /// deleters, every submitted key comes back exactly once (either
    /// to a concurrent deleter or in the final drain) and nothing is
    /// fabricated.
    #[test]
    fn every_submitted_key_returns_exactly_once(
        keys in prop::collection::vec(0u32..50_000, 8..200),
        threads in 2usize..=4,
        k in 2usize..=16,
    ) {
        let q = Arc::new(bgpq_front(k));
        let chunks: Vec<Vec<u32>> =
            keys.chunks(keys.len().div_ceil(threads)).map(<[u32]>::to_vec).collect();
        let deleted: Vec<Vec<Entry<u32, u32>>> = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for chunk in &chunks {
                let q = q.clone();
                handles.push(s.spawn(move || {
                    // Interleave inserts with occasional deletes so the
                    // delete-redistribution path runs concurrently with
                    // coalesced inserts.
                    let mut got = Vec::new();
                    for (i, &key) in chunk.iter().enumerate() {
                        q.insert(key, key);
                        if i % 3 == 2 {
                            if let Some(e) = q.delete_min() {
                                got.push(e);
                            }
                        }
                    }
                    got
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let mut returned: Vec<Entry<u32, u32>> = deleted.into_iter().flatten().collect();
        while let Some(e) = q.delete_min() {
            returned.push(e);
        }
        // Values rode along with their keys.
        for e in &returned {
            prop_assert_eq!(e.key, e.value);
        }
        let mut got: Vec<u32> = returned.iter().map(|e| e.key).collect();
        got.sort_unstable();
        let mut expect = keys.clone();
        expect.sort_unstable();
        prop_assert_eq!(got, expect, "multiset in ≠ multiset out");

        // Front accounting matches: every request was coalesced into
        // some issued batch.
        let snap = q.stats().snapshot();
        prop_assert_eq!(snap.items_inserted, keys.len() as u64);
        prop_assert!(snap.inserts <= snap.items_inserted);
        prop_assert_eq!(snap.batches_recorded(), snap.inserts + snap.delete_mins);
    }
}

/// Quiescence: a lone request must not wait for peers that are not
/// coming. The submitter itself becomes the combiner and issues a
/// 1-wide batch immediately — observable as one issued batch per
/// request and a window that stays collapsed.
#[test]
fn solo_requests_complete_without_idle_delay() {
    let q = bgpq_front(64);
    let t0 = std::time::Instant::now();
    for i in 0..100u32 {
        q.insert(i, i);
    }
    for _ in 0..100 {
        q.delete_min().expect("inserted above");
    }
    // Generous bound: 200 uncontended ops are microseconds each; only
    // a front that parks waiting for a fill-up could miss this.
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "solo traffic stalled: {:?}",
        t0.elapsed()
    );
    let snap = q.stats().snapshot();
    assert_eq!(snap.items_inserted, 100);
    assert_eq!(snap.items_deleted, 100);
    assert_eq!(snap.inserts, 100, "each solo insert issued as its own batch");
    assert_eq!(q.window(), 1, "window stays collapsed without load");
    // All 200 issued batches were 1-wide: bucket 0 of a 64-capacity
    // histogram.
    assert_eq!(snap.batch_occupancy[0], 200);
}

/// The front works over the sharded router too, and both report
/// occupancy through the same histogram shape.
#[test]
fn sharded_backend_and_histogram_shape_agree() {
    let sharded = CpuShardedBgpq::<u32, u32>::new(ShardedOptions::with_capacity_for(2, 1, 8, 512));
    let q = Combiner::wrap(sharded);
    std::thread::scope(|s| {
        for t in 0..3u32 {
            let q = &q;
            s.spawn(move || {
                for i in 0..50 {
                    q.insert(t * 100 + i, 0);
                }
            });
        }
    });
    let mut n = 0;
    while q.delete_min().is_some() {
        n += 1;
    }
    assert_eq!(n, 150);

    let front = q.stats().snapshot();
    let router = q.inner().inner().merged_stats().snapshot();
    // Same shape: both histograms have recorded batches, and adding
    // them (the report the bench harness prints) type-checks and sums.
    assert!(front.batches_recorded() > 0, "front recorded no batches");
    assert!(router.batches_recorded() > 0, "router heaps recorded no batches");
    let combined = front + router;
    assert_eq!(combined.batches_recorded(), front.batches_recorded() + router.batches_recorded());
}

/// Backpressure: a front over a tiny queue propagates `Full` to the
/// submitter whose key does not fit, while keys that fit succeed.
#[test]
fn full_backend_rejects_typed_not_wedged() {
    // node_capacity 2, 3 nodes ⇒ at most ~8 keys incl. partial buffer.
    let q = Combiner::wrap(CpuBgpq::<u32, u32>::new(BgpqOptions {
        node_capacity: 2,
        max_nodes: 3,
        ..Default::default()
    }));
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    for i in 0..64u32 {
        match q.try_insert(i, 0) {
            Ok(()) => accepted += 1,
            Err(QueueError::Full { .. }) => rejected += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(accepted >= 6, "a tiny queue still takes some keys (got {accepted})");
    assert!(rejected > 0, "64 keys cannot fit in 3 nodes of 2");
    // The front survives backpressure: deletes drain what fit.
    let mut drained = 0;
    while q.try_delete_min().expect("healthy front").is_some() {
        drained += 1;
    }
    assert_eq!(drained, accepted);
}

// ---------------------------------------------------------------------
// Simulator: same engine, polling agents.
// ---------------------------------------------------------------------

/// Combining backend for a simulated GPU block: batched calls go to
/// the shared sim heap, waiting yields virtual time through the
/// platform's backoff (a sim agent must never block on an OS
/// primitive), and the lane is the block id.
struct SimBackend<'a> {
    q: &'a Bgpq<u32, u32, SimPlatform>,
    w: &'a mut SimWorker,
    lane: usize,
}

impl CombineBackend<u32, u32> for SimBackend<'_> {
    const CAN_PARK: bool = false;

    fn batch_capacity(&self) -> usize {
        self.q.node_capacity()
    }

    fn try_insert_batch(&mut self, items: &[Entry<u32, u32>]) -> Result<(), QueueError> {
        self.q.try_insert(self.w, items)
    }

    fn try_delete_min_batch(
        &mut self,
        out: &mut Vec<Entry<u32, u32>>,
        count: usize,
    ) -> Result<usize, QueueError> {
        self.q.try_delete_min(self.w, out, count)
    }

    fn relax(&mut self) {
        self.q.platform().backoff(self.w);
    }

    fn lane(&self) -> usize {
        self.lane
    }
}

type SimFront = (Arc<Bgpq<u32, u32, SimPlatform>>, CombineShared<u32, u32>);

/// Conservation through the combining front on the simulator: every
/// block submits single-op traffic, polling for completion in virtual
/// time; the multiset must balance exactly.
#[test]
fn sim_agents_coalesce_and_conserve() {
    let cfg = GpuConfig::new(4, 32).with_fuzz_seed(13);
    let opts = BgpqOptions { node_capacity: 4, max_nodes: 1 << 10, ..Default::default() };
    let per_block = 60u32;

    let (_report, shared) = launch(
        cfg,
        |sched| {
            let p = SimPlatform::new(sched, opts.max_nodes + 1, cfg.cost, cfg.block_dim);
            let q = Arc::new(Bgpq::with_platform(p, opts));
            let front = CombineShared::new(q.node_capacity(), CombinerOptions::default());
            let st: SimFront = (q, front);
            st
        },
        |ctx, st: &SimFront| {
            let lane = ctx.block_id();
            let mut backend = SimBackend { q: &st.0, w: ctx.worker(), lane };
            let bid = lane as u32;
            let mut kept = 0u32;
            for i in 0..per_block {
                let key = bid * 10_000 + i;
                st.1.submit(&mut backend, Op::Insert(Entry::new(key, key))).expect("healthy sim");
                // Delete every third so coalesced deletes interleave
                // with coalesced inserts across blocks.
                if i % 3 == 2 {
                    if let Some(e) = st.1.submit(&mut backend, Op::DeleteMin).expect("healthy sim")
                    {
                        assert_eq!(e.key, e.value, "payload must travel with its key");
                        kept += 1;
                    }
                }
            }
            // Stash this block's delete count in virtual time order by
            // advancing; the balance assertions below use stats instead.
            let _ = kept;
        },
    );

    let (q, front) = shared;
    let snap = front.stats().snapshot();
    let total = 4 * per_block as u64;
    assert_eq!(snap.items_inserted, total, "every submitted insert was issued");
    assert_eq!(snap.items_deleted + q.len() as u64, total, "conservation across the front");
    assert!(!front.is_poisoned());
    assert!(snap.batches_recorded() >= snap.inserts + snap.delete_mins);
}
