//! End-to-end application runs across every queue design: the paper's
//! §6.5 workloads must produce identical *answers* regardless of the
//! priority queue driving them.

use apps::{
    solve_astar, solve_astar_sequential, solve_knapsack, solve_knapsack_sequential, AstarNode,
    KsNode,
};
use baseline_heaps::{CoarseLockPq, FineHeapPq};
use bgpq::{BgpqOptions, CpuBgpq};
use pq_api::{BatchPriorityQueue, ItemwiseBatch};
use skiplist_pq::{LindenJonssonPq, SprayListPq};
use workloads::{Correlation, Grid, GridSpec, KnapsackInstance, KnapsackSpec};

type NamedQueues<V> = Vec<(&'static str, Box<dyn BatchPriorityQueue<u64, V>>)>;

fn queues<V: pq_api::ValueType>(batch: usize) -> NamedQueues<V> {
    vec![
        ("coarse", Box::new(ItemwiseBatch::new(CoarseLockPq::<u64, V>::new(), batch))),
        ("fine", Box::new(ItemwiseBatch::new(FineHeapPq::<u64, V>::new(1 << 18), batch))),
        ("ljsl", Box::new(ItemwiseBatch::new(LindenJonssonPq::<u64, V>::new(16), batch))),
        ("spray", Box::new(ItemwiseBatch::new(SprayListPq::<u64, V>::new(4, 16), batch))),
        (
            "bgpq",
            Box::new(CpuBgpq::<u64, V>::new(BgpqOptions {
                node_capacity: batch,
                max_nodes: 1 << 14,
                ..Default::default()
            })),
        ),
    ]
}

#[test]
fn knapsack_same_optimum_on_every_queue() {
    for (items, corr, seed) in [
        (40usize, Correlation::Uncorrelated, 1u64),
        (36, Correlation::Weak, 2),
        (30, Correlation::Strong, 3),
    ] {
        let inst = KnapsackInstance::generate(KnapsackSpec::new(items, corr, seed));
        let expect = solve_knapsack_sequential(&inst).best_profit;
        assert_eq!(expect, inst.optimum_dp(), "reference must be exact");
        for (name, q) in queues::<KsNode>(32) {
            let got = solve_knapsack(&inst, q.as_ref(), 4);
            assert_eq!(got.best_profit, expect, "{name} on {} items ({corr:?})", items);
            assert!(q.is_empty(), "{name}: queue must drain");
        }
    }
}

#[test]
fn astar_same_cost_on_every_queue() {
    for (side, rate, seed) in [(48usize, 0.10, 1u64), (48, 0.20, 2), (64, 0.20, 3)] {
        let grid = Grid::generate(GridSpec::new(side, rate, seed));
        let expect = solve_astar_sequential(&grid).cost;
        assert!(expect.is_some());
        for (name, q) in queues::<AstarNode>(32) {
            let got = solve_astar(&grid, q.as_ref(), 4);
            assert_eq!(got.cost, expect, "{name} on {side}x{side} rate {rate}");
        }
    }
}

#[test]
fn knapsack_budget_stops_early_but_stays_sound() {
    let inst = KnapsackInstance::generate(KnapsackSpec::new(80, Correlation::Strong, 7));
    let q: CpuBgpq<u64, KsNode> =
        CpuBgpq::new(BgpqOptions { node_capacity: 32, max_nodes: 1 << 14, ..Default::default() });
    let r = apps::solve_knapsack_budgeted(&inst, &q, 4, Some(2_000));
    // The incumbent is always a feasible solution's profit: never above
    // the exact optimum.
    let opt = inst.optimum_dp();
    assert!(r.best_profit <= opt, "incumbent {} above optimum {}", r.best_profit, opt);
    assert!(r.best_profit > 0, "budgeted run should still find something");
}
