//! Fault-driven collaboration properties.
//!
//! * A worker stalled mid-insert-heapify (holding an interior node lock,
//!   root released) must never delay an unrelated root-served DELETEMIN:
//!   the paper's hand-over-hand locking keeps the root free once the
//!   inserter has descended past it.
//! * The TARGET/MARKED protocol survives a stall injected at its most
//!   delicate point — after the insert linearized but before the target
//!   deposit — and the delete that catches the in-flight node completes
//!   by delegation, witnessed by the `MarkedSpin` injection point.
//! * Across fuzzed simulator schedules the collaboration path is not a
//!   rare fluke: seeds collectively force it hundreds of times, all
//!   linearizable.

use bgpq::{check_history, Bgpq, BgpqOptions, CpuBgpq};
use bgpq_runtime::{CpuPlatform, FaultAction, FaultPlan, InjectionPoint, SimPlatform};
use gpu_sim::{launch, GpuConfig};
use pq_api::{Entry, QueueError};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Build a k-capacity queue, preload three full batches so the heap has
/// nodes {root, 2, 3}, and return it. The next full-batch insert gets
/// `tar = 4`, whose heapify path (root → 2 → 4) fires `MidInsertHeapify`
/// hit 3 holding the root and hit 4 holding only node 2 — by then the
/// insert has linearized and the root lock is free.
fn preloaded(k: usize, plan: Arc<FaultPlan>, watchdog: Duration) -> CpuBgpq<u32, u32> {
    let opts = BgpqOptions { node_capacity: k, max_nodes: 64, ..Default::default() };
    let platform = CpuPlatform::new(opts.max_nodes + 1).with_watchdog(watchdog).with_faults(plan);
    let q = CpuBgpq::on_platform(platform, opts).with_history();
    for b in 0..3u32 {
        let batch: Vec<Entry<u32, u32>> =
            (0..k as u32).map(|i| Entry::new((b + 1) * 100 + i, 0)).collect();
        q.try_insert_batch(&batch).unwrap();
    }
    q
}

/// Spin until the stalled inserter has reached `MidInsertHeapify` hit 4
/// (the stall itself); the hit counter is bumped as the injection fires,
/// so from here on the inserter holds only node 2.
fn await_stall(plan: &FaultPlan) {
    let t0 = Instant::now();
    while plan.hits(InjectionPoint::MidInsertHeapify) < 4 {
        assert!(t0.elapsed() < Duration::from_secs(5), "inserter never reached the stall");
        std::thread::yield_now();
    }
}

#[test]
fn stall_after_linearization_delegates_refill_to_inserter() {
    // k = 2: a count-2 delete drains the whole root and must refill from
    // tar = heap_size = 4 — exactly the node the stalled insert owns in
    // TARGET state. The delete marks it and waits; the resumed inserter
    // deposits its keys straight into the root (MARKED branch).
    let plan = Arc::new(
        FaultPlan::new()
            .with_rule(InjectionPoint::MidInsertHeapify, 4, FaultAction::Stall { units: 250_000 })
            .with_rule(InjectionPoint::MarkedSpin, 1, FaultAction::Delay { units: 1 }),
    );
    let q = preloaded(2, plan.clone(), Duration::from_secs(2));

    std::thread::scope(|s| {
        let inserter = s.spawn(|| {
            q.try_insert_batch(&[Entry::new(400, 0), Entry::new(401, 0)]).unwrap();
        });
        await_stall(&plan);

        let mut out = Vec::new();
        let got = q.try_delete_min_batch(&mut out, 2).expect("delegated delete must succeed");
        assert_eq!(got, 2);
        assert_eq!(out.iter().map(|e| e.key).collect::<Vec<_>>(), vec![100, 101]);
        inserter.join().unwrap();
    });

    let snap = q.inner().stats().snapshot();
    assert!(snap.collaborations >= 1, "delete must have delegated via TARGET/MARKED");
    assert!(
        plan.hits(InjectionPoint::MarkedSpin) >= 1,
        "the waiting delete must have spun through the MarkedSpin injection point"
    );
    assert_eq!(snap.poison_events, 0);

    // Aftermath: everything not deleted is still there, in order.
    let mut rest = Vec::new();
    while q.try_delete_min_batch(&mut rest, 2).unwrap() > 0 {}
    let mut keys: Vec<u32> = rest.iter().map(|e| e.key).collect();
    keys.sort_unstable();
    assert_eq!(keys, vec![200, 201, 300, 301, 400, 401]);
    if let Some(v) = check_history(&q.inner().take_history()) {
        panic!("history violation at seq {}: {}", v.seq, v.detail);
    }
    q.inner().check_invariants();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Root-served deletes (count < root_len) touch only the root lock,
    /// so a stalled inserter parked on an interior node must not delay
    /// them anywhere near the watchdog bound, let alone the stall length.
    #[test]
    fn stalled_inserter_never_blocks_unrelated_delete(count in 1usize..8, salt in 0u32..1000) {
        let k = 8;
        let plan = Arc::new(FaultPlan::new().with_rule(
            InjectionPoint::MidInsertHeapify,
            4,
            FaultAction::Stall { units: 300_000 },
        ));
        let q = preloaded(k, plan.clone(), Duration::from_millis(100));

        std::thread::scope(|s| {
            let inserter = s.spawn(|| {
                let batch: Vec<Entry<u32, u32>> =
                    (0..k as u32).map(|i| Entry::new(400 + salt + i, 0)).collect();
                q.try_insert_batch(&batch).unwrap();
            });
            await_stall(&plan);

            let mut out = Vec::new();
            let t0 = Instant::now();
            let got = q.try_delete_min_batch(&mut out, count);
            let elapsed = t0.elapsed();
            prop_assert!(
                matches!(got, Ok(n) if n == count),
                "root-served delete failed: {got:?}"
            );
            prop_assert!(
                elapsed < Duration::from_millis(150),
                "unrelated delete took {elapsed:?} during a 300 ms stall"
            );
            inserter.join().unwrap();
            Ok(())
        })?;

        // Conservation: 4 batches went in, `count` keys came out.
        let mut rest = Vec::new();
        while q.try_delete_min_batch(&mut rest, k).unwrap() > 0 {}
        prop_assert_eq!(rest.len(), 4 * k - count);
        if let Some(v) = check_history(&q.inner().take_history()) {
            return Err(TestCaseError::fail(format!(
                "history violation at seq {}: {}",
                v.seq, v.detail
            )));
        }
        q.inner().check_invariants();
    }
}

/// Fuzzed simulator schedules force the TARGET/MARKED path en masse:
/// k = 1 makes every insert heapify to a TARGET node and every delete
/// refill from the youngest node, so across a handful of seeds the
/// collaboration count reaches triple digits — every run linearizable,
/// with a benign `MarkedSpin` delay injected to wobble the wait loop.
#[test]
fn sim_seed_sweep_forces_mass_collaboration() {
    type SimQueue = Arc<Bgpq<u32, u32, SimPlatform>>;
    let mut total = 0u64;
    for seed in 0..16u64 {
        let cfg = GpuConfig::new(8, 32).with_fuzz_seed(seed);
        let opts = BgpqOptions { node_capacity: 1, max_nodes: 8192, ..Default::default() };
        let plan = Arc::new(FaultPlan::new().with_rule(
            InjectionPoint::MarkedSpin,
            1,
            FaultAction::Delay { units: 3 },
        ));
        let (_report, q) = launch(
            cfg,
            |sched| -> SimQueue {
                let p = SimPlatform::new(sched, opts.max_nodes + 1, cfg.cost, cfg.block_dim)
                    .with_faults(plan.clone());
                Arc::new(Bgpq::with_platform(p, opts).with_history())
            },
            |ctx, q: &SimQueue| {
                let bid = ctx.block_id() as u32;
                let mut out = Vec::new();
                for i in 0..60u32 {
                    q.try_insert(ctx.worker(), &[Entry::new(i * 8 + bid, 0)]).unwrap();
                    out.clear();
                    q.try_delete_min(ctx.worker(), &mut out, 1).unwrap();
                }
            },
        );
        let snap = q.stats().snapshot();
        total += snap.collaborations;
        assert_eq!(snap.poison_events, 0, "seed {seed}: benign delay must not poison");
        if let Some(v) = check_history(&q.take_history()) {
            panic!("seed {seed}: history violation at seq {}: {}", v.seq, v.detail);
        }
        q.check_invariants();
    }
    eprintln!("total collaborations across seeds: {total}");
    assert!(total >= 100, "expected ≥ 100 collaborations across seeds, got {total}");
}

// The drills above stall *after* the linearization point; this one
// stalls *before* it (hit 3 holds the root) and checks the other side of
// the contract: a concurrent delete cleanly times out against the
// watchdog with `LockTimeout` — a retryable error, not poison.
#[test]
fn stall_before_linearization_times_out_cleanly() {
    let plan = Arc::new(FaultPlan::new().with_rule(
        InjectionPoint::MidInsertHeapify,
        3,
        FaultAction::Stall { units: 250_000 },
    ));
    let q = preloaded(2, plan.clone(), Duration::from_millis(60));

    std::thread::scope(|s| {
        let inserter = s.spawn(|| {
            q.try_insert_batch(&[Entry::new(400, 0), Entry::new(401, 0)]).unwrap();
        });
        let t0 = Instant::now();
        while plan.hits(InjectionPoint::MidInsertHeapify) < 3 {
            assert!(t0.elapsed() < Duration::from_secs(5));
            std::thread::yield_now();
        }

        let mut out = Vec::new();
        let r = q.try_delete_min_batch(&mut out, 1);
        assert!(
            matches!(r, Err(QueueError::LockTimeout { .. })),
            "delete against a stalled root holder must time out cleanly, got {r:?}"
        );
        assert!(out.is_empty(), "failed delete must not emit keys");
        inserter.join().unwrap();
    });

    assert!(!q.inner().is_poisoned(), "a timeout is not a failure of the queue itself");
    assert!(q.inner().stats().snapshot().lock_timeouts >= 1);

    // The stalled insert eventually completed; nothing was lost.
    let mut rest = Vec::new();
    while q.try_delete_min_batch(&mut rest, 2).unwrap() > 0 {}
    assert_eq!(rest.len(), 8);
    if let Some(v) = check_history(&q.inner().take_history()) {
        panic!("history violation at seq {}: {}", v.seq, v.detail);
    }
    q.inner().check_invariants();
}
