//! Schedule exploration + linearizability model checking (bgpq-explore).
//!
//! Exhaustively enumerates bounded-preemption schedules of small
//! configurations on the deterministic simulator, checks every run
//! against the linearizability / conservation / collaboration-protocol
//! oracles, and verifies the full falsification loop: a deliberately
//! re-introduced §4.3 protocol bug is caught, shrunk to a minimal
//! `.sched` counterexample, and replayed bit-for-bit.

use bgpq::Mutation;
use bgpq_explore::{
    explore, install_quiet_panic_hook, random_walks, replay, run_schedule, shrink, ExploreConfig,
    PrefixStrategy, SchedFile, WorkloadSpec,
};
use bgpq_runtime::{FaultAction, FaultRule, InjectionPoint};
use std::sync::Arc;

/// Exhaustive budget-1 exploration of the key-stealing mix is clean at
/// both tested node capacities. (Budget 2 — the bound the injected bug
/// needs — runs under `--ignored` in CI's explore-smoke job.)
#[test]
fn exhaustive_budget_one_key_steal_mix_is_clean() {
    for k in [4usize, 8] {
        let spec = WorkloadSpec::key_steal_mix(k);
        let report = explore(
            &spec,
            &ExploreConfig { preemption_budget: 1, max_runs: 0, ..Default::default() },
        );
        assert!(report.exhausted, "k={k}: bounded tree must be fully enumerated");
        assert!(
            report.counterexample.is_none(),
            "k={k}: unexpected violation: {:?}",
            report.counterexample
        );
        assert!(report.runs > 1, "k={k}: contention points must exist to branch on");
    }
}

/// The full preemption-bound-2 tree of the 2-block k=4 mix (ISSUE 4
/// acceptance bar). ~1.3k schedules; ignored in the default run,
/// executed by CI's explore-smoke job.
#[test]
#[ignore = "exhaustive budget-2 tree (~8s); run by CI explore-smoke"]
fn exhaustive_budget_two_key_steal_mix_is_clean() {
    let spec = WorkloadSpec::key_steal_mix(4);
    let report =
        explore(&spec, &ExploreConfig { preemption_budget: 2, max_runs: 0, ..Default::default() });
    assert!(report.exhausted);
    assert!(report.counterexample.is_none(), "{:?}", report.counterexample);
}

/// The whole falsification loop on a deliberately re-introduced
/// ordering bug: `MarkedHandoffEarlyAvail` publishes the root as
/// `AVAIL` *before* writing the stolen keys, so a DELETEMIN spinning on
/// the MARKED handshake can read a stale (shorter) root and
/// under-return. Exploration must find it, shrinking must get the
/// counterexample under 20 scheduling overrides, and the serialized
/// `.sched` artifact must replay the violation bit-for-bit.
#[test]
fn marked_handoff_mutation_is_caught_shrunk_and_replayable() {
    let spec = WorkloadSpec::key_steal_mix(4).with_mutation(Mutation::MarkedHandoffEarlyAvail);

    let report =
        explore(&spec, &ExploreConfig { preemption_budget: 2, max_runs: 0, ..Default::default() });
    let ce = report.counterexample.expect("the injected protocol bug must be caught");
    assert!(
        matches!(
            ce.violation,
            bgpq_explore::Violation::History(_) | bgpq_explore::Violation::Conservation(_)
        ),
        "expected a result-level violation, got {:?}",
        ce.violation
    );

    let (min, _replays) = shrink(&spec, &ce);
    assert!(
        min.overrides.len() <= 20,
        "counterexample must shrink to <= 20 scheduling decisions, got {}",
        min.overrides.len()
    );

    // Serialize, re-parse, and replay the artifact twice: identical
    // decision logs, histories, and the same violation.
    let text = SchedFile { spec: spec.clone(), overrides: min.overrides.clone() }.to_string();
    let parsed = SchedFile::parse(&text).expect("artifact parses back");
    assert_eq!(parsed.overrides, min.overrides);
    let a = replay(&parsed.spec, &parsed.overrides);
    let b = replay(&parsed.spec, &parsed.overrides);
    assert_eq!(a.violation, Some(min.violation.clone()), "replay reproduces the violation");
    assert_eq!(a.violation, b.violation);
    assert_eq!(a.decisions, b.decisions, "replay is bit-for-bit deterministic");
    assert_eq!(a.events, b.events);
    assert_eq!(a.protocol, b.protocol);

    // And the fixed protocol order passes the very same schedule.
    let fixed = replay(&WorkloadSpec::key_steal_mix(4), &min.overrides);
    assert_eq!(fixed.violation, None, "{:?}", fixed.violation);
}

/// Budget 1 cannot reach the two-window interleaving the bug needs —
/// evidence the preemption bound is measuring real schedule depth.
#[test]
fn mutation_needs_more_than_one_preemption() {
    let spec = WorkloadSpec::key_steal_mix(4).with_mutation(Mutation::MarkedHandoffEarlyAvail);
    let report =
        explore(&spec, &ExploreConfig { preemption_budget: 1, max_runs: 0, ..Default::default() });
    assert!(report.exhausted);
    assert!(report.counterexample.is_none());
}

/// Bounded random checking of configurations too large to enumerate:
/// 3-block pseudo-random insert/delete mixes at k=8.
#[test]
fn random_walks_on_generated_mixes_are_clean() {
    for seed in [11u64, 23] {
        let spec = WorkloadSpec::generated(seed, 3, 8, 6);
        let report = random_walks(&spec, 25, seed, 70);
        assert_eq!(report.runs, 25);
        assert!(report.counterexample.is_none(), "seed {seed}: {:?}", report.counterexample);
    }
}

/// Fault-plan composition rides the same harness: schedules explored
/// under an injected mid-heapify crash must still conserve keys and
/// keep the collaboration protocol legal on the truncated histories.
#[test]
fn exploration_under_injected_crash_keeps_conservation() {
    install_quiet_panic_hook();
    let spec = WorkloadSpec::key_steal_mix(4).with_faults(vec![FaultRule {
        point: InjectionPoint::MidInsertHeapify,
        nth: 2,
        action: FaultAction::Panic,
    }]);
    let report =
        explore(&spec, &ExploreConfig { preemption_budget: 1, max_runs: 0, ..Default::default() });
    assert!(report.exhausted);
    assert!(report.counterexample.is_none(), "{:?}", report.counterexample);
    // The crash actually fires on the default schedule.
    let out = run_schedule(&spec, Arc::new(PrefixStrategy { prefix: Vec::new() }));
    assert!(out.panic.is_some(), "planned crash must fire");
    assert_eq!(out.violation, None, "{:?}", out.violation);
}

/// Stall faults exercise the watchdog/poison path under exploration:
/// truncated histories still linearize.
#[test]
fn exploration_under_stall_faults_is_clean() {
    install_quiet_panic_hook();
    let spec = WorkloadSpec::key_steal_mix(4).with_faults(vec![FaultRule {
        point: InjectionPoint::PostLockAcquire,
        nth: 3,
        action: FaultAction::Delay { units: 200 },
    }]);
    let report =
        explore(&spec, &ExploreConfig { preemption_budget: 1, max_runs: 0, ..Default::default() });
    assert!(report.exhausted);
    assert!(report.counterexample.is_none(), "{:?}", report.counterexample);
}
