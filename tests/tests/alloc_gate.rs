//! The zero-allocation gate: after warmup, steady-state queue
//! operations must hit the global allocator exactly **zero** times on
//! both platforms.
//!
//! This is the enforcement side of the per-worker `OpScratch` arena
//! (`bgpq::OpScratch`): INSERT staging, `SORT_SPLIT` merge scratch and
//! the batch buffers all live in the worker's scratch slot, so once a
//! worker has served one operation of a given shape, subsequent
//! operations reuse the warm buffers. A counting global allocator makes
//! any regression (a stray `Vec::with_capacity` on the hot path, a
//! `resize` that zero-fills through a fresh allocation) a hard test
//! failure instead of a silent perf cliff.
//!
//! Both gates run inside one `#[test]` so no concurrent test-harness
//! activity can allocate inside a measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use bgpq::{Bgpq, BgpqOptions, CpuBgpq};
use bgpq_runtime::SimPlatform;
use gpu_sim::{launch, GpuConfig};
use pq_api::{BatchPriorityQueue, Entry};

/// Wraps the system allocator; counts `alloc`/`realloc` calls while the
/// gate flag is raised. Deallocations are free to happen (dropping a
/// warm buffer is not a hot-path cost), but none should either.
struct CountingAlloc;

static GATE: AtomicUsize = AtomicUsize::new(0);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if GATE.load(Ordering::Relaxed) != 0 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if GATE.load(Ordering::Relaxed) != 0 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn begin_gate() {
    ALLOCS.store(0, Ordering::Relaxed);
    GATE.store(1, Ordering::SeqCst);
}

fn end_gate() -> usize {
    GATE.store(0, Ordering::SeqCst);
    ALLOCS.load(Ordering::Relaxed)
}

const K: usize = 64;
const STEADY_ITERS: usize = 100;

/// Deterministic keys without touching `rand` (whose RNG setup could
/// allocate inside a measurement window).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u32 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 32) as u32
    }
}

/// One steady-state round: refresh the batch keys in place, then let
/// the platform-specific closure insert a full node and delete it back
/// out. Queue size is identical before and after, so the structure
/// neither grows nor shrinks.
fn round(
    rng: &mut XorShift,
    items: &mut [Entry<u32, u32>],
    out: &mut Vec<Entry<u32, u32>>,
    mut ops: impl FnMut(&[Entry<u32, u32>], &mut Vec<Entry<u32, u32>>) -> usize,
) {
    for e in items.iter_mut() {
        let k = rng.next();
        *e = Entry::new(k, k);
    }
    out.clear();
    let got = ops(items, out);
    assert_eq!(got, K, "steady-state round must drain what it inserted");
}

fn cpu_gate() {
    let opts = BgpqOptions { node_capacity: K, max_nodes: 1 << 12, ..Default::default() };
    let q: CpuBgpq<u32, u32> = CpuBgpq::new(opts);
    let mut rng = XorShift(0x9E3779B97F4A7C15);
    let mut items = vec![Entry::new(0u32, 0u32); K];
    let mut out: Vec<Entry<u32, u32>> = Vec::with_capacity(K);

    // Warmup: grow the heap to a few levels, then run mixed rounds so
    // every code path (root absorb, heapify cascade, partial buffer)
    // has touched its scratch at this k.
    for _ in 0..32 {
        for e in items.iter_mut() {
            let k = rng.next();
            *e = Entry::new(k, k);
        }
        q.insert_batch(&items);
    }
    for _ in 0..32 {
        round(&mut rng, &mut items, &mut out, |b, o| {
            q.insert_batch(b);
            q.delete_min_batch(o, K)
        });
    }

    begin_gate();
    for _ in 0..STEADY_ITERS {
        round(&mut rng, &mut items, &mut out, |b, o| {
            q.insert_batch(b);
            q.delete_min_batch(o, K)
        });
    }
    let allocs = end_gate();
    assert_eq!(allocs, 0, "CpuPlatform steady state hit the allocator {allocs} times");
}

/// The CPU gate again over wide entries (`Entry<u32, u64>`, 16 bytes).
/// Entries wider than a single lane word route through the SoA path in
/// `bgpq`'s kernel layer — key lanes split from a value permutation,
/// merged by the dispatched SIMD kernels, payloads gathered afterwards —
/// and that path keeps its own `LaneScratch` buffers inside `OpScratch`.
/// This gate proves those buffers also go quiet after warmup; the narrow
/// gate above cannot see them because 8-byte entries take the scalar
/// route.
fn cpu_gate_wide() {
    let opts = BgpqOptions { node_capacity: K, max_nodes: 1 << 12, ..Default::default() };
    let q: CpuBgpq<u32, u64> = CpuBgpq::new(opts);
    let mut rng = XorShift(0xB7E151628AED2A6B);
    let mut items = vec![Entry::new(0u32, 0u64); K];
    let mut out: Vec<Entry<u32, u64>> = Vec::with_capacity(K);

    let refresh = |rng: &mut XorShift, items: &mut [Entry<u32, u64>]| {
        for e in items.iter_mut() {
            let k = rng.next();
            *e = Entry::new(k, k as u64);
        }
    };
    for _ in 0..32 {
        refresh(&mut rng, &mut items);
        q.insert_batch(&items);
    }
    for _ in 0..32 {
        refresh(&mut rng, &mut items);
        out.clear();
        q.insert_batch(&items);
        assert_eq!(q.delete_min_batch(&mut out, K), K);
    }

    begin_gate();
    for _ in 0..STEADY_ITERS {
        refresh(&mut rng, &mut items);
        out.clear();
        q.insert_batch(&items);
        assert_eq!(q.delete_min_batch(&mut out, K), K);
    }
    let allocs = end_gate();
    assert_eq!(allocs, 0, "wide-entry (SoA) steady state hit the allocator {allocs} times");
}

fn sim_gate() {
    let opts = BgpqOptions { node_capacity: K, max_nodes: 1 << 12, ..Default::default() };
    let gpu = GpuConfig::new(1, 128);
    let opts2 = opts;
    launch(
        gpu,
        |sched| {
            let p = SimPlatform::new(sched, opts2.max_nodes + 1, gpu.cost, gpu.block_dim);
            Bgpq::<u32, u32, _>::with_platform(p, opts2)
        },
        |ctx, q| {
            let mut rng = XorShift(0x6A09E667F3BCC909);
            let mut items = vec![Entry::new(0u32, 0u32); K];
            let mut out: Vec<Entry<u32, u32>> = Vec::with_capacity(K);

            for _ in 0..32 {
                for e in items.iter_mut() {
                    let k = rng.next();
                    *e = Entry::new(k, k);
                }
                q.insert(ctx.worker(), &items);
            }
            for _ in 0..32 {
                round(&mut rng, &mut items, &mut out, |b, o| {
                    q.insert(ctx.worker(), b);
                    q.delete_min(ctx.worker(), o, K)
                });
            }

            begin_gate();
            for _ in 0..STEADY_ITERS {
                round(&mut rng, &mut items, &mut out, |b, o| {
                    q.insert(ctx.worker(), b);
                    q.delete_min(ctx.worker(), o, K)
                });
            }
            let allocs = end_gate();
            assert_eq!(allocs, 0, "SimPlatform steady state hit the allocator {allocs} times");
        },
    );
}

/// Both platform gates in one test body: the test harness runs tests on
/// concurrent threads, and a harness allocation landing inside another
/// test's measurement window would be a false positive.
#[test]
fn steady_state_ops_do_not_allocate() {
    cpu_gate();
    cpu_gate_wide();
    sim_gate();
}
