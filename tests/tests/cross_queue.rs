//! Cross-crate equivalence: every priority-queue implementation in the
//! workspace must agree on the same workloads.

use baseline_heaps::{CoarseLockPq, FineHeapPq};
use bgpq::{BgpqOptions, CpuBgpq};
use bgpq_shard::{CpuShardedBgpq, ShardedOptions};
use cbpq::CbpqPq;
use pq_api::{BatchPriorityQueue, Entry, ItemwiseBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skiplist_pq::{LindenJonssonPq, SprayListPq};
use workloads::{generate_keys, KeyDist};

type NamedQueues = Vec<(&'static str, Box<dyn BatchPriorityQueue<u32, u32>>)>;

fn all_queues(batch: usize) -> NamedQueues {
    vec![
        ("coarse", Box::new(ItemwiseBatch::new(CoarseLockPq::<u32, u32>::new(), batch))),
        ("fine", Box::new(ItemwiseBatch::new(FineHeapPq::<u32, u32>::new(1 << 18), batch))),
        ("ljsl", Box::new(ItemwiseBatch::new(LindenJonssonPq::<u32, u32>::new(32), batch))),
        ("cbpq", Box::new(ItemwiseBatch::new(CbpqPq::<u32, u32>::new(64), batch))),
        (
            "bgpq",
            Box::new(CpuBgpq::<u32, u32>::new(BgpqOptions {
                node_capacity: batch,
                max_nodes: 1 << 12,
                ..Default::default()
            })),
        ),
    ]
}

/// Strict queues must produce the *identical* sorted key stream.
#[test]
fn strict_queues_agree_on_sorted_drain() {
    for dist in KeyDist::ALL {
        let keys = generate_keys(20_000, dist, 99);
        let mut reference: Option<Vec<u32>> = None;
        for (name, q) in all_queues(64) {
            let mut items = Vec::with_capacity(64);
            for chunk in keys.chunks(64) {
                items.clear();
                items.extend(chunk.iter().map(|&k| Entry::new(k, 0)));
                q.insert_batch(&items);
            }
            let mut drained = Vec::new();
            while q.delete_min_batch(&mut drained, 64) > 0 {}
            let got: Vec<u32> = drained.iter().map(|e| e.key).collect();
            match &reference {
                None => {
                    assert!(got.windows(2).all(|w| w[0] <= w[1]), "{name}: unsorted drain");
                    reference = Some(got);
                }
                Some(r) => assert_eq!(&got, r, "{name} disagrees ({dist:?})"),
            }
        }
    }
}

fn sharded(batch: usize) -> CpuShardedBgpq<u32, u32> {
    CpuShardedBgpq::new(ShardedOptions::new(
        4,
        2,
        BgpqOptions { node_capacity: batch, max_nodes: 1 << 12, ..Default::default() },
    ))
}

/// The relaxed sharded front must conserve the multiset: a full drain
/// returns exactly the keys a `BinaryHeap` reference would, just not
/// necessarily in one globally sorted stream.
#[test]
fn sharded_bgpq_conserves_multiset_vs_binary_heap() {
    let keys = generate_keys(20_000, KeyDist::Random, 17);
    let q = sharded(64);
    let mut items = Vec::with_capacity(64);
    for chunk in keys.chunks(64) {
        items.clear();
        items.extend(chunk.iter().map(|&k| Entry::new(k, 0)));
        q.insert_batch(&items);
    }
    assert_eq!(q.len(), keys.len());
    let mut drained = Vec::new();
    while q.delete_min_batch(&mut drained, 64) > 0 {}
    assert!(q.is_empty(), "exact sweep must certify emptiness at quiescence");
    let mut got: Vec<u32> = drained.iter().map(|e| e.key).collect();
    got.sort_unstable();
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<u32>> =
        keys.iter().map(|&k| std::cmp::Reverse(k)).collect();
    let mut expect = Vec::with_capacity(keys.len());
    while let Some(std::cmp::Reverse(k)) = heap.pop() {
        expect.push(k);
    }
    assert_eq!(got, expect);
}

/// The relaxed SprayList must conserve the multiset even though its
/// drain order is only approximately sorted.
#[test]
fn spraylist_conserves_multiset() {
    let keys = generate_keys(10_000, KeyDist::Random, 5);
    let q = ItemwiseBatch::new(SprayListPq::<u32, u32>::new(4, 32), 64);
    let mut items = Vec::new();
    for chunk in keys.chunks(64) {
        items.clear();
        items.extend(chunk.iter().map(|&k| Entry::new(k, 0)));
        q.insert_batch(&items);
    }
    let mut drained = Vec::new();
    while q.delete_min_batch(&mut drained, 64) > 0 {}
    let mut got: Vec<u32> = drained.iter().map(|e| e.key).collect();
    got.sort_unstable();
    let mut expect = keys.clone();
    expect.sort_unstable();
    assert_eq!(got, expect);
}

/// Concurrent mixed workload: all strict queues end with the same key
/// multiset (deleted ∪ remaining = inserted).
#[test]
fn concurrent_mixed_conservation_everywhere() {
    let mut queues = all_queues(16);
    queues.push(("sharded", Box::new(sharded(16))));
    for (name, q) in queues {
        let inserted = std::sync::atomic::AtomicU64::new(0);
        let deleted = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                let inserted = &inserted;
                let deleted = &deleted;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t);
                    let mut out = Vec::new();
                    for _ in 0..200 {
                        if rng.gen_bool(0.6) {
                            let n = rng.gen_range(1..=16usize);
                            let items: Vec<Entry<u32, u32>> =
                                (0..n).map(|_| Entry::new(rng.gen_range(0..1 << 30), 0)).collect();
                            q.insert_batch(&items);
                            inserted.fetch_add(n as u64, std::sync::atomic::Ordering::Relaxed);
                        } else {
                            out.clear();
                            let got = q.delete_min_batch(&mut out, rng.gen_range(1..=16));
                            deleted.fetch_add(got as u64, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let ins = inserted.load(std::sync::atomic::Ordering::Relaxed);
        let del = deleted.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(q.len() as u64 + del, ins, "{name}: keys lost or duplicated");
    }
}
