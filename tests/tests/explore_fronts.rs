//! Sleep-set partial-order reduction + multi-queue front exploration
//! (bgpq-explore over bgpq-shard and bgpq-combine).
//!
//! Three claims are on trial here:
//!
//! 1. **Reduction soundness, differentially.** Sleep sets under a
//!    preemption bound are a heuristic (DESIGN §5.1): the reduced DFS
//!    must reach the *same oracle verdict* as the unreduced DFS on
//!    every single-queue spec while exploring no more runs.
//! 2. **Cross-front falsification.** The sharded router and the
//!    flat-combining front run under the same oracles, and a
//!    deliberately re-introduced bug in each front is caught at a
//!    minimal preemption budget, shrunk to a tiny `.sched`, and
//!    replayed bit-for-bit.
//! 3. **Shrinking is a function.** Greedy override deletion is
//!    deterministic and idempotent, proptested across random
//!    inflations of known-failing schedules.

use bgpq::Mutation;
use bgpq_explore::{
    explore, install_quiet_panic_hook, overrides_of, replay, shrink, Counterexample, ExploreConfig,
    ExploreReport, SchedFile, Violation, WorkloadSpec,
};
use proptest::prelude::*;
use std::sync::OnceLock;

fn run(spec: &WorkloadSpec, budget: usize, sleep_sets: bool) -> ExploreReport {
    explore(
        spec,
        &ExploreConfig { preemption_budget: budget, max_runs: 0, use_sleep_sets: sleep_sets },
    )
}

/// Differential soundness of the reduction on every single-queue spec
/// at budget 2: identical verdicts, no more runs, and on the specs with
/// real commuting structure strictly fewer runs.
#[test]
fn sleep_sets_match_unreduced_verdicts_on_single_queue_specs() {
    let specs = [
        ("key-steal k=2", WorkloadSpec::key_steal_mix(2)),
        ("generated(11)", WorkloadSpec::generated(11, 2, 4, 4)),
    ];
    for (name, spec) in specs {
        let reduced = run(&spec, 2, true);
        let unreduced = run(&spec, 2, false);
        assert!(reduced.exhausted && unreduced.exhausted, "{name}: both must exhaust");
        assert_eq!(
            reduced.counterexample.is_some(),
            unreduced.counterexample.is_some(),
            "{name}: verdicts must agree"
        );
        assert!(reduced.counterexample.is_none(), "{name}: spec must be clean");
        assert!(
            reduced.runs <= unreduced.runs,
            "{name}: reduction must not explore more ({} > {})",
            reduced.runs,
            unreduced.runs
        );
        assert!(
            reduced.runs < unreduced.runs && reduced.pruned > 0,
            "{name}: commuting decisions exist, so some subtree must be pruned"
        );
        println!(
            "{name}: {} -> {} runs ({} pruned, {:.0}% of the tree)",
            unreduced.runs,
            reduced.runs,
            reduced.pruned,
            100.0 * reduced.runs as f64 / unreduced.runs as f64
        );
    }
}

/// The differential argument on a *buggy* spec: both DFS modes must
/// catch the §4.3 MARKED-handoff mutation at budget 2 — the reduction
/// may not prune the only schedules that expose a real bug.
#[test]
fn sleep_sets_still_catch_the_marked_handoff_mutation() {
    let spec = WorkloadSpec::key_steal_mix(4).with_mutation(Mutation::MarkedHandoffEarlyAvail);
    let reduced = run(&spec, 2, true);
    let unreduced = run(&spec, 2, false);
    for (mode, report) in [("reduced", &reduced), ("unreduced", &unreduced)] {
        let ce = report
            .counterexample
            .as_ref()
            .unwrap_or_else(|| panic!("{mode}: the injected protocol bug must be caught"));
        assert!(
            matches!(ce.violation, Violation::History(_) | Violation::Conservation(_)),
            "{mode}: expected a result-level violation, got {:?}",
            ce.violation
        );
    }
    // No run-count comparison here: both searches stop at their
    // *first* violation, and pruning reorders the walk, so
    // runs-until-first-hit is not a coverage measure. The `<=` claim
    // is asserted on the exhausted (clean) explorations above.
}

/// Full budget-2 differential on the k=4 mix (~2.3k schedules both
/// modes); ignored by default, run by CI's explore-smoke job.
#[test]
#[ignore = "exhaustive budget-2 differential (~20s); run by CI explore-smoke"]
fn sleep_sets_match_unreduced_on_key_steal_k4_budget_two() {
    let spec = WorkloadSpec::key_steal_mix(4);
    let reduced = run(&spec, 2, true);
    let unreduced = run(&spec, 2, false);
    assert!(reduced.exhausted && unreduced.exhausted);
    assert!(reduced.counterexample.is_none() && unreduced.counterexample.is_none());
    assert!(reduced.runs < unreduced.runs, "{} vs {}", reduced.runs, unreduced.runs);
}

/// The sharded front (router + circuit breaker + salvage re-admission
/// + a planned shard crash) explores exhaustively clean at budget 1.
#[test]
fn sharded_front_is_clean_at_budget_one() {
    install_quiet_panic_hook();
    let report = run(&WorkloadSpec::sharded_mix(2), 1, true);
    assert!(report.exhausted);
    assert!(report.counterexample.is_none(), "{:?}", report.counterexample);
    assert!(report.runs > 1 && report.pruned > 0);
}

/// The flat-combining front explores exhaustively clean at budget 2
/// (the budget its mutation needs — see below).
#[test]
fn combined_front_is_clean_at_budget_two() {
    let report = run(&WorkloadSpec::combined_mix(2), 2, true);
    assert!(report.exhausted);
    assert!(report.counterexample.is_none(), "{:?}", report.counterexample);
    assert!(report.runs > 1);
}

/// Shared falsification-loop body for the two front mutations: clean
/// below the minimal budget, caught at it with a front-accounting
/// violation, shrunk to `max_overrides` or fewer, serialized,
/// re-parsed, replayed bit-for-bit, and clean again once the mutation
/// is removed from the very same schedule.
fn assert_front_mutation_caught(
    clean: WorkloadSpec,
    mutation: Mutation,
    minimal_budget: usize,
    max_overrides: usize,
) {
    install_quiet_panic_hook();
    let spec = clean.clone().with_mutation(mutation);
    for below in 0..minimal_budget {
        let report = run(&spec, below, true);
        assert!(report.exhausted);
        assert!(
            report.counterexample.is_none(),
            "budget {below} should be too shallow to reach the bug: {:?}",
            report.counterexample
        );
    }
    let report = run(&spec, minimal_budget, true);
    let ce = report.counterexample.expect("the injected front bug must be caught");
    assert!(
        matches!(ce.violation, Violation::FrontAccounting(_)),
        "only front-level accounting can see an acked-but-never-applied op: {:?}",
        ce.violation
    );

    let (min, _replays) = shrink(&spec, &ce);
    assert!(
        min.overrides.len() <= max_overrides,
        "expected <= {max_overrides} overrides after shrinking, got {}",
        min.overrides.len()
    );

    let text = SchedFile { spec: spec.clone(), overrides: min.overrides.clone() }.to_string();
    let parsed = SchedFile::parse(&text).expect("artifact parses back");
    assert_eq!(parsed.spec, spec);
    assert_eq!(parsed.overrides, min.overrides);
    let a = replay(&parsed.spec, &parsed.overrides);
    let b = replay(&parsed.spec, &parsed.overrides);
    assert_eq!(a.violation, Some(min.violation.clone()), "replay reproduces the violation");
    assert_eq!(a.decisions, b.decisions, "replay is bit-for-bit deterministic");
    assert_eq!(a.events, b.events);

    // The un-mutated front passes the exact failing schedule.
    let fixed = replay(&clean, &min.overrides);
    assert_eq!(fixed.violation, None, "{:?}", fixed.violation);
}

/// Router sweep-rollback bug: a circuit-breaker trip observed mid-sweep
/// makes the mutated router discard keys a shard already handed over.
/// One preemption suffices; the schedule shrinks to two overrides.
#[test]
fn sharded_sweep_mutation_caught_at_budget_one() {
    assert_front_mutation_caught(WorkloadSpec::sharded_mix(2), Mutation::SweepDiscardsOnTrip, 1, 2);
}

/// Combiner delegation bug: the combiner acks a *foreign* insert
/// without issuing it, so the key exists only in front-level
/// accounting. Budgets 0–1 cannot produce a cross-thread combining
/// round; budget 2 catches it and shrinks to two overrides.
#[test]
fn combiner_foreign_insert_mutation_caught_at_budget_two() {
    assert_front_mutation_caught(
        WorkloadSpec::combined_mix(2),
        Mutation::CombinerDropsForeignInsert,
        2,
        2,
    );
}

/// Known-failing (spec, counterexample) bases for the shrinking
/// properties below, computed once: the three mutations caught by the
/// explorer at their minimal budgets.
fn failing_bases() -> &'static Vec<(WorkloadSpec, Counterexample)> {
    static BASES: OnceLock<Vec<(WorkloadSpec, Counterexample)>> = OnceLock::new();
    BASES.get_or_init(|| {
        install_quiet_panic_hook();
        let cases = [
            (WorkloadSpec::sharded_mix(2).with_mutation(Mutation::SweepDiscardsOnTrip), 1),
            (WorkloadSpec::combined_mix(2).with_mutation(Mutation::CombinerDropsForeignInsert), 2),
            (WorkloadSpec::key_steal_mix(4).with_mutation(Mutation::MarkedHandoffEarlyAvail), 2),
        ];
        cases
            .into_iter()
            .map(|(spec, budget)| {
                let ce = run(&spec, budget, true).counterexample.expect("base bug is caught");
                (spec, ce)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Greedy shrinking is deterministic and idempotent: inflate a
    /// known-failing schedule with random (mostly redundant) overrides;
    /// whenever the inflated schedule still fails, shrinking it twice
    /// gives identical results, and shrinking the shrunk schedule is a
    /// fixed point no larger than the input.
    #[test]
    fn shrinking_is_deterministic_and_idempotent(
        base in 0usize..3,
        extra in proptest::collection::vec((0u64..40, 0usize..3), 0..6),
    ) {
        let (spec, ce) = &failing_bases()[base];
        let mut overrides = ce.overrides.clone();
        for (step, agent) in extra {
            if !overrides.iter().any(|&(s, _)| s == step) {
                overrides.push((step, agent));
            }
        }
        overrides.sort_unstable();
        let out = replay(spec, &overrides);
        // Inflation may have steered the run clean; only failing
        // schedules are shrinkable.
        prop_assume!(out.violation.is_some());
        let inflated = Counterexample {
            overrides: overrides_of(&out.decisions),
            violation: out.violation.clone().unwrap(),
            decisions: out.decisions.len(),
        };

        let (min_a, _) = shrink(spec, &inflated);
        let (min_b, _) = shrink(spec, &inflated);
        prop_assert_eq!(&min_a.overrides, &min_b.overrides, "shrinking must be deterministic");
        prop_assert_eq!(&min_a.violation, &min_b.violation);
        prop_assert!(min_a.overrides.len() <= inflated.overrides.len());

        let (min_c, _) = shrink(spec, &min_a);
        prop_assert_eq!(&min_c.overrides, &min_a.overrides, "shrinking must be idempotent");
        prop_assert_eq!(&min_c.violation, &min_a.violation);
    }
}
