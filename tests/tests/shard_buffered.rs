//! The buffered sticky shard front end-to-end: crash drills with
//! parked keys, the documented rank-error bound for buffered pops, and
//! exact emptiness when keys hide in per-worker buffers.
//!
//! The buffered front stages inserts and serves deletes from per-worker
//! buffers (DESIGN.md "Buffered relaxed front"), so three guarantees
//! need their own drills beyond `sharded.rs`:
//!
//! * **No silent loss through buffers** — staged keys whose home shard
//!   crashes re-route to survivors and are accounted in
//!   `QualityStats::buffer_reroutes`; a full drain recovers every key.
//! * **Bounded relaxation** — a buffered pop's rank error is at most
//!   `S - 1` (the serving shard itself never counts: the refill took
//!   its `k` smallest), versus `S - c` for the unbuffered front.
//!   Buffering and stickiness change the *frequency* of sampling, not
//!   the magnitude of the bound.
//! * **Exact emptiness** — `len` and drains observe keys parked in any
//!   worker's buffers, including buffers of threads that exited without
//!   flushing.

use bgpq::BgpqOptions;
use bgpq_runtime::{CpuPlatform, CpuWorker, FaultAction, FaultPlan, InjectionPoint};
use bgpq_shard::{BufferPolicy, CpuShardedBgpq, ShardedBgpq, ShardedOptions};
use pq_api::{Entry, KeyType};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn buffered_router(
    shards: usize,
    sample: usize,
    k: usize,
    policy: BufferPolicy,
) -> ShardedBgpq<u32, u32, CpuPlatform> {
    let queue = BgpqOptions { node_capacity: k, max_nodes: 1 << 10, ..Default::default() };
    let platforms = (0..shards).map(|_| CpuPlatform::new(queue.max_nodes + 1)).collect();
    ShardedBgpq::with_platforms(
        platforms,
        ShardedOptions::new(shards, sample, queue).with_buffering(policy),
    )
}

/// Crash drill: a shard dies while worker buffers hold staged keys for
/// it. The flush must redistribute to survivors — zero silent loss —
/// and when the home shard was already quarantined at flush time the
/// re-routed keys are counted in `buffer_reroutes`.
#[test]
fn crash_with_staged_keys_reroutes_and_loses_nothing() {
    let queue = BgpqOptions { node_capacity: 4, max_nodes: 256, ..Default::default() };
    let plan = Arc::new(FaultPlan::new().with_rule(
        InjectionPoint::MidInsertHeapify,
        1,
        FaultAction::Panic,
    ));
    let platforms: Vec<CpuPlatform> = (0..3)
        .map(|i| {
            let p = CpuPlatform::new(queue.max_nodes + 1);
            if i == 0 {
                p.with_faults(plan.clone())
            } else {
                p
            }
        })
        .collect();
    let policy = BufferPolicy::new().with_insert_capacity(16).with_refill_width(4);
    let q: ShardedBgpq<u32, u32, CpuPlatform> = ShardedBgpq::with_platforms(
        platforms,
        ShardedOptions::new(3, 2, queue).with_buffering(policy),
    );
    let mut w = CpuWorker::new();

    // Seed the survivors so the drained multiset is non-trivial.
    for i in 0..8u32 {
        q.try_insert(&mut w, 1, &[Entry::new(100 + i, 0)]).unwrap();
    }

    // Worker 0 stages keys; its home shard is shard 0.
    let staged: Vec<Entry<u32, u32>> = (0..6u32).map(|i| Entry::new(i, i)).collect();
    q.buffered_try_insert(&mut w, 0, &staged).unwrap();
    assert_eq!(q.buffered_len(), 6);

    // Crash shard 0 out from under the buffer: raw inserts until the
    // injected heapify panic fires and poisons the heap. These keys
    // (900+) all target the doomed shard, so none of them survive into
    // the drain books — staged keys are the ones that must.
    let r = catch_unwind(AssertUnwindSafe(|| {
        for i in 0..32u32 {
            q.shard(0).insert(
                &mut w,
                &[Entry::new(900 + 2 * i, 0), Entry::new(901 + 2 * i, 0)],
            );
        }
    }));
    assert!(r.is_err(), "injected panic must fire");
    assert!(q.shard(0).is_poisoned());

    // Flush while the breaker is still closed: try_insert discovers
    // the poison, quarantines shard 0 and redistributes in-line.
    assert_eq!(q.flush_slot(&mut w, 0).unwrap(), 6);
    assert!(q.is_quarantined(0));
    assert_eq!(q.buffered_len(), 0);

    // Stage more keys for the now-quarantined home shard; this flush
    // takes the pre-quarantined path and must count the re-route.
    let staged2: Vec<Entry<u32, u32>> = (50..54u32).map(|i| Entry::new(i, i)).collect();
    q.buffered_try_insert(&mut w, 0, &staged2).unwrap();
    assert_eq!(q.flush_slot(&mut w, 0).unwrap(), 4);
    assert_eq!(q.quality().buffer_reroutes, 4);

    // Full-drain books: every key that entered through the front is
    // recovered (the two keys of the *crashed raw insert* died with
    // the shard — they never linearized — but nothing staged is lost).
    let mut out = Vec::new();
    q.drain(&mut w, &mut out);
    let mut got: Vec<u32> = out.iter().map(|e| e.key).collect();
    got.sort_unstable();
    let mut expect: Vec<u32> = (0..6u32).chain(50..54).chain(100..108).collect();
    expect.sort_unstable();
    assert_eq!(got, expect, "zero silent key loss through worker buffers");
    assert!(q.is_empty());
    assert_eq!(q.check_invariants(), 0);
}

/// Keys parked by a thread that exited without flushing are still
/// reachable: another worker's delete harvests them, and emptiness is
/// only reported once they are served.
#[test]
fn exited_threads_parked_keys_are_harvested() {
    let policy = BufferPolicy::new().with_insert_capacity(64).with_refill_width(8);
    let q = Arc::new(CpuShardedBgpq::<u32, u32>::new(
        ShardedOptions::new(
            2,
            1,
            BgpqOptions { node_capacity: 8, max_nodes: 256, ..Default::default() },
        )
        .with_buffering(policy),
    ));
    let qc = q.clone();
    std::thread::spawn(move || {
        // Stays below capacity: everything parks in this thread's slot
        // and the thread exits without flushing.
        let items: Vec<Entry<u32, u32>> = (0..20u32).map(|i| Entry::new(i, i)).collect();
        qc.try_insert_batch(&items).unwrap();
    })
    .join()
    .unwrap();
    assert_eq!(q.len(), 20, "parked keys are visible after their owner exited");

    let mut got = Vec::new();
    let mut out = Vec::new();
    while q.try_delete_min_batch(&mut out, 4).unwrap() > 0 {
        got.append(&mut out);
    }
    let mut keys: Vec<u32> = got.iter().map(|e| e.key).collect();
    keys.sort_unstable();
    assert_eq!(keys, (0..20u32).collect::<Vec<_>>());
    assert!(q.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Documented bound (router docs "Buffered mode"): at quiescent
    /// single-consumer replay, a buffered pop's rank error — the number
    /// of shards advertising a smaller root-min than the key served —
    /// is at most `S - 1`, for any stickiness and buffer width. The
    /// unbuffered twin on the identical key stream stays within its
    /// tighter `S - c`.
    #[test]
    fn buffered_pop_rank_error_stays_within_s_minus_1(
        (shards, sample) in (2usize..=5).prop_flat_map(|s| (Just(s), 1usize..=s)),
        keys in prop::collection::vec(0u32..10_000, 1..300),
        width in 1usize..=24,
        stickiness in 1u32..=6,
        seed in 1u64..u64::MAX,
    ) {
        let policy = BufferPolicy::new()
            .with_insert_capacity(16)
            .with_refill_width(width)
            .with_stickiness(stickiness);
        let q = buffered_router(shards, sample, 8, policy);
        let plain = {
            let queue =
                BgpqOptions { node_capacity: 8, max_nodes: 1 << 10, ..Default::default() };
            let platforms =
                (0..shards).map(|_| CpuPlatform::new(queue.max_nodes + 1)).collect();
            ShardedBgpq::<u32, u32, CpuPlatform>::with_platforms(
                platforms,
                ShardedOptions::new(shards, sample, queue),
            )
        };
        let mut w = CpuWorker::new();
        for (i, chunk) in keys.chunks(8).enumerate() {
            let items: Vec<Entry<u32, u32>> =
                chunk.iter().map(|&k| Entry::new(k, 0)).collect();
            q.try_insert(&mut w, i, &items).unwrap();
            plain.try_insert(&mut w, i, &items).unwrap();
        }

        // Buffered replay, one pop at a time, measuring the rank error
        // against the live hints at the moment of each pop.
        let mut rng = seed;
        let mut out = Vec::new();
        let mut drained = 0usize;
        loop {
            out.clear();
            let got = q.buffered_try_delete_min(&mut w, 0, &mut rng, &mut out, 1).unwrap();
            if got == 0 {
                break;
            }
            drained += got;
            let bits = out[0].key.to_ordered_bits();
            let err = (0..shards)
                .filter(|&i| q.shard(i).min_hint_bits() < bits)
                .count();
            prop_assert!(
                err <= shards - 1,
                "buffered pop rank error {} exceeds S-1 = {}", err, shards - 1
            );
        }
        prop_assert_eq!(drained, keys.len());
        prop_assert!(q.is_empty());

        // Unbuffered twin: identical stream, tighter bound.
        let mut rng = seed;
        let mut out = Vec::new();
        let mut plain_drained = 0usize;
        loop {
            let got = plain.try_delete_min(&mut w, &mut rng, &mut out, 8).unwrap();
            if got == 0 {
                break;
            }
            plain_drained += got;
        }
        prop_assert_eq!(plain_drained, keys.len());
        let bound = (shards - sample) as u64;
        prop_assert!(
            plain.quality().rank_error_max <= bound,
            "unbuffered twin exceeded its S-c bound: {} > {}",
            plain.quality().rank_error_max, bound
        );
    }

    /// Exact emptiness extended to buffers: after any interleaving of
    /// buffered inserts, buffered deletes and explicit flushes, `len`
    /// equals the model count at every step and the final drain misses
    /// nothing parked in a buffer.
    #[test]
    fn emptiness_is_exact_with_parked_keys(
        ops in prop::collection::vec(
            prop_oneof![
                // (op, payload): 0 = insert `payload % 7 + 1` keys,
                // 1 = delete up to `payload % 5 + 1`, 2 = flush.
                (Just(0usize), any::<u32>()),
                (Just(1usize), any::<u32>()),
                (Just(2usize), any::<u32>()),
            ],
            1..120,
        ),
        capacity in 1usize..=24,
        seed in 1u64..u64::MAX,
    ) {
        let policy = BufferPolicy::new()
            .with_insert_capacity(capacity)
            .with_refill_width(8)
            .with_stickiness(3);
        let q = buffered_router(3, 2, 4, policy);
        let mut w = CpuWorker::new();
        let mut rng = seed;
        let mut live = 0usize;
        let mut next_key = 0u32;
        let mut out = Vec::new();
        for (op, payload) in ops {
            match op {
                0 => {
                    let n = (payload % 7 + 1) as usize;
                    let items: Vec<Entry<u32, u32>> = (0..n)
                        .map(|_| {
                            next_key += 1;
                            Entry::new(next_key, 0)
                        })
                        .collect();
                    q.buffered_try_insert(&mut w, 0, &items).unwrap();
                    live += n;
                }
                1 => {
                    out.clear();
                    let want = (payload % 5 + 1) as usize;
                    let got =
                        q.buffered_try_delete_min(&mut w, 0, &mut rng, &mut out, want).unwrap();
                    live -= got;
                }
                _ => {
                    q.flush_slot(&mut w, 0).unwrap();
                }
            }
            prop_assert_eq!(q.len(), live, "len must count parked keys at every step");
        }
        // Final drain through the buffered path recovers exactly the
        // model's survivors.
        let mut drained = 0usize;
        loop {
            out.clear();
            let got = q.buffered_try_delete_min(&mut w, 0, &mut rng, &mut out, 4).unwrap();
            if got == 0 {
                break;
            }
            drained += got;
        }
        prop_assert_eq!(drained, live);
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.check_invariants(), 0);
    }
}
