//! Long-running soak tests — `#[ignore]`d by default; run explicitly:
//!
//! ```text
//! cargo test -p integration-tests --test soak -- --ignored
//! ```

use bgpq::{check_history, BgpqOptions, CpuBgpq};
use pq_api::{BatchPriorityQueue, Entry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hours-scale workload compressed to a minute: millions of mixed ops
/// across threads, with the full linearizability check at the end.
#[test]
#[ignore = "soak test: ~1 minute; run with --ignored"]
fn soak_mixed_concurrent_linearizes() {
    let q: CpuBgpq<u32, u32> =
        CpuBgpq::new(BgpqOptions { node_capacity: 64, max_nodes: 1 << 14, ..Default::default() })
            .with_history();
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let q = &q;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                let mut out = Vec::new();
                for _ in 0..20_000 {
                    if rng.gen_bool(0.55) {
                        let n = rng.gen_range(1..=64usize);
                        let items: Vec<Entry<u32, u32>> =
                            (0..n).map(|_| Entry::new(rng.gen_range(0..1 << 30), 0)).collect();
                        q.insert_batch(&items);
                    } else {
                        out.clear();
                        q.delete_min_batch(&mut out, rng.gen_range(1..=64));
                    }
                }
            });
        }
    });
    let events = q.inner().take_history();
    eprintln!("soak: {} operations recorded", events.len());
    if let Some(v) = check_history(&events) {
        panic!("violation at seq {}: {}", v.seq, v.detail);
    }
    q.inner().check_invariants();
}

/// The same mixed concurrent workload, but each round runs under a
/// seeded fault schedule (panics, stalls, delays at random injection
/// points). Threads use the `try_*` APIs and contain injected panics;
/// whatever prefix of operations committed must still linearize, and a
/// round that survives unpoisoned must conserve the key multiset.
#[test]
#[ignore = "soak test: fault-schedule soak, ~1 minute; run with --ignored"]
fn soak_fault_schedule_survives_and_linearizes() {
    use bgpq_runtime::{CpuPlatform, FaultPlan};
    use pq_api::QueueError;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    use std::time::Duration;

    for round in 0..24u64 {
        let opts = BgpqOptions { node_capacity: 16, max_nodes: 1 << 12, ..Default::default() };
        // Stalls from `seeded` top out at ~5.5 ms, well under the
        // watchdog: they perturb timing without tripping timeouts;
        // panics exercise poisoning.
        let plan = Arc::new(FaultPlan::seeded(round, 6, 2_000));
        let platform = CpuPlatform::new(opts.max_nodes + 1)
            .with_watchdog(Duration::from_millis(100))
            .with_faults(plan);
        let q: CpuBgpq<u32, u32> = CpuBgpq::on_platform(platform, opts).with_history();
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let q = &q;
                s.spawn(move || {
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        let mut rng = StdRng::seed_from_u64(round << 8 | t as u64);
                        let mut out = Vec::new();
                        for _ in 0..4_000 {
                            let r = if rng.gen_bool(0.55) {
                                let n = rng.gen_range(1..=16usize);
                                let items: Vec<Entry<u32, u32>> = (0..n)
                                    .map(|_| Entry::new(rng.gen_range(0..1 << 30), 0))
                                    .collect();
                                q.try_insert_batch(&items).map(|()| 0)
                            } else {
                                out.clear();
                                q.try_delete_min_batch(&mut out, rng.gen_range(1..=16))
                            };
                            match r {
                                Ok(_) | Err(QueueError::Full { .. }) => {}
                                Err(QueueError::Poisoned) => break,
                                // A bare heap never trips Unavailable
                                // (that's the fronts' breaker verdict),
                                // but the match must stay exhaustive.
                                Err(QueueError::LockTimeout { .. })
                                | Err(QueueError::Unavailable) => {}
                            }
                        }
                    }));
                });
            }
        });
        let events = q.inner().take_history();
        if let Some(v) = check_history(&events) {
            panic!("round {round}: violation at seq {}: {}", v.seq, v.detail);
        }
        let mut balance: i64 = 0;
        for e in &events {
            match &e.op {
                bgpq::HistoryOp::Insert { keys } => balance += keys.len() as i64,
                bgpq::HistoryOp::DeleteMin { keys, .. } => balance -= keys.len() as i64,
            }
        }
        if !q.inner().is_poisoned() {
            assert_eq!(q.inner().len() as i64, balance, "round {round}: key leak");
            q.inner().check_invariants();
        }
    }
}

/// Deep schedule-fuzz sweep on the simulator (hundreds of seeds).
#[test]
#[ignore = "soak test: ~2 minutes; run with --ignored"]
fn soak_fuzz_sweep_linearizes() {
    use bgpq::Bgpq;
    use bgpq_runtime::SimPlatform;
    use gpu_sim::{launch, GpuConfig};
    for seed in 0..200u64 {
        let cfg = GpuConfig::new(6, 64).with_fuzz_seed(seed);
        let opts = BgpqOptions { node_capacity: 2, max_nodes: 8192, ..Default::default() };
        let (_, q) = launch(
            cfg,
            |sched| {
                let p = SimPlatform::new(sched, opts.max_nodes + 1, cfg.cost, cfg.block_dim);
                Bgpq::<u32, (), _>::with_platform(p, opts).with_history()
            },
            |ctx, q| {
                let bid = ctx.block_id() as u32;
                let mut out = Vec::new();
                for i in 0..30u32 {
                    q.insert(ctx.worker(), &[Entry::new(i * 16 + bid, ())]);
                    out.clear();
                    q.delete_min(ctx.worker(), &mut out, 1);
                }
            },
        );
        let events = q.take_history();
        if let Some(v) = check_history(&events) {
            panic!("seed {seed}: violation at seq {}: {}", v.seq, v.detail);
        }
        q.check_invariants();
    }
}
