//! Long-running soak tests — `#[ignore]`d by default; run explicitly:
//!
//! ```text
//! cargo test -p integration-tests --test soak -- --ignored
//! ```

use bgpq::{check_history, BgpqOptions, CpuBgpq};
use pq_api::{BatchPriorityQueue, Entry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hours-scale workload compressed to a minute: millions of mixed ops
/// across threads, with the full linearizability check at the end.
#[test]
#[ignore = "soak test: ~1 minute; run with --ignored"]
fn soak_mixed_concurrent_linearizes() {
    let q: CpuBgpq<u32, u32> =
        CpuBgpq::new(BgpqOptions { node_capacity: 64, max_nodes: 1 << 14, ..Default::default() })
            .with_history();
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let q = &q;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                let mut out = Vec::new();
                for _ in 0..20_000 {
                    if rng.gen_bool(0.55) {
                        let n = rng.gen_range(1..=64usize);
                        let items: Vec<Entry<u32, u32>> =
                            (0..n).map(|_| Entry::new(rng.gen_range(0..1 << 30), 0)).collect();
                        q.insert_batch(&items);
                    } else {
                        out.clear();
                        q.delete_min_batch(&mut out, rng.gen_range(1..=64));
                    }
                }
            });
        }
    });
    let events = q.inner().take_history();
    eprintln!("soak: {} operations recorded", events.len());
    if let Some(v) = check_history(&events) {
        panic!("violation at seq {}: {}", v.seq, v.detail);
    }
    q.inner().check_invariants();
}

/// Deep schedule-fuzz sweep on the simulator (hundreds of seeds).
#[test]
#[ignore = "soak test: ~2 minutes; run with --ignored"]
fn soak_fuzz_sweep_linearizes() {
    use bgpq::Bgpq;
    use bgpq_runtime::SimPlatform;
    use gpu_sim::{launch, GpuConfig};
    for seed in 0..200u64 {
        let cfg = GpuConfig::new(6, 64).with_fuzz_seed(seed);
        let opts = BgpqOptions { node_capacity: 2, max_nodes: 8192, ..Default::default() };
        let (_, q) = launch(
            cfg,
            |sched| {
                let p = SimPlatform::new(sched, opts.max_nodes + 1, cfg.cost, cfg.block_dim);
                Bgpq::<u32, (), _>::with_platform(p, opts).with_history()
            },
            |ctx, q| {
                let bid = ctx.block_id() as u32;
                let mut out = Vec::new();
                for i in 0..30u32 {
                    q.insert(ctx.worker(), &[Entry::new(i * 16 + bid, ())]);
                    out.clear();
                    q.delete_min(ctx.worker(), &mut out, 1);
                }
            },
        );
        let events = q.take_history();
        if let Some(v) = check_history(&events) {
            panic!("seed {seed}: violation at seq {}: {}", v.seq, v.detail);
        }
        q.check_invariants();
    }
}
