//! End-to-end checks of the paper's headline claims, on the simulator:
//! the qualitative results of Table 2 and Figure 6 (who wins, and in
//! which direction each design knob moves) must hold in this
//! reproduction. Absolute factors are recorded in EXPERIMENTS.md.

use gpu_sim::GpuConfig;
use workloads::{generate_keys, KeyDist};

// The bench crate is a workspace lib too; reuse its drivers through a
// local copy of the minimal pieces to avoid a dev-dependency cycle.
use bgpq::{Bgpq, BgpqOptions};
use bgpq_runtime::SimPlatform;
use gpu_sim::launch_phased;
use parking_lot::Mutex;
use pq_api::Entry;
use psync::{run_phase, PhaseKind, PsyncConfig, SeqBatchHeap};
use std::sync::atomic::{AtomicUsize, Ordering};

type SimQueue = Bgpq<u32, (), SimPlatform>;

fn bgpq_total_cycles(gpu: GpuConfig, k: usize, keys: &[u32]) -> u64 {
    let opts = BgpqOptions::with_capacity_for(k, keys.len() + 2 * k);
    let batches: Vec<&[u32]> = keys.chunks(k).collect();
    let n = batches.len();
    let next_i = AtomicUsize::new(0);
    let next_d = AtomicUsize::new(0);
    let insert_phase = |ctx: &mut gpu_sim::BlockCtx, q: &SimQueue| {
        let mut buf = Vec::with_capacity(k);
        loop {
            let i = next_i.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            buf.clear();
            buf.extend(batches[i].iter().map(|&key| Entry::new(key, ())));
            q.insert(ctx.worker(), &buf);
        }
    };
    let delete_phase = |ctx: &mut gpu_sim::BlockCtx, q: &SimQueue| {
        let mut out = Vec::with_capacity(k);
        loop {
            let i = next_d.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            out.clear();
            q.delete_min(ctx.worker(), &mut out, batches[i].len());
        }
    };
    let (reports, q) = launch_phased(
        gpu,
        |sched| {
            let p = SimPlatform::new(sched, opts.max_nodes + 1, gpu.cost, gpu.block_dim);
            Bgpq::<u32, (), _>::with_platform(p, opts)
        },
        &[&insert_phase, &delete_phase],
    );
    q.check_invariants();
    reports[1].makespan_cycles
}

fn psync_total_cycles(gpu: GpuConfig, k: usize, keys: &[u32]) -> u64 {
    let cfg = PsyncConfig::new(gpu, k);
    let heap = Mutex::new(SeqBatchHeap::<u32, ()>::new(k));
    let batches: Vec<Vec<Entry<u32, ()>>> =
        keys.chunks(k).map(|c| c.iter().map(|&key| Entry::new(key, ())).collect()).collect();
    let n = batches.len();
    let a = run_phase(cfg, &heap, PhaseKind::Insert, &batches, 0).report.makespan_cycles;
    let b = run_phase(cfg, &heap, PhaseKind::Delete, &[], n).report.makespan_cycles;
    a + b
}

/// Table 2, B/P columns: BGPQ beats the pipelined P-Sync at the same
/// configuration by a clear factor.
#[test]
fn claim_bgpq_beats_psync() {
    let keys = generate_keys(1 << 15, KeyDist::Random, 1);
    let gpu = GpuConfig::new(16, 512);
    let b = bgpq_total_cycles(gpu, 1024, &keys);
    let p = psync_total_cycles(gpu, 1024, &keys);
    let factor = p as f64 / b as f64;
    eprintln!("BGPQ {b} cycles vs P-Sync {p} cycles: {factor:.1}x");
    assert!(factor > 1.5, "expected a clear BGPQ win, got {factor:.2}x");
}

/// Fig. 6a/6b: at a fixed block size, larger node capacity wins.
#[test]
fn claim_larger_nodes_win() {
    let keys = generate_keys(1 << 15, KeyDist::Random, 2);
    let gpu = GpuConfig::new(8, 512);
    let small = bgpq_total_cycles(gpu, 128, &keys);
    let large = bgpq_total_cycles(gpu, 1024, &keys);
    eprintln!("k=128: {small}, k=1024: {large}");
    assert!(large < small, "k=1024 must beat k=128: {large} !< {small}");
}

/// Fig. 6c: block-count scaling improves performance and then
/// saturates (the paper: "the benefit from concurrency is restricted
/// when the thread block number keeps increasing").
#[test]
fn claim_block_scaling_then_saturation() {
    let keys = generate_keys(1 << 15, KeyDist::Random, 3);
    let run = |blocks| bgpq_total_cycles(GpuConfig::new(blocks, 512), 1024, &keys);
    let one = run(1);
    let four = run(4);
    let sixty_four = run(64);
    eprintln!("blocks 1/4/64: {one}/{four}/{sixty_four}");
    assert!(four < one, "4 blocks must beat 1");
    assert!(sixty_four <= four, "64 blocks must not be slower than 4");
    // Saturation: the 4→64 gain is much smaller than the 1→4 gain.
    let early_gain = one as f64 / four as f64;
    let late_gain = four as f64 / sixty_four as f64;
    assert!(late_gain < early_gain, "scaling must flatten: {early_gain:.2} vs {late_gain:.2}");
}

/// Both key distributions run correctly and sorted inputs are not
/// pathological (Table 2 runs all three distributions).
#[test]
fn claim_distributions_all_work() {
    let gpu = GpuConfig::new(8, 256);
    let mut cycles = Vec::new();
    for dist in KeyDist::ALL {
        let keys = generate_keys(1 << 14, dist, 4);
        cycles.push(bgpq_total_cycles(gpu, 512, &keys));
    }
    eprintln!("random/ascend/descend cycles: {cycles:?}");
    let max = *cycles.iter().max().unwrap() as f64;
    let min = *cycles.iter().min().unwrap() as f64;
    assert!(max / min < 3.0, "no distribution should be pathological: {cycles:?}");
}
