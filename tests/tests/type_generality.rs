//! The queues are generic over key and value types; exercise the
//! combinations the applications rely on plus signed keys and large
//! payloads.

use bgpq::{BgpqOptions, CpuBgpq};
use pq_api::{BatchPriorityQueue, Entry};

#[test]
fn signed_keys_order_correctly() {
    let q: CpuBgpq<i64, u8> =
        CpuBgpq::new(BgpqOptions { node_capacity: 4, max_nodes: 64, ..Default::default() });
    q.insert_batch(&[Entry::new(5i64, 0), Entry::new(-17, 1), Entry::new(0, 2), Entry::new(-3, 3)]);
    let mut out = Vec::new();
    q.delete_min_batch(&mut out, 4);
    assert_eq!(out.iter().map(|e| e.key).collect::<Vec<_>>(), vec![-17, -3, 0, 5]);
    assert_eq!(out[0].value, 1, "payload must travel with the most negative key");
}

#[test]
fn large_copy_payloads() {
    #[derive(Clone, Copy, Default, PartialEq, Debug)]
    struct Payload {
        blob: [u64; 8],
        tag: u32,
    }
    let q: CpuBgpq<u32, Payload> =
        CpuBgpq::new(BgpqOptions { node_capacity: 8, max_nodes: 128, ..Default::default() });
    for i in (0..64u32).rev() {
        q.insert_batch(&[Entry::new(i, Payload { blob: [i as u64; 8], tag: i })]);
    }
    let mut out = Vec::new();
    while q.delete_min_batch(&mut out, 8) > 0 {}
    for (i, e) in out.iter().enumerate() {
        assert_eq!(e.key as usize, i);
        assert_eq!(e.value.tag as usize, i);
        assert_eq!(e.value.blob[3] as usize, i, "payload corrupted in node moves");
    }
}

#[test]
fn u64_keys_at_extremes() {
    let q: CpuBgpq<u64, ()> =
        CpuBgpq::new(BgpqOptions { node_capacity: 4, max_nodes: 32, ..Default::default() });
    // u64::MAX is the reserved sentinel; MAX-1 is the largest legal key.
    q.insert_batch(&[Entry::new(u64::MAX - 1, ()), Entry::new(0, ()), Entry::new(1 << 40, ())]);
    let mut out = Vec::new();
    q.delete_min_batch(&mut out, 3);
    assert_eq!(out.iter().map(|e| e.key).collect::<Vec<_>>(), vec![0, 1 << 40, u64::MAX - 1]);
}

#[test]
fn baselines_accept_signed_keys_too() {
    use pq_api::PriorityQueue;
    let q = baseline_heaps::FineHeapPq::<i32, i32>::new(64);
    for k in [3i32, -8, 0, -1, 7] {
        q.insert(k, k * 2);
    }
    let mut got = Vec::new();
    while let Some(e) = q.delete_min() {
        assert_eq!(e.value, e.key * 2);
        got.push(e.key);
    }
    assert_eq!(got, vec![-8, -1, 0, 3, 7]);

    let sl = skiplist_pq::LindenJonssonPq::<i32, ()>::new(4);
    for k in [3i32, -8, 0] {
        sl.insert(k, ());
    }
    assert_eq!(sl.delete_min().unwrap().key, -8);
}
