//! The same BGPQ algorithm runs on both platforms; given the same
//! single-agent operation schedule, results must be identical, and
//! concurrent schedules must agree at quiescence.

use bgpq::{Bgpq, BgpqOptions, CpuBgpq};
use bgpq_runtime::{CpuWorker, SimPlatform};
use gpu_sim::{launch, GpuConfig};
use pq_api::{BatchPriorityQueue, Entry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn opts() -> BgpqOptions {
    BgpqOptions { node_capacity: 8, max_nodes: 1 << 10, ..Default::default() }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u32>),
    Delete(usize),
}

fn schedule(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.55) {
                let c = rng.gen_range(1..=8usize);
                Op::Insert((0..c).map(|_| rng.gen_range(0..1 << 30)).collect())
            } else {
                Op::Delete(rng.gen_range(1..=8))
            }
        })
        .collect()
}

#[test]
fn single_agent_schedules_agree_exactly() {
    for seed in [1u64, 7, 42] {
        let ops = schedule(seed, 200);

        // CPU platform.
        let cpu: CpuBgpq<u32, u32> = CpuBgpq::new(opts());
        let mut cpu_deleted: Vec<u32> = Vec::new();
        {
            let mut out = Vec::new();
            for op in &ops {
                match op {
                    Op::Insert(keys) => {
                        let items: Vec<Entry<u32, u32>> =
                            keys.iter().map(|&k| Entry::new(k, k)).collect();
                        cpu.insert_batch(&items);
                    }
                    Op::Delete(n) => {
                        out.clear();
                        cpu.delete_min_batch(&mut out, *n);
                        cpu_deleted.extend(out.iter().map(|e| e.key));
                    }
                }
            }
        }

        // Sim platform, one block (identical sequential schedule).
        let ops2 = ops.clone();
        let gpu = GpuConfig::new(1, 128);
        let sim_deleted: std::sync::Mutex<Vec<u32>> = std::sync::Mutex::new(Vec::new());
        let (_, q) = launch(
            gpu,
            |sched| {
                let p = SimPlatform::new(sched, opts().max_nodes + 1, gpu.cost, gpu.block_dim);
                Bgpq::<u32, u32, _>::with_platform(p, opts())
            },
            |ctx, q| {
                let mut out = Vec::new();
                for op in &ops2 {
                    match op {
                        Op::Insert(keys) => {
                            let items: Vec<Entry<u32, u32>> =
                                keys.iter().map(|&k| Entry::new(k, k)).collect();
                            q.insert(ctx.worker(), &items);
                        }
                        Op::Delete(n) => {
                            out.clear();
                            q.delete_min(ctx.worker(), &mut out, *n);
                            sim_deleted.lock().unwrap().extend(out.iter().map(|e| e.key));
                        }
                    }
                }
            },
        );

        assert_eq!(
            *sim_deleted.lock().unwrap(),
            cpu_deleted,
            "seed {seed}: deleted streams differ"
        );
        assert_eq!(
            q.len(),
            BatchPriorityQueue::<u32, u32>::len(&cpu),
            "seed {seed}: lengths differ"
        );
        q.check_invariants();
        cpu.inner().check_invariants();
    }
}

#[test]
fn insert_all_splits_into_linearized_batches() {
    let q: CpuBgpq<u32, u32> = CpuBgpq::new(opts());
    let mut w = CpuWorker::new();
    let n = q.inner().insert_all(&mut w, (0..100u32).map(|k| Entry::new(k, k)));
    assert_eq!(n, 100);
    assert_eq!(q.len(), 100);
    let s = q.inner().stats().snapshot();
    assert_eq!(s.inserts, 100usize.div_ceil(8) as u64, "batches of k plus one remainder");
    let mut out = Vec::new();
    q.inner().drain(&mut w, &mut out);
    assert_eq!(out.iter().map(|e| e.key).collect::<Vec<_>>(), (0..100).collect::<Vec<_>>());
}

#[test]
fn concurrent_multiset_agrees_across_platforms() {
    // 4 agents on each platform run the same per-agent schedules; the
    // *set* of surviving keys can differ (different interleavings), but
    // counts must match and both must linearize.
    let per_agent: Vec<Vec<Op>> = (0..4).map(|a| schedule(100 + a, 80)).collect();
    let total_inserted: usize =
        per_agent.iter().flatten().map(|op| if let Op::Insert(k) = op { k.len() } else { 0 }).sum();

    // CPU.
    let cpu: CpuBgpq<u32, u32> = CpuBgpq::new(opts()).with_history();
    let cpu_deleted: usize = std::thread::scope(|s| {
        let handles: Vec<_> = per_agent
            .iter()
            .map(|ops| {
                let cpu = &cpu;
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut n = 0;
                    for op in ops {
                        match op {
                            Op::Insert(keys) => {
                                let items: Vec<Entry<u32, u32>> =
                                    keys.iter().map(|&k| Entry::new(k, k)).collect();
                                cpu.insert_batch(&items);
                            }
                            Op::Delete(c) => {
                                out.clear();
                                n += cpu.delete_min_batch(&mut out, *c);
                            }
                        }
                    }
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert!(bgpq::check_history(&cpu.inner().take_history()).is_none());
    assert_eq!(BatchPriorityQueue::<u32, u32>::len(&cpu) + cpu_deleted, total_inserted);

    // Sim.
    let gpu = GpuConfig::new(4, 128);
    let per_agent2 = per_agent.clone();
    let sim_deleted = std::sync::atomic::AtomicUsize::new(0);
    let (_, q) = launch(
        gpu,
        |sched| {
            let p = SimPlatform::new(sched, opts().max_nodes + 1, gpu.cost, gpu.block_dim);
            Bgpq::<u32, u32, _>::with_platform(p, opts()).with_history()
        },
        |ctx, q| {
            let ops = &per_agent2[ctx.block_id()];
            let mut out = Vec::new();
            for op in ops {
                match op {
                    Op::Insert(keys) => {
                        let items: Vec<Entry<u32, u32>> =
                            keys.iter().map(|&k| Entry::new(k, k)).collect();
                        q.insert(ctx.worker(), &items);
                    }
                    Op::Delete(c) => {
                        out.clear();
                        let got = q.delete_min(ctx.worker(), &mut out, *c);
                        sim_deleted.fetch_add(got, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            }
        },
    );
    assert!(bgpq::check_history(&q.take_history()).is_none());
    assert_eq!(q.len() + sim_deleted.load(std::sync::atomic::Ordering::Relaxed), total_inserted);
    q.check_invariants();
}

/// The strongest single-agent equivalence: with history recording on,
/// CpuPlatform and SimPlatform must emit the *identical* linearization
/// history — same sequence numbers, same op payloads, same order — for
/// one fixed op script, across node capacities spanning a leaf-heavy
/// small-k heap, the default, and a wide root (k ∈ {4, 8, 32}).
#[test]
fn histories_are_identical_across_platforms_for_all_k() {
    for k in [4usize, 8, 32] {
        let o = BgpqOptions { node_capacity: k, max_nodes: 1 << 10, ..Default::default() };
        let ops: Vec<Op> = {
            let mut rng = StdRng::seed_from_u64(0xC0FFEE + k as u64);
            (0..150)
                .map(|_| {
                    if rng.gen_bool(0.55) {
                        let c = rng.gen_range(1..=k);
                        Op::Insert((0..c).map(|_| rng.gen_range(0..1 << 30)).collect())
                    } else {
                        Op::Delete(rng.gen_range(1..=k))
                    }
                })
                .collect()
        };

        let cpu: CpuBgpq<u32, u32> = CpuBgpq::new(o).with_history();
        {
            let mut out = Vec::new();
            for op in &ops {
                match op {
                    Op::Insert(keys) => {
                        let items: Vec<Entry<u32, u32>> =
                            keys.iter().map(|&x| Entry::new(x, x)).collect();
                        cpu.insert_batch(&items);
                    }
                    Op::Delete(n) => {
                        out.clear();
                        cpu.delete_min_batch(&mut out, *n);
                    }
                }
            }
        }
        let cpu_events = cpu.inner().take_history();

        let ops2 = ops.clone();
        let gpu = GpuConfig::new(1, 128);
        let (_, q) = launch(
            gpu,
            |sched| {
                let p = SimPlatform::new(sched, o.max_nodes + 1, gpu.cost, gpu.block_dim);
                Bgpq::<u32, u32, _>::with_platform(p, o).with_history()
            },
            |ctx, q| {
                let mut out = Vec::new();
                for op in &ops2 {
                    match op {
                        Op::Insert(keys) => {
                            let items: Vec<Entry<u32, u32>> =
                                keys.iter().map(|&x| Entry::new(x, x)).collect();
                            q.insert(ctx.worker(), &items);
                        }
                        Op::Delete(n) => {
                            out.clear();
                            q.delete_min(ctx.worker(), &mut out, *n);
                        }
                    }
                }
            },
        );
        let sim_events = q.take_history();

        assert!(bgpq::check_history(&cpu_events).is_none(), "k={k}: cpu history linearizes");
        let cpu_seq_ops: Vec<_> = cpu_events.iter().map(|e| (e.seq, e.op.clone())).collect();
        let sim_seq_ops: Vec<_> = sim_events.iter().map(|e| (e.seq, e.op.clone())).collect();
        assert_eq!(cpu_seq_ops, sim_seq_ops, "k={k}: linearization histories must be identical");
        assert_eq!(q.len(), BatchPriorityQueue::<u32, u32>::len(&cpu), "k={k}: lengths differ");
        q.check_invariants();
        cpu.inner().check_invariants();
    }
}
