//! Dispatch-mode equivalence: the SIMD kernels are an implementation
//! detail, so a BGPQ run must be bit-for-bit reproducible whether the
//! dispatcher selects the vector kernels or is pinned to the scalar
//! fallback. This drives identical operation scripts through both modes
//! and demands identical deleted streams AND identical linearization
//! histories (same sequence numbers, same op payloads).
//!
//! Everything lives in one `#[test]` body: `set_forced_scalar` is
//! process-global, and the harness runs sibling tests on concurrent
//! threads — a mode flip mid-measurement would race. The CI leg that
//! sets `BGPQ_FORCE_SCALAR=1` covers the scalar-from-startup path in a
//! separate process.

use bgpq::{Bgpq, BgpqOptions, CpuBgpq, HistoryEvent};
use bgpq_runtime::SimPlatform;
use gpu_sim::{launch, GpuConfig};
use pq_api::{BatchPriorityQueue, Entry, ValueType};
use primitives::simd;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u32>),
    Delete(usize),
}

fn schedule(seed: u64, n: usize, k: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.55) {
                let c = rng.gen_range(1..=k);
                Op::Insert((0..c).map(|_| rng.gen_range(0..1 << 30)).collect())
            } else {
                Op::Delete(rng.gen_range(1..=k))
            }
        })
        .collect()
}

/// One full CPU-platform run of a script with history on; returns the
/// deleted key stream and the recorded history. `value` builds the
/// payload from the key, letting the same script drive both the narrow
/// (8-byte entry, scalar route) and wide (16-byte entry, SoA key-lane
/// route) instantiations.
fn cpu_run<V: ValueType>(
    k: usize,
    ops: &[Op],
    value: impl Fn(u32) -> V,
) -> (Vec<u32>, Vec<HistoryEvent<u32>>) {
    let opts = BgpqOptions { node_capacity: k, max_nodes: 1 << 10, ..Default::default() };
    let q: CpuBgpq<u32, V> = CpuBgpq::new(opts).with_history();
    let mut deleted = Vec::new();
    let mut out = Vec::new();
    for op in ops {
        match op {
            Op::Insert(keys) => {
                let items: Vec<Entry<u32, V>> =
                    keys.iter().map(|&x| Entry::new(x, value(x))).collect();
                q.insert_batch(&items);
            }
            Op::Delete(n) => {
                out.clear();
                q.delete_min_batch(&mut out, *n);
                deleted.extend(out.iter().map(|e| e.key));
            }
        }
    }
    let history = q.inner().take_history();
    q.inner().check_invariants();
    (deleted, history)
}

/// One single-block sim-platform run; returns the deleted key stream
/// and the recorded history.
fn sim_run(k: usize, ops: &[Op]) -> (Vec<u32>, Vec<HistoryEvent<u32>>) {
    let opts = BgpqOptions { node_capacity: k, max_nodes: 1 << 10, ..Default::default() };
    let gpu = GpuConfig::new(1, 128);
    let deleted = std::sync::Mutex::new(Vec::new());
    let (_, q) = launch(
        gpu,
        |sched| {
            let p = SimPlatform::new(sched, opts.max_nodes + 1, gpu.cost, gpu.block_dim);
            Bgpq::<u32, u32, _>::with_platform(p, opts).with_history()
        },
        |ctx, q| {
            let mut out = Vec::new();
            for op in ops {
                match op {
                    Op::Insert(keys) => {
                        let items: Vec<Entry<u32, u32>> =
                            keys.iter().map(|&x| Entry::new(x, x)).collect();
                        q.insert(ctx.worker(), &items);
                    }
                    Op::Delete(n) => {
                        out.clear();
                        q.delete_min(ctx.worker(), &mut out, *n);
                        deleted.lock().unwrap().extend(out.iter().map(|e| e.key));
                    }
                }
            }
        },
    );
    let history = q.take_history();
    q.check_invariants();
    (deleted.into_inner().unwrap(), history)
}

fn assert_same_history(vector: &[HistoryEvent<u32>], scalar: &[HistoryEvent<u32>], what: &str) {
    let v: Vec<_> = vector.iter().map(|e| (e.seq, e.op.clone())).collect();
    let s: Vec<_> = scalar.iter().map(|e| (e.seq, e.op.clone())).collect();
    assert_eq!(v, s, "{what}: histories diverge between dispatch modes");
}

#[test]
fn runs_are_identical_with_dispatch_on_and_off() {
    // If the host resolves to scalar anyway (no AVX2), the two runs are
    // trivially the same mode; the test still passes and the vector leg
    // is covered on capable hosts.
    let native = simd::dispatch_mode();

    // Narrow entries (8 bytes: scalar entry route) at small k; wide
    // entries (16 bytes: SoA key-lane route) at k=64 so sort_split
    // totals clear the SoA eligibility floor.
    let narrow_ops = schedule(0xD15EA5E, 200, 8);
    let wide_ops = schedule(0x0DD_BA11, 120, 64);

    let (nd_v, nh_v) = cpu_run::<u32>(8, &narrow_ops, |k| k);
    let (wd_v, wh_v) = cpu_run::<u64>(64, &wide_ops, |k| k as u64);
    let (sd_v, sh_v) = sim_run(8, &narrow_ops);

    simd::set_forced_scalar(true);
    assert_eq!(simd::dispatch_mode(), simd::DispatchMode::Scalar);
    let scalar_results = std::panic::catch_unwind(|| {
        let narrow = cpu_run::<u32>(8, &narrow_ops, |k| k);
        let wide = cpu_run::<u64>(64, &wide_ops, |k| k as u64);
        let sim = sim_run(8, &narrow_ops);
        (narrow, wide, sim)
    });
    simd::set_forced_scalar(false);
    assert_eq!(simd::dispatch_mode(), native, "mode must restore after the scalar leg");
    let ((nd_s, nh_s), (wd_s, wh_s), (sd_s, sh_s)) =
        scalar_results.unwrap_or_else(|p| std::panic::resume_unwind(p));

    assert_eq!(nd_v, nd_s, "narrow CPU deleted streams diverge between dispatch modes");
    assert_eq!(wd_v, wd_s, "wide (SoA) CPU deleted streams diverge between dispatch modes");
    assert_eq!(sd_v, sd_s, "sim deleted streams diverge between dispatch modes");
    assert_same_history(&nh_v, &nh_s, "narrow CPU");
    assert_same_history(&wh_v, &wh_s, "wide (SoA) CPU");
    assert_same_history(&sh_v, &sh_s, "sim");
    assert!(bgpq::check_history(&nh_v).is_none());
    assert!(bgpq::check_history(&wh_v).is_none());
    assert!(bgpq::check_history(&sh_v).is_none());
}
