//! Fine-grained concurrent binary heap: one key per node, one lock per
//! node, top-down insertion and deletion with hand-over-hand locking —
//! the classical design of Nageshwara Rao & Kumar \[21\] (the Hunt et
//! al. \[14\] variant differs only in bottom-up insertions; the paper
//! reports identical performance for the two, §3.3).
//!
//! Structure mirrors BGPQ with `k = 1` and no partial buffer: the
//! insert merges with the root under the root lock (so the minimum is
//! immediately visible), reserves a leaf slot, and walks the root→leaf
//! path hand-over-hand carrying the displaced key; deletion extracts
//! the root key, refills from the last slot, and sifts down. The
//! `Reserved` state plays the role of BGPQ's `TARGET` (without the
//! MARKED collaboration): a deletion that catches an in-flight
//! insertion's slot waits for the insert to land.

use parking_lot::Mutex;
use pq_api::{Entry, ItemwiseBatch, KeyType, PriorityQueue, QueueFactory, ValueType};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Empty,
    Avail,
    /// Claimed by an in-flight insertion that has not yet landed.
    Reserved,
}

struct Slot<K, V> {
    state: SlotState,
    entry: Entry<K, V>,
}

/// Fine-grained one-key-per-node concurrent heap.
pub struct FineHeapPq<K, V> {
    /// 1-based implicit tree; slot 0 unused.
    slots: Box<[Mutex<Slot<K, V>>]>,
    /// Heap size; mutated only while holding slot 1 (the root lock),
    /// like BGPQ's meta.
    size: std::sync::atomic::AtomicUsize,
    len: std::sync::atomic::AtomicUsize,
}

impl<K: KeyType, V: ValueType> FineHeapPq<K, V> {
    /// Heap with room for `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        let n = capacity.max(2) + 2;
        Self {
            slots: (0..n)
                .map(|_| Mutex::new(Slot { state: SlotState::Empty, entry: Entry::sentinel() }))
                .collect(),
            size: std::sync::atomic::AtomicUsize::new(0),
            len: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    #[inline]
    fn size_rlx(&self) -> usize {
        self.size.load(std::sync::atomic::Ordering::Relaxed)
    }

    #[inline]
    fn set_size(&self, v: usize) {
        self.size.store(v, std::sync::atomic::Ordering::Relaxed);
    }

    /// Quiescent invariant check: parent ≤ child for all in-use slots.
    pub fn check_invariants(&self) {
        let n = self.size_rlx();
        for i in 1..=n {
            let s = self.slots[i].lock();
            assert_eq!(s.state, SlotState::Avail, "slot {i} within size not AVAIL");
            if i >= 2 {
                let p = self.slots[i / 2].lock();
                assert!(p.entry.key <= s.entry.key, "slot {i} violates heap order");
            }
        }
    }
}

impl<K: KeyType, V: ValueType> PriorityQueue<K, V> for FineHeapPq<K, V> {
    fn insert(&self, key: K, value: V) {
        let mut val = Entry::new(key, value);
        let mut cur = 1usize;
        let mut cur_guard = self.slots[1].lock();
        let n = self.size_rlx();
        if n == 0 {
            cur_guard.entry = val;
            cur_guard.state = SlotState::Avail;
            self.set_size(1);
            self.len.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return;
        }
        assert!(n + 1 < self.slots.len(), "FineHeapPq capacity exceeded");
        let tar = n + 1;
        self.set_size(tar);
        self.len.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Reserve the leaf (BGPQ's TARGET) while still holding the root.
        {
            let mut t = self.slots[tar].lock();
            debug_assert_eq!(t.state, SlotState::Empty);
            t.state = SlotState::Reserved;
        }
        // Keep the minimum at the root (linearization: the key is now
        // logically in the heap), carry the larger key down.
        loop {
            if cur_guard.state == SlotState::Avail && val < cur_guard.entry {
                std::mem::swap(&mut val, &mut cur_guard.entry);
            }
            let next = {
                let d = crate::fine::level(tar) - crate::fine::level(cur);
                tar >> (d - 1)
            };
            // Hand-over-hand: lock the child before releasing `cur`.
            let next_guard = self.slots[next].lock();
            drop(cur_guard);
            cur = next;
            cur_guard = next_guard;
            if cur == tar {
                // The slot may still be Reserved (normal) — land here.
                cur_guard.entry = val;
                cur_guard.state = SlotState::Avail;
                return;
            }
        }
    }

    fn delete_min(&self) -> Option<Entry<K, V>> {
        let mut root = self.slots[1].lock();
        let n = self.size_rlx();
        if n == 0 {
            return None;
        }
        self.len.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
        debug_assert_eq!(root.state, SlotState::Avail);
        let result = root.entry;
        if n == 1 {
            root.state = SlotState::Empty;
            root.entry = Entry::sentinel();
            self.set_size(0);
            return Some(result);
        }
        let tar = n;
        self.set_size(n - 1);
        // Take the last key; wait out an in-flight insertion (BGPQ's
        // TARGET case, without MARKED collaboration).
        let last = loop {
            let mut t = self.slots[tar].lock();
            match t.state {
                SlotState::Avail => {
                    let e = t.entry;
                    t.state = SlotState::Empty;
                    t.entry = Entry::sentinel();
                    break e;
                }
                SlotState::Reserved => {
                    drop(t);
                    std::thread::yield_now();
                }
                SlotState::Empty => unreachable!("last slot empty while size = {n}"),
            }
        };
        root.entry = last;
        // Sift down hand-over-hand.
        let mut cur = 1usize;
        let mut cur_guard = root;
        loop {
            let l = 2 * cur;
            let r = 2 * cur + 1;
            let lg = (l < self.slots.len()).then(|| self.slots[l].lock());
            let rg = (r < self.slots.len()).then(|| self.slots[r].lock());
            let l_avail = lg.as_ref().is_some_and(|g| g.state == SlotState::Avail);
            let r_avail = rg.as_ref().is_some_and(|g| g.state == SlotState::Avail);
            // Pick the smaller AVAIL child (Reserved/Empty children hold
            // no keys and are skipped, like BGPQ's TARGET nodes).
            let pick_left = match (l_avail, r_avail) {
                (false, false) => {
                    return Some(result);
                }
                (true, false) => true,
                (false, true) => false,
                (true, true) => lg.as_ref().unwrap().entry <= rg.as_ref().unwrap().entry,
            };
            let (mut child_guard, child) = if pick_left {
                drop(rg);
                (lg.unwrap(), l)
            } else {
                drop(lg);
                (rg.unwrap(), r)
            };
            if child_guard.entry < cur_guard.entry {
                std::mem::swap(&mut child_guard.entry, &mut cur_guard.entry);
                drop(cur_guard);
                cur = child;
                cur_guard = child_guard;
            } else {
                return Some(result);
            }
        }
    }

    fn len(&self) -> usize {
        self.len.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Depth of node `i` in the implicit tree.
#[inline]
fn level(i: usize) -> u32 {
    usize::BITS - 1 - i.leading_zeros()
}

/// Factory producing itemwise-batched fine-grained heaps.
pub struct FineHeapPqFactory {
    pub batch: usize,
}

impl Default for FineHeapPqFactory {
    fn default() -> Self {
        Self { batch: 1024 }
    }
}

impl<K: KeyType, V: ValueType> QueueFactory<K, V> for FineHeapPqFactory {
    type Queue = ItemwiseBatch<FineHeapPq<K, V>>;

    fn name(&self) -> &str {
        "FineHeap"
    }

    fn build(&self, capacity_hint: usize) -> Self::Queue {
        ItemwiseBatch::new(FineHeapPq::new(capacity_hint.max(16)), self.batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ordered_drain() {
        let q = FineHeapPq::<u32, u32>::new(64);
        for k in [5u32, 1, 9, 3, 7, 1] {
            q.insert(k, k);
        }
        let mut got = Vec::new();
        while let Some(e) = q.delete_min() {
            got.push(e.key);
        }
        assert_eq!(got, vec![1, 1, 3, 5, 7, 9]);
    }

    #[test]
    fn random_matches_model() {
        let q = FineHeapPq::<u32, u32>::new(4096);
        let mut model = std::collections::BinaryHeap::new();
        let mut rng = StdRng::seed_from_u64(9);
        for step in 0..4000 {
            if rng.gen_bool(0.6) || model.is_empty() {
                let k = rng.gen_range(0..10_000u32);
                q.insert(k, k);
                model.push(std::cmp::Reverse(k));
            } else {
                let got = q.delete_min().map(|e| e.key);
                let expect = model.pop().map(|r| r.0);
                assert_eq!(got, expect, "step {step}");
            }
        }
        q.check_invariants();
    }

    #[test]
    fn concurrent_conservation_and_order() {
        let q = FineHeapPq::<u32, u32>::new(1 << 16);
        let deleted: parking_lot::Mutex<Vec<u32>> = parking_lot::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let q = &q;
                let deleted = &deleted;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t);
                    let mut mine = Vec::new();
                    for _ in 0..400 {
                        if rng.gen_bool(0.6) {
                            q.insert(rng.gen_range(0..1 << 30), 0);
                        } else if let Some(e) = q.delete_min() {
                            mine.push(e.key);
                        }
                    }
                    deleted.lock().extend(mine);
                });
            }
        });
        q.check_invariants();
        // Drain and check global conservation.
        let mut rest = 0;
        while q.delete_min().is_some() {
            rest += 1;
        }
        assert_eq!(q.len(), 0);
        let _ = rest;
    }

    #[test]
    fn concurrent_insert_only_then_sorted_drain() {
        let q = FineHeapPq::<u32, ()>::new(1 << 14);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let q = &q;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t + 100);
                    for _ in 0..500 {
                        q.insert(rng.gen_range(0..1 << 30), ());
                    }
                });
            }
        });
        assert_eq!(PriorityQueue::<u32, ()>::len(&q), 4000);
        q.check_invariants();
        let mut prev = 0;
        let mut count = 0;
        while let Some(e) = q.delete_min() {
            assert!(e.key >= prev, "out of order");
            prev = e.key;
            count += 1;
        }
        assert_eq!(count, 4000);
    }

    #[test]
    fn empty_heap_returns_none() {
        let q = FineHeapPq::<u32, ()>::new(8);
        assert!(q.delete_min().is_none());
        q.insert(1, ());
        assert!(q.delete_min().is_some());
        assert!(q.delete_min().is_none());
    }
}
