//! # baseline-heaps — CPU heap baselines from the paper's evaluation
//!
//! * [`CoarseLockPq`] — a binary heap behind one mutex. Stand-in for
//!   Intel TBB's `concurrent_priority_queue` (the "TBB" column of
//!   Table 2), which aggregates operations behind a lock-protected heap;
//!   the serialization bottleneck BGPQ is compared against is the same.
//! * [`FineHeapPq`] — a fine-grained, one-key-per-node concurrent heap
//!   with one lock per node and *top-down* insertions and deletions,
//!   the classical design of Nageshwara Rao & Kumar \[21\] that Hunt et
//!   al. \[14\] build on (the paper notes in §3.3 that its Hunt-style
//!   bottom-up variant performed the same as the simple top-down
//!   approach, so the top-down form is the representative baseline).
//!
//! Both implement [`pq_api::PriorityQueue`]; wrap in
//! [`pq_api::ItemwiseBatch`] for the batched drivers.

pub mod coarse;
pub mod fine;

pub use coarse::{CoarseLockPq, CoarseLockPqFactory};
pub use fine::{FineHeapPq, FineHeapPqFactory};
