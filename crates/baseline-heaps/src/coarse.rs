//! Coarse-grained lock-protected binary heap (TBB stand-in).

use parking_lot::Mutex;
use pq_api::{Entry, ItemwiseBatch, KeyType, PriorityQueue, QueueFactory, ValueType};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A `std::collections::BinaryHeap` behind a single mutex: the simplest
/// correct concurrent priority queue and the model for lock-protected
/// library queues like TBB's. Every operation serializes, which is
/// exactly the bottleneck the paper's Table 2 quantifies.
pub struct CoarseLockPq<K, V> {
    heap: Mutex<BinaryHeap<Reverse<Entry<K, V>>>>,
}

impl<K: KeyType, V: ValueType> CoarseLockPq<K, V> {
    pub fn new() -> Self {
        Self { heap: Mutex::new(BinaryHeap::new()) }
    }

    pub fn with_capacity(n: usize) -> Self {
        Self { heap: Mutex::new(BinaryHeap::with_capacity(n)) }
    }
}

impl<K: KeyType, V: ValueType> Default for CoarseLockPq<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: KeyType, V: ValueType> PriorityQueue<K, V> for CoarseLockPq<K, V> {
    fn insert(&self, key: K, value: V) {
        self.heap.lock().push(Reverse(Entry::new(key, value)));
    }

    fn delete_min(&self) -> Option<Entry<K, V>> {
        self.heap.lock().pop().map(|r| r.0)
    }

    fn len(&self) -> usize {
        self.heap.lock().len()
    }
}

/// Factory producing itemwise-batched coarse queues for the harness.
pub struct CoarseLockPqFactory {
    pub batch: usize,
}

impl Default for CoarseLockPqFactory {
    fn default() -> Self {
        Self { batch: 1024 }
    }
}

impl<K: KeyType, V: ValueType> QueueFactory<K, V> for CoarseLockPqFactory {
    type Queue = ItemwiseBatch<CoarseLockPq<K, V>>;

    fn name(&self) -> &str {
        "TBB(coarse)"
    }

    fn build(&self, capacity_hint: usize) -> Self::Queue {
        ItemwiseBatch::new(CoarseLockPq::with_capacity(capacity_hint), self.batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_drain() {
        let q = CoarseLockPq::<u32, u32>::new();
        for k in [5u32, 1, 9, 3, 7] {
            q.insert(k, k * 10);
        }
        let mut got = Vec::new();
        while let Some(e) = q.delete_min() {
            got.push((e.key, e.value));
        }
        assert_eq!(got, vec![(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]);
    }

    #[test]
    fn concurrent_conservation() {
        let q = CoarseLockPq::<u32, u32>::new();
        let deleted = std::sync::Mutex::new(0usize);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let q = &q;
                let deleted = &deleted;
                s.spawn(move || {
                    let mut mine = 0;
                    for i in 0..500u32 {
                        q.insert(t * 1000 + i, 0);
                        if i % 2 == 0 && q.delete_min().is_some() {
                            mine += 1;
                        }
                    }
                    *deleted.lock().unwrap() += mine;
                });
            }
        });
        assert_eq!(q.len() + *deleted.lock().unwrap(), 4 * 500);
    }

    #[test]
    fn empty_pop_is_none() {
        let q = CoarseLockPq::<u64, ()>::new();
        assert!(q.delete_min().is_none());
        assert!(q.is_empty());
    }
}
