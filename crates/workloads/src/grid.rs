//! 2-D obstacle grids for A* route planning (§6.5).
//!
//! "An obstacle rate r means r% of the nodes in the grid is an
//! obstacle. The obstacles are randomly distributed in the grid, and
//! there always exists a path from the start node to the target node.
//! For any node in the grid, it has 8 directions to move."
//!
//! We guarantee the path by carving a random monotone staircase from
//! start to goal after sprinkling obstacles, then verify reachability
//! with a BFS in debug builds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Grid generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct GridSpec {
    pub width: usize,
    pub height: usize,
    /// Fraction of cells that are obstacles (0.10 / 0.20 in the paper).
    pub obstacle_rate: f64,
    pub seed: u64,
}

impl GridSpec {
    pub fn new(side: usize, obstacle_rate: f64, seed: u64) -> Self {
        Self { width: side, height: side, obstacle_rate, seed }
    }
}

/// A generated grid. Start is `(0, 0)`, goal `(width-1, height-1)`.
#[derive(Debug, Clone)]
pub struct Grid {
    pub width: usize,
    pub height: usize,
    /// Row-major obstacle bitmap.
    blocked: Vec<bool>,
}

/// The 8 movement directions.
pub const DIRS: [(i64, i64); 8] =
    [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)];

impl Grid {
    pub fn generate(spec: GridSpec) -> Self {
        assert!(spec.width >= 2 && spec.height >= 2);
        assert!((0.0..1.0).contains(&spec.obstacle_rate));
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut blocked: Vec<bool> =
            (0..spec.width * spec.height).map(|_| rng.gen_bool(spec.obstacle_rate)).collect();
        // Carve a random monotone staircase start→goal so a path always
        // exists.
        let (mut x, mut y) = (0usize, 0usize);
        blocked[0] = false;
        while x + 1 < spec.width || y + 1 < spec.height {
            let go_x = if x + 1 >= spec.width {
                false
            } else if y + 1 >= spec.height {
                true
            } else {
                rng.gen_bool(0.5)
            };
            if go_x {
                x += 1;
            } else {
                y += 1;
            }
            blocked[y * spec.width + x] = false;
        }
        let g = Self { width: spec.width, height: spec.height, blocked };
        debug_assert!(g.bfs_reachable(), "carved path must connect start and goal");
        g
    }

    #[inline]
    pub fn cells(&self) -> usize {
        self.width * self.height
    }

    #[inline]
    pub fn idx(&self, x: usize, y: usize) -> usize {
        y * self.width + x
    }

    #[inline]
    pub fn is_blocked(&self, x: usize, y: usize) -> bool {
        self.blocked[self.idx(x, y)]
    }

    pub fn start(&self) -> (usize, usize) {
        (0, 0)
    }

    pub fn goal(&self) -> (usize, usize) {
        (self.width - 1, self.height - 1)
    }

    /// Manhattan distance to the goal — the paper's admissible heuristic
    /// (with unit step costs it under-estimates 8-directional movement
    /// even more, preserving admissibility).
    #[inline]
    pub fn manhattan_to_goal(&self, x: usize, y: usize) -> u64 {
        let (gx, gy) = self.goal();
        (gx as i64 - x as i64).unsigned_abs() + (gy as i64 - y as i64).unsigned_abs()
    }

    /// Neighbor iteration (8 directions, unblocked, in-bounds).
    pub fn neighbors(&self, x: usize, y: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        DIRS.iter().filter_map(move |&(dx, dy)| {
            let nx = x as i64 + dx;
            let ny = y as i64 + dy;
            if nx < 0 || ny < 0 || nx >= self.width as i64 || ny >= self.height as i64 {
                return None;
            }
            let (nx, ny) = (nx as usize, ny as usize);
            (!self.is_blocked(nx, ny)).then_some((nx, ny))
        })
    }

    /// BFS reachability start→goal (validation).
    pub fn bfs_reachable(&self) -> bool {
        let mut seen = vec![false; self.cells()];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(self.start());
        let goal = self.goal();
        while let Some((x, y)) = queue.pop_front() {
            if (x, y) == goal {
                return true;
            }
            for (nx, ny) in self.neighbors(x, y) {
                let i = self.idx(nx, ny);
                if !seen[i] {
                    seen[i] = true;
                    queue.push_back((nx, ny));
                }
            }
        }
        false
    }

    /// Fraction of blocked cells (sanity checks).
    pub fn actual_obstacle_rate(&self) -> f64 {
        self.blocked.iter().filter(|&&b| b).count() as f64 / self.cells() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_always_exists() {
        for seed in 0..5 {
            for rate in [0.1, 0.2, 0.4] {
                let g = Grid::generate(GridSpec::new(64, rate, seed));
                assert!(g.bfs_reachable(), "seed {seed} rate {rate}");
            }
        }
    }

    #[test]
    fn obstacle_rate_is_close() {
        let g = Grid::generate(GridSpec::new(200, 0.2, 11));
        let r = g.actual_obstacle_rate();
        assert!((0.15..0.25).contains(&r), "rate {r}");
    }

    #[test]
    fn endpoints_are_free() {
        let g = Grid::generate(GridSpec::new(32, 0.3, 4));
        assert!(!g.is_blocked(0, 0));
        let (gx, gy) = g.goal();
        assert!(!g.is_blocked(gx, gy));
    }

    #[test]
    fn neighbors_respect_bounds_and_obstacles() {
        let g = Grid::generate(GridSpec::new(16, 0.2, 8));
        let n: Vec<_> = g.neighbors(0, 0).collect();
        assert!(n.len() <= 3);
        for (x, y) in n {
            assert!(x < 16 && y < 16);
            assert!(!g.is_blocked(x, y));
        }
    }

    #[test]
    fn heuristic_is_zero_at_goal_and_positive_elsewhere() {
        let g = Grid::generate(GridSpec::new(16, 0.1, 3));
        let (gx, gy) = g.goal();
        assert_eq!(g.manhattan_to_goal(gx, gy), 0);
        assert!(g.manhattan_to_goal(0, 0) > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Grid::generate(GridSpec::new(48, 0.2, 42));
        let b = Grid::generate(GridSpec::new(48, 0.2, 42));
        assert_eq!(a.blocked, b.blocked);
    }
}
