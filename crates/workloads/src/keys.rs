//! Synthetic key streams (§6.3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Key distribution of the "Ins & Del" rows of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDist {
    /// Uniform random among 30-bit keys.
    Random,
    /// The random keys sorted ascending.
    Ascending,
    /// The random keys sorted descending.
    Descending,
}

impl KeyDist {
    pub const ALL: [KeyDist; 3] = [KeyDist::Random, KeyDist::Ascending, KeyDist::Descending];

    pub fn label(self) -> &'static str {
        match self {
            KeyDist::Random => "Random",
            KeyDist::Ascending => "Ascend",
            KeyDist::Descending => "Descend",
        }
    }
}

/// Generate `n` 30-bit keys with distribution `dist`, deterministically
/// from `seed`.
pub fn generate_keys(n: usize, dist: KeyDist, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys: Vec<u32> = (0..n).map(|_| rng.gen_range(0..1u32 << 30)).collect();
    match dist {
        KeyDist::Random => {}
        KeyDist::Ascending => keys.sort_unstable(),
        KeyDist::Descending => {
            keys.sort_unstable();
            keys.reverse();
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_30_bit() {
        let a = generate_keys(1000, KeyDist::Random, 7);
        let b = generate_keys(1000, KeyDist::Random, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&k| k < 1 << 30));
    }

    #[test]
    fn ascending_is_sorted_descending_is_reversed() {
        let up = generate_keys(500, KeyDist::Ascending, 3);
        assert!(up.windows(2).all(|w| w[0] <= w[1]));
        let down = generate_keys(500, KeyDist::Descending, 3);
        assert!(down.windows(2).all(|w| w[0] >= w[1]));
        // Same multiset for a given seed.
        let mut d = down.clone();
        d.sort_unstable();
        assert_eq!(d, up);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(generate_keys(100, KeyDist::Random, 1), generate_keys(100, KeyDist::Random, 2));
    }
}
