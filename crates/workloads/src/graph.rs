//! Random weighted digraphs for the SSSP/Dijkstra workload.
//!
//! The paper's introduction motivates BGPQ with "the Dijkstra's
//! algorithm in graph theory" (§1), and the GPU priority-queue work it
//! cites (\[7\], \[15\]) evaluates on SSSP. This generator produces
//! connected random digraphs in compressed-sparse-row form:
//!
//! * `n` vertices, average out-degree `d`;
//! * weights uniform in `[1, max_weight]`;
//! * connectivity guaranteed by a random spanning arborescence from
//!   vertex 0 (every vertex is reachable from the source).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct GraphSpec {
    pub vertices: usize,
    /// Average out-degree (total edges ≈ `vertices * degree`).
    pub degree: usize,
    pub max_weight: u32,
    pub seed: u64,
}

impl GraphSpec {
    pub fn new(vertices: usize, degree: usize, seed: u64) -> Self {
        Self { vertices, degree, max_weight: 100, seed }
    }
}

/// A weighted digraph in CSR form.
#[derive(Debug, Clone)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `edges` for vertex `v`.
    pub offsets: Vec<usize>,
    /// `(target, weight)` pairs.
    pub edges: Vec<(u32, u32)>,
}

impl Graph {
    pub fn generate(spec: GraphSpec) -> Self {
        assert!(spec.vertices >= 1);
        assert!(spec.max_weight >= 1);
        let n = spec.vertices;
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];

        // Spanning structure: vertex v > 0 gets an incoming edge from a
        // random earlier vertex, so everything is reachable from 0.
        for v in 1..n {
            let u = rng.gen_range(0..v);
            let w = rng.gen_range(1..=spec.max_weight);
            adj[u].push((v as u32, w));
        }
        // Random extra edges up to the requested degree.
        let extra = n.saturating_mul(spec.degree).saturating_sub(n - 1);
        for _ in 0..extra {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let w = rng.gen_range(1..=spec.max_weight);
            adj[u].push((v as u32, w));
        }

        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::new();
        offsets.push(0);
        for vertex_edges in adj.iter().take(n) {
            edges.extend_from_slice(vertex_edges);
            offsets.push(edges.len());
        }
        Self { offsets, edges }
    }

    pub fn vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Outgoing `(target, weight)` edges of `v`.
    pub fn neighbors(&self, v: usize) -> &[(u32, u32)] {
        &self.edges[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Reference sequential Dijkstra from `source`; returns the
    /// distance array (`u64::MAX` = unreachable).
    pub fn dijkstra_reference(&self, source: usize) -> Vec<u64> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.vertices();
        let mut dist = vec![u64::MAX; n];
        dist[source] = 0;
        let mut open = BinaryHeap::new();
        open.push(Reverse((0u64, source)));
        while let Some(Reverse((d, v))) = open.pop() {
            if d > dist[v] {
                continue;
            }
            for &(t, w) in self.neighbors(v) {
                let nd = d + w as u64;
                if nd < dist[t as usize] {
                    dist[t as usize] = nd;
                    open.push(Reverse((nd, t as usize)));
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let a = Graph::generate(GraphSpec::new(500, 4, 9));
        let b = Graph::generate(GraphSpec::new(500, 4, 9));
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.vertices(), 500);
        assert!(a.edge_count() >= 499, "spanning edges present");
    }

    #[test]
    fn every_vertex_reachable_from_source() {
        let g = Graph::generate(GraphSpec::new(300, 3, 4));
        let dist = g.dijkstra_reference(0);
        assert!(dist.iter().all(|&d| d != u64::MAX), "all vertices reachable");
    }

    #[test]
    fn weights_in_range() {
        let g = Graph::generate(GraphSpec::new(100, 5, 1));
        assert!(g.edges.iter().all(|&(_, w)| (1..=100).contains(&w)));
    }

    #[test]
    fn reference_satisfies_triangle_inequality() {
        let g = Graph::generate(GraphSpec::new(200, 4, 2));
        let dist = g.dijkstra_reference(0);
        for v in 0..g.vertices() {
            if dist[v] == u64::MAX {
                continue;
            }
            for &(t, w) in g.neighbors(v) {
                assert!(
                    dist[t as usize] <= dist[v] + w as u64,
                    "edge ({v}->{t}) violates relaxation"
                );
            }
        }
    }
}
