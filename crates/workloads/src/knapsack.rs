//! 0/1 knapsack instance generation (Martello, Pisinger & Toth style).
//!
//! The classic generator draws weights `w_i ~ U[1, R]` and sets profits
//! by correlation family:
//!
//! * **uncorrelated**: `p_i ~ U[1, R]`
//! * **weakly correlated**: `p_i ~ U[w_i - R/10, w_i + R/10]` (clamped ≥ 1)
//! * **strongly correlated**: `p_i = w_i + R/10`
//!
//! and capacity `c = ratio · Σw` (commonly 50%). Strongly correlated
//! instances are the hard family that makes the branch-and-bound search
//! trees of §6.5 explode.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Profit/weight correlation family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Correlation {
    Uncorrelated,
    Weak,
    Strong,
}

impl Correlation {
    pub fn label(self) -> &'static str {
        match self {
            Correlation::Uncorrelated => "uncorrelated",
            Correlation::Weak => "weakly-correlated",
            Correlation::Strong => "strongly-correlated",
        }
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct KnapsackSpec {
    pub items: usize,
    /// Coefficient range `R`.
    pub range: u64,
    pub correlation: Correlation,
    /// Capacity as a fraction of total weight (the classic 0.5).
    pub capacity_ratio: f64,
    pub seed: u64,
}

impl KnapsackSpec {
    pub fn new(items: usize, correlation: Correlation, seed: u64) -> Self {
        Self { items, range: 1000, correlation, capacity_ratio: 0.5, seed }
    }
}

/// A generated instance with items pre-sorted by profit density
/// (descending), the order branch-and-bound wants.
#[derive(Debug, Clone)]
pub struct KnapsackInstance {
    pub profits: Vec<u64>,
    pub weights: Vec<u64>,
    pub capacity: u64,
    pub spec_items: usize,
}

impl KnapsackInstance {
    pub fn generate(spec: KnapsackSpec) -> Self {
        assert!(spec.items >= 1 && spec.range >= 10);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let r = spec.range;
        let mut pairs: Vec<(u64, u64)> = (0..spec.items)
            .map(|_| {
                let w = rng.gen_range(1..=r);
                let p = match spec.correlation {
                    Correlation::Uncorrelated => rng.gen_range(1..=r),
                    Correlation::Weak => {
                        let lo = w.saturating_sub(r / 10).max(1);
                        let hi = w + r / 10;
                        rng.gen_range(lo..=hi)
                    }
                    Correlation::Strong => w + r / 10,
                };
                (p, w)
            })
            .collect();
        // Sort by density p/w descending (ties: heavier first for a
        // stable, deterministic order).
        pairs.sort_by(|a, b| (b.0 * a.1).cmp(&(a.0 * b.1)).then(b.1.cmp(&a.1)));
        let total_w: u64 = pairs.iter().map(|&(_, w)| w).sum();
        let capacity = ((total_w as f64) * spec.capacity_ratio) as u64;
        Self {
            profits: pairs.iter().map(|&(p, _)| p).collect(),
            weights: pairs.iter().map(|&(_, w)| w).collect(),
            capacity,
            spec_items: spec.items,
        }
    }

    pub fn items(&self) -> usize {
        self.profits.len()
    }

    /// Dantzig fractional upper bound for a node that has decided items
    /// `0..level` accumulating (`profit`, `weight`). Admissible: no 0/1
    /// completion can beat it.
    pub fn upper_bound(&self, level: usize, profit: u64, weight: u64) -> u64 {
        if weight > self.capacity {
            return 0;
        }
        let mut room = self.capacity - weight;
        let mut bound = profit;
        for i in level..self.items() {
            let (p, w) = (self.profits[i], self.weights[i]);
            if w <= room {
                room -= w;
                bound += p;
            } else {
                // Fractional fill (items are density-sorted).
                bound += p * room / w;
                break;
            }
        }
        bound
    }

    /// Exact optimum by dynamic programming — O(n·capacity); use only on
    /// small validation instances.
    pub fn optimum_dp(&self) -> u64 {
        let cap = self.capacity as usize;
        let mut best = vec![0u64; cap + 1];
        for i in 0..self.items() {
            let (p, w) = (self.profits[i], self.weights[i] as usize);
            for c in (w..=cap).rev() {
                best[c] = best[c].max(best[c - w] + p);
            }
        }
        best[cap]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = KnapsackInstance::generate(KnapsackSpec::new(50, Correlation::Weak, 9));
        let b = KnapsackInstance::generate(KnapsackSpec::new(50, Correlation::Weak, 9));
        assert_eq!(a.profits, b.profits);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.capacity, b.capacity);
    }

    #[test]
    fn density_sorted() {
        let inst = KnapsackInstance::generate(KnapsackSpec::new(100, Correlation::Uncorrelated, 1));
        for i in 1..inst.items() {
            let prev = inst.profits[i - 1] as f64 / inst.weights[i - 1] as f64;
            let cur = inst.profits[i] as f64 / inst.weights[i] as f64;
            assert!(prev >= cur - 1e-9, "density order violated at {i}");
        }
    }

    #[test]
    fn strong_correlation_formula() {
        let inst = KnapsackInstance::generate(KnapsackSpec::new(30, Correlation::Strong, 2));
        for i in 0..inst.items() {
            assert_eq!(inst.profits[i], inst.weights[i] + 100);
        }
    }

    #[test]
    fn upper_bound_is_admissible_vs_dp() {
        let inst = KnapsackInstance::generate(KnapsackSpec::new(24, Correlation::Weak, 3));
        let opt = inst.optimum_dp();
        let root_bound = inst.upper_bound(0, 0, 0);
        assert!(root_bound >= opt, "root bound {root_bound} below optimum {opt}");
    }

    #[test]
    fn bound_of_overweight_node_is_zero() {
        let inst = KnapsackInstance::generate(KnapsackSpec::new(10, Correlation::Uncorrelated, 4));
        assert_eq!(inst.upper_bound(0, 100, inst.capacity + 1), 0);
    }
}
