//! # workloads — deterministic input generators for the evaluation
//!
//! Everything the paper's Section 6 feeds its experiments:
//!
//! * [`keys`] — synthetic key streams: uniform 30-bit random keys (the
//!   open-sourced CBPQ supports only 30-bit keys, footnote 3),
//!   ascending-sorted and descending-sorted variants (§6.3).
//! * [`knapsack`] — 0/1 knapsack instances in the style of Martello,
//!   Pisinger & Toth's generator \[19\]: uncorrelated, weakly correlated
//!   and strongly correlated item families, 200–1000 items (§6.5).
//! * [`grid`] — 2-D A* maps: random obstacle grids (10%/20% rates) with
//!   a guaranteed start→goal path, 8-direction movement (§6.5).
//!
//! All generators are seeded and deterministic.

pub mod graph;
pub mod grid;
pub mod keys;
pub mod knapsack;

pub use graph::{Graph, GraphSpec};
pub use grid::{Grid, GridSpec};
pub use keys::{generate_keys, KeyDist};
pub use knapsack::{Correlation, KnapsackInstance, KnapsackSpec};
