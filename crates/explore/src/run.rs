//! Execute one workload under one schedule controller and check every
//! correctness oracle the repo has: linearizability ([`check_history`]),
//! key conservation, the §4.3 TARGET/MARKED protocol state machine
//! ([`check_collaboration`]), structural heap invariants at quiescence
//! — and, for the multi-queue fronts ([`crate::spec::FrontSpec`]),
//! strict front-level accounting: every key the front *acknowledged*
//! accepting must at quiescence be either delivered by an acknowledged
//! delete or still resident, exactly once.

use crate::spec::{FrontSpec, WorkOp, WorkloadSpec};
use bgpq::{check_collaboration, check_history, Bgpq, BgpqOptions};
use bgpq::{HistoryEvent, HistoryOp, ProtocolEvent};
use bgpq_combine::{CombineBackend, CombineShared, CombinerOptions, Op};
use bgpq_recover::SalvageReport;
use bgpq_runtime::{FaultAction, FaultPlan, Platform, SimPlatform};
use bgpq_shard::{RecoveryOptions, ShardedBgpq, ShardedOptions};
use gpu_sim::sched::SimWorker;
use gpu_sim::{launch, Decision, GpuConfig, ScheduleController, Scheduler};
use pq_api::{Entry, QueueError};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, Once};

/// Why one explored schedule failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The linearization history has no valid sequential witness.
    History(String),
    /// A delete returned a key that was never inserted (or more copies
    /// than were inserted).
    Conservation(String),
    /// The TARGET/MARKED handshake left its state machine.
    Collaboration(String),
    /// Quiescent structural check failed (size mismatch or heap
    /// invariant).
    Invariant(String),
    /// Front-level accounting broke: a multi-queue front acknowledged
    /// an operation whose effect is neither delivered nor resident at
    /// quiescence (or delivered keys it never acknowledged accepting).
    FrontAccounting(String),
    /// The scheduler's deadlock detector fired.
    Deadlock(String),
    /// An agent panicked with no fault plan to excuse it.
    UnexpectedPanic(String),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::History(s) => write!(f, "linearizability: {s}"),
            Violation::Conservation(s) => write!(f, "conservation: {s}"),
            Violation::Collaboration(s) => write!(f, "collaboration protocol: {s}"),
            Violation::Invariant(s) => write!(f, "quiescent invariant: {s}"),
            Violation::FrontAccounting(s) => write!(f, "front accounting: {s}"),
            Violation::Deadlock(s) => write!(f, "deadlock: {s}"),
            Violation::UnexpectedPanic(s) => write!(f, "unexpected panic: {s}"),
        }
    }
}

/// Everything observed from one controlled run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The scheduler's full decision log (replay witness).
    pub decisions: Vec<Decision>,
    /// Linearized operations, sorted by sequence number.
    pub events: Vec<HistoryEvent<u32>>,
    /// TARGET/MARKED transitions in recording order.
    pub protocol: Vec<ProtocolEvent>,
    /// Queue was poisoned by a (planned) crash.
    pub poisoned: bool,
    /// Panic message that escaped the launch, if any.
    pub panic: Option<String>,
    /// First oracle failure, or `None` for a clean schedule.
    pub violation: Option<Violation>,
}

/// Silence panic backtraces for the *expected* panics a fault-injecting
/// exploration produces in bulk (injected crashes, peer aborts, planned
/// deadlocks); everything else still reaches the default hook.
/// Idempotent; callable from parallel tests.
pub fn install_quiet_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = payload_str(info.payload());
            let expected = ["injected fault", "aborting agent", "gpu-sim: deadlock"]
                .iter()
                .any(|pat| msg.contains(pat));
            if !expected {
                default(info);
            }
        }));
    });
}

fn payload_str(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Run `spec` under `ctrl` on the simulator and check every oracle.
///
/// The launch geometry is one agent per script. Operation errors
/// (`Full`, `Poisoned`, watchdog timeouts) fail-stop the affected
/// block's script — the oracles then judge the truncated history, which
/// is exactly what they would see after a real crash.
pub fn run_schedule(spec: &WorkloadSpec, ctrl: Arc<dyn ScheduleController>) -> RunOutcome {
    match spec.front {
        FrontSpec::Single => run_single(spec, ctrl),
        FrontSpec::Sharded { shards } => run_sharded(spec, ctrl, shards),
        FrontSpec::Combined => run_combined(spec, ctrl),
    }
}

fn run_single(spec: &WorkloadSpec, ctrl: Arc<dyn ScheduleController>) -> RunOutcome {
    type Q = Arc<Bgpq<u32, u32, SimPlatform>>;
    let cfg = GpuConfig::new(spec.blocks(), 32);
    let opts = BgpqOptions {
        node_capacity: spec.k,
        max_nodes: spec.max_nodes,
        use_collaboration: spec.use_collaboration,
        mutation: spec.mutation,
        ..Default::default()
    };
    let stash: Mutex<Option<(Q, Arc<Scheduler>)>> = Mutex::new(None);
    let result = catch_unwind(AssertUnwindSafe(|| {
        launch(
            cfg,
            |sched| {
                sched.set_controller(Arc::clone(&ctrl));
                let mut plat = SimPlatform::new(sched, opts.max_nodes + 1, cfg.cost, cfg.block_dim);
                if !spec.faults.is_empty() {
                    plat = plat.with_faults(Arc::new(FaultPlan::from_rules(&spec.faults)));
                }
                let q: Q = Arc::new(Bgpq::with_platform(plat, opts).with_history());
                *stash.lock().unwrap() = Some((Arc::clone(&q), Arc::clone(sched)));
                q
            },
            |ctx, q: &Q| {
                let mut out: Vec<Entry<u32, u32>> = Vec::new();
                for op in &spec.scripts[ctx.block_id()] {
                    let r = match op {
                        WorkOp::Insert(keys) => {
                            let items: Vec<Entry<u32, u32>> =
                                keys.iter().map(|&x| Entry::new(x, x)).collect();
                            q.try_insert(ctx.worker(), &items).map(|()| 0)
                        }
                        WorkOp::DeleteMin(n) => {
                            out.clear();
                            q.try_delete_min(ctx.worker(), &mut out, *n)
                        }
                    };
                    if r.is_err() {
                        return;
                    }
                }
            },
        );
    }));
    let (q, sched) = stash.lock().unwrap().take().expect("setup closure always runs");
    let decisions = sched.take_decisions();
    let events = q.take_history();
    let protocol = q.take_protocol();
    let poisoned = q.is_poisoned();
    let panic = result.err().map(|p| payload_str(p.as_ref()).to_string());
    let complete = panic.is_none() && !poisoned;
    let violation = classify(spec, &q, &events, &protocol, panic.as_deref(), complete);
    RunOutcome { decisions, events, protocol, poisoned, panic, violation }
}

/// Replay a sparse-override schedule (the `.sched` form).
pub fn replay(spec: &WorkloadSpec, overrides: &[(u64, gpu_sim::AgentId)]) -> RunOutcome {
    run_schedule(spec, Arc::new(crate::strategy::OverrideStrategy::new(overrides)))
}

/// Acknowledged front-level operations in completion order. A front op
/// is recorded only after the front returned `Ok` — the accounting
/// oracle judges exactly what the front *promised*, so an op lost to a
/// planned crash (no ack) never unbalances it. Sequence numbers are
/// completion ordinals: good enough for multiset accounting, not a
/// linearization witness (the fronts are relaxed by design).
struct FrontLog(Mutex<Vec<HistoryEvent<u32>>>);

impl FrontLog {
    fn new() -> Self {
        Self(Mutex::new(Vec::new()))
    }

    fn record(&self, op: HistoryOp<u32>) {
        let mut v = self.0.lock().unwrap();
        let seq = v.len() as u64 + 1;
        v.push(HistoryEvent { seq, invoked: seq, responded: seq, op });
    }

    fn take(&self) -> Vec<HistoryEvent<u32>> {
        std::mem::take(&mut self.0.lock().unwrap())
    }
}

/// Conservation for a front log: every delivered key must be covered by
/// an acknowledged insert, as *multisets over the whole run* — not
/// prefix-wise like [`check_conservation`]. Completion order is not
/// linearization order: a delete may legitimately complete before the
/// inserting agent's acknowledgment returns (the insert linearized
/// inside the heap first), so a delivered key can precede its insert's
/// ack in the log without any bug.
fn check_front_conservation(events: &[HistoryEvent<u32>]) -> Option<String> {
    let mut balance: HashMap<u32, i64> = HashMap::new();
    for e in events {
        if let HistoryOp::Insert { keys } = &e.op {
            for &k in keys {
                *balance.entry(k).or_default() += 1;
            }
        }
    }
    for e in events {
        if let HistoryOp::DeleteMin { keys, .. } = &e.op {
            for &k in keys {
                let b = balance.entry(k).or_default();
                *b -= 1;
                if *b < 0 {
                    return Some(format!(
                        "key {k} delivered more times than acknowledged inserted"
                    ));
                }
            }
        }
    }
    None
}

/// Acknowledged balance of a front log: inserted minus delivered keys.
fn front_balance(events: &[HistoryEvent<u32>]) -> i64 {
    events
        .iter()
        .map(|e| match &e.op {
            HistoryOp::Insert { keys } => keys.len() as i64,
            HistoryOp::DeleteMin { keys, .. } => -(keys.len() as i64),
        })
        .sum()
}

/// Salvage hook for simulator-platform shards: same accounting as the
/// CPU path (`bgpq_recover::salvage_heap`) minus the force-unlock — a
/// dead sim agent's locks were already handed off at its fail-stop.
fn sim_salvage(
    q: &Bgpq<u32, u32, SimPlatform>,
    w: &mut SimWorker,
    out: &mut Vec<Entry<u32, u32>>,
) -> SalvageReport {
    SalvageReport::from_outcome(q.salvage_reset(w, out))
}

/// Run the scripts against a `bgpq-shard` router (circuit breaker +
/// salvage re-admission armed). Inserts use the agent id as routing
/// affinity; the delete sample is the full shard set, so routing is
/// deterministic given the schedule. The fault plan is attached only to
/// `spec.fault_shard`'s platform when set.
fn run_sharded(
    spec: &WorkloadSpec,
    ctrl: Arc<dyn ScheduleController>,
    shards: usize,
) -> RunOutcome {
    type Q = Arc<ShardedBgpq<u32, u32, SimPlatform>>;
    let cfg = GpuConfig::new(spec.blocks(), 32);
    let qopts = BgpqOptions {
        node_capacity: spec.k,
        max_nodes: spec.max_nodes,
        use_collaboration: spec.use_collaboration,
        mutation: spec.mutation,
        ..Default::default()
    };
    let sopts = ShardedOptions::new(shards, shards, qopts).with_recovery(RecoveryOptions {
        base_backoff_ops: 2,
        max_backoff_ops: 8,
        trial_ops: 1,
        max_generations: 2,
    });
    let log = FrontLog::new();
    let stash: Mutex<Option<(Q, Arc<Scheduler>)>> = Mutex::new(None);
    let result = catch_unwind(AssertUnwindSafe(|| {
        launch(
            cfg,
            |sched| {
                sched.set_controller(Arc::clone(&ctrl));
                let plan = (!spec.faults.is_empty())
                    .then(|| Arc::new(FaultPlan::from_rules(&spec.faults)));
                let platforms: Vec<SimPlatform> = (0..shards)
                    .map(|i| {
                        let p =
                            SimPlatform::new(sched, qopts.max_nodes + 1, cfg.cost, cfg.block_dim);
                        match (&plan, spec.fault_shard) {
                            (Some(plan), None) => p.with_faults(Arc::clone(plan)),
                            (Some(plan), Some(fs)) if fs == i => p.with_faults(Arc::clone(plan)),
                            _ => p,
                        }
                    })
                    .collect();
                let q: Q =
                    Arc::new(ShardedBgpq::with_platforms_recovering(platforms, sopts, sim_salvage));
                *stash.lock().unwrap() = Some((Arc::clone(&q), Arc::clone(sched)));
                q
            },
            |ctx, q: &Q| {
                let agent = ctx.block_id();
                // Deterministic per-agent sampling state (the full
                // sample makes routing hint-driven anyway).
                let mut rng = (agent as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                let mut out: Vec<Entry<u32, u32>> = Vec::new();
                for op in &spec.scripts[agent] {
                    match op {
                        WorkOp::Insert(keys) => {
                            let items: Vec<Entry<u32, u32>> =
                                keys.iter().map(|&x| Entry::new(x, x)).collect();
                            match q.try_insert(ctx.worker(), agent, &items) {
                                Ok(()) => log.record(HistoryOp::Insert { keys: keys.clone() }),
                                Err(_) => return,
                            }
                        }
                        WorkOp::DeleteMin(n) => {
                            out.clear();
                            match q.try_delete_min(ctx.worker(), &mut rng, &mut out, *n) {
                                Ok(_) => log.record(HistoryOp::DeleteMin {
                                    requested: *n,
                                    keys: out.iter().map(|e| e.key).collect(),
                                }),
                                Err(_) => return,
                            }
                        }
                    }
                }
            },
        );
    }));
    let (q, sched) = stash.lock().unwrap().take().expect("setup closure always runs");
    let decisions = sched.take_decisions();
    let events = log.take();
    let poisoned = (0..shards).any(|i| q.shard(i).is_poisoned());
    let panic = result.err().map(|p| payload_str(p.as_ref()).to_string());
    let violation = classify_sharded(spec, &q, &events, panic.as_deref(), poisoned);
    RunOutcome { decisions, events, protocol: Vec::new(), poisoned, panic, violation }
}

fn classify_sharded(
    spec: &WorkloadSpec,
    q: &ShardedBgpq<u32, u32, SimPlatform>,
    events: &[HistoryEvent<u32>],
    panic: Option<&str>,
    poisoned: bool,
) -> Option<Violation> {
    if let Some(msg) = panic {
        if msg.contains("deadlock") {
            return Some(Violation::Deadlock(msg.to_string()));
        }
        let planned_crash = spec.faults.iter().any(|r| matches!(r.action, FaultAction::Panic));
        let crash_shaped = msg.contains("injected fault") || msg.contains("aborting agent");
        if !(planned_crash && crash_shaped) {
            return Some(Violation::UnexpectedPanic(msg.to_string()));
        }
    }
    if let Some(msg) = check_front_conservation(events) {
        return Some(Violation::FrontAccounting(msg));
    }
    // Strict accounting holds even across the *planned* crash: a
    // sharded spec that injects a crash must construct it so the dying
    // agent holds no keys (e.g. panic on first lock acquisition — see
    // `WorkloadSpec::sharded_mix`), making every acknowledged key's
    // whereabouts exact in every schedule.
    let balance = front_balance(events);
    if q.len() as i64 != balance {
        return Some(Violation::FrontAccounting(format!(
            "quiescent len {} != acknowledged balance {balance} \
             (acked-inserted minus acked-delivered)",
            q.len()
        )));
    }
    if panic.is_none() && !poisoned {
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| {
            q.check_invariants();
        })) {
            return Some(Violation::Invariant(payload_str(p.as_ref()).to_string()));
        }
    }
    None
}

/// Combining backend for an explored agent: batched calls to the shared
/// backing heap, virtual-time backoff for waiting, the agent id as the
/// submission lane, and front-state access tags forwarded to the sim
/// platform so the independence relation sees combiner traffic.
struct ExploreBackend<'a> {
    q: &'a Bgpq<u32, u32, SimPlatform>,
    w: &'a mut SimWorker,
    lane: usize,
}

impl CombineBackend<u32, u32> for ExploreBackend<'_> {
    const CAN_PARK: bool = false;

    fn batch_capacity(&self) -> usize {
        self.q.node_capacity()
    }

    fn try_insert_batch(&mut self, items: &[Entry<u32, u32>]) -> Result<(), QueueError> {
        self.q.try_insert(self.w, items)
    }

    fn try_delete_min_batch(
        &mut self,
        out: &mut Vec<Entry<u32, u32>>,
        count: usize,
    ) -> Result<usize, QueueError> {
        self.q.try_delete_min(self.w, out, count)
    }

    fn relax(&mut self) {
        self.q.platform().backoff(self.w);
    }

    fn touch_shared(&mut self, write: bool) {
        self.q.platform().touch_shared(self.w, write);
    }

    fn lane(&self) -> usize {
        self.lane
    }
}

/// Run the scripts through a `bgpq-combine` front over one backing
/// heap. Script ops are split into single-op submissions (the front's
/// unit of work); the backing heap keeps its own linearization history,
/// so this branch checks both heap-level linearizability *and*
/// front-level accounting.
fn run_combined(spec: &WorkloadSpec, ctrl: Arc<dyn ScheduleController>) -> RunOutcome {
    type St = (Arc<Bgpq<u32, u32, SimPlatform>>, CombineShared<u32, u32>);
    type Q = Arc<St>;
    let cfg = GpuConfig::new(spec.blocks(), 32);
    let opts = BgpqOptions {
        node_capacity: spec.k,
        max_nodes: spec.max_nodes,
        use_collaboration: spec.use_collaboration,
        mutation: spec.mutation,
        ..Default::default()
    };
    let log = FrontLog::new();
    let stash: Mutex<Option<(Q, Arc<Scheduler>)>> = Mutex::new(None);
    let result = catch_unwind(AssertUnwindSafe(|| {
        launch(
            cfg,
            |sched| {
                sched.set_controller(Arc::clone(&ctrl));
                let mut plat = SimPlatform::new(sched, opts.max_nodes + 1, cfg.cost, cfg.block_dim);
                if !spec.faults.is_empty() {
                    plat = plat.with_faults(Arc::new(FaultPlan::from_rules(&spec.faults)));
                }
                let q = Arc::new(Bgpq::with_platform(plat, opts).with_history());
                let front = CombineShared::new(
                    q.node_capacity(),
                    CombinerOptions {
                        rings: spec.blocks(),
                        initial_window: 1,
                        mutation: spec.mutation,
                    },
                );
                let st: Q = Arc::new((q, front));
                *stash.lock().unwrap() = Some((Arc::clone(&st), Arc::clone(sched)));
                st
            },
            |ctx, st: &Q| {
                let agent = ctx.block_id();
                let mut backend = ExploreBackend { q: &st.0, w: ctx.worker(), lane: agent };
                for op in &spec.scripts[agent] {
                    match op {
                        WorkOp::Insert(keys) => {
                            for &k in keys {
                                match st.1.submit(&mut backend, Op::Insert(Entry::new(k, k))) {
                                    Ok(_) => log.record(HistoryOp::Insert { keys: vec![k] }),
                                    Err(_) => return,
                                }
                            }
                        }
                        WorkOp::DeleteMin(n) => {
                            for _ in 0..*n {
                                match st.1.submit(&mut backend, Op::DeleteMin) {
                                    Ok(got) => log.record(HistoryOp::DeleteMin {
                                        requested: 1,
                                        keys: got.iter().map(|e| e.key).collect(),
                                    }),
                                    Err(_) => return,
                                }
                            }
                        }
                    }
                }
            },
        );
    }));
    let (st, sched) = stash.lock().unwrap().take().expect("setup closure always runs");
    let decisions = sched.take_decisions();
    let events = st.0.take_history();
    let protocol = st.0.take_protocol();
    let front_events = log.take();
    let poisoned = st.0.is_poisoned() || st.1.is_poisoned();
    let panic = result.err().map(|p| payload_str(p.as_ref()).to_string());
    let complete = panic.is_none() && !poisoned;
    let violation = classify_combined(
        spec,
        &st.0,
        &events,
        &front_events,
        &protocol,
        panic.as_deref(),
        complete,
    );
    RunOutcome { decisions, events, protocol, poisoned, panic, violation }
}

#[allow(clippy::too_many_arguments)]
fn classify_combined(
    spec: &WorkloadSpec,
    q: &Bgpq<u32, u32, SimPlatform>,
    heap_events: &[HistoryEvent<u32>],
    front_events: &[HistoryEvent<u32>],
    protocol: &[ProtocolEvent],
    panic: Option<&str>,
    complete: bool,
) -> Option<Violation> {
    if let Some(msg) = panic {
        if msg.contains("deadlock") {
            return Some(Violation::Deadlock(msg.to_string()));
        }
        let planned_crash = spec.faults.iter().any(|r| matches!(r.action, FaultAction::Panic));
        let crash_shaped = msg.contains("injected fault") || msg.contains("aborting agent");
        if !(planned_crash && crash_shaped) {
            return Some(Violation::UnexpectedPanic(msg.to_string()));
        }
    }
    if let Some(v) = check_history(heap_events) {
        return Some(Violation::History(format!("seq {}: {}", v.seq, v.detail)));
    }
    if let Some(msg) = check_conservation(heap_events) {
        return Some(Violation::Conservation(msg));
    }
    if let Some(msg) = check_front_conservation(front_events) {
        return Some(Violation::FrontAccounting(msg));
    }
    if let Some(msg) = check_collaboration(protocol, complete) {
        return Some(Violation::Collaboration(msg));
    }
    if complete {
        // Strict front accounting: the heap must hold exactly what the
        // front acknowledged accepting minus what it acknowledged
        // delivering. An acked-but-never-executed request (the tenure
        // handoff bug) leaves the heap short; front-level recording is
        // the only oracle that can see it, because the heap's own
        // history never contains the dropped operation at all.
        let balance = front_balance(front_events);
        if q.len() as i64 != balance {
            return Some(Violation::FrontAccounting(format!(
                "quiescent len {} != acknowledged balance {balance} \
                 (acked-inserted minus acked-delivered)",
                q.len()
            )));
        }
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| q.check_invariants())) {
            return Some(Violation::Invariant(payload_str(p.as_ref()).to_string()));
        }
    }
    None
}

fn classify(
    spec: &WorkloadSpec,
    q: &Bgpq<u32, u32, SimPlatform>,
    events: &[HistoryEvent<u32>],
    protocol: &[ProtocolEvent],
    panic: Option<&str>,
    complete: bool,
) -> Option<Violation> {
    if let Some(msg) = panic {
        if msg.contains("deadlock") {
            return Some(Violation::Deadlock(msg.to_string()));
        }
        let planned_crash = spec.faults.iter().any(|r| matches!(r.action, FaultAction::Panic));
        let crash_shaped = msg.contains("injected fault") || msg.contains("aborting agent");
        if !(planned_crash && crash_shaped) {
            return Some(Violation::UnexpectedPanic(msg.to_string()));
        }
    }
    if let Some(v) = check_history(events) {
        return Some(Violation::History(format!("seq {}: {}", v.seq, v.detail)));
    }
    if let Some(msg) = check_conservation(events) {
        return Some(Violation::Conservation(msg));
    }
    if let Some(msg) = check_collaboration(protocol, complete) {
        return Some(Violation::Collaboration(msg));
    }
    if complete {
        let model_len: i64 = events
            .iter()
            .map(|e| match &e.op {
                HistoryOp::Insert { keys } => keys.len() as i64,
                HistoryOp::DeleteMin { keys, .. } => -(keys.len() as i64),
            })
            .sum();
        if q.len() as i64 != model_len {
            return Some(Violation::Invariant(format!(
                "quiescent len {} != linearized model len {model_len}",
                q.len()
            )));
        }
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| q.check_invariants())) {
            return Some(Violation::Invariant(payload_str(p.as_ref()).to_string()));
        }
    }
    None
}

/// Deleted keys must be a sub-multiset of inserted keys — checked
/// independently of [`check_history`] because it holds even on
/// truncated (crashed) histories where sequential replay is vacuous.
fn check_conservation(events: &[HistoryEvent<u32>]) -> Option<String> {
    let mut balance: HashMap<u32, i64> = HashMap::new();
    for e in events {
        match &e.op {
            HistoryOp::Insert { keys } => {
                for &k in keys {
                    *balance.entry(k).or_default() += 1;
                }
            }
            HistoryOp::DeleteMin { keys, .. } => {
                for &k in keys {
                    let b = balance.entry(k).or_default();
                    *b -= 1;
                    if *b < 0 {
                        return Some(format!(
                            "key {k} deleted more times than inserted (at seq {})",
                            e.seq
                        ));
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::PrefixStrategy;

    #[test]
    fn default_schedule_of_key_steal_mix_is_clean_and_deterministic() {
        let spec = WorkloadSpec::key_steal_mix(4);
        let a = run_schedule(&spec, Arc::new(PrefixStrategy { prefix: Vec::new() }));
        assert_eq!(a.violation, None, "{:?}", a.violation);
        assert!(a.panic.is_none() && !a.poisoned);
        let b = run_schedule(&spec, Arc::new(PrefixStrategy { prefix: Vec::new() }));
        assert_eq!(a.decisions, b.decisions, "decision logs must be bit-identical");
        assert_eq!(a.events, b.events, "histories must be bit-identical");
    }

    #[test]
    fn default_schedule_of_sharded_mix_is_clean_despite_planned_crash() {
        install_quiet_panic_hook();
        let spec = WorkloadSpec::sharded_mix(2);
        let out = run_schedule(&spec, Arc::new(PrefixStrategy { prefix: Vec::new() }));
        assert_eq!(out.violation, None, "{:?}", out.violation);
        let again = run_schedule(&spec, Arc::new(PrefixStrategy { prefix: Vec::new() }));
        assert_eq!(out.decisions, again.decisions, "decision logs must be bit-identical");
        assert_eq!(out.events, again.events, "front logs must be bit-identical");
    }

    #[test]
    fn default_schedule_of_combined_mix_is_clean_and_deterministic() {
        let spec = WorkloadSpec::combined_mix(2);
        let out = run_schedule(&spec, Arc::new(PrefixStrategy { prefix: Vec::new() }));
        assert_eq!(out.violation, None, "{:?}", out.violation);
        assert!(out.panic.is_none() && !out.poisoned);
        let again = run_schedule(&spec, Arc::new(PrefixStrategy { prefix: Vec::new() }));
        assert_eq!(out.decisions, again.decisions, "decision logs must be bit-identical");
    }

    #[test]
    fn conservation_flags_fabricated_keys() {
        let events = vec![
            HistoryEvent {
                seq: 1,
                invoked: 0,
                responded: 1,
                op: HistoryOp::Insert { keys: vec![5] },
            },
            HistoryEvent {
                seq: 2,
                invoked: 2,
                responded: 3,
                op: HistoryOp::DeleteMin { requested: 2, keys: vec![5, 9] },
            },
        ];
        assert!(check_conservation(&events).unwrap().contains("key 9"));
    }

    #[test]
    fn planned_crash_is_not_a_violation_but_deadlock_would_be() {
        use bgpq_runtime::{FaultRule, InjectionPoint};
        install_quiet_panic_hook();
        let spec = WorkloadSpec::key_steal_mix(4).with_faults(vec![FaultRule {
            point: InjectionPoint::MidInsertHeapify,
            nth: 2,
            action: FaultAction::Panic,
        }]);
        let out = run_schedule(&spec, Arc::new(PrefixStrategy { prefix: Vec::new() }));
        assert!(out.panic.is_some(), "the planned crash must fire");
        assert_eq!(out.violation, None, "{:?}", out.violation);
    }
}
