//! Execute one workload under one schedule controller and check every
//! correctness oracle the repo has: linearizability ([`check_history`]),
//! key conservation, the §4.3 TARGET/MARKED protocol state machine
//! ([`check_collaboration`]), and structural heap invariants at
//! quiescence.

use crate::spec::{WorkOp, WorkloadSpec};
use bgpq::{check_collaboration, check_history, Bgpq, BgpqOptions};
use bgpq::{HistoryEvent, HistoryOp, ProtocolEvent};
use bgpq_runtime::{FaultAction, FaultPlan, SimPlatform};
use gpu_sim::{launch, Decision, GpuConfig, ScheduleController, Scheduler};
use pq_api::Entry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, Once};

/// Why one explored schedule failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The linearization history has no valid sequential witness.
    History(String),
    /// A delete returned a key that was never inserted (or more copies
    /// than were inserted).
    Conservation(String),
    /// The TARGET/MARKED handshake left its state machine.
    Collaboration(String),
    /// Quiescent structural check failed (size mismatch or heap
    /// invariant).
    Invariant(String),
    /// The scheduler's deadlock detector fired.
    Deadlock(String),
    /// An agent panicked with no fault plan to excuse it.
    UnexpectedPanic(String),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::History(s) => write!(f, "linearizability: {s}"),
            Violation::Conservation(s) => write!(f, "conservation: {s}"),
            Violation::Collaboration(s) => write!(f, "collaboration protocol: {s}"),
            Violation::Invariant(s) => write!(f, "quiescent invariant: {s}"),
            Violation::Deadlock(s) => write!(f, "deadlock: {s}"),
            Violation::UnexpectedPanic(s) => write!(f, "unexpected panic: {s}"),
        }
    }
}

/// Everything observed from one controlled run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The scheduler's full decision log (replay witness).
    pub decisions: Vec<Decision>,
    /// Linearized operations, sorted by sequence number.
    pub events: Vec<HistoryEvent<u32>>,
    /// TARGET/MARKED transitions in recording order.
    pub protocol: Vec<ProtocolEvent>,
    /// Queue was poisoned by a (planned) crash.
    pub poisoned: bool,
    /// Panic message that escaped the launch, if any.
    pub panic: Option<String>,
    /// First oracle failure, or `None` for a clean schedule.
    pub violation: Option<Violation>,
}

/// Silence panic backtraces for the *expected* panics a fault-injecting
/// exploration produces in bulk (injected crashes, peer aborts, planned
/// deadlocks); everything else still reaches the default hook.
/// Idempotent; callable from parallel tests.
pub fn install_quiet_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = payload_str(info.payload());
            let expected = ["injected fault", "aborting agent", "gpu-sim: deadlock"]
                .iter()
                .any(|pat| msg.contains(pat));
            if !expected {
                default(info);
            }
        }));
    });
}

fn payload_str(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Run `spec` under `ctrl` on the simulator and check every oracle.
///
/// The launch geometry is one agent per script. Operation errors
/// (`Full`, `Poisoned`, watchdog timeouts) fail-stop the affected
/// block's script — the oracles then judge the truncated history, which
/// is exactly what they would see after a real crash.
pub fn run_schedule(spec: &WorkloadSpec, ctrl: Arc<dyn ScheduleController>) -> RunOutcome {
    type Q = Arc<Bgpq<u32, u32, SimPlatform>>;
    let cfg = GpuConfig::new(spec.blocks(), 32);
    let opts = BgpqOptions {
        node_capacity: spec.k,
        max_nodes: spec.max_nodes,
        use_collaboration: spec.use_collaboration,
        mutation: spec.mutation,
        ..Default::default()
    };
    let stash: Mutex<Option<(Q, Arc<Scheduler>)>> = Mutex::new(None);
    let result = catch_unwind(AssertUnwindSafe(|| {
        launch(
            cfg,
            |sched| {
                sched.set_controller(Arc::clone(&ctrl));
                let mut plat = SimPlatform::new(sched, opts.max_nodes + 1, cfg.cost, cfg.block_dim);
                if !spec.faults.is_empty() {
                    plat = plat.with_faults(Arc::new(FaultPlan::from_rules(&spec.faults)));
                }
                let q: Q = Arc::new(Bgpq::with_platform(plat, opts).with_history());
                *stash.lock().unwrap() = Some((Arc::clone(&q), Arc::clone(sched)));
                q
            },
            |ctx, q: &Q| {
                let mut out: Vec<Entry<u32, u32>> = Vec::new();
                for op in &spec.scripts[ctx.block_id()] {
                    let r = match op {
                        WorkOp::Insert(keys) => {
                            let items: Vec<Entry<u32, u32>> =
                                keys.iter().map(|&x| Entry::new(x, x)).collect();
                            q.try_insert(ctx.worker(), &items).map(|()| 0)
                        }
                        WorkOp::DeleteMin(n) => {
                            out.clear();
                            q.try_delete_min(ctx.worker(), &mut out, *n)
                        }
                    };
                    if r.is_err() {
                        return;
                    }
                }
            },
        );
    }));
    let (q, sched) = stash.lock().unwrap().take().expect("setup closure always runs");
    let decisions = sched.take_decisions();
    let events = q.take_history();
    let protocol = q.take_protocol();
    let poisoned = q.is_poisoned();
    let panic = result.err().map(|p| payload_str(p.as_ref()).to_string());
    let complete = panic.is_none() && !poisoned;
    let violation = classify(spec, &q, &events, &protocol, panic.as_deref(), complete);
    RunOutcome { decisions, events, protocol, poisoned, panic, violation }
}

/// Replay a sparse-override schedule (the `.sched` form).
pub fn replay(spec: &WorkloadSpec, overrides: &[(u64, gpu_sim::AgentId)]) -> RunOutcome {
    run_schedule(spec, Arc::new(crate::strategy::OverrideStrategy::new(overrides)))
}

fn classify(
    spec: &WorkloadSpec,
    q: &Bgpq<u32, u32, SimPlatform>,
    events: &[HistoryEvent<u32>],
    protocol: &[ProtocolEvent],
    panic: Option<&str>,
    complete: bool,
) -> Option<Violation> {
    if let Some(msg) = panic {
        if msg.contains("deadlock") {
            return Some(Violation::Deadlock(msg.to_string()));
        }
        let planned_crash = spec.faults.iter().any(|r| matches!(r.action, FaultAction::Panic));
        let crash_shaped = msg.contains("injected fault") || msg.contains("aborting agent");
        if !(planned_crash && crash_shaped) {
            return Some(Violation::UnexpectedPanic(msg.to_string()));
        }
    }
    if let Some(v) = check_history(events) {
        return Some(Violation::History(format!("seq {}: {}", v.seq, v.detail)));
    }
    if let Some(msg) = check_conservation(events) {
        return Some(Violation::Conservation(msg));
    }
    if let Some(msg) = check_collaboration(protocol, complete) {
        return Some(Violation::Collaboration(msg));
    }
    if complete {
        let model_len: i64 = events
            .iter()
            .map(|e| match &e.op {
                HistoryOp::Insert { keys } => keys.len() as i64,
                HistoryOp::DeleteMin { keys, .. } => -(keys.len() as i64),
            })
            .sum();
        if q.len() as i64 != model_len {
            return Some(Violation::Invariant(format!(
                "quiescent len {} != linearized model len {model_len}",
                q.len()
            )));
        }
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| q.check_invariants())) {
            return Some(Violation::Invariant(payload_str(p.as_ref()).to_string()));
        }
    }
    None
}

/// Deleted keys must be a sub-multiset of inserted keys — checked
/// independently of [`check_history`] because it holds even on
/// truncated (crashed) histories where sequential replay is vacuous.
fn check_conservation(events: &[HistoryEvent<u32>]) -> Option<String> {
    let mut balance: HashMap<u32, i64> = HashMap::new();
    for e in events {
        match &e.op {
            HistoryOp::Insert { keys } => {
                for &k in keys {
                    *balance.entry(k).or_default() += 1;
                }
            }
            HistoryOp::DeleteMin { keys, .. } => {
                for &k in keys {
                    let b = balance.entry(k).or_default();
                    *b -= 1;
                    if *b < 0 {
                        return Some(format!(
                            "key {k} deleted more times than inserted (at seq {})",
                            e.seq
                        ));
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::PrefixStrategy;

    #[test]
    fn default_schedule_of_key_steal_mix_is_clean_and_deterministic() {
        let spec = WorkloadSpec::key_steal_mix(4);
        let a = run_schedule(&spec, Arc::new(PrefixStrategy { prefix: Vec::new() }));
        assert_eq!(a.violation, None, "{:?}", a.violation);
        assert!(a.panic.is_none() && !a.poisoned);
        let b = run_schedule(&spec, Arc::new(PrefixStrategy { prefix: Vec::new() }));
        assert_eq!(a.decisions, b.decisions, "decision logs must be bit-identical");
        assert_eq!(a.events, b.events, "histories must be bit-identical");
    }

    #[test]
    fn conservation_flags_fabricated_keys() {
        let events = vec![
            HistoryEvent {
                seq: 1,
                invoked: 0,
                responded: 1,
                op: HistoryOp::Insert { keys: vec![5] },
            },
            HistoryEvent {
                seq: 2,
                invoked: 2,
                responded: 3,
                op: HistoryOp::DeleteMin { requested: 2, keys: vec![5, 9] },
            },
        ];
        assert!(check_conservation(&events).unwrap().contains("key 9"));
    }

    #[test]
    fn planned_crash_is_not_a_violation_but_deadlock_would_be() {
        use bgpq_runtime::{FaultRule, InjectionPoint};
        install_quiet_panic_hook();
        let spec = WorkloadSpec::key_steal_mix(4).with_faults(vec![FaultRule {
            point: InjectionPoint::MidInsertHeapify,
            nth: 2,
            action: FaultAction::Panic,
        }]);
        let out = run_schedule(&spec, Arc::new(PrefixStrategy { prefix: Vec::new() }));
        assert!(out.panic.is_some(), "the planned crash must fire");
        assert_eq!(out.violation, None, "{:?}", out.violation);
    }
}
