//! # bgpq-explore — systematic schedule exploration and linearizability
//! model checking for BGPQ on the deterministic simulator
//!
//! The `gpu-sim` scheduler runs exactly one agent at a time and, under a
//! [`gpu_sim::ScheduleController`], asks an external strategy which
//! ready agent runs at every contended yield point. That turns the
//! simulator into a stateless model checker: enumerate schedules,
//! execute each one for real, and judge every run with the repo's
//! correctness oracles —
//!
//! * **linearizability** ([`bgpq::check_history`]): the recorded
//!   root-lock linearization order must be a legal sequential history
//!   consistent with real time;
//! * **key conservation**: deletes return only keys that were inserted,
//!   even on crash-truncated histories;
//! * **collaboration protocol** ([`bgpq::check_collaboration`]): the
//!   §4.3 TARGET/MARKED handshake never leaves its state machine;
//! * **quiescent invariants**: heap shape, node sort order, and size
//!   accounting after a clean run.
//!
//! Three exploration modes ([`explore`], [`random_walks`], [`replay`]):
//! exhaustive DFS with a bounded preemption budget (iterative context
//! bounding), weighted random walks for larger configurations, and
//! bit-for-bit replay of a serialized schedule. A failing schedule is
//! [`fn@shrink`]-minimized (greedy override deletion) and written as a
//! `.sched` artifact ([`SchedFile`]) that the `explore` CLI's `replay`
//! subcommand reproduces exactly.

pub mod dfs;
pub mod run;
pub mod shrink;
pub mod spec;
pub mod strategy;

pub use dfs::{explore, random_walks, Counterexample, ExploreConfig, ExploreReport};
pub use run::{install_quiet_panic_hook, replay, run_schedule, RunOutcome, Violation};
pub use shrink::shrink;
pub use spec::{SchedFile, WorkOp, WorkloadSpec};
pub use strategy::{
    default_pick, is_override, overrides_of, OverrideStrategy, PrefixStrategy, RandomWalkStrategy,
};
