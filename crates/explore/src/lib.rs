//! # bgpq-explore — systematic schedule exploration and linearizability
//! model checking for BGPQ on the deterministic simulator
//!
//! The `gpu-sim` scheduler runs exactly one agent at a time and, under a
//! [`gpu_sim::ScheduleController`], asks an external strategy which
//! ready agent runs at every contended yield point. That turns the
//! simulator into a stateless model checker: enumerate schedules,
//! execute each one for real, and judge every run with the repo's
//! correctness oracles —
//!
//! * **linearizability** ([`bgpq::check_history`]): the recorded
//!   root-lock linearization order must be a legal sequential history
//!   consistent with real time;
//! * **key conservation**: deletes return only keys that were inserted,
//!   even on crash-truncated histories;
//! * **collaboration protocol** ([`bgpq::check_collaboration`]): the
//!   §4.3 TARGET/MARKED handshake never leaves its state machine;
//! * **quiescent invariants**: heap shape, node sort order, and size
//!   accounting after a clean run.
//!
//! Three exploration modes ([`explore`], [`random_walks`], [`replay`]):
//! exhaustive DFS with a bounded preemption budget (iterative context
//! bounding) and sleep-set partial-order reduction, weighted random
//! walks for larger configurations, and bit-for-bit replay of a
//! serialized schedule. A failing schedule is [`fn@shrink`]-minimized
//! (greedy override deletion) and written as a `.sched` artifact
//! ([`SchedFile`]) that the `explore` CLI's `replay` subcommand
//! reproduces exactly.
//!
//! Beyond the single shared queue, specs can drive two *multi-queue
//! fronts* under the same oracles ([`spec::FrontSpec`]): the
//! `bgpq-shard` router with its circuit breaker and salvage
//! re-admission, and the `bgpq-combine` flat-combining front — both
//! additionally checked by strict front-level accounting
//! ([`Violation::FrontAccounting`]).

pub mod dfs;
pub mod run;
pub mod shrink;
pub mod spec;
pub mod strategy;

pub use dfs::{explore, random_walks, Counterexample, ExploreConfig, ExploreReport};
pub use run::{install_quiet_panic_hook, replay, run_schedule, RunOutcome, Violation};
pub use shrink::shrink;
pub use spec::{mutation_name, parse_mutation, FrontSpec, SchedFile, WorkOp, WorkloadSpec};
pub use strategy::{
    default_pick, is_override, overrides_of, OverrideStrategy, PrefixStrategy, RandomWalkStrategy,
};

/// The CLI's one-line exploration summary, also used by CI greps:
/// explored-vs-pruned counts and wall clock, then the verdict.
pub fn summary_line(report: &ExploreReport, elapsed: std::time::Duration) -> String {
    let verdict = match (&report.counterexample, report.exhausted) {
        (Some(cx), _) => format!(
            "VIOLATION ({}) after {} decision(s), {} override(s)",
            cx.violation,
            cx.decisions,
            cx.overrides.len()
        ),
        (None, true) => "exhausted: no violation".to_string(),
        (None, false) => "no violation found (not exhaustive)".to_string(),
    };
    format!(
        "explored {} run(s), pruned {} subtree(s), wall {:.2}s; {}",
        report.runs,
        report.pruned,
        elapsed.as_secs_f64(),
        verdict
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// CI greps this line (`exhausted: no violation` gates the
    /// budget-3 sweep); the format is a contract, pinned exactly.
    #[test]
    fn summary_line_format_is_pinned() {
        let clean = ExploreReport { runs: 16292, pruned: 7, exhausted: true, counterexample: None };
        assert_eq!(
            summary_line(&clean, Duration::from_millis(3812)),
            "explored 16292 run(s), pruned 7 subtree(s), wall 3.81s; exhausted: no violation"
        );

        let capped = ExploreReport { exhausted: false, ..clean.clone() };
        assert_eq!(
            summary_line(&capped, Duration::ZERO),
            "explored 16292 run(s), pruned 7 subtree(s), wall 0.00s; \
             no violation found (not exhaustive)"
        );

        let caught = ExploreReport {
            runs: 6,
            pruned: 5,
            exhausted: false,
            counterexample: Some(Counterexample {
                overrides: vec![(1, 1), (4, 0)],
                violation: Violation::FrontAccounting("quiescent len 0 != balance 1".into()),
                decisions: 9,
            }),
        };
        assert_eq!(
            summary_line(&caught, Duration::from_millis(10)),
            "explored 6 run(s), pruned 5 subtree(s), wall 0.01s; VIOLATION (front accounting: \
             quiescent len 0 != balance 1) after 9 decision(s), 2 override(s)"
        );
    }
}
