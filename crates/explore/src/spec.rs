//! Workload specifications and the `.sched` counterexample format.
//!
//! A [`WorkloadSpec`] fixes everything about an exploration subject
//! except the schedule: queue geometry (`k`, `max_nodes`), the §4.3
//! collaboration switch, an optional deliberately re-introduced protocol
//! bug ([`Mutation`]), one operation script per simulated block, and an
//! optional deterministic fault plan. The schedule itself is the varying
//! input: a [`SchedFile`] pairs a spec with the sparse `(step, agent)`
//! overrides that reproduce one specific interleaving bit-for-bit.
//!
//! The text format is deliberately dumb — line-oriented, whitespace
//! tokens, one `end` terminator — so counterexample artifacts diff well
//! and survive hand editing:
//!
//! ```text
//! bgpq-explore sched v1
//! k 4
//! max-nodes 64
//! collab 1
//! mutation marked-early-avail
//! blocks 2
//! script 0 i 0 1 2 3 ; i 4 5 6 7
//! script 1 d 2 ; d 4
//! fault marked-spin 1 stall 5000
//! override 17 1
//! end
//! ```

use bgpq::Mutation;
use bgpq_runtime::{FaultAction, FaultRule, InjectionPoint};
use gpu_sim::AgentId;
use std::fmt;

/// One scripted operation executed by a block's leader thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkOp {
    /// Insert one batch of keys (1..=k of them, one linearized INSERT).
    Insert(Vec<u32>),
    /// Delete up to `n` minimum keys (one linearized DELETEMIN).
    DeleteMin(usize),
}

/// Which submission front the scripted agents drive.
///
/// `Single` is the original subject: every agent calls one shared
/// [`bgpq::Bgpq`] directly. The other two wrap that same heap in a
/// cross-crate front so the explorer can model-check the *composition*:
/// the shard router's circuit breaker + salvage re-admission
/// (`bgpq-shard`) and the flat combiner's tenure handoff
/// (`bgpq-combine`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontSpec {
    /// One shared queue, direct calls (the original subject).
    #[default]
    Single,
    /// `bgpq-shard` router over `shards` independent heaps, with the
    /// circuit breaker and salvage re-admission armed.
    Sharded { shards: usize },
    /// `bgpq-combine` flat-combining front over one backing heap.
    Combined,
}

/// Everything about an exploration subject except the schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Node capacity `k` (keys per heap node / max batch size).
    pub k: usize,
    /// Heap body size in nodes.
    pub max_nodes: usize,
    /// Enable the TARGET/MARKED key-stealing collaboration (§4.3).
    pub use_collaboration: bool,
    /// Deliberately re-introduced protocol bug, if any.
    pub mutation: Mutation,
    /// One operation script per block; `scripts.len()` is the number of
    /// concurrent agents in the launch.
    pub scripts: Vec<Vec<WorkOp>>,
    /// Deterministic fault plan composed into the platform (empty = no
    /// faults).
    pub faults: Vec<FaultRule>,
    /// Submission front the agents drive (default: one shared queue).
    pub front: FrontSpec,
    /// For `FrontSpec::Sharded`: attach the fault plan to this shard's
    /// platform only, so exactly one shard can crash. `None` arms the
    /// plan on every shard (or, for other fronts, the one platform).
    pub fault_shard: Option<usize>,
}

impl WorkloadSpec {
    pub fn blocks(&self) -> usize {
        self.scripts.len()
    }

    /// Total keys inserted across all scripts (an upper bound on live
    /// size, used for sizing checks).
    pub fn keys_inserted(&self) -> usize {
        self.scripts
            .iter()
            .flatten()
            .map(|op| match op {
                WorkOp::Insert(keys) => keys.len(),
                WorkOp::DeleteMin(_) => 0,
            })
            .sum()
    }

    /// The canonical §4.3 key-stealing window workload, scaled to `k`.
    ///
    /// Block 0 performs four full INSERTs. The fourth batch targets heap
    /// node 4 — a grandchild of the root — which is the smallest heap
    /// where the inserter *releases the root lock before locking its
    /// TARGET node* (for nodes 2 and 3 the inserter re-locks the target
    /// while still holding the root, so no steal window exists). Block 1
    /// then deletes `k/2` keys (shrinking the root cache below a full
    /// node) and `k` more, forcing a refill whose victim is exactly the
    /// in-flight TARGET node. A schedule that preempts block 0 inside
    /// that window drives the DELETEMIN into the MARKED handshake.
    pub fn key_steal_mix(k: usize) -> Self {
        assert!(k >= 2, "key-steal mix needs k >= 2");
        let insert =
            |b: usize| WorkOp::Insert((0..k).map(|i| (b * k + i) as u32).collect::<Vec<_>>());
        Self {
            k,
            max_nodes: 64,
            use_collaboration: true,
            mutation: Mutation::None,
            scripts: vec![
                vec![insert(0), insert(1), insert(2), insert(3)],
                vec![WorkOp::DeleteMin(k.div_ceil(2)), WorkOp::DeleteMin(k)],
            ],
            faults: Vec::new(),
            front: FrontSpec::Single,
            fault_shard: None,
        }
    }

    /// The canonical sharded-router workload: three shards behind the
    /// `bgpq-shard` router with the circuit breaker and salvage
    /// re-admission armed, and shard 2 rigged to crash its first
    /// visitor (panic on the first lock acquisition, before any key
    /// moves — so shard 2 provably never holds keys and the strict
    /// front-level accounting oracle is valid in *every* schedule).
    ///
    /// Agent 0 issues two deletes (its pick loop samples every shard,
    /// so it can trip over the poisoned shard and quarantine it);
    /// agents 1 and 2 insert with their block id as routing affinity.
    pub fn sharded_mix(k: usize) -> Self {
        assert!(k >= 2, "sharded mix needs k >= 2");
        Self {
            k,
            max_nodes: 16,
            use_collaboration: false,
            mutation: Mutation::None,
            scripts: vec![
                vec![WorkOp::DeleteMin(2), WorkOp::DeleteMin(2)],
                vec![WorkOp::Insert(vec![10, 11])],
                vec![WorkOp::Insert(vec![50])],
            ],
            faults: vec![FaultRule {
                point: InjectionPoint::PostLockAcquire,
                nth: 1,
                action: FaultAction::Panic,
            }],
            front: FrontSpec::Sharded { shards: 3 },
            fault_shard: Some(2),
        }
    }

    /// The canonical flat-combining workload: two agents submit
    /// single-key operations through one `bgpq-combine` front over a
    /// shared backing heap. Deliberately minimal — polling waiters make
    /// every extra agent multiply the schedule tree through free
    /// switches — yet two agents already cover combiner election,
    /// request gathering, and the tenure-handoff window (one agent can
    /// take the combiner lock exactly when the other's post-release
    /// re-acquire fails).
    pub fn combined_mix(k: usize) -> Self {
        assert!(k >= 1, "combined mix needs k >= 1");
        Self {
            k,
            max_nodes: 16,
            use_collaboration: false,
            mutation: Mutation::None,
            scripts: vec![vec![WorkOp::Insert(vec![5])], vec![WorkOp::DeleteMin(1)]],
            faults: Vec::new(),
            front: FrontSpec::Combined,
            fault_shard: None,
        }
    }

    /// A pseudo-random insert/delete mix: `blocks` agents, `ops`
    /// operations each, batch sizes in `1..=k`. Same seed ⇒ same spec.
    pub fn generated(seed: u64, blocks: usize, k: usize, ops: usize) -> Self {
        assert!(blocks >= 1 && k >= 1 && ops >= 1);
        let mut z = seed;
        let mut next = move || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        let scripts = (0..blocks)
            .map(|_| {
                (0..ops)
                    .map(|_| {
                        let r = next();
                        let n = (r >> 8) as usize % k + 1;
                        if r % 100 < 60 {
                            WorkOp::Insert((0..n).map(|_| (next() % 100_000) as u32).collect())
                        } else {
                            WorkOp::DeleteMin(n)
                        }
                    })
                    .collect()
            })
            .collect();
        Self {
            k,
            max_nodes: blocks * ops + 8,
            use_collaboration: true,
            mutation: Mutation::None,
            scripts,
            faults: Vec::new(),
            front: FrontSpec::Single,
            fault_shard: None,
        }
    }

    /// Same spec with a protocol bug switched on.
    pub fn with_mutation(mut self, m: Mutation) -> Self {
        self.mutation = m;
        self
    }

    /// Same spec with a deterministic fault plan composed in.
    pub fn with_faults(mut self, faults: Vec<FaultRule>) -> Self {
        self.faults = faults;
        self
    }

    /// Same spec driving a different submission front.
    pub fn with_front(mut self, front: FrontSpec) -> Self {
        self.front = front;
        self
    }

    /// Same spec with the fault plan pinned to one shard's platform.
    pub fn with_fault_shard(mut self, shard: Option<usize>) -> Self {
        self.fault_shard = shard;
        self
    }
}

/// A spec plus the sparse schedule overrides that reproduce one
/// interleaving: at decision ordinal `step`, run `agent` instead of the
/// default pick. Serialized as a `.sched` artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedFile {
    pub spec: WorkloadSpec,
    pub overrides: Vec<(u64, AgentId)>,
}

/// Stable CLI/`.sched` name for each [`Mutation`].
pub fn mutation_name(m: Mutation) -> &'static str {
    match m {
        Mutation::None => "none",
        Mutation::MarkedHandoffEarlyAvail => "marked-early-avail",
        Mutation::SweepDiscardsOnTrip => "sweep-discards-on-trip",
        Mutation::CombinerDropsForeignInsert => "combiner-drops-foreign",
    }
}

/// Inverse of [`mutation_name`].
pub fn parse_mutation(s: &str) -> Result<Mutation, String> {
    match s {
        "none" => Ok(Mutation::None),
        "marked-early-avail" => Ok(Mutation::MarkedHandoffEarlyAvail),
        "sweep-discards-on-trip" => Ok(Mutation::SweepDiscardsOnTrip),
        "combiner-drops-foreign" => Ok(Mutation::CombinerDropsForeignInsert),
        other => Err(format!("unknown mutation `{other}`")),
    }
}

fn point_name(p: InjectionPoint) -> &'static str {
    match p {
        InjectionPoint::PreLockAcquire => "pre-lock-acquire",
        InjectionPoint::PostLockAcquire => "post-lock-acquire",
        InjectionPoint::PreLockRelease => "pre-lock-release",
        InjectionPoint::MidInsertHeapify => "mid-insert-heapify",
        InjectionPoint::MidDeleteHeapify => "mid-delete-heapify",
        InjectionPoint::MarkedSpin => "marked-spin",
        InjectionPoint::SalvageWalk => "salvage-walk",
    }
}

fn parse_point(s: &str) -> Result<InjectionPoint, String> {
    InjectionPoint::ALL
        .into_iter()
        .find(|&p| point_name(p) == s)
        .ok_or_else(|| format!("unknown injection point `{s}`"))
}

impl fmt::Display for SchedFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "bgpq-explore sched v1")?;
        writeln!(f, "k {}", self.spec.k)?;
        writeln!(f, "max-nodes {}", self.spec.max_nodes)?;
        writeln!(f, "collab {}", u8::from(self.spec.use_collaboration))?;
        writeln!(f, "mutation {}", mutation_name(self.spec.mutation))?;
        match self.spec.front {
            FrontSpec::Single => {}
            FrontSpec::Sharded { shards } => writeln!(f, "front shard {shards}")?,
            FrontSpec::Combined => writeln!(f, "front combine")?,
        }
        if let Some(s) = self.spec.fault_shard {
            writeln!(f, "fault-shard {s}")?;
        }
        writeln!(f, "blocks {}", self.spec.blocks())?;
        for (b, script) in self.spec.scripts.iter().enumerate() {
            write!(f, "script {b}")?;
            for (i, op) in script.iter().enumerate() {
                write!(f, "{}", if i == 0 { " " } else { " ; " })?;
                match op {
                    WorkOp::Insert(keys) => {
                        write!(f, "i")?;
                        for k in keys {
                            write!(f, " {k}")?;
                        }
                    }
                    WorkOp::DeleteMin(n) => write!(f, "d {n}")?,
                }
            }
            writeln!(f)?;
        }
        for r in &self.spec.faults {
            match r.action {
                FaultAction::Panic => writeln!(f, "fault {} {} panic", point_name(r.point), r.nth)?,
                FaultAction::Stall { units } => {
                    writeln!(f, "fault {} {} stall {units}", point_name(r.point), r.nth)?
                }
                FaultAction::Delay { units } => {
                    writeln!(f, "fault {} {} delay {units}", point_name(r.point), r.nth)?
                }
            }
        }
        for &(step, agent) in &self.overrides {
            writeln!(f, "override {step} {agent}")?;
        }
        writeln!(f, "end")
    }
}

impl SchedFile {
    /// Parse the `.sched` text format. Inverse of `Display`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        if lines.next() != Some("bgpq-explore sched v1") {
            return Err("missing `bgpq-explore sched v1` header".into());
        }
        let mut k = None;
        let mut max_nodes = None;
        let mut collab = true;
        let mut mutation = Mutation::None;
        let mut front = FrontSpec::Single;
        let mut fault_shard = None;
        let mut scripts: Vec<Vec<WorkOp>> = Vec::new();
        let mut faults = Vec::new();
        let mut overrides = Vec::new();
        let mut ended = false;
        for line in lines {
            let toks: Vec<&str> = line.split_whitespace().collect();
            let int = |s: &str| s.parse::<u64>().map_err(|e| format!("bad number `{s}`: {e}"));
            match toks[0] {
                "k" => k = Some(int(toks.get(1).ok_or("k needs a value")?)? as usize),
                "max-nodes" => {
                    max_nodes = Some(int(toks.get(1).ok_or("max-nodes needs a value")?)? as usize)
                }
                "collab" => collab = toks.get(1) == Some(&"1"),
                "mutation" => {
                    mutation = parse_mutation(toks.get(1).ok_or("mutation needs a value")?)?
                }
                "front" => {
                    front = match (toks.get(1).copied(), toks.get(2)) {
                        (Some("shard"), Some(n)) => FrontSpec::Sharded { shards: int(n)? as usize },
                        (Some("combine"), None) => FrontSpec::Combined,
                        (Some("single"), None) => FrontSpec::Single,
                        _ => return Err(format!("bad front in `{line}`")),
                    }
                }
                "fault-shard" => {
                    fault_shard =
                        Some(int(toks.get(1).ok_or("fault-shard needs a value")?)? as usize)
                }
                "blocks" => {
                    let n = int(toks.get(1).ok_or("blocks needs a value")?)? as usize;
                    scripts = vec![Vec::new(); n];
                }
                "script" => {
                    let b = int(toks.get(1).ok_or("script needs a block id")?)? as usize;
                    let script = scripts
                        .get_mut(b)
                        .ok_or(format!("script {b} out of range (declare `blocks` first)"))?;
                    for group in toks[2..].split(|&t| t == ";") {
                        match group {
                            ["i", keys @ ..] if !keys.is_empty() => {
                                let keys = keys
                                    .iter()
                                    .map(|s| int(s).map(|v| v as u32))
                                    .collect::<Result<Vec<_>, _>>()?;
                                script.push(WorkOp::Insert(keys));
                            }
                            ["d", n] => script.push(WorkOp::DeleteMin(int(n)? as usize)),
                            other => return Err(format!("bad op group {other:?}")),
                        }
                    }
                }
                "fault" => {
                    let point = parse_point(toks.get(1).ok_or("fault needs a point")?)?;
                    let nth = int(toks.get(2).ok_or("fault needs an ordinal")?)?;
                    let action = match (toks.get(3).copied(), toks.get(4)) {
                        (Some("panic"), None) => FaultAction::Panic,
                        (Some("stall"), Some(u)) => FaultAction::Stall { units: int(u)? },
                        (Some("delay"), Some(u)) => FaultAction::Delay { units: int(u)? },
                        _ => return Err(format!("bad fault action in `{line}`")),
                    };
                    faults.push(FaultRule { point, nth, action });
                }
                "override" => {
                    let step = int(toks.get(1).ok_or("override needs a step")?)?;
                    let agent = int(toks.get(2).ok_or("override needs an agent")?)? as AgentId;
                    overrides.push((step, agent));
                }
                "end" => {
                    ended = true;
                    break;
                }
                other => return Err(format!("unknown directive `{other}`")),
            }
        }
        if !ended {
            return Err("missing `end` terminator".into());
        }
        let spec = WorkloadSpec {
            k: k.ok_or("missing `k`")?,
            max_nodes: max_nodes.ok_or("missing `max-nodes`")?,
            use_collaboration: collab,
            mutation,
            scripts,
            faults,
            front,
            fault_shard,
        };
        if spec.scripts.is_empty() {
            return Err("no blocks declared".into());
        }
        Ok(SchedFile { spec, overrides })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sched_file_roundtrips() {
        let spec = WorkloadSpec::key_steal_mix(4)
            .with_mutation(Mutation::MarkedHandoffEarlyAvail)
            .with_faults(vec![
                FaultRule {
                    point: InjectionPoint::MarkedSpin,
                    nth: 2,
                    action: FaultAction::Stall { units: 5000 },
                },
                FaultRule {
                    point: InjectionPoint::MidInsertHeapify,
                    nth: 1,
                    action: FaultAction::Panic,
                },
            ]);
        let file = SchedFile { spec, overrides: vec![(3, 1), (17, 0)] };
        let text = file.to_string();
        let parsed = SchedFile::parse(&text).expect("parses");
        assert_eq!(parsed, file);
        // And the re-serialization is stable.
        assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn sched_file_roundtrips_multi_queue_fronts() {
        for spec in [
            WorkloadSpec::sharded_mix(2).with_mutation(Mutation::SweepDiscardsOnTrip),
            WorkloadSpec::combined_mix(2).with_mutation(Mutation::CombinerDropsForeignInsert),
        ] {
            let file = SchedFile { spec, overrides: vec![(5, 2)] };
            let text = file.to_string();
            let parsed = SchedFile::parse(&text).expect("parses");
            assert_eq!(parsed, file);
            assert_eq!(parsed.to_string(), text);
        }
    }

    #[test]
    fn parse_defaults_to_single_front() {
        // Old v1 artifacts carry no `front` / `fault-shard` directives;
        // they must keep parsing as the original single-queue subject.
        let text = "bgpq-explore sched v1\nk 4\nmax-nodes 8\nblocks 1\nscript 0 i 1\nend";
        let parsed = SchedFile::parse(text).expect("parses");
        assert_eq!(parsed.spec.front, FrontSpec::Single);
        assert_eq!(parsed.spec.fault_shard, None);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(SchedFile::parse("nonsense").is_err());
        let no_end = "bgpq-explore sched v1\nk 4\nmax-nodes 8\nblocks 1\nscript 0 i 1";
        assert!(SchedFile::parse(no_end).unwrap_err().contains("end"));
        let bad_op = "bgpq-explore sched v1\nk 4\nmax-nodes 8\nblocks 1\nscript 0 x 1\nend";
        assert!(SchedFile::parse(bad_op).is_err());
    }

    #[test]
    fn key_steal_mix_shape() {
        let spec = WorkloadSpec::key_steal_mix(4);
        assert_eq!(spec.blocks(), 2);
        assert_eq!(spec.keys_inserted(), 16);
        assert_eq!(spec.scripts[1], vec![WorkOp::DeleteMin(2), WorkOp::DeleteMin(4)]);
    }

    #[test]
    fn generated_is_deterministic() {
        let a = WorkloadSpec::generated(9, 3, 8, 12);
        let b = WorkloadSpec::generated(9, 3, 8, 12);
        assert_eq!(a, b);
        assert_eq!(a.blocks(), 3);
        assert!(a.scripts.iter().all(|s| s.len() == 12));
        assert!(a.scripts.iter().flatten().all(|op| match op {
            WorkOp::Insert(keys) => (1..=8).contains(&keys.len()),
            WorkOp::DeleteMin(n) => (1..=8).contains(n),
        }));
    }
}
