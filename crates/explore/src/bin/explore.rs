//! Schedule-exploration CLI.
//!
//! ```text
//! explore explore [--key-steal | --gen SEED] [--front shard|combine]
//!                 [--k K] [--blocks B] [--ops N] [--mutate NAME]
//!                 [--budget P] [--max-runs R] [--no-sleep-sets]
//!                 [--random N] [--out FILE]
//! explore replay FILE [--expect-violation]
//! explore shrink FILE [--out FILE]
//! ```
//!
//! `explore` enumerates schedules (exhaustive DFS with sleep-set
//! partial-order reduction by default, unreduced with
//! `--no-sleep-sets`, random walks with `--random N`) and, on a
//! violation, shrinks the failing schedule and writes a replayable
//! `.sched` artifact. `--front` swaps the single shared queue for the
//! sharded-router or flat-combining workload; `--mutate NAME`
//! re-introduces a named protocol bug (`marked-early-avail`,
//! `sweep-discards-on-trip`, `combiner-drops-foreign`). Exit status: 0
//! clean, 1 counterexample found, 2 usage/parse error.

use bgpq_explore::{
    explore, install_quiet_panic_hook, parse_mutation, random_walks, replay, shrink, summary_line,
    ExploreConfig, SchedFile, WorkloadSpec,
};
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  explore explore [--key-steal | --gen SEED] [--front shard|combine]\n                  [--k K] [--blocks B] [--ops N] [--mutate NAME]\n                  [--budget P] [--max-runs R] [--no-sleep-sets] [--random N] [--out FILE]\n  explore replay FILE [--expect-violation]\n  explore shrink FILE [--out FILE]"
    );
    ExitCode::from(2)
}

struct Args(Vec<String>);

impl Args {
    /// Value of `--flag`, parsed.
    fn opt<T: std::str::FromStr>(&self, flag: &str) -> Result<Option<T>, String> {
        match self.0.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(i) => {
                let v = self.0.get(i + 1).ok_or(format!("{flag} needs a value"))?;
                v.parse().map(Some).map_err(|_| format!("bad value for {flag}: `{v}`"))
            }
        }
    }

    fn has(&self, flag: &str) -> bool {
        self.0.iter().any(|a| a == flag)
    }
}

fn build_spec(args: &Args) -> Result<WorkloadSpec, String> {
    let k: usize = args.opt("--k")?.unwrap_or(4);
    let mut spec = match args.opt::<String>("--front")?.as_deref() {
        Some("shard") => WorkloadSpec::sharded_mix(k),
        Some("combine") => WorkloadSpec::combined_mix(k),
        Some(other) => return Err(format!("unknown front `{other}` (shard|combine)")),
        None => {
            if let Some(seed) = args.opt::<u64>("--gen")? {
                let blocks = args.opt("--blocks")?.unwrap_or(3);
                let ops = args.opt("--ops")?.unwrap_or(8);
                WorkloadSpec::generated(seed, blocks, k, ops)
            } else {
                WorkloadSpec::key_steal_mix(k)
            }
        }
    };
    if let Some(name) = args.opt::<String>("--mutate")? {
        spec = spec.with_mutation(parse_mutation(&name)?);
    }
    Ok(spec)
}

fn cmd_explore(args: &Args) -> Result<ExitCode, String> {
    let spec = build_spec(args)?;
    let cfg = ExploreConfig {
        preemption_budget: args.opt("--budget")?.unwrap_or(2),
        max_runs: args.opt("--max-runs")?.unwrap_or(20_000),
        use_sleep_sets: !args.has("--no-sleep-sets"),
    };
    let started = Instant::now();
    let report = if let Some(walks) = args.opt::<usize>("--random")? {
        random_walks(&spec, walks, args.opt("--seed")?.unwrap_or(1), 70)
    } else {
        explore(&spec, &cfg)
    };
    println!("{}", summary_line(&report, started.elapsed()));
    let Some(ce) = report.counterexample else {
        println!("no violation found");
        return Ok(ExitCode::SUCCESS);
    };
    println!("VIOLATION: {}", ce.violation);
    println!(
        "failing schedule: {} override(s) over {} decisions",
        ce.overrides.len(),
        ce.decisions
    );
    let (min, replays) = shrink(&spec, &ce);
    println!(
        "shrunk to {} override(s) in {replays} replay(s): {}",
        min.overrides.len(),
        min.violation
    );
    let out = args.opt::<String>("--out")?.unwrap_or_else(|| "counterexample.sched".into());
    let file = SchedFile { spec, overrides: min.overrides };
    std::fs::write(&out, file.to_string()).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}");
    Ok(ExitCode::FAILURE)
}

fn load(path: &str) -> Result<SchedFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    SchedFile::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_replay(path: &str, args: &Args) -> Result<ExitCode, String> {
    let file = load(path)?;
    let out = replay(&file.spec, &file.overrides);
    println!(
        "replayed {} decision(s), {} linearized op(s), {} protocol event(s)",
        out.decisions.len(),
        out.events.len(),
        out.protocol.len()
    );
    match (&out.violation, args.has("--expect-violation")) {
        (Some(v), true) => {
            println!("reproduced expected violation: {v}");
            Ok(ExitCode::SUCCESS)
        }
        (Some(v), false) => {
            println!("VIOLATION: {v}");
            Ok(ExitCode::FAILURE)
        }
        (None, true) => {
            println!("expected a violation but the schedule is clean");
            Ok(ExitCode::FAILURE)
        }
        (None, false) => {
            println!("schedule is clean");
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn cmd_shrink(path: &str, args: &Args) -> Result<ExitCode, String> {
    let file = load(path)?;
    let out = replay(&file.spec, &file.overrides);
    let Some(violation) = out.violation else {
        return Err(format!("{path}: schedule is clean — nothing to shrink"));
    };
    let ce = bgpq_explore::Counterexample {
        overrides: bgpq_explore::overrides_of(&out.decisions),
        violation,
        decisions: out.decisions.len(),
    };
    let (min, replays) = shrink(&file.spec, &ce);
    println!(
        "shrunk {} -> {} override(s) in {replays} replay(s): {}",
        file.overrides.len(),
        min.overrides.len(),
        min.violation
    );
    let dest = args.opt::<String>("--out")?.unwrap_or_else(|| path.to_string());
    let minimized = SchedFile { spec: file.spec, overrides: min.overrides };
    std::fs::write(&dest, minimized.to_string()).map_err(|e| format!("writing {dest}: {e}"))?;
    println!("wrote {dest}");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    install_quiet_panic_hook();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { return usage() };
    let rest = Args(argv[1..].to_vec());
    let result = match cmd.as_str() {
        "explore" => cmd_explore(&rest),
        "replay" => match argv.get(1) {
            Some(path) if !path.starts_with("--") => cmd_replay(path, &rest),
            _ => return usage(),
        },
        "shrink" => match argv.get(1) {
            Some(path) if !path.starts_with("--") => cmd_shrink(path, &rest),
            _ => return usage(),
        },
        _ => return usage(),
    };
    result.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        ExitCode::from(2)
    })
}
