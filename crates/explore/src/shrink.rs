//! Greedy counterexample minimization: a failing schedule is its sparse
//! override list, so shrink by repeatedly deleting one override and
//! keeping the deletion whenever the violation (any violation)
//! persists. After each successful deletion the override list is
//! re-canonicalized from the replayed decision log — removing one
//! override shifts later decision ordinals, so the stale list would
//! otherwise pin the wrong steps. Fixpoint: no single deletion still
//! fails.

use crate::dfs::Counterexample;
use crate::run::replay;
use crate::spec::WorkloadSpec;
use crate::strategy::overrides_of;

/// Minimized counterexample plus the number of replays spent shrinking.
pub fn shrink(spec: &WorkloadSpec, ce: &Counterexample) -> (Counterexample, usize) {
    let mut cur = ce.clone();
    let mut replays = 0usize;
    loop {
        let mut improved = false;
        for skip in 0..cur.overrides.len() {
            let mut candidate = cur.overrides.clone();
            candidate.remove(skip);
            let out = replay(spec, &candidate);
            replays += 1;
            if let Some(v) = out.violation {
                cur = Counterexample {
                    overrides: overrides_of(&out.decisions),
                    violation: v,
                    decisions: out.decisions.len(),
                };
                improved = true;
                break;
            }
        }
        if !improved {
            return (cur, replays);
        }
    }
}
