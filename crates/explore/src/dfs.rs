//! Exhaustive bounded-preemption schedule exploration (iterative
//! context bounding, à la Musuvathi & Qadeer) plus a cheaper
//! random-walk mode for configurations too large to enumerate.
//!
//! The search tree's nodes are decision prefixes. One run executes a
//! prefix and then the deterministic default policy; its decision log
//! enumerates every point where a *different* ready agent could have
//! been chosen. Branching is budgeted: only alternatives that preempt a
//! still-ready yielder at a non-spin yield spend from the preemption
//! budget — forced switches (yielder blocked or finished) and
//! spin-escape switches are free, and re-picking a spinner (a stutter
//! step that provably makes no progress) is never explored. With `b`
//! preemptions the tree is finite and small, yet covers every schedule
//! most concurrency bugs need (empirically almost all need ≤ 2).
//!
//! On top of context bounding the search applies **sleep sets**
//! (Godefroid-style partial-order reduction): every decision carries
//! the shared-memory footprint of the macro step it started (see
//! [`gpu_sim::Decision::footprint`]), two steps are *independent* when
//! their footprints don't conflict (no overlapping access with at
//! least one write — disjoint queues, shards or submission lanes
//! commute; same-lock or same-node traffic does not), and a sibling
//! already explored at a node is put to sleep for the node's later
//! children until a dependent step wakes it. Sleeping transitions are
//! pruned without execution. Classic sleep sets are sound for full
//! DFS; under a *preemption budget* the covering sibling may have had
//! a different remaining budget, so the reduction is kept validated by
//! a differential oracle against the unreduced search
//! (`use_sleep_sets: false`) rather than assumed — see DESIGN §5.1.

use crate::run::{run_schedule, RunOutcome, Violation};
use crate::spec::WorkloadSpec;
use crate::strategy::{overrides_of, PrefixStrategy, RandomWalkStrategy};
use gpu_sim::{footprints_conflict, Access, AgentId, Decision};
use std::sync::Arc;

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Max budgeted preemptions per schedule (context bound).
    pub preemption_budget: usize,
    /// Hard cap on executed runs (0 = unlimited); exceeding it reports
    /// `exhausted: false`.
    pub max_runs: usize,
    /// Apply sleep-set partial-order reduction (on by default). Off
    /// runs the unreduced search — the differential oracle the reduced
    /// search is validated against.
    pub use_sleep_sets: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self { preemption_budget: 2, max_runs: 20_000, use_sleep_sets: true }
    }
}

/// A failing schedule in replayable sparse form.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Non-default `(step, agent)` decisions; feeding these to
    /// [`crate::run::replay`] reproduces the failure bit-for-bit.
    pub overrides: Vec<(u64, AgentId)>,
    pub violation: Violation,
    /// Total decision points in the failing run (context for the
    /// override count).
    pub decisions: usize,
}

/// What an exploration covered and found.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Schedules executed.
    pub runs: usize,
    /// Subtrees the sleep-set reduction proved redundant and skipped
    /// (0 for the unreduced search and for random walks).
    pub pruned: usize,
    /// The bounded tree was fully enumerated (always `false` once a
    /// counterexample stops the search, and for random walks).
    pub exhausted: bool,
    pub counterexample: Option<Counterexample>,
}

fn counterexample_of(out: &RunOutcome) -> Counterexample {
    Counterexample {
        overrides: overrides_of(&out.decisions),
        violation: out.violation.clone().expect("only called on failing runs"),
        decisions: out.decisions.len(),
    }
}

/// Is picking `alt` at decision `d` a *budgeted* preemption? (Switching
/// away from a still-ready yielder at a non-spin yield point.)
fn costs_preemption(d: &Decision, alt: AgentId) -> bool {
    !d.spin && d.yielder.is_some_and(|y| alt != y)
}

/// Exhaustively explore every schedule of `spec` reachable with at most
/// `cfg.preemption_budget` preemptions, stopping at the first oracle
/// violation. Depth-first over decision prefixes, with sleep-set
/// partial-order reduction unless `cfg.use_sleep_sets` is off.
pub fn explore(spec: &WorkloadSpec, cfg: &ExploreConfig) -> ExploreReport {
    if cfg.use_sleep_sets {
        explore_reduced(spec, cfg)
    } else {
        explore_unreduced(spec, cfg)
    }
}

/// The unreduced bounded DFS: every affordable alternative is executed.
/// Kept callable as the differential oracle for the sleep-set search.
fn explore_unreduced(spec: &WorkloadSpec, cfg: &ExploreConfig) -> ExploreReport {
    let mut stack: Vec<Vec<AgentId>> = vec![Vec::new()];
    let mut runs = 0usize;
    while let Some(prefix) = stack.pop() {
        if cfg.max_runs != 0 && runs >= cfg.max_runs {
            return ExploreReport { runs, pruned: 0, exhausted: false, counterexample: None };
        }
        let frontier = prefix.len();
        let out = run_schedule(spec, Arc::new(PrefixStrategy { prefix: prefix.clone() }));
        runs += 1;
        if out.violation.is_some() {
            return ExploreReport {
                runs,
                pruned: 0,
                exhausted: false,
                counterexample: Some(counterexample_of(&out)),
            };
        }
        // Branch on every affordable alternative at or past the
        // frontier (decisions before it were enumerated by ancestors).
        let mut preemptions = 0usize;
        for (i, d) in out.decisions.iter().enumerate() {
            if i >= frontier {
                for &alt in &d.ready {
                    if alt == d.chosen {
                        continue;
                    }
                    // Stutter: re-picking a spinning yielder re-runs the
                    // same failed poll with nothing changed.
                    if d.spin && d.yielder == Some(alt) {
                        continue;
                    }
                    let cost = usize::from(costs_preemption(d, alt));
                    if preemptions + cost > cfg.preemption_budget {
                        continue;
                    }
                    let mut next: Vec<AgentId> =
                        out.decisions[..i].iter().map(|p| p.chosen).collect();
                    next.push(alt);
                    stack.push(next);
                }
            }
            preemptions += usize::from(costs_preemption(d, d.chosen));
        }
    }
    ExploreReport { runs, pruned: 0, exhausted: true, counterexample: None }
}

/// One sleeping transition: `agent` was already explored as a sibling
/// at some node on the current path, executing a macro step with
/// shared-memory footprint `fp`. While every step executed since is
/// independent of `fp`, re-running `agent` here would commute into a
/// schedule that sibling's subtree already covered.
#[derive(Debug, Clone)]
struct SleepEntry {
    agent: AgentId,
    fp: Vec<Access>,
}

struct SearchState {
    runs: usize,
    pruned: usize,
}

enum Stop {
    Capped,
    Found(Counterexample),
}

fn explore_reduced(spec: &WorkloadSpec, cfg: &ExploreConfig) -> ExploreReport {
    let mut st = SearchState { runs: 0, pruned: 0 };
    let (exhausted, counterexample) =
        match explore_sleep(spec, cfg, &mut st, Vec::new(), Vec::new()) {
            Ok(_) => (true, None),
            Err(Stop::Capped) => (false, None),
            Err(Stop::Found(cx)) => (false, Some(cx)),
        };
    ExploreReport { runs: st.runs, pruned: st.pruned, exhausted, counterexample }
}

/// Execute the node reached by `prefix` and recurse over its children,
/// threading sleep sets. `inherited` is the sleep set at the *branch
/// node* (before this node's own step ran); the first thing this call
/// does after running is wake every entry whose footprint conflicts
/// with the step that brought us here. Returns that step's footprint so
/// the parent can put this sibling to sleep for later siblings.
fn explore_sleep(
    spec: &WorkloadSpec,
    cfg: &ExploreConfig,
    st: &mut SearchState,
    prefix: Vec<AgentId>,
    inherited: Vec<SleepEntry>,
) -> Result<Vec<Access>, Stop> {
    if cfg.max_runs != 0 && st.runs >= cfg.max_runs {
        return Err(Stop::Capped);
    }
    let frontier = prefix.len();
    let out = run_schedule(spec, Arc::new(PrefixStrategy { prefix }));
    st.runs += 1;
    if out.violation.is_some() {
        return Err(Stop::Found(counterexample_of(&out)));
    }
    let my_fp: Vec<Access> = match frontier {
        0 => Vec::new(),
        n => out.decisions.get(n - 1).map(|d| d.footprint.clone()).unwrap_or_default(),
    };
    // Wake inherited sleepers that conflict with the step that brought
    // us here; the independent rest stay covered.
    let mut sleep: Vec<SleepEntry> =
        inherited.into_iter().filter(|e| !footprints_conflict(&e.fp, &my_fp)).collect();
    let mut preemptions = 0usize;
    for (j, d) in out.decisions.iter().enumerate() {
        if j >= frontier {
            if sleep.iter().any(|e| e.agent == d.chosen) {
                // The default continuation executed a sleeping
                // transition: every schedule reachable from here
                // commutes into one an earlier sibling's subtree
                // already covered. Spawn nothing below this point.
                st.pruned += 1;
                break;
            }
            // Siblings at this node, explored in order; each one goes
            // to sleep (with its *observed* first-step footprint) for
            // the siblings after it. The default continuation counts
            // as the first-explored sibling — this very run covered it.
            let mut node_sleep = sleep.clone();
            node_sleep.push(SleepEntry { agent: d.chosen, fp: d.footprint.clone() });
            for &alt in &d.ready {
                if alt == d.chosen {
                    continue;
                }
                // Stutter: re-picking a spinning yielder re-runs the
                // same failed poll with nothing changed.
                if d.spin && d.yielder == Some(alt) {
                    continue;
                }
                let cost = usize::from(costs_preemption(d, alt));
                if preemptions + cost > cfg.preemption_budget {
                    continue;
                }
                if node_sleep.iter().any(|e| e.agent == alt) {
                    // Asleep: an earlier sibling (here or at an
                    // ancestor, still independent of everything since)
                    // already covered this subtree.
                    st.pruned += 1;
                    continue;
                }
                let mut next: Vec<AgentId> = out.decisions[..j].iter().map(|p| p.chosen).collect();
                next.push(alt);
                let child_fp = explore_sleep(spec, cfg, st, next, node_sleep.clone())?;
                node_sleep.push(SleepEntry { agent: alt, fp: child_fp });
            }
        }
        preemptions += usize::from(costs_preemption(d, d.chosen));
        // Step to the next node along the default continuation: the
        // chosen step wakes dependent sleepers.
        sleep.retain(|e| !footprints_conflict(&e.fp, &d.footprint));
    }
    Ok(my_fp)
}

/// Run `walks` weighted random walks (seeds derived from `base_seed`),
/// stopping at the first violation.
pub fn random_walks(
    spec: &WorkloadSpec,
    walks: usize,
    base_seed: u64,
    continue_pct: u32,
) -> ExploreReport {
    for i in 0..walks {
        let seed = base_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
        let out = run_schedule(spec, Arc::new(RandomWalkStrategy { seed, continue_pct }));
        if out.violation.is_some() {
            return ExploreReport {
                runs: i + 1,
                pruned: 0,
                exhausted: false,
                counterexample: Some(counterexample_of(&out)),
            };
        }
    }
    ExploreReport { runs: walks, pruned: 0, exhausted: false, counterexample: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_zero_explores_exactly_the_default_schedule() {
        let spec = WorkloadSpec::key_steal_mix(4);
        let report = explore(
            &spec,
            &ExploreConfig { preemption_budget: 0, max_runs: 0, ..Default::default() },
        );
        assert!(report.exhausted);
        assert!(report.counterexample.is_none());
        // Budget 0 still explores free switches, but a 2-agent workload
        // has exactly one affordable schedule per free-switch pattern —
        // the tree stays tiny.
        assert!(report.runs >= 1);
    }

    #[test]
    fn max_runs_caps_the_search_without_exhausting() {
        let spec = WorkloadSpec::key_steal_mix(4);
        let report = explore(
            &spec,
            &ExploreConfig { preemption_budget: 2, max_runs: 3, ..Default::default() },
        );
        assert_eq!(report.runs, 3);
        assert!(!report.exhausted);
    }

    #[test]
    fn sleep_sets_explore_a_subset_with_the_same_verdict() {
        let spec = WorkloadSpec::key_steal_mix(2);
        let base = ExploreConfig { preemption_budget: 1, max_runs: 0, use_sleep_sets: false };
        let unreduced = explore(&spec, &base);
        let reduced = explore(&spec, &ExploreConfig { use_sleep_sets: true, ..base });
        assert!(unreduced.exhausted && reduced.exhausted);
        assert!(unreduced.counterexample.is_none() && reduced.counterexample.is_none());
        assert!(
            reduced.runs <= unreduced.runs,
            "reduction must never add runs ({} > {})",
            reduced.runs,
            unreduced.runs
        );
    }
}
