//! Exhaustive bounded-preemption schedule exploration (iterative
//! context bounding, à la Musuvathi & Qadeer) plus a cheaper
//! random-walk mode for configurations too large to enumerate.
//!
//! The search tree's nodes are decision prefixes. One run executes a
//! prefix and then the deterministic default policy; its decision log
//! enumerates every point where a *different* ready agent could have
//! been chosen. Branching is budgeted: only alternatives that preempt a
//! still-ready yielder at a non-spin yield spend from the preemption
//! budget — forced switches (yielder blocked or finished) and
//! spin-escape switches are free, and re-picking a spinner (a stutter
//! step that provably makes no progress) is never explored. With `b`
//! preemptions the tree is finite and small, yet covers every schedule
//! most concurrency bugs need (empirically almost all need ≤ 2).

use crate::run::{run_schedule, RunOutcome, Violation};
use crate::spec::WorkloadSpec;
use crate::strategy::{overrides_of, PrefixStrategy, RandomWalkStrategy};
use gpu_sim::{AgentId, Decision};
use std::sync::Arc;

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Max budgeted preemptions per schedule (context bound).
    pub preemption_budget: usize,
    /// Hard cap on executed runs (0 = unlimited); exceeding it reports
    /// `exhausted: false`.
    pub max_runs: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self { preemption_budget: 2, max_runs: 20_000 }
    }
}

/// A failing schedule in replayable sparse form.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Non-default `(step, agent)` decisions; feeding these to
    /// [`crate::run::replay`] reproduces the failure bit-for-bit.
    pub overrides: Vec<(u64, AgentId)>,
    pub violation: Violation,
    /// Total decision points in the failing run (context for the
    /// override count).
    pub decisions: usize,
}

/// What an exploration covered and found.
#[derive(Debug)]
pub struct ExploreReport {
    /// Schedules executed.
    pub runs: usize,
    /// The bounded tree was fully enumerated (always `false` once a
    /// counterexample stops the search, and for random walks).
    pub exhausted: bool,
    pub counterexample: Option<Counterexample>,
}

fn counterexample_of(out: &RunOutcome) -> Counterexample {
    Counterexample {
        overrides: overrides_of(&out.decisions),
        violation: out.violation.clone().expect("only called on failing runs"),
        decisions: out.decisions.len(),
    }
}

/// Is picking `alt` at decision `d` a *budgeted* preemption? (Switching
/// away from a still-ready yielder at a non-spin yield point.)
fn costs_preemption(d: &Decision, alt: AgentId) -> bool {
    !d.spin && d.yielder.is_some_and(|y| alt != y)
}

/// Exhaustively explore every schedule of `spec` reachable with at most
/// `cfg.preemption_budget` preemptions, stopping at the first oracle
/// violation. Depth-first over decision prefixes.
pub fn explore(spec: &WorkloadSpec, cfg: &ExploreConfig) -> ExploreReport {
    let mut stack: Vec<Vec<AgentId>> = vec![Vec::new()];
    let mut runs = 0usize;
    while let Some(prefix) = stack.pop() {
        if cfg.max_runs != 0 && runs >= cfg.max_runs {
            return ExploreReport { runs, exhausted: false, counterexample: None };
        }
        let frontier = prefix.len();
        let out = run_schedule(spec, Arc::new(PrefixStrategy { prefix: prefix.clone() }));
        runs += 1;
        if out.violation.is_some() {
            return ExploreReport {
                runs,
                exhausted: false,
                counterexample: Some(counterexample_of(&out)),
            };
        }
        // Branch on every affordable alternative at or past the
        // frontier (decisions before it were enumerated by ancestors).
        let mut preemptions = 0usize;
        for (i, d) in out.decisions.iter().enumerate() {
            if i >= frontier {
                for &alt in &d.ready {
                    if alt == d.chosen {
                        continue;
                    }
                    // Stutter: re-picking a spinning yielder re-runs the
                    // same failed poll with nothing changed.
                    if d.spin && d.yielder == Some(alt) {
                        continue;
                    }
                    let cost = usize::from(costs_preemption(d, alt));
                    if preemptions + cost > cfg.preemption_budget {
                        continue;
                    }
                    let mut next: Vec<AgentId> =
                        out.decisions[..i].iter().map(|p| p.chosen).collect();
                    next.push(alt);
                    stack.push(next);
                }
            }
            preemptions += usize::from(costs_preemption(d, d.chosen));
        }
    }
    ExploreReport { runs, exhausted: true, counterexample: None }
}

/// Run `walks` weighted random walks (seeds derived from `base_seed`),
/// stopping at the first violation.
pub fn random_walks(
    spec: &WorkloadSpec,
    walks: usize,
    base_seed: u64,
    continue_pct: u32,
) -> ExploreReport {
    for i in 0..walks {
        let seed = base_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
        let out = run_schedule(spec, Arc::new(RandomWalkStrategy { seed, continue_pct }));
        if out.violation.is_some() {
            return ExploreReport {
                runs: i + 1,
                exhausted: false,
                counterexample: Some(counterexample_of(&out)),
            };
        }
    }
    ExploreReport { runs: walks, exhausted: false, counterexample: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_zero_explores_exactly_the_default_schedule() {
        let spec = WorkloadSpec::key_steal_mix(4);
        let report = explore(&spec, &ExploreConfig { preemption_budget: 0, max_runs: 0 });
        assert!(report.exhausted);
        assert!(report.counterexample.is_none());
        // Budget 0 still explores free switches, but a 2-agent workload
        // has exactly one affordable schedule per free-switch pattern —
        // the tree stays tiny.
        assert!(report.runs >= 1);
    }

    #[test]
    fn max_runs_caps_the_search_without_exhausting() {
        let spec = WorkloadSpec::key_steal_mix(4);
        let report = explore(&spec, &ExploreConfig { preemption_budget: 2, max_runs: 3 });
        assert_eq!(report.runs, 3);
        assert!(!report.exhausted);
    }
}
