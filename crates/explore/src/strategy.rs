//! Schedule strategies: the deterministic default policy plus the three
//! controllers the explorer drives — explicit prefixes (DFS), sparse
//! overrides (replay), and weighted random walks.

use gpu_sim::{AgentId, Decision, PickPoint, ScheduleController};
use std::collections::BTreeMap;

/// The deterministic baseline policy every strategy falls back to:
/// keep running the yielder (run-to-completion) unless the yield is a
/// spin-wait poll, in which case switch to the lowest-numbered *other*
/// ready agent — a spinner is waiting for someone else's write, so
/// re-picking it is a stutter step that makes no progress.
pub fn default_pick(p: &PickPoint<'_>) -> AgentId {
    match p.yielder {
        Some(y) if !p.spin => y,
        _ => *p.ready.iter().find(|&&a| Some(a) != p.yielder).unwrap_or(&p.ready[0]),
    }
}

/// Whether a logged decision deviates from [`default_pick`] — the sparse
/// representation of a schedule is exactly its non-default decisions.
pub fn is_override(d: &Decision) -> bool {
    let p = PickPoint { step: d.step, ready: &d.ready, yielder: d.yielder, spin: d.spin };
    default_pick(&p) != d.chosen
}

/// Project a full decision log onto its sparse `(step, agent)` override
/// form: replaying these overrides over the default policy reproduces
/// the log bit-for-bit.
pub fn overrides_of(decisions: &[Decision]) -> Vec<(u64, AgentId)> {
    decisions.iter().filter(|d| is_override(d)).map(|d| (d.step, d.chosen)).collect()
}

/// Follow an explicit choice at decision ordinals `0..prefix.len()`,
/// then the default policy — the DFS workhorse: each explored schedule
/// is "this prefix, then run to completion deterministically".
pub struct PrefixStrategy {
    pub prefix: Vec<AgentId>,
}

impl ScheduleController for PrefixStrategy {
    fn pick(&self, p: &PickPoint<'_>) -> AgentId {
        match self.prefix.get(p.step as usize) {
            // A prefix choice can only go stale if the subject is
            // nondeterministic under a fixed schedule; fall back rather
            // than crash the run so the divergence surfaces as a
            // decision-log mismatch.
            Some(&c) if p.ready.contains(&c) => c,
            _ => default_pick(p),
        }
    }
}

/// The default policy with pinned `(step → agent)` overrides — the
/// `.sched` counterexample form. Overrides at stale steps (not a
/// decision point, or agent not ready) are ignored.
pub struct OverrideStrategy {
    overrides: BTreeMap<u64, AgentId>,
}

impl OverrideStrategy {
    pub fn new(overrides: &[(u64, AgentId)]) -> Self {
        Self { overrides: overrides.iter().copied().collect() }
    }
}

impl ScheduleController for OverrideStrategy {
    fn pick(&self, p: &PickPoint<'_>) -> AgentId {
        match self.overrides.get(&p.step) {
            Some(&c) if p.ready.contains(&c) => c,
            _ => default_pick(p),
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Weighted random walk: continue the yielder with probability
/// `continue_pct`%, otherwise preempt to a uniformly random other ready
/// agent. Spin yields always switch away (stutter avoidance). The
/// choice at each step is a pure hash of `(seed, step)`, so a walk is
/// replayable from its seed alone — no RNG state to serialize.
pub struct RandomWalkStrategy {
    pub seed: u64,
    pub continue_pct: u32,
}

impl ScheduleController for RandomWalkStrategy {
    fn pick(&self, p: &PickPoint<'_>) -> AgentId {
        let h = splitmix64(self.seed ^ p.step.wrapping_mul(0x2545_F491_4F6C_DD1D));
        if let Some(y) = p.yielder {
            if !p.spin && h % 100 < self.continue_pct as u64 {
                return y;
            }
        }
        let others: Vec<AgentId> =
            p.ready.iter().copied().filter(|&a| Some(a) != p.yielder).collect();
        if others.is_empty() {
            p.ready[0]
        } else {
            others[(h / 100) as usize % others.len()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(ready: &[AgentId], yielder: Option<AgentId>, spin: bool) -> PickPoint<'_> {
        PickPoint { step: 0, ready, yielder, spin }
    }

    #[test]
    fn default_policy_continues_yielder_and_escapes_spinners() {
        assert_eq!(default_pick(&point(&[0, 1, 2], Some(1), false)), 1);
        assert_eq!(default_pick(&point(&[0, 1, 2], Some(0), true)), 1);
        assert_eq!(default_pick(&point(&[1, 2], None, false)), 1);
        // Sole-ready spinner: nothing else to pick.
        assert_eq!(default_pick(&point(&[2], Some(2), true)), 2);
    }

    #[test]
    fn overrides_of_keeps_only_non_default_decisions() {
        let d = |step, yielder, spin, ready: &[AgentId], chosen| Decision {
            step,
            yielder,
            spin,
            ready: ready.to_vec(),
            chosen,
            footprint: Vec::new(),
        };
        let log = vec![
            d(0, Some(0), false, &[0, 1], 0), // default: continue
            d(1, Some(0), false, &[0, 1], 1), // preemption: override
            d(2, Some(1), true, &[0, 1], 0),  // default spin escape
            d(3, None, false, &[0, 1], 1),    // forced switch, non-min pick: override
        ];
        assert_eq!(overrides_of(&log), vec![(1, 1), (3, 1)]);
    }

    #[test]
    fn random_walk_is_a_pure_function_of_seed_and_step() {
        let s = RandomWalkStrategy { seed: 42, continue_pct: 70 };
        let ready = [0, 1, 2];
        let p = PickPoint { step: 9, ready: &ready, yielder: Some(1), spin: false };
        let a = s.pick(&p);
        assert_eq!(a, s.pick(&p));
        // Spin yields never stutter on the yielder.
        let sp = PickPoint { step: 9, ready: &ready, yielder: Some(1), spin: true };
        assert_ne!(s.pick(&sp), 1);
    }
}
