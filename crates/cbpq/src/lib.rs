//! # cbpq — chunk-based priority queue baseline
//!
//! Reproduction of the *structure and measured behaviour* of CBPQ
//! (Braginsky, Cohen & Petrank, Euro-Par'16): keys live in a sorted
//! sequence of **chunks**, each covering a key range and holding up to
//! `chunk_capacity` sorted entries. Delete-min consumes the first
//! chunk through a cursor; inserts binary-search the chunk covering
//! their key and splice in; a full chunk **splits**, which is the
//! expensive structural operation the paper calls out ("the most
//! time-consuming part of CBPQ is the chunk splitting stage", §6.3).
//!
//! Simplifications vs. the original (documented in DESIGN.md §2): the
//! published CBPQ is lock-free with a federated-array chunk layout, an
//! insert buffer on the first chunk, and elimination; here chunks are
//! individually locked behind an `RwLock`ed directory (read = operate
//! within a chunk, write = split/remove chunks), and first-chunk
//! inserts splice directly at the consumption cursor (which subsumes
//! elimination: a key inserted below the current minimum is the next
//! one consumed). The original's 30-bit key restriction is kept as a
//! documented constant check for fidelity when `u32` keys are used at
//! bench time — the structure itself is generic.

use parking_lot::{Mutex, RwLock};
use pq_api::{Entry, ItemwiseBatch, KeyType, PriorityQueue, QueueFactory, ValueType};
use std::sync::atomic::{AtomicIsize, AtomicU64, Ordering};
use std::sync::Arc;

/// Default chunk capacity (the CBPQ paper uses 928-key chunks).
pub const DEFAULT_CHUNK_CAPACITY: usize = 928;

struct Chunk<K, V> {
    /// Sorted entries; `entries[head..]` are live, `[..head]` consumed.
    entries: Vec<Entry<K, V>>,
    head: usize,
}

impl<K: KeyType, V: ValueType> Chunk<K, V> {
    fn live(&self) -> usize {
        self.entries.len() - self.head
    }
}

/// A chunk plus its immutable upper key bound (inclusive). Handles are
/// replaced wholesale on split, so `upper` never changes in place.
struct Handle<K, V> {
    upper: K,
    inner: Mutex<Chunk<K, V>>,
}

/// Chunk-based priority queue.
pub struct CbpqPq<K, V> {
    /// Directory of chunks, sorted by `upper`. Read lock to operate on
    /// a chunk, write lock to restructure (split / drop empty chunks).
    chunks: RwLock<Vec<Arc<Handle<K, V>>>>,
    chunk_capacity: usize,
    len: AtomicIsize,
    /// Structural statistics: splits performed (the expensive stage).
    pub splits: AtomicU64,
}

impl<K: KeyType, V: ValueType> CbpqPq<K, V> {
    pub fn new(chunk_capacity: usize) -> Self {
        assert!(chunk_capacity >= 2, "chunks must hold at least 2 keys");
        let first = Arc::new(Handle {
            upper: K::MAX_KEY,
            inner: Mutex::new(Chunk { entries: Vec::new(), head: 0 }),
        });
        Self {
            chunks: RwLock::new(vec![first]),
            chunk_capacity,
            len: AtomicIsize::new(0),
            splits: AtomicU64::new(0),
        }
    }

    /// Number of chunks currently in the directory.
    pub fn chunk_count(&self) -> usize {
        self.chunks.read().len()
    }

    /// Split the chunk owning `target` (identified by pointer) in two.
    fn split(&self, target: &Arc<Handle<K, V>>) {
        let mut dir = self.chunks.write();
        let Some(idx) = dir.iter().position(|h| Arc::ptr_eq(h, target)) else {
            return; // already restructured by someone else
        };
        let mut chunk = target.inner.lock();
        if chunk.live() < self.chunk_capacity {
            return; // another op shrank it first
        }
        let live: Vec<Entry<K, V>> = chunk.entries[chunk.head..].to_vec();
        let mid = live.len() / 2;
        let low_upper = live[mid - 1].key;
        let low = Arc::new(Handle {
            upper: low_upper,
            inner: Mutex::new(Chunk { entries: live[..mid].to_vec(), head: 0 }),
        });
        let high = Arc::new(Handle {
            upper: target.upper,
            inner: Mutex::new(Chunk { entries: live[mid..].to_vec(), head: 0 }),
        });
        chunk.entries.clear();
        chunk.head = 0;
        drop(chunk);
        dir.splice(idx..=idx, [low, high]);
        self.splits.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop exhausted chunks from the front (keeping at least one).
    fn prune_front(&self) {
        let mut dir = self.chunks.write();
        while dir.len() > 1 {
            let empty = {
                let c = dir[0].inner.lock();
                c.live() == 0
            };
            if empty {
                dir.remove(0);
            } else {
                break;
            }
        }
    }

    /// Quiescent invariant check: chunks sorted internally and by range;
    /// `len` matches live entries.
    pub fn check_invariants(&self) {
        let dir = self.chunks.read();
        let mut total = 0usize;
        let mut prev_upper: Option<K> = None;
        for h in dir.iter() {
            let c = h.inner.lock();
            let live = &c.entries[c.head..];
            assert!(live.windows(2).all(|p| p[0] <= p[1]), "chunk not sorted");
            if let Some(last) = live.last() {
                assert!(last.key <= h.upper, "entry above chunk upper bound");
            }
            if let (Some(pu), Some(first)) = (prev_upper, live.first()) {
                assert!(first.key >= pu, "chunk ranges overlap");
                assert!(first.key >= pu.min(first.key), "range order");
            }
            if let Some(pu) = prev_upper {
                assert!(h.upper >= pu, "chunk uppers not sorted");
            }
            prev_upper = Some(h.upper);
            total += live.len();
        }
        assert_eq!(total as isize, self.len.load(Ordering::Relaxed), "len drift");
    }
}

impl<K: KeyType, V: ValueType> Default for CbpqPq<K, V> {
    fn default() -> Self {
        Self::new(DEFAULT_CHUNK_CAPACITY)
    }
}

impl<K: KeyType, V: ValueType> PriorityQueue<K, V> for CbpqPq<K, V> {
    fn insert(&self, key: K, value: V) {
        loop {
            let needs_split = {
                let dir = self.chunks.read();
                // Binary search the first chunk whose upper bound covers
                // the key (the last chunk covers MAX).
                let idx = dir.partition_point(|h| h.upper < key).min(dir.len() - 1);
                let handle = &dir[idx];
                let mut c = handle.inner.lock();
                if c.live() >= self.chunk_capacity {
                    // Full: must split first (the expensive stage).
                    Some(Arc::clone(handle))
                } else {
                    // Splice into the sorted live region. Keys below the
                    // cursor position go right at the cursor so they are
                    // consumed next (first-chunk fast path).
                    let pos = c.entries[c.head..].partition_point(|e| e.key < key) + c.head;
                    c.entries.insert(pos, Entry::new(key, value));
                    self.len.fetch_add(1, Ordering::Relaxed);
                    None
                }
            };
            match needs_split {
                None => return,
                Some(h) => self.split(&h),
            }
        }
    }

    fn delete_min(&self) -> Option<Entry<K, V>> {
        let mut exhausted_front = false;
        let result = {
            let dir = self.chunks.read();
            let mut found = None;
            for h in dir.iter() {
                let mut c = h.inner.lock();
                if c.live() > 0 {
                    let e = c.entries[c.head];
                    c.head += 1;
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    if c.live() == 0 {
                        exhausted_front = true;
                    }
                    found = Some(e);
                    break;
                }
                exhausted_front = true;
            }
            found
        };
        if exhausted_front {
            self.prune_front();
        }
        result
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed).max(0) as usize
    }
}

/// Factory for the bench harness.
pub struct CbpqPqFactory {
    pub batch: usize,
    pub chunk_capacity: usize,
}

impl Default for CbpqPqFactory {
    fn default() -> Self {
        Self { batch: 1024, chunk_capacity: DEFAULT_CHUNK_CAPACITY }
    }
}

impl<K: KeyType, V: ValueType> QueueFactory<K, V> for CbpqPqFactory {
    type Queue = ItemwiseBatch<CbpqPq<K, V>>;

    fn name(&self) -> &str {
        "CBPQ"
    }

    fn build(&self, _capacity_hint: usize) -> Self::Queue {
        ItemwiseBatch::new(CbpqPq::new(self.chunk_capacity), self.batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ordered_drain_with_splits() {
        let q = CbpqPq::<u32, u32>::new(8);
        for k in (0..200u32).rev() {
            q.insert(k, k);
        }
        assert!(q.chunk_count() > 1, "splits must have happened");
        assert!(q.splits.load(Ordering::Relaxed) > 0);
        let mut got = Vec::new();
        while let Some(e) = q.delete_min() {
            got.push(e.key);
        }
        assert_eq!(got, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn random_matches_model() {
        let q = CbpqPq::<u32, u32>::new(16);
        let mut model = std::collections::BinaryHeap::new();
        let mut rng = StdRng::seed_from_u64(21);
        for step in 0..4000 {
            if rng.gen_bool(0.55) || model.is_empty() {
                let k = rng.gen_range(0..1 << 30);
                q.insert(k, k);
                model.push(std::cmp::Reverse(k));
            } else {
                assert_eq!(q.delete_min().map(|e| e.key), model.pop().map(|r| r.0), "step {step}");
            }
        }
        q.check_invariants();
    }

    #[test]
    fn insert_below_cursor_is_next_out() {
        let q = CbpqPq::<u32, ()>::new(64);
        for k in [10u32, 20, 30] {
            q.insert(k, ());
        }
        assert_eq!(q.delete_min().unwrap().key, 10);
        // 5 is below everything consumed so far — must come out next.
        q.insert(5, ());
        assert_eq!(q.delete_min().unwrap().key, 5);
        assert_eq!(q.delete_min().unwrap().key, 20);
    }

    #[test]
    fn concurrent_conservation() {
        let q = CbpqPq::<u32, u32>::new(32);
        let taken = AtomicIsize::new(0);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let q = &q;
                let taken = &taken;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t);
                    for _ in 0..400 {
                        if rng.gen_bool(0.6) {
                            q.insert(rng.gen_range(0..1 << 30), 0);
                        } else if q.delete_min().is_some() {
                            taken.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        q.check_invariants();
        let mut drained = 0isize;
        while q.delete_min().is_some() {
            drained += 1;
        }
        assert_eq!(q.len(), 0);
        let _ = drained;
    }

    #[test]
    fn prune_removes_spent_chunks() {
        let q = CbpqPq::<u32, ()>::new(4);
        for k in 0..64u32 {
            q.insert(k, ());
        }
        let before = q.chunk_count();
        for _ in 0..60 {
            q.delete_min();
        }
        assert!(q.chunk_count() < before, "spent chunks must be pruned");
        q.check_invariants();
    }

    #[test]
    fn empty_returns_none() {
        let q = CbpqPq::<u32, ()>::default();
        assert!(q.delete_min().is_none());
    }
}
