//! Per-request completion slots.
//!
//! Every submitting thread owns one reusable [`OpCell`] per combiner
//! instance (kept in a thread-local registry, so the steady state
//! allocates nothing — publishing a request is an `Arc` refcount bump).
//! The cell is a single-producer hand-off: the owner arms it, a
//! combiner completes it exactly once, the owner takes the outcome and
//! the cell returns to `IDLE` for the next request.
//!
//! Two waiting disciplines share the same cell:
//!
//! * **Parking** (CPU platform): the owner blocks on the cell's condvar.
//!   The combiner publishes the outcome *under the slot mutex* before
//!   notifying, and the owner re-checks the phase under the same mutex
//!   before each wait, so a wakeup can never be lost.
//! * **Polling** (sim platform): the owner spins on the atomic phase,
//!   yielding through the backend's `relax` between probes, and only
//!   touches the slot mutex after observing `DONE`. The mutex is never
//!   held across a backoff — on the single-grant simulator that would
//!   deadlock the scheduler.

use parking_lot::{Condvar, Mutex};
use pq_api::{Entry, KeyType, QueueError, ValueType};
use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Cell is free for the owner to arm.
const PHASE_IDLE: u8 = 0;
/// Armed: the request is published (or about to be) and unserved.
const PHASE_PENDING: u8 = 1;
/// A combiner stored the outcome; the owner may take it.
const PHASE_DONE: u8 = 2;

/// One coalescable request, carried by value through the rings
/// (`Entry` is `Copy`, so no per-op allocation).
#[derive(Clone, Copy, Debug)]
pub enum Op<K: KeyType, V: ValueType> {
    Insert(Entry<K, V>),
    DeleteMin,
}

/// Outcome of a coalesced request. Inserts complete with `Ok(None)`;
/// deletes with `Ok(Some(entry))`, or `Ok(None)` when the queue ran
/// out of items before reaching this waiter.
pub type OpOutcome<K, V> = Result<Option<Entry<K, V>>, QueueError>;

/// A reusable one-shot completion slot (see module docs).
pub struct OpCell<K: KeyType, V: ValueType> {
    /// `IDLE` → `PENDING` (owner) → `DONE` (combiner) → `IDLE` (owner).
    phase: AtomicU8,
    outcome: Mutex<Option<OpOutcome<K, V>>>,
    wake: Condvar,
}

impl<K: KeyType, V: ValueType> OpCell<K, V> {
    pub fn new() -> Self {
        Self { phase: AtomicU8::new(PHASE_IDLE), outcome: Mutex::new(None), wake: Condvar::new() }
    }

    /// Owner side: claim the cell for a new request. Panics if the
    /// previous request was not taken — the submit API is blocking, so
    /// a thread can never have two requests outstanding.
    pub fn arm(&self) {
        let prev = self.phase.swap(PHASE_PENDING, Ordering::AcqRel);
        assert_eq!(prev, PHASE_IDLE, "one outstanding combiner request per thread");
    }

    /// Combiner side: publish the outcome and wake a parked owner.
    /// Must be called exactly once per armed request.
    pub fn complete(&self, outcome: OpOutcome<K, V>) {
        let mut slot = self.outcome.lock();
        debug_assert!(slot.is_none(), "request completed twice");
        *slot = Some(outcome);
        // Published under the mutex: a parking owner re-checks the
        // phase under this mutex, so the store cannot race a wait.
        self.phase.store(PHASE_DONE, Ordering::Release);
        drop(slot);
        self.wake.notify_one();
    }

    /// Whether the outcome is ready (polling waiters probe this; no
    /// lock is touched until it returns true).
    pub fn is_done(&self) -> bool {
        self.phase.load(Ordering::Acquire) == PHASE_DONE
    }

    /// Owner side: block until the outcome is ready (CPU platform only).
    pub fn park_until_done(&self) {
        let mut slot = self.outcome.lock();
        while self.phase.load(Ordering::Acquire) != PHASE_DONE {
            self.wake.wait(&mut slot);
        }
    }

    /// Owner side: take the outcome and recycle the cell. Must only be
    /// called after [`OpCell::is_done`] / [`OpCell::park_until_done`].
    pub fn take(&self) -> OpOutcome<K, V> {
        let mut slot = self.outcome.lock();
        let out = slot.take().expect("take() before completion");
        self.phase.store(PHASE_IDLE, Ordering::Release);
        out
    }
}

impl<K: KeyType, V: ValueType> Default for OpCell<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// Per-thread cell registry, keyed by (combiner instance, cell
    /// type). One blocking request per thread per combiner means one
    /// cell each suffices; it is allocated on the thread's first
    /// submit and reused for every request after.
    static TL_CELLS: RefCell<HashMap<(u64, TypeId), Box<dyn Any>>> = RefCell::new(HashMap::new());
}

/// This thread's reusable cell for combiner `instance` (see
/// [`TL_CELLS`]).
pub(crate) fn thread_cell<K: KeyType, V: ValueType>(instance: u64) -> Arc<OpCell<K, V>> {
    TL_CELLS.with(|m| {
        m.borrow_mut()
            .entry((instance, TypeId::of::<OpCell<K, V>>()))
            .or_insert_with(|| Box::new(Arc::new(OpCell::<K, V>::new())))
            .downcast_ref::<Arc<OpCell<K, V>>>()
            .expect("registry entry has the keyed type")
            .clone()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_complete_take_roundtrip() {
        let c: OpCell<u32, u32> = OpCell::new();
        c.arm();
        assert!(!c.is_done());
        c.complete(Ok(Some(Entry::new(3, 7))));
        assert!(c.is_done());
        assert_eq!(c.take(), Ok(Some(Entry::new(3, 7))));
        // Recycled: can be armed again.
        c.arm();
        c.complete(Err(QueueError::Poisoned));
        assert_eq!(c.take(), Err(QueueError::Poisoned));
    }

    #[test]
    #[should_panic(expected = "one outstanding")]
    fn double_arm_is_rejected() {
        let c: OpCell<u32, u32> = OpCell::new();
        c.arm();
        c.arm();
    }

    #[test]
    fn parked_owner_is_woken() {
        let c: Arc<OpCell<u32, ()>> = Arc::new(OpCell::new());
        c.arm();
        let waiter = {
            let c = c.clone();
            std::thread::spawn(move || {
                c.park_until_done();
                c.take()
            })
        };
        // Give the waiter a moment to actually park.
        std::thread::sleep(std::time::Duration::from_millis(10));
        c.complete(Ok(None));
        assert_eq!(waiter.join().unwrap(), Ok(None));
    }

    #[test]
    fn thread_cells_are_stable_per_instance() {
        let a = thread_cell::<u32, u32>(1);
        let b = thread_cell::<u32, u32>(1);
        assert!(Arc::ptr_eq(&a, &b), "same instance reuses the cell");
        let c = thread_cell::<u32, u32>(2);
        assert!(!Arc::ptr_eq(&a, &c), "instances are isolated");
        let d = thread_cell::<u64, u32>(1);
        // Different type under the same instance id is a distinct cell.
        assert_eq!(Arc::strong_count(&d), 2);
    }
}
