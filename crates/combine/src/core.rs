//! Platform-agnostic combining engine.
//!
//! [`CombineShared`] is the state every submitter sees: the submission
//! rings, the combiner lock, the adaptive batch window and the front's
//! [`OpStats`]. It is generic over a [`CombineBackend`] — the CPU front
//! in [`crate::cpu`] drives it with real threads and condvar parking,
//! the simulator tests drive it with polling sim agents — so the
//! combining protocol itself is written (and tested) once.
//!
//! # Protocol
//!
//! A submitter arms its thread-local cell, publishes `(cell, op)` into
//! its lane's ring, then tries the combiner lock **once**:
//!
//! * acquired — it becomes the combiner: it drains rings in rounds of
//!   up to `window` requests (the window opens to `2k` under load),
//!   issues each kind as `≤ k`-wide batched backend calls, and
//!   completes every drained cell (its own included);
//! * not acquired — some other thread is combining; the submitter
//!   waits on its cell (park or poll, per [`CombineBackend::CAN_PARK`]).
//!
//! # No lost requests
//!
//! The combiner may only stop while requests sit unserved if someone
//! else is guaranteed to serve them. The exit protocol makes that
//! airtight *without timed waits*: after draining to empty, the
//! combiner releases the lock, then re-checks every ring **under the
//! ring mutex**. If it finds work it re-tries the lock — continuing if
//! acquired, and otherwise leaving the work to whoever beat it to the
//! lock. A request pushed *after* that post-release sweep cannot be
//! stranded either: its push happens-after the sweep (same ring mutex),
//! so its owner's subsequent `try_lock` either acquires the now-free
//! lock (and self-serves) or observes a newer combiner that will sweep
//! again before exiting. Induction over combiners closes every
//! interleaving.
//!
//! The same protocol doubles as a fairness valve: after
//! `SESSION_ROUNDS` rounds the combiner runs it with the rings still
//! non-empty, and spinning waiters periodically re-try the lock, so
//! under sustained traffic the combining duty rotates instead of
//! pinning one submitter (and its own workload) behind everyone
//! else's.
//!
//! # Failure containment
//!
//! Backend calls run under `catch_unwind`. A panic or a
//! [`QueueError::Poisoned`] trips the front *unavailable*: the
//! requests of the affected round get `Poisoned` (the structural
//! verdict they observed), and later submissions fail fast with
//! [`QueueError::Unavailable`] — a front state, not a verdict —
//! without touching the backend. Every [`PROBE_INTERVAL`]-th
//! submission while unavailable is let through as a **probe**: it runs
//! the full protocol against the backend, and if the backend serves it
//! (it was salvaged and re-admitted underneath, e.g. by `bgpq-shard`'s
//! circuit breaker or a `bgpq-recover` rebuild), the front clears the
//! trip and resumes normal service. `LockTimeout` is distributed to
//! the affected round only (the front stays live), and a `Full` insert
//! round falls back to per-request submission so the requests that
//! individually fit still succeed.

use crate::cell::{thread_cell, Op, OpCell, OpOutcome};
use bgpq::Mutation;
use parking_lot::Mutex;
use pq_api::{Entry, KeyType, OpStats, QueueError, ValueType};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Bounded linger: when a round is still below the window but the
/// pending counter says more submissions are in flight, the combiner
/// takes up to this many `relax` steps to let them land before
/// issuing. This is what grows batches under load without delaying a
/// lone request (whose gather sees `pending == round.len()` and issues
/// immediately).
const GATHER_SPINS: u32 = 128;

/// Bounded pre-park polling in `submit`: how many `relax` steps a
/// waiter takes before falling back to the OS condvar. Covers the
/// common case where an active combiner completes the cell within a
/// few yields, without burning cycles when the round is genuinely
/// slow.
const PARK_SPINS: u32 = 64;

/// Combiner lock tenure: after this many rounds the combiner runs the
/// exit protocol even though the rings are non-empty, offering the
/// role to whoever re-tries the lock in the gap. Under sustained
/// traffic the rings never drain, so without a tenure bound one
/// submitter would serve everyone else forever while its own workload
/// starves — and then runs as an unbatched tail after the others
/// finish. The offer is safe by the same exit-protocol induction: if
/// no waiter takes the lock, the incumbent re-acquires and continues.
const SESSION_ROUNDS: u32 = 8;

/// How often a spinning waiter re-tries the combiner lock (every
/// 2^RETRY_SHIFT relax steps) — the accept side of the tenure handoff.
const RETRY_SHIFT: u32 = 5;

/// While the front is tripped unavailable, one submission in this many
/// is let through as a probe against the backend; the rest fail fast
/// with [`QueueError::Unavailable`]. Small enough that a recovered
/// backend is rediscovered within tens of requests, large enough that
/// a dead one is not hammered.
pub const PROBE_INTERVAL: u64 = 16;

/// What a combiner drives: the batched backend plus the platform's
/// notion of how to wait. Each submitting worker supplies its own
/// backend value (methods take `&mut self` so sim backends can carry
/// the agent's worker context).
pub trait CombineBackend<K: KeyType, V: ValueType> {
    /// Whether submitters may block on OS primitives while waiting for
    /// completion. `false` on the simulator, where agents must poll
    /// through [`CombineBackend::relax`] so virtual time advances.
    const CAN_PARK: bool = true;

    /// The backend's `k` — the widest batch one backend call accepts.
    /// The coalescing window may open past this (up to `2k`); the
    /// combiner then issues the round as several `≤ k` calls.
    fn batch_capacity(&self) -> usize;

    /// Batched insert; on `Err` no item of `items` was inserted.
    fn try_insert_batch(&mut self, items: &[Entry<K, V>]) -> Result<(), QueueError>;

    /// Batched delete, appending ascending; on `Err`, `out` unchanged.
    fn try_delete_min_batch(
        &mut self,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> Result<usize, QueueError>;

    /// One bounded wait step (yield on CPU, virtual-time backoff on
    /// the simulator). Never called with any combiner mutex held.
    fn relax(&mut self);

    /// Access-tagging hook for the front's shared combining state
    /// (rings, cells, pending counter, combiner lock): schedule
    /// exploration uses it to build the independence relation for
    /// partial-order reduction. A no-op everywhere else — sim backends
    /// forward to `Platform::touch_shared`.
    fn touch_shared(&mut self, _write: bool) {}

    /// Preferred submission lane for the calling worker (reduces ring
    /// contention; correctness does not depend on the value).
    fn lane(&self) -> usize {
        0
    }
}

/// One armed submission as it travels through a ring into a round.
type Queued<K, V> = (Arc<OpCell<K, V>>, Op<K, V>);

/// One MPSC submission lane: producers push at the tail, the combiner
/// drains from the head, preserving per-thread arrival order.
struct Ring<K: KeyType, V: ValueType> {
    q: Mutex<VecDeque<Queued<K, V>>>,
}

/// Combiner-owned scratch: round buffers reused across rounds (the
/// `OpScratch` convention — grow once, then allocation-free).
struct CombineScratch<K: KeyType, V: ValueType> {
    round: Vec<Queued<K, V>>,
    /// Armed submissions the last gather saw beyond what fit in the
    /// round — the demand signal the window adapts on (a round clipped
    /// at the window must still be able to grow it).
    backlog: usize,
    /// Ring the next gather starts draining from. Rotating the start
    /// keeps service fair when the window clips a round: a fixed
    /// starting ring would serve low-numbered lanes every round and
    /// starve the rest into a long completion tail.
    cursor: usize,
    insert_cells: Vec<Arc<OpCell<K, V>>>,
    insert_buf: Vec<Entry<K, V>>,
    delete_cells: Vec<Arc<OpCell<K, V>>>,
    delete_out: Vec<Entry<K, V>>,
}

static INSTANCE_TICKET: AtomicU64 = AtomicU64::new(1);

/// Tuning knobs for a combining front.
#[derive(Debug, Clone, Copy)]
pub struct CombinerOptions {
    /// Number of submission rings. More rings mean less push
    /// contention; the combiner drains them all either way.
    pub rings: usize,
    /// Initial adaptive window (clamped to `1..=2k`).
    pub initial_window: usize,
    /// Verification self-test mutation (see [`bgpq::Mutation`]); the
    /// front honors [`Mutation::CombinerDropsForeignInsert`]. Must stay
    /// [`Mutation::None`] outside schedule-exploration self-tests.
    pub mutation: Mutation,
}

impl Default for CombinerOptions {
    fn default() -> Self {
        Self { rings: 8, initial_window: 1, mutation: Mutation::None }
    }
}

impl CombinerOptions {
    pub fn validate(&self) {
        assert!(self.rings >= 1, "need at least one submission ring");
        assert!(self.initial_window >= 1, "window must be at least 1");
        // Same policy as `BgpqOptions::validate`: outside the self-test
        // cfg the front would silently ignore the field — reject.
        #[cfg(not(any(test, feature = "mutations")))]
        assert!(
            self.mutation == Mutation::None,
            "CombinerOptions::mutation requires the `mutations` feature (verification self-tests only)"
        );
    }
}

/// Shared state of one combining front (see module docs).
pub struct CombineShared<K: KeyType, V: ValueType> {
    rings: Box<[Ring<K, V>]>,
    /// Armed-but-uncompleted requests; a load signal for the gather
    /// linger and the stats, *not* part of the exit-protocol proof
    /// (ring emptiness under the ring mutexes is the ground truth).
    pending: AtomicUsize,
    /// High-water mark of `pending` as sampled at gather entry — how
    /// much simultaneous demand the combiner ever saw (diagnostics;
    /// the coalesce bench reports it next to the mean occupancy).
    peak_pending: AtomicUsize,
    /// Current coalescing window, `1..=2k`. Opening past `k` matters
    /// for mixed traffic: a `k`-wide round splits into an insert part
    /// and a delete part, each only a fraction of `k` wide. A `2k`
    /// round keeps both kinds near full batches; [`Self::issue`]
    /// chunks anything oversized into `≤ k` backend calls.
    window: AtomicUsize,
    /// Tripped-unavailable flag: set when a backend call crashed or
    /// reported `Poisoned`, cleared when a probe gets served. See the
    /// module docs' failure-containment section.
    poisoned: AtomicBool,
    /// Submissions rejected (or admitted as probes) since the trip;
    /// drives the 1-in-[`PROBE_INTERVAL`] probe cadence.
    unavail_ticket: AtomicU64,
    combiner: Mutex<CombineScratch<K, V>>,
    stats: OpStats,
    batch_capacity: usize,
    /// Key into the thread-local cell registry.
    instance: u64,
    /// Verification self-test mutation (see [`CombinerOptions`]).
    /// Compiled out of production builds.
    #[cfg(any(test, feature = "mutations"))]
    mutation: Mutation,
}

impl<K: KeyType, V: ValueType> CombineShared<K, V> {
    pub fn new(batch_capacity: usize, opts: CombinerOptions) -> Self {
        opts.validate();
        assert!(batch_capacity >= 1, "backend batch capacity must be at least 1");
        Self {
            rings: (0..opts.rings).map(|_| Ring { q: Mutex::new(VecDeque::new()) }).collect(),
            pending: AtomicUsize::new(0),
            peak_pending: AtomicUsize::new(0),
            window: AtomicUsize::new(opts.initial_window.clamp(1, 2 * batch_capacity)),
            poisoned: AtomicBool::new(false),
            unavail_ticket: AtomicU64::new(0),
            combiner: Mutex::new(CombineScratch {
                round: Vec::new(),
                backlog: 0,
                cursor: 0,
                insert_cells: Vec::new(),
                insert_buf: Vec::new(),
                delete_cells: Vec::new(),
                delete_out: Vec::new(),
            }),
            stats: OpStats::new(),
            batch_capacity,
            instance: INSTANCE_TICKET.fetch_add(1, Ordering::Relaxed),
            #[cfg(any(test, feature = "mutations"))]
            mutation: opts.mutation,
        }
    }

    /// Front-side counters: `inserts`/`delete_mins` count issued
    /// backend batches, `items_*` count coalesced requests, and
    /// `batch_occupancy` histograms the coalesced width of every
    /// issued batch against `k`.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// Current adaptive window (diagnostics).
    pub fn window(&self) -> usize {
        self.window.load(Ordering::Relaxed)
    }

    /// Most simultaneous armed requests any gather ever observed
    /// (diagnostics: an upper bound on achievable batch occupancy).
    pub fn peak_pending(&self) -> usize {
        self.peak_pending.load(Ordering::Relaxed)
    }

    /// The backend batch capacity this front coalesces toward.
    pub fn batch_capacity(&self) -> usize {
        self.batch_capacity
    }

    /// Ceiling for the coalescing window: twice the backend `k`, so a
    /// mixed round can carry close to `k` of *each* kind.
    fn max_window(&self) -> usize {
        2 * self.batch_capacity
    }

    /// Whether a backend crash has tripped this front unavailable
    /// (most requests now fail fast with [`QueueError::Unavailable`];
    /// probes still go through and can restore service).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Submit one request and wait for its outcome. This is the whole
    /// public fast path: publish, opportunistically combine, wait.
    pub fn submit<B: CombineBackend<K, V>>(
        &self,
        backend: &mut B,
        op: Op<K, V>,
    ) -> OpOutcome<K, V> {
        if self.is_poisoned() {
            let t = self.unavail_ticket.fetch_add(1, Ordering::Relaxed);
            if !t.is_multiple_of(PROBE_INTERVAL) {
                // Fast-fail without touching the backend: the caller
                // keeps its key and may retry after backoff (see
                // `pq_api::RetryPolicy`).
                return Err(QueueError::Unavailable);
            }
            // This submission is a probe: it runs the full protocol
            // and actually calls the backend. If the backend was
            // healed underneath (salvage + re-admission), the served
            // round clears the trip; if it is still down, the probe
            // reports `Poisoned` honestly.
        }
        let cell = thread_cell::<K, V>(self.instance);
        // Publishing a request mutates shared front state (cell arm,
        // pending counter, ring push) — every other front op races it.
        backend.touch_shared(true);
        cell.arm();
        self.pending.fetch_add(1, Ordering::SeqCst);
        let lane = backend.lane() % self.rings.len();
        self.rings[lane].q.lock().push_back((cell.clone(), op));

        // One shot at becoming the combiner (see module docs for why
        // one attempt suffices for liveness).
        self.combine_session(backend);

        if !cell.is_done() {
            if B::CAN_PARK {
                // Spin-then-park: an active combiner usually completes
                // the cell within a few scheduler yields, and skipping
                // the park avoids the full sleep/notify round trip per
                // request. Only genuinely slow rounds pay for parking.
                let mut spins = 0u32;
                while !cell.is_done() && spins < PARK_SPINS {
                    backend.relax();
                    spins += 1;
                }
                if !cell.is_done() {
                    cell.park_until_done();
                }
            } else {
                // Polling waiters are the accept side of the tenure
                // handoff (see SESSION_ROUNDS): periodically re-try
                // the combiner lock so the duty can rotate. Parking
                // waiters above skip this — there, fresh submitters'
                // `try_lock` takes the handoff instead, and lock
                // retries from a spinning waiter only add contention.
                let mut spins = 0u32;
                while !cell.is_done() {
                    // Each poll reads the cell a combiner will write.
                    backend.touch_shared(false);
                    backend.relax();
                    spins = spins.wrapping_add(1);
                    if spins & ((1 << RETRY_SHIFT) - 1) == 0 {
                        self.combine_session(backend);
                    }
                }
            }
        }
        cell.take()
    }

    /// Try to become the combiner; if acquired, serve rounds until the
    /// rings are verifiably empty (exit protocol in the module docs).
    fn combine_session<B: CombineBackend<K, V>>(&self, backend: &mut B) {
        // The lock attempt itself races every other session attempt.
        backend.touch_shared(true);
        let Some(mut guard) = self.combiner.try_lock() else { return };
        loop {
            let mut rounds = 0u32;
            loop {
                self.gather(backend, &mut guard);
                if guard.round.is_empty() {
                    break;
                }
                self.issue(backend, &mut guard);
                rounds += 1;
                if !B::CAN_PARK && rounds >= SESSION_ROUNDS {
                    // Tenure is up: offer the combiner role to a
                    // polling waiter via the exit protocol below.
                    // Parking backends skip this — their waiters
                    // cannot accept a handoff while parked, so a
                    // tenure break only buys a park/notify storm.
                    break;
                }
            }
            drop(guard);
            // Post-release sweep: a request pushed between our last
            // drain and the unlock must not be stranded.
            backend.touch_shared(true);
            if self.rings_are_empty() {
                return;
            }
            // Open a real handoff window before re-trying: on the
            // simulator no other agent runs between two of our steps
            // unless we advance virtual time, so without this yield
            // the incumbent would always win its own re-acquire.
            backend.relax();
            backend.touch_shared(true);
            match self.combiner.try_lock() {
                Some(g) => guard = g,
                // Someone newer holds the lock; they will sweep too.
                None => return,
            }
        }
    }

    fn rings_are_empty(&self) -> bool {
        self.rings.iter().all(|r| r.q.lock().is_empty())
    }

    /// Drain up to `window` requests into `s.round`, lingering briefly
    /// when more submissions are in flight (see [`GATHER_SPINS`]).
    fn gather<B: CombineBackend<K, V>>(&self, backend: &mut B, s: &mut CombineScratch<K, V>) {
        s.round.clear();
        backend.touch_shared(true);
        self.peak_pending.fetch_max(self.pending.load(Ordering::SeqCst), Ordering::Relaxed);
        let window = self.window.load(Ordering::Relaxed).clamp(1, self.max_window());
        let mut spins = 0u32;
        loop {
            for i in 0..self.rings.len() {
                if s.round.len() >= window {
                    break;
                }
                let ring = &self.rings[(s.cursor + i) % self.rings.len()];
                let mut q = ring.q.lock();
                while s.round.len() < window {
                    match q.pop_front() {
                        Some(item) => s.round.push(item),
                        None => break,
                    }
                }
            }
            s.cursor = (s.cursor + 1) % self.rings.len();
            if s.round.len() >= window {
                // The demand signal must be refreshed on every exit
                // path: a round clipped at the window plus a backlog
                // is exactly what tells the window to grow.
                s.backlog = self.pending.load(Ordering::SeqCst).saturating_sub(s.round.len());
                return;
            }
            // `pending` counts armed-but-uncompleted requests, which
            // includes everything already in this round. Any excess is
            // a submission between arm and push — worth a short wait.
            let in_flight = self.pending.load(Ordering::SeqCst).saturating_sub(s.round.len());
            // Linger while (a) a submission is mid-flight between arm
            // and push, or (b) the window is open because recent
            // rounds were wide: the peers whose requests widened them
            // were just completed and need a beat to resubmit. A lone
            // submitter keeps the window at 1 and never waits here.
            if spins >= GATHER_SPINS || (in_flight == 0 && window == 1) {
                s.backlog = in_flight;
                return;
            }
            spins += 1;
            backend.relax();
            // Each linger iteration re-reads the rings and counters.
            backend.touch_shared(true);
        }
    }

    /// Issue one round: inserts first (they can only help the deletes
    /// see smaller keys), then deletes, with per-kind result
    /// distribution in arrival order. A round wider than `k` of either
    /// kind goes out as several `≤ k` backend calls — near-full ones,
    /// which is the whole point of letting the window open past `k`.
    fn issue<B: CombineBackend<K, V>>(&self, backend: &mut B, s: &mut CombineScratch<K, V>) {
        s.insert_cells.clear();
        s.insert_buf.clear();
        s.delete_cells.clear();
        let round_len = s.round.len();
        // CombinerDropsForeignInsert: acknowledge delegated inserts —
        // those gathered from *another* thread's lane — as served
        // without issuing them. The combiner's own requests still go
        // through, so the bug is invisible until a schedule makes one
        // thread actually combine for another; then an acked key never
        // reaches the backend and only front-level accounting can tell.
        #[cfg(any(test, feature = "mutations"))]
        let own_cell = (self.mutation == Mutation::CombinerDropsForeignInsert)
            .then(|| thread_cell::<K, V>(self.instance));
        for (cell, op) in s.round.drain(..) {
            match op {
                Op::Insert(e) => {
                    #[cfg(any(test, feature = "mutations"))]
                    if let Some(own) = &own_cell {
                        if !std::sync::Arc::ptr_eq(&cell, own) {
                            self.finish(&cell, Ok(None));
                            continue;
                        }
                    }
                    s.insert_cells.push(cell);
                    s.insert_buf.push(e);
                }
                Op::DeleteMin => s.delete_cells.push(cell),
            }
        }
        // Per-round composition trace (COMBINE_TRACE=1): the tool that
        // found both the stale-backlog window bug and the combiner
        // starvation cycle; kept for the next schedule investigation.
        static TRACE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        if *TRACE.get_or_init(|| std::env::var_os("COMBINE_TRACE").is_some()) {
            eprintln!(
                "[round] len={} ins={} del={} window={} pending={} backlog={}",
                round_len,
                s.insert_buf.len(),
                s.delete_cells.len(),
                self.window.load(Ordering::Relaxed),
                self.pending.load(Ordering::SeqCst),
                s.backlog
            );
        }
        // One trip per round: after a chunk crashes the backend, the
        // rest of this round fails typed without touching it again. A
        // *later* round may touch it — that is how probes re-test a
        // tripped backend (module docs, failure containment).
        let mut tripped = false;
        let mut backpressure = false;
        if !s.insert_buf.is_empty() {
            backpressure = self.issue_inserts(backend, s, &mut tripped);
        }
        if !s.delete_cells.is_empty() {
            self.issue_deletes(backend, s, &mut tripped);
        }
        if backpressure {
            // The backend is out of space; wide rounds only amplify
            // the per-request retries. Collapse and probe back up.
            self.adapt_window(1);
        } else {
            self.adapt_window(round_len + s.backlog);
        }
    }

    /// Issue the round's inserts in `≤ k` chunks. Returns whether any
    /// chunk hit `Full` backpressure.
    fn issue_inserts<B: CombineBackend<K, V>>(
        &self,
        backend: &mut B,
        s: &mut CombineScratch<K, V>,
        tripped: &mut bool,
    ) -> bool {
        let total = s.insert_buf.len();
        let mut saw_full = false;
        let mut done = 0;
        while done < total {
            // Every chunk completes cells waiters are polling on.
            backend.touch_shared(true);
            if *tripped {
                // An earlier chunk of this round crashed the backend;
                // fail the rest without touching it again.
                for cell in &s.insert_cells[done..total] {
                    self.finish(cell, Err(QueueError::Poisoned));
                }
                break;
            }
            let end = (done + self.batch_capacity).min(total);
            let chunk = &s.insert_buf[done..end];
            let n = chunk.len();
            match catch_unwind(AssertUnwindSafe(|| backend.try_insert_batch(chunk))) {
                Ok(Ok(())) => {
                    self.mark_available();
                    OpStats::bump(&self.stats.inserts);
                    OpStats::add(&self.stats.items_inserted, n as u64);
                    self.stats.record_batch_occupancy(n, self.batch_capacity);
                    for cell in &s.insert_cells[done..end] {
                        self.finish(cell, Ok(None));
                    }
                }
                Ok(Err(QueueError::Full { .. })) if n > 1 => {
                    // The chunk as a whole exceeded free space; retry
                    // each request alone so the ones that individually
                    // fit still succeed.
                    saw_full = true;
                    for (cell, e) in s.insert_cells[done..end].iter().zip(chunk) {
                        let one = std::slice::from_ref(e);
                        if *tripped {
                            self.finish(cell, Err(QueueError::Poisoned));
                            continue;
                        }
                        match catch_unwind(AssertUnwindSafe(|| backend.try_insert_batch(one))) {
                            Ok(Ok(())) => {
                                self.mark_available();
                                OpStats::bump(&self.stats.inserts);
                                OpStats::add(&self.stats.items_inserted, 1);
                                self.stats.record_batch_occupancy(1, self.batch_capacity);
                                self.finish(cell, Ok(None));
                            }
                            Ok(Err(QueueError::Poisoned)) | Err(_) => {
                                self.poison_front();
                                *tripped = true;
                                self.finish(cell, Err(QueueError::Poisoned));
                            }
                            Ok(Err(err)) => self.finish(cell, Err(err)),
                        }
                    }
                }
                Ok(Err(err)) => {
                    if matches!(err, QueueError::Poisoned) {
                        self.poison_front();
                        *tripped = true;
                    }
                    saw_full |= matches!(err, QueueError::Full { .. });
                    // `Full` (n == 1) and `LockTimeout` are per-chunk:
                    // the front stays live and callers still own their
                    // keys.
                    for cell in &s.insert_cells[done..end] {
                        self.finish(cell, Err(err.clone()));
                    }
                }
                Err(_panic) => {
                    // The backend unwound mid-call (injected fault,
                    // bug). Its own poison guard has already marked the
                    // queue; trip the front and fail typed-ly.
                    self.poison_front();
                    *tripped = true;
                    for cell in &s.insert_cells[done..end] {
                        self.finish(cell, Err(QueueError::Poisoned));
                    }
                }
            }
            done = end;
        }
        s.insert_cells.clear();
        s.insert_buf.clear();
        saw_full
    }

    /// Issue the round's deletes in `≤ k` chunks, handing arrival
    /// order j the j-th smallest key overall (sequential `delete_min`
    /// batches return globally ascending runs).
    fn issue_deletes<B: CombineBackend<K, V>>(
        &self,
        backend: &mut B,
        s: &mut CombineScratch<K, V>,
        tripped: &mut bool,
    ) {
        let total = s.delete_cells.len();
        s.delete_out.clear();
        let mut done = 0;
        while done < total {
            // Every chunk completes cells waiters are polling on.
            backend.touch_shared(true);
            if *tripped {
                for cell in &s.delete_cells[done..total] {
                    self.finish(cell, Err(QueueError::Poisoned));
                }
                break;
            }
            let n = (total - done).min(self.batch_capacity);
            let base = s.delete_out.len();
            let out = &mut s.delete_out;
            match catch_unwind(AssertUnwindSafe(|| backend.try_delete_min_batch(out, n))) {
                Ok(Ok(got)) => {
                    self.mark_available();
                    OpStats::bump(&self.stats.delete_mins);
                    OpStats::add(&self.stats.items_deleted, got as u64);
                    self.stats.record_batch_occupancy(n, self.batch_capacity);
                    // Waiters past what the queue held see an empty
                    // queue.
                    for j in 0..n {
                        let res = if j < got { Ok(Some(s.delete_out[base + j])) } else { Ok(None) };
                        self.finish(&s.delete_cells[done + j], res);
                    }
                }
                Ok(Err(err)) => {
                    if matches!(err, QueueError::Poisoned) {
                        self.poison_front();
                        *tripped = true;
                    }
                    for cell in &s.delete_cells[done..done + n] {
                        self.finish(cell, Err(err.clone()));
                    }
                }
                Err(_panic) => {
                    self.poison_front();
                    *tripped = true;
                    for cell in &s.delete_cells[done..done + n] {
                        self.finish(cell, Err(QueueError::Poisoned));
                    }
                }
            }
            done += n;
        }
        s.delete_cells.clear();
    }

    /// Complete one request and retire it from the pending count.
    fn finish(&self, cell: &OpCell<K, V>, outcome: OpOutcome<K, V>) {
        cell.complete(outcome);
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }

    /// Trip the front unavailable. The ticket restarts at 1 so the
    /// next [`PROBE_INTERVAL`]` - 1` submissions fast-fail before the
    /// first probe is let through.
    fn poison_front(&self) {
        if !self.poisoned.swap(true, Ordering::AcqRel) {
            self.unavail_ticket.store(1, Ordering::Relaxed);
            OpStats::bump(&self.stats.poison_events);
        }
    }

    /// A backend call was served: if the front was tripped, restore it
    /// (the probe proved the backend healthy again).
    fn mark_available(&self) {
        if self.poisoned.load(Ordering::Relaxed) {
            self.poisoned.store(false, Ordering::Release);
        }
    }

    /// Demand-following window policy, evaluated once per issued round
    /// with `demand` = the round's size plus the backlog the gather
    /// left behind. Idle traffic converges to window 1 — a lone
    /// request is never delayed — while sustained load opens the
    /// window up to `2k` (mixed rounds then still issue near-full
    /// `k`-wide batches of each kind).
    fn adapt_window(&self, demand: usize) {
        let w = self.window.load(Ordering::Relaxed);
        // Open straight to the observed demand, decay one step at a
        // time: a submitter burst should coalesce on the very next
        // round, while a momentary refill gap (peers woken by the last
        // wide round but not yet resubmitted) must not slam the window
        // shut and re-serialize the traffic.
        let next = if demand > w {
            demand.min(self.max_window())
        } else if demand <= w / 2 {
            (w - 1).max(1)
        } else {
            w
        };
        if next != w {
            self.window.store(next, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plain single-threaded backend over a sorted Vec, enough to
    /// exercise the engine without a real queue.
    struct VecBackend {
        data: Vec<Entry<u32, u32>>,
        k: usize,
        fail_next: Option<QueueError>,
        panic_next: bool,
    }

    impl VecBackend {
        fn new(k: usize) -> Self {
            Self { data: Vec::new(), k, fail_next: None, panic_next: false }
        }
    }

    impl CombineBackend<u32, u32> for VecBackend {
        fn batch_capacity(&self) -> usize {
            self.k
        }

        fn try_insert_batch(&mut self, items: &[Entry<u32, u32>]) -> Result<(), QueueError> {
            if self.panic_next {
                panic!("injected backend panic");
            }
            if let Some(e) = self.fail_next.take() {
                return Err(e);
            }
            self.data.extend_from_slice(items);
            self.data.sort_by_key(|e| e.key);
            Ok(())
        }

        fn try_delete_min_batch(
            &mut self,
            out: &mut Vec<Entry<u32, u32>>,
            count: usize,
        ) -> Result<usize, QueueError> {
            if self.panic_next {
                panic!("injected backend panic");
            }
            if let Some(e) = self.fail_next.take() {
                return Err(e);
            }
            let got = count.min(self.data.len());
            out.extend(self.data.drain(..got));
            Ok(got)
        }

        fn relax(&mut self) {}
    }

    #[test]
    fn solo_requests_roundtrip_immediately() {
        let sh: CombineShared<u32, u32> = CombineShared::new(8, CombinerOptions::default());
        let mut b = VecBackend::new(8);
        assert_eq!(sh.submit(&mut b, Op::Insert(Entry::new(5, 50))), Ok(None));
        assert_eq!(sh.submit(&mut b, Op::Insert(Entry::new(2, 20))), Ok(None));
        assert_eq!(sh.submit(&mut b, Op::DeleteMin), Ok(Some(Entry::new(2, 20))));
        assert_eq!(sh.submit(&mut b, Op::DeleteMin), Ok(Some(Entry::new(5, 50))));
        assert_eq!(sh.submit(&mut b, Op::DeleteMin), Ok(None), "empty queue");
        let snap = sh.stats().snapshot();
        assert_eq!(snap.items_inserted, 2);
        assert_eq!(snap.items_deleted, 2);
        assert_eq!(snap.batches_recorded(), 5, "every request issued as its own batch");
    }

    #[test]
    fn errors_propagate_without_poisoning() {
        let sh: CombineShared<u32, u32> = CombineShared::new(8, CombinerOptions::default());
        let mut b = VecBackend::new(8);
        b.fail_next = Some(QueueError::Full { max_nodes: 1 });
        assert_eq!(
            sh.submit(&mut b, Op::Insert(Entry::new(1, 1))),
            Err(QueueError::Full { max_nodes: 1 })
        );
        assert!(!sh.is_poisoned(), "Full is backpressure, not a crash");
        assert_eq!(sh.submit(&mut b, Op::Insert(Entry::new(1, 1))), Ok(None));
    }

    #[test]
    fn backend_panic_trips_the_front_and_a_probe_restores_it() {
        let sh: CombineShared<u32, u32> = CombineShared::new(8, CombinerOptions::default());
        let mut b = VecBackend::new(8);
        b.panic_next = true;
        assert_eq!(sh.submit(&mut b, Op::Insert(Entry::new(1, 1))), Err(QueueError::Poisoned));
        assert!(sh.is_poisoned());
        assert_eq!(sh.stats().snapshot().poison_events, 1);

        // The backend heals (a salvage underneath). Submissions fast-
        // fail Unavailable without touching it, until the probe slot
        // comes around and restores service.
        b.panic_next = false;
        let mut unavailable = 0u64;
        let mut restored_at = None;
        for i in 0..2 * PROBE_INTERVAL as u32 {
            match sh.submit(&mut b, Op::Insert(Entry::new(10 + i, 0))) {
                Err(QueueError::Unavailable) => unavailable += 1,
                Ok(None) => {
                    restored_at = Some(i);
                    break;
                }
                other => panic!("unexpected probe outcome: {other:?}"),
            }
        }
        assert_eq!(unavailable, PROBE_INTERVAL - 1, "exactly the pre-probe window fast-fails");
        assert_eq!(restored_at, Some(PROBE_INTERVAL as u32 - 1), "the probe itself is served");
        assert!(!sh.is_poisoned(), "a served probe clears the trip");

        // Fully back in service, and the fast-failed callers kept
        // their keys: only the probe's insert is in the backend.
        assert_eq!(sh.submit(&mut b, Op::DeleteMin).unwrap().map(|e| e.key), Some(25));
        assert_eq!(sh.submit(&mut b, Op::DeleteMin), Ok(None));
        assert_eq!(sh.stats().snapshot().poison_events, 1, "one trip, one event");
    }

    #[test]
    fn probes_against_a_dead_backend_stay_unavailable() {
        let sh: CombineShared<u32, u32> = CombineShared::new(8, CombinerOptions::default());
        let mut b = VecBackend::new(8);
        b.panic_next = true;
        assert_eq!(sh.submit(&mut b, Op::DeleteMin), Err(QueueError::Poisoned));

        // Still dead: non-probe submissions fast-fail, probe
        // submissions reach the backend, observe the crash, and report
        // the structural verdict — the front stays tripped either way.
        let mut verdicts = (0u64, 0u64);
        for _ in 0..3 * PROBE_INTERVAL {
            match sh.submit(&mut b, Op::DeleteMin) {
                Err(QueueError::Unavailable) => verdicts.0 += 1,
                Err(QueueError::Poisoned) => verdicts.1 += 1,
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        assert_eq!(verdicts.1, 3, "one probe per interval reaches the backend");
        assert_eq!(verdicts.0, 3 * PROBE_INTERVAL - 3);
        assert!(sh.is_poisoned());
        assert_eq!(
            sh.stats().snapshot().poison_events,
            1,
            "re-trips of a tripped front do not recount"
        );
    }

    #[test]
    fn window_adapts_up_and_down() {
        let sh: CombineShared<u32, u32> = CombineShared::new(16, CombinerOptions::default());
        assert_eq!(sh.window(), 1);
        sh.adapt_window(1); // lone request, no backlog → hold collapsed
        assert_eq!(sh.window(), 1);
        sh.adapt_window(5); // burst → open straight to the demand
        assert_eq!(sh.window(), 5);
        sh.adapt_window(100);
        assert_eq!(sh.window(), 32, "capped at 2k");
        sh.adapt_window(32); // saturated → hold
        assert_eq!(sh.window(), 32);
        sh.adapt_window(7); // ≤ half → decay one step
        assert_eq!(sh.window(), 31);
        sh.adapt_window(20); // between half and full → hold
        assert_eq!(sh.window(), 31);
    }
}
