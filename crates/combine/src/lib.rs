//! # bgpq-combine — dynamic batch-coalescing submission front
//!
//! BGPQ's native API is `k`-wide ([`pq_api::BatchPriorityQueue`], §3.2
//! of the paper), but serving traffic arrives one operation at a time —
//! and a single-op caller wastes the entire batch machinery on 1-item
//! batches. This crate adds a **flat-combining submission front**: many
//! threads submit single `insert` / `delete_min` requests, one of them
//! (the *combiner*) drains everyone's requests and issues up-to-`k`-wide
//! `insert_batch` / `delete_min_batch` calls on the wrapped queue,
//! then distributes results back through per-request completion slots.
//!
//! The pieces:
//!
//! * [`Combiner`] — wraps any [`pq_api::TryBatchPriorityQueue`]
//!   (`CpuBgpq`, `CpuShardedBgpq`, any [`pq_api::ItemwiseBatch`]
//!   baseline) and implements [`pq_api::PriorityQueue`], so existing
//!   single-op callers run through it unchanged:
//!
//!   ```
//!   use bgpq_combine::Combiner;
//!   use bgpq::{BgpqOptions, CpuBgpq};
//!   use pq_api::PriorityQueue;
//!
//!   let q = Combiner::wrap(CpuBgpq::<u32, ()>::new(BgpqOptions::with_capacity_for(64, 1_000)));
//!   q.insert(42, ());
//!   assert_eq!(q.delete_min().map(|e| e.key), Some(42));
//!   ```
//!
//! * [`CombineShared`] / [`CombineBackend`] — the platform-agnostic
//!   engine and its driver trait, public so the simulator tests drive
//!   the same protocol with polling sim agents (`CAN_PARK = false`).
//! * [`CombinerOptions`] — ring count and initial window.
//!
//! The adaptive window grows toward `k` under load and collapses to 1
//! when idle, so a lone request is never delayed waiting for peers
//! that are not coming; see `DESIGN.md` for the ring layout, the
//! no-lost-request exit protocol, and the backpressure semantics.

pub mod cell;
pub mod core;
pub mod cpu;

pub use cell::{Op, OpCell, OpOutcome};
pub use core::{CombineBackend, CombineShared, CombinerOptions};
pub use cpu::Combiner;
