//! The CPU combining front: [`Combiner`] wraps any
//! [`TryBatchPriorityQueue`] and exposes the classical single-op
//! [`PriorityQueue`] API, coalescing concurrent single-op traffic into
//! up-to-`k`-wide batched calls.

use crate::cell::Op;
use crate::core::{CombineBackend, CombineShared, CombinerOptions};
use pq_api::{
    BatchPriorityQueue, Entry, KeyType, OpStats, PriorityQueue, QueueError, TryBatchPriorityQueue,
    ValueType,
};

/// Backend driver for real threads: batched calls go straight to the
/// wrapped queue's hardened paths, waiting yields the OS scheduler
/// (this repo's CI is single-core — a pure spin would starve the
/// combiner we are waiting on), and the submission lane is the
/// process-wide dense worker id, the same identity the shard router
/// stripes by.
struct CpuBackend<'a, Q> {
    queue: &'a Q,
}

impl<K, V, Q> CombineBackend<K, V> for CpuBackend<'_, Q>
where
    K: KeyType,
    V: ValueType,
    Q: TryBatchPriorityQueue<K, V>,
{
    const CAN_PARK: bool = true;

    fn batch_capacity(&self) -> usize {
        self.queue.batch_capacity()
    }

    fn try_insert_batch(&mut self, items: &[Entry<K, V>]) -> Result<(), QueueError> {
        self.queue.try_insert_batch(items)
    }

    fn try_delete_min_batch(
        &mut self,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> Result<usize, QueueError> {
        self.queue.try_delete_min_batch(out, count)
    }

    fn relax(&mut self) {
        std::thread::yield_now();
    }

    fn lane(&self) -> usize {
        bgpq_runtime::worker_id()
    }
}

/// Flat-combining submission front over a batched queue (the
/// tentpole): single-op `insert` / `delete_min` calls from many
/// threads coalesce into batched backend calls sized by an adaptive
/// window. Implements [`PriorityQueue`] so every single-op caller —
/// apps, drills, benches — can run through it unchanged, and passes
/// [`BatchPriorityQueue`] straight through to the wrapped queue so
/// already-batched callers skip the front.
///
/// ```
/// use bgpq_combine::Combiner;
/// use bgpq::{BgpqOptions, CpuBgpq};
/// use pq_api::PriorityQueue;
///
/// let q = Combiner::wrap(CpuBgpq::<u32, u32>::new(BgpqOptions::with_capacity_for(64, 1_000)));
/// q.insert(7, 70);
/// q.insert(3, 30);
/// assert_eq!(q.delete_min().map(|e| e.key), Some(3));
/// ```
pub struct Combiner<K: KeyType, V: ValueType, Q> {
    queue: Q,
    shared: CombineShared<K, V>,
}

impl<K, V, Q> Combiner<K, V, Q>
where
    K: KeyType,
    V: ValueType,
    Q: TryBatchPriorityQueue<K, V>,
{
    /// Wrap `queue` with default combining options.
    pub fn wrap(queue: Q) -> Self {
        Self::with_options(queue, CombinerOptions::default())
    }

    pub fn with_options(queue: Q, opts: CombinerOptions) -> Self {
        let shared = CombineShared::new(queue.batch_capacity(), opts);
        Self { queue, shared }
    }

    /// The wrapped queue (its own stats, direct batched access).
    pub fn inner(&self) -> &Q {
        &self.queue
    }

    pub fn into_inner(self) -> Q {
        self.queue
    }

    /// Front-side counters (issued batches, coalesced widths); the
    /// wrapped queue keeps its own [`OpStats`] independently.
    pub fn stats(&self) -> &OpStats {
        self.shared.stats()
    }

    /// Current adaptive coalescing window (diagnostics).
    pub fn window(&self) -> usize {
        self.shared.window()
    }

    /// Whether a backend crash has poisoned the front.
    pub fn is_poisoned(&self) -> bool {
        self.shared.is_poisoned()
    }

    /// Coalesced single-item insert; failures (`Full`, `Poisoned`,
    /// `LockTimeout`) surface as values and the caller still owns the
    /// key on `Err`.
    pub fn try_insert(&self, key: K, value: V) -> Result<(), QueueError> {
        let mut b = CpuBackend { queue: &self.queue };
        self.shared.submit(&mut b, Op::Insert(Entry::new(key, value))).map(|_| ())
    }

    /// Coalesced single-item delete-min; `Ok(None)` means the queue
    /// was observed empty.
    pub fn try_delete_min(&self) -> Result<Option<Entry<K, V>>, QueueError> {
        let mut b = CpuBackend { queue: &self.queue };
        self.shared.submit(&mut b, Op::DeleteMin)
    }
}

impl<K, V, Q> PriorityQueue<K, V> for Combiner<K, V, Q>
where
    K: KeyType,
    V: ValueType,
    Q: TryBatchPriorityQueue<K, V>,
{
    fn insert(&self, key: K, value: V) {
        if let Err(e) = self.try_insert(key, value) {
            panic!("combined insert failed: {e}");
        }
    }

    fn delete_min(&self) -> Option<Entry<K, V>> {
        match self.try_delete_min() {
            Ok(r) => r,
            Err(e) => panic!("combined delete_min failed: {e}"),
        }
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// Already-batched callers bypass the front: the wrapped queue's
/// batched entry points are exactly as concurrent-safe as before.
impl<K, V, Q> BatchPriorityQueue<K, V> for Combiner<K, V, Q>
where
    K: KeyType,
    V: ValueType,
    Q: TryBatchPriorityQueue<K, V>,
{
    fn batch_capacity(&self) -> usize {
        self.queue.batch_capacity()
    }

    fn insert_batch(&self, items: &[Entry<K, V>]) {
        self.queue.insert_batch(items);
    }

    fn delete_min_batch(&self, out: &mut Vec<Entry<K, V>>, count: usize) -> usize {
        self.queue.delete_min_batch(out, count)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_api::ItemwiseBatch;
    use std::collections::BinaryHeap;
    use std::sync::Mutex;

    /// Reference queue so these unit tests need no heavier crate; the
    /// integration tests exercise `CpuBgpq`/`CpuShardedBgpq` backends.
    struct RefPq(Mutex<BinaryHeap<core::cmp::Reverse<Entry<u32, u32>>>>);

    impl PriorityQueue<u32, u32> for RefPq {
        fn insert(&self, key: u32, value: u32) {
            self.0.lock().unwrap().push(core::cmp::Reverse(Entry::new(key, value)));
        }
        fn delete_min(&self) -> Option<Entry<u32, u32>> {
            self.0.lock().unwrap().pop().map(|r| r.0)
        }
        fn len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
    }

    fn front() -> Combiner<u32, u32, ItemwiseBatch<RefPq>> {
        Combiner::wrap(ItemwiseBatch::new(RefPq(Mutex::new(BinaryHeap::new())), 8))
    }

    #[test]
    fn single_thread_orders_keys() {
        let q = front();
        for k in [5u32, 1, 9, 3] {
            q.insert(k, k * 10);
        }
        assert_eq!(PriorityQueue::len(&q), 4);
        let got: Vec<u32> = std::iter::from_fn(|| q.delete_min().map(|e| e.key)).collect();
        assert_eq!(got, vec![1, 3, 5, 9]);
    }

    #[test]
    fn concurrent_submitters_conserve_every_key() {
        let q = std::sync::Arc::new(front());
        let per = 500u32;
        let threads = 4u32;
        let mut handles = Vec::new();
        for t in 0..threads {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    q.insert(t * per + i, 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = Vec::new();
        while let Some(e) = q.delete_min() {
            seen.push(e.key);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..threads * per).collect::<Vec<_>>());
        let snap = q.stats().snapshot();
        assert_eq!(snap.items_inserted, (threads * per) as u64);
        assert_eq!(snap.items_deleted, (threads * per) as u64);
        assert!(snap.inserts <= snap.items_inserted, "batches never exceed requests");
    }

    #[test]
    fn batched_path_bypasses_the_front() {
        let q = front();
        q.insert_batch(&[Entry::new(4, 0), Entry::new(2, 0)]);
        assert_eq!(q.stats().snapshot().batches_recorded(), 0, "no front batch issued");
        let mut out = Vec::new();
        assert_eq!(q.delete_min_batch(&mut out, 2), 2);
        assert_eq!(out[0].key, 2);
    }
}
