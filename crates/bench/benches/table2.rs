//! Criterion wrapper around scaled-down Table 2 cells: synthetic
//! insert/delete for each queue, the BGPQ-vs-P-Sync GPU comparison, and
//! one knapsack + one A* cell. The full rows (all sizes, distributions
//! and speedup columns) come from the `table2` binary.

use apps::{solve_astar, solve_knapsack_budgeted, AstarNode, KsNode};
use bench::cpu::{build_queue, cpu_insdel, QueueKind};
use bench::sim::{bgpq_sim_insdel, psync_sim_insdel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::GpuConfig;
use workloads::{
    generate_keys, Correlation, Grid, GridSpec, KeyDist, KnapsackInstance, KnapsackSpec,
};

fn bench_insdel_cells(c: &mut Criterion) {
    let keys = generate_keys(1 << 14, KeyDist::Random, 31);
    let mut g = c.benchmark_group("table2_insdel");
    g.sample_size(10);
    for kind in [QueueKind::Tbb, QueueKind::Cbpq, QueueKind::Ljsl, QueueKind::Spray] {
        g.bench_with_input(BenchmarkId::new("cpu", kind.label()), &kind, |b, &kind| {
            b.iter(|| {
                let q = build_queue::<u32, ()>(kind, keys.len(), 256, 2);
                cpu_insdel(q.as_ref(), &keys, 2, 256)
            });
        });
    }
    g.bench_function("gpu/BGPQ-sim", |b| {
        b.iter(|| bgpq_sim_insdel(GpuConfig::new(8, 512), 1024, &keys));
    });
    g.bench_function("gpu/P-Sync-sim", |b| {
        b.iter(|| psync_sim_insdel(GpuConfig::new(8, 512), 1024, &keys));
    });
    g.finish();
}

fn bench_app_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_apps");
    g.sample_size(10);
    let inst = KnapsackInstance::generate(KnapsackSpec::new(200, Correlation::Weak, 200));
    g.bench_function("knapsack_200/BGPQ-cpu", |b| {
        b.iter(|| {
            let q = build_queue::<u64, KsNode>(QueueKind::BgpqCpu, 1 << 16, 128, 2);
            solve_knapsack_budgeted(&inst, q.as_ref(), 2, Some(20_000))
        });
    });
    let grid = Grid::generate(GridSpec::new(128, 0.10, 7));
    g.bench_function("astar_128/BGPQ-cpu", |b| {
        b.iter(|| {
            let q = build_queue::<u64, AstarNode>(QueueKind::BgpqCpu, grid.cells(), 128, 2);
            solve_astar(&grid, q.as_ref(), 2)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_insdel_cells, bench_app_cells);
criterion_main!(benches);
