//! Criterion wrapper around the Figure 6 sweeps: each benchmark runs
//! one simulator configuration end-to-end (wall time here measures the
//! simulator; the *simulated* milliseconds that reproduce the figure
//! come from the `fig6` binary, which prints and CSVs the full sweep).

use bench::sim::bgpq_sim_insdel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::GpuConfig;
use workloads::{generate_keys, KeyDist};

fn bench_capacity_sweep(c: &mut Criterion) {
    let keys = generate_keys(1 << 14, KeyDist::Random, 21);
    let mut g = c.benchmark_group("fig6a_capacity");
    g.sample_size(10);
    for k in [128usize, 512, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| bgpq_sim_insdel(GpuConfig::new(8, 512), k, &keys));
        });
    }
    g.finish();
}

fn bench_block_sweep(c: &mut Criterion) {
    let keys = generate_keys(1 << 14, KeyDist::Random, 22);
    let mut g = c.benchmark_group("fig6c_blocks");
    g.sample_size(10);
    for blocks in [1usize, 8, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(blocks), &blocks, |b, &blocks| {
            b.iter(|| bgpq_sim_insdel(GpuConfig::new(blocks, 512), 1024, &keys));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_capacity_sweep, bench_block_sweep);
criterion_main!(benches);
