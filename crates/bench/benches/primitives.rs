//! Criterion micro-benchmarks of the data-parallel primitives BGPQ is
//! built from (§4): the bitonic sorting network, the merge-path merge,
//! and `SORT_SPLIT`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use primitives::{bitonic_sort, merge_into, parallel_merge, sort_split_full};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_vec(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

fn sorted_vec(n: usize, seed: u64) -> Vec<u32> {
    let mut v = random_vec(n, seed);
    v.sort_unstable();
    v
}

fn bench_bitonic(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitonic_sort");
    for n in [256usize, 1024, 4096] {
        let input = random_vec(n, 1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || input.clone(),
                |mut v| bitonic_sort(black_box(&mut v)),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();

    let mut g = c.benchmark_group("std_sort_reference");
    {
        let n = 1024usize;
        let input = random_vec(n, 1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || input.clone(),
                |mut v| v.sort_unstable(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_path");
    for n in [1024usize, 4096] {
        let a = sorted_vec(n, 2);
        let b_in = sorted_vec(n, 3);
        g.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            let mut out = vec![0u32; 2 * n];
            b.iter(|| merge_into(black_box(&a), black_box(&b_in), &mut out));
        });
        g.bench_with_input(BenchmarkId::new("partitioned_128", n), &n, |b, _| {
            let mut out = vec![0u32; 2 * n];
            b.iter(|| parallel_merge(black_box(&a), black_box(&b_in), &mut out, 128));
        });
    }
    g.finish();
}

fn bench_sort_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort_split");
    for n in [256usize, 1024] {
        let a = sorted_vec(n, 4);
        let b_in = sorted_vec(n, 5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            let mut scratch = Vec::new();
            bch.iter_batched(
                || (a.clone(), b_in.clone()),
                |(mut x, mut y)| {
                    sort_split_full(black_box(&mut x), black_box(&mut y), &mut scratch)
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bitonic, bench_merge, bench_sort_split);
criterion_main!(benches);
