//! Criterion throughput comparison of every queue implementation
//! (single-threaded wall clock: per-op cost of the data structures
//! themselves; the contended comparisons live in `table2`/`fig6`).

use bench::cpu::{build_queue, QueueKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pq_api::Entry;
use workloads::{generate_keys, KeyDist};

fn bench_insert_then_drain(c: &mut Criterion) {
    let n = 16_384usize;
    let batch = 256usize;
    let keys = generate_keys(n, KeyDist::Random, 11);
    let mut g = c.benchmark_group("insdel_single_thread");
    g.throughput(Throughput::Elements(2 * n as u64));
    g.sample_size(10);
    for kind in QueueKind::TABLE2 {
        g.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            b.iter(|| {
                let q = build_queue::<u32, ()>(kind, n, batch, 1);
                let mut items = Vec::with_capacity(batch);
                for chunk in keys.chunks(batch) {
                    items.clear();
                    items.extend(chunk.iter().map(|&k| Entry::new(k, ())));
                    q.insert_batch(&items);
                }
                let mut out = Vec::with_capacity(batch);
                while q.delete_min_batch(&mut out, batch) > 0 {
                    out.clear();
                }
            });
        });
    }
    g.finish();
}

fn bench_mixed_pairs(c: &mut Criterion) {
    let pairs = 4_096usize;
    let batch = 64usize;
    let keys = generate_keys(pairs * batch, KeyDist::Random, 13);
    let mut g = c.benchmark_group("pairs_single_thread");
    g.throughput(Throughput::Elements((pairs * batch * 2) as u64));
    g.sample_size(10);
    for kind in QueueKind::TABLE2 {
        g.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            b.iter(|| {
                let q = build_queue::<u32, ()>(kind, keys.len(), batch, 1);
                let mut items = Vec::with_capacity(batch);
                let mut out = Vec::with_capacity(batch);
                for chunk in keys.chunks(batch) {
                    items.clear();
                    items.extend(chunk.iter().map(|&k| Entry::new(k, ())));
                    q.insert_batch(&items);
                    out.clear();
                    q.delete_min_batch(&mut out, chunk.len());
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_insert_then_drain, bench_mixed_pairs);
criterion_main!(benches);
