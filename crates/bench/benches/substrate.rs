//! Criterion benchmarks of the substrates themselves: the virtual-time
//! scheduler's event throughput (the cost of simulating), the P-Sync
//! pipeline, and the SSSP application driver.

use apps::{solve_sssp, SsspNode};
use bench::cpu::{build_queue, QueueKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::{launch, GpuConfig, Scheduler};
use workloads::{Graph, GraphSpec};

/// Raw scheduler event throughput: how many advance/lock events per
/// second the DES core sustains (the practical limit on simulation
/// scale).
fn bench_scheduler_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_scheduler");
    g.sample_size(10);
    for agents in [2usize, 8, 32] {
        let events_per_agent = 2_000usize;
        g.throughput(Throughput::Elements((agents * events_per_agent) as u64));
        g.bench_with_input(BenchmarkId::new("advance", agents), &agents, |b, &agents| {
            b.iter(|| {
                let sched = Scheduler::new(agents);
                std::thread::scope(|s| {
                    for id in 0..agents {
                        let mut w = sched.worker(id);
                        s.spawn(move || {
                            w.begin();
                            for i in 0..events_per_agent {
                                w.advance((i % 7 + 1) as u64);
                            }
                            w.finish();
                        });
                    }
                });
                sched.makespan()
            });
        });
        g.bench_with_input(BenchmarkId::new("contended_lock", agents), &agents, |b, &agents| {
            b.iter(|| {
                let sched = Scheduler::new(agents);
                let l = sched.create_locks(1);
                std::thread::scope(|s| {
                    for id in 0..agents {
                        let mut w = sched.worker(id);
                        s.spawn(move || {
                            w.begin();
                            for _ in 0..events_per_agent / 4 {
                                w.lock(l, 5);
                                w.advance(3);
                                w.unlock(l, 5);
                            }
                            w.finish();
                        });
                    }
                });
                sched.makespan()
            });
        });
    }
    g.finish();
}

/// One full simulated BGPQ kernel per iteration (mixes everything:
/// dispatch, locks, charges, data movement).
fn bench_sim_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_kernel_wall_cost");
    g.sample_size(10);
    g.bench_function("bgpq_16k_keys_8_blocks", |b| {
        let keys = workloads::generate_keys(1 << 14, workloads::KeyDist::Random, 3);
        b.iter(|| bench::sim::bgpq_sim_insdel(GpuConfig::new(8, 512), 1024, &keys));
    });
    g.bench_function("empty_launch_128_blocks", |b| {
        b.iter(|| launch(GpuConfig::new(128, 512), |_s| (), |_ctx, _| {}));
    });
    g.finish();
}

/// SSSP across queue designs (single-threaded wall time).
fn bench_sssp(c: &mut Criterion) {
    let graph = Graph::generate(GraphSpec::new(10_000, 6, 11));
    let mut g = c.benchmark_group("sssp_10k_vertices");
    g.sample_size(10);
    for kind in [QueueKind::Tbb, QueueKind::BgpqCpu, QueueKind::Ljsl] {
        g.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            b.iter(|| {
                // The open list holds multiple labels per vertex; size for edges.
                let q = build_queue::<u64, SsspNode>(kind, graph.edge_count() * 2, 128, 2);
                solve_sssp(&graph, 0, q.as_ref(), 2)
            });
        });
    }
    g.bench_function("sequential_reference", |b| {
        b.iter(|| graph.dijkstra_reference(0));
    });
    g.finish();
}

criterion_group!(benches, bench_scheduler_events, bench_sim_kernel, bench_sssp);
criterion_main!(benches);
