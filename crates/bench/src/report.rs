//! Table formatting and CSV output.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple fixed-width table that prints like the paper's Table 2 rows
/// and also lands in `bench_results/<name>.csv`.
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Column-aligned rendering.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        println!("\n== {} ==", self.name);
        print!("{}", self.render());
    }

    /// Write `bench_results/<name>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Milliseconds with adaptive precision.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// A speedup ratio like the paper's "B/T" columns.
pub fn speedup(baseline_ms: f64, bgpq_ms: f64) -> String {
    if bgpq_ms <= 0.0 {
        return "-".into();
    }
    format!("{:.1}", baseline_ms / bgpq_ms)
}

/// Default output directory.
pub fn results_dir() -> PathBuf {
    PathBuf::from("bench_results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["queue", "ms"]);
        t.row(vec!["BGPQ".into(), "1.5".into()]);
        t.row(vec!["TBB".into(), "123".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("1.5"));
        assert!(lines[3].ends_with("123"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("bgpq_bench_test");
        let mut t = Table::new("csv_demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let p = t.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(p).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(250.0), "250");
        assert_eq!(ms(2.5), "2.5");
        assert_eq!(ms(0.1234), "0.123");
        assert_eq!(speedup(100.0, 10.0), "10.0");
        assert_eq!(speedup(1.0, 0.0), "-");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_is_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
