//! Simulated-GPU experiment drivers: BGPQ and P-Sync in virtual time.

use bgpq::{Bgpq, BgpqOptions};
use bgpq_runtime::SimPlatform;
use gpu_sim::{launch_phased, GpuConfig};
use parking_lot::Mutex;
use pq_api::Entry;
use psync::{PhaseKind, PsyncConfig, SeqBatchHeap};
use std::sync::atomic::{AtomicUsize, Ordering};

type SimQueue = Bgpq<u32, (), SimPlatform>;

/// Timing of one insert-all-then-delete-all run, in simulated
/// milliseconds at the device clock.
#[derive(Debug, Clone, Copy)]
pub struct InsDelTiming {
    pub insert_ms: f64,
    pub delete_ms: f64,
    pub total_ms: f64,
    /// TARGET/MARKED collaborations observed.
    pub collaborations: u64,
    /// Fraction of inserts absorbed without a heapify.
    pub insert_buffer_hit_rate: f64,
    /// INSERT operations performed.
    pub inserts: u64,
    /// Full insert-heapify walks triggered.
    pub insert_heapifies: u64,
}

fn bgpq_opts(k: usize, items: usize, ablation: BgpqAblation) -> BgpqOptions {
    let mut o = BgpqOptions::with_capacity_for(k, items + 2 * k);
    o.use_partial_buffer = ablation.use_partial_buffer;
    o.use_collaboration = ablation.use_collaboration;
    o
}

/// Ablation toggles threaded through the sim drivers (E7).
#[derive(Debug, Clone, Copy)]
pub struct BgpqAblation {
    pub use_partial_buffer: bool,
    pub use_collaboration: bool,
}

impl Default for BgpqAblation {
    fn default() -> Self {
        Self { use_partial_buffer: true, use_collaboration: true }
    }
}

/// Insert all `keys` (k-sized batches split across blocks), sync, then
/// delete everything back. The phase split is exact: a simulated
/// barrier separates the phases.
pub fn bgpq_sim_insdel(gpu: GpuConfig, k: usize, keys: &[u32]) -> InsDelTiming {
    bgpq_sim_insdel_ablated(gpu, k, keys, BgpqAblation::default())
}

/// [`bgpq_sim_insdel`] with ablation toggles.
pub fn bgpq_sim_insdel_ablated(
    gpu: GpuConfig,
    k: usize,
    keys: &[u32],
    ablation: BgpqAblation,
) -> InsDelTiming {
    bgpq_sim_insdel_batched(gpu, k, k, keys, ablation)
}

/// [`bgpq_sim_insdel`] with a separate insert/delete batch size
/// (`batch ≤ k`) — partial batches exercise the partial buffer.
pub fn bgpq_sim_insdel_batched(
    gpu: GpuConfig,
    k: usize,
    batch: usize,
    keys: &[u32],
    ablation: BgpqAblation,
) -> InsDelTiming {
    assert!(batch >= 1 && batch <= k);
    let opts = bgpq_opts(k, keys.len(), ablation);
    let batches: Vec<&[u32]> = keys.chunks(batch).collect();
    let next_insert = AtomicUsize::new(0);
    let next_delete = AtomicUsize::new(0);
    let n_batches = batches.len();

    // Two kernels (insert, then delete) — the CUDA relaunch pattern;
    // an in-kernel grid barrier would be illegal beyond the residency
    // limit (see `gpu_sim::launch` docs).
    let insert_phase = |ctx: &mut gpu_sim::BlockCtx, q: &SimQueue| {
        let mut items: Vec<Entry<u32, ()>> = Vec::with_capacity(k);
        loop {
            let i = next_insert.fetch_add(1, Ordering::Relaxed);
            if i >= n_batches {
                break;
            }
            items.clear();
            items.extend(batches[i].iter().map(|&key| Entry::new(key, ())));
            q.insert(ctx.worker(), &items);
        }
    };
    let delete_phase = |ctx: &mut gpu_sim::BlockCtx, q: &SimQueue| {
        let mut out: Vec<Entry<u32, ()>> = Vec::with_capacity(k);
        loop {
            let i = next_delete.fetch_add(1, Ordering::Relaxed);
            if i >= n_batches {
                break;
            }
            out.clear();
            q.delete_min(ctx.worker(), &mut out, batches[i].len().max(1));
        }
    };
    let (reports, q) = launch_phased(
        gpu,
        |sched| {
            let platform = SimPlatform::new(sched, opts.max_nodes + 1, gpu.cost, gpu.block_dim);
            let q: SimQueue = Bgpq::with_platform(platform, opts);
            q
        },
        &[&insert_phase, &delete_phase],
    );
    assert!(q.is_empty(), "insdel run must drain the queue");
    let stats = q.stats().snapshot();
    let ins_cycles = reports[0].makespan_cycles;
    let total = reports[1].makespan_cycles;
    InsDelTiming {
        insert_ms: gpu.cost.cycles_to_ms(ins_cycles),
        delete_ms: gpu.cost.cycles_to_ms(total.saturating_sub(ins_cycles)),
        total_ms: gpu.cost.cycles_to_ms(total),
        collaborations: stats.collaborations,
        insert_buffer_hit_rate: stats.insert_buffer_hit_rate(),
        inserts: stats.inserts,
        insert_heapifies: stats.insert_heapifies,
    }
}

/// Utilization experiment (Table 2 "Util." rows): preload `init` keys,
/// then run `pairs` insert/delete pairs split across blocks.
pub fn bgpq_sim_util(gpu: GpuConfig, k: usize, init: &[u32], pair_keys: &[u32]) -> f64 {
    let opts = bgpq_opts(k, init.len() + pair_keys.len(), BgpqAblation::default());
    let init_batches: Vec<&[u32]> = init.chunks(k).collect();
    let pair_batches: Vec<&[u32]> = pair_keys.chunks(k).collect();
    let next_init = AtomicUsize::new(0);
    let next_pair = AtomicUsize::new(0);

    let init_phase = |ctx: &mut gpu_sim::BlockCtx, q: &SimQueue| {
        let mut items: Vec<Entry<u32, ()>> = Vec::with_capacity(k);
        loop {
            let i = next_init.fetch_add(1, Ordering::Relaxed);
            if i >= init_batches.len() {
                break;
            }
            items.clear();
            items.extend(init_batches[i].iter().map(|&key| Entry::new(key, ())));
            q.insert(ctx.worker(), &items);
        }
    };
    // Measured phase: insert/delete pairs preserve utilization.
    let pair_phase = |ctx: &mut gpu_sim::BlockCtx, q: &SimQueue| {
        let mut items: Vec<Entry<u32, ()>> = Vec::with_capacity(k);
        let mut out: Vec<Entry<u32, ()>> = Vec::with_capacity(k);
        loop {
            let i = next_pair.fetch_add(1, Ordering::Relaxed);
            if i >= pair_batches.len() {
                break;
            }
            items.clear();
            items.extend(pair_batches[i].iter().map(|&key| Entry::new(key, ())));
            q.insert(ctx.worker(), &items);
            out.clear();
            q.delete_min(ctx.worker(), &mut out, pair_batches[i].len().max(1));
        }
    };
    let (reports, q) = launch_phased(
        gpu,
        |sched| {
            let platform = SimPlatform::new(sched, opts.max_nodes + 1, gpu.cost, gpu.block_dim);
            let q: SimQueue = Bgpq::with_platform(platform, opts);
            q
        },
        &[&init_phase, &pair_phase],
    );
    debug_assert_eq!(q.len(), init.len());
    gpu.cost.cycles_to_ms(reports[1].makespan_cycles.saturating_sub(reports[0].makespan_cycles))
}

/// P-Sync insert-all-then-delete-all under the same cost model.
pub fn psync_sim_insdel(gpu: GpuConfig, k: usize, keys: &[u32]) -> InsDelTiming {
    let cfg = PsyncConfig::new(gpu, k);
    let heap = Mutex::new(SeqBatchHeap::<u32, ()>::new(k));
    let batches: Vec<Vec<Entry<u32, ()>>> =
        keys.chunks(k).map(|c| c.iter().map(|&key| Entry::new(key, ())).collect()).collect();
    let n = batches.len();
    let ins = psync::run_phase(cfg, &heap, PhaseKind::Insert, &batches, 0);
    let del = psync::run_phase(cfg, &heap, PhaseKind::Delete, &[], n);
    assert!(heap.lock().is_empty(), "psync insdel must drain");
    let insert_ms = gpu.cost.cycles_to_ms(ins.report.makespan_cycles);
    let delete_ms = gpu.cost.cycles_to_ms(del.report.makespan_cycles);
    InsDelTiming {
        insert_ms,
        delete_ms,
        total_ms: insert_ms + delete_ms,
        collaborations: 0,
        insert_buffer_hit_rate: 0.0,
        inserts: n as u64,
        insert_heapifies: n as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{generate_keys, KeyDist};

    #[test]
    fn bgpq_sim_insdel_smoke() {
        let keys = generate_keys(4096, KeyDist::Random, 3);
        let t = bgpq_sim_insdel(GpuConfig::new(8, 128), 256, &keys);
        assert!(t.insert_ms > 0.0 && t.delete_ms > 0.0);
        assert!((t.total_ms - t.insert_ms - t.delete_ms).abs() / t.total_ms < 0.5);
    }

    #[test]
    fn psync_slower_than_bgpq_at_same_config() {
        // The headline GPU-vs-GPU comparison: strict pipeline barriers
        // must cost more than BGPQ's fully concurrent design.
        let keys = generate_keys(16384, KeyDist::Random, 5);
        let gpu = GpuConfig::new(16, 256);
        let b = bgpq_sim_insdel(gpu, 512, &keys);
        let p = psync_sim_insdel(gpu, 512, &keys);
        assert!(
            p.total_ms > b.total_ms,
            "P-Sync ({:.3} ms) should be slower than BGPQ ({:.3} ms)",
            p.total_ms,
            b.total_ms
        );
    }

    #[test]
    fn util_runs_and_preserves_len() {
        let init = generate_keys(2048, KeyDist::Random, 7);
        let pairs = generate_keys(4096, KeyDist::Random, 8);
        let ms = bgpq_sim_util(GpuConfig::new(4, 128), 256, &init, &pairs);
        assert!(ms > 0.0);
    }
}
