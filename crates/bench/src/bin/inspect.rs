//! Diagnostic deep-dive on one simulated BGPQ run: prints every
//! statistic the instrumentation collects, so design questions ("how
//! often does the buffer absorb an insert at this batch size?", "how
//! contended is the root?") are answerable without writing code.
//!
//! Usage: `inspect [keys] [k] [batch] [blocks] [block_dim]`

use bench::sim::{bgpq_sim_insdel_batched, BgpqAblation};
use bgpq::{Bgpq, BgpqOptions};
use bgpq_runtime::SimPlatform;
use gpu_sim::{launch, GpuConfig};
use pq_api::Entry;
use std::sync::atomic::{AtomicUsize, Ordering};
use workloads::{generate_keys, KeyDist};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1 << 18);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1024);
    let batch: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1024);
    let blocks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let block_dim: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(512);

    let gpu = GpuConfig::new(blocks, block_dim);
    let keys = generate_keys(n, KeyDist::Random, 0x1A5u64);
    println!("workload: {n} random keys, node capacity {k}, batch {batch}");
    println!(
        "device:   {blocks} blocks x {block_dim} threads ({} resident), {:.1} GHz",
        gpu.resident_blocks().min(blocks),
        gpu.cost.clock_ghz
    );

    // Phase-split timing via the standard driver.
    let t = bgpq_sim_insdel_batched(gpu, k, batch.min(k), &keys, BgpqAblation::default());
    println!("\n== timings (simulated) ==");
    println!("  insert phase: {:>10.3} ms", t.insert_ms);
    println!("  delete phase: {:>10.3} ms", t.delete_ms);
    println!("  total:        {:>10.3} ms", t.total_ms);
    println!("\n== insert mechanics ==");
    println!("  INSERT ops:          {}", t.inserts);
    println!("  insert-heapifies:    {}", t.insert_heapifies);
    println!("  buffer hit rate:     {:.1}%", t.insert_buffer_hit_rate * 100.0);
    println!("  collaborations:      {}", t.collaborations);

    // A second, mixed-phase run with full metrics + root-lock focus.
    let opts = BgpqOptions::with_capacity_for(k, n + 2 * k);
    let batches: Vec<&[u32]> = keys.chunks(batch.min(k)).collect();
    let next = AtomicUsize::new(0);
    let total = batches.len();
    let (report, q) = launch(
        gpu,
        |sched| {
            let p = SimPlatform::new(sched, opts.max_nodes + 1, gpu.cost, gpu.block_dim);
            Bgpq::<u32, (), _>::with_platform(p, opts)
        },
        |ctx, q| {
            let mut items = Vec::with_capacity(k);
            let mut out = Vec::with_capacity(k);
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                items.clear();
                items.extend(batches[i].iter().map(|&key| Entry::new(key, ())));
                q.insert(ctx.worker(), &items);
                if i % 2 == 1 {
                    out.clear();
                    q.delete_min(ctx.worker(), &mut out, items.len());
                }
            }
        },
    );
    let s = q.stats().snapshot();
    let m = report.metrics;
    println!("\n== mixed-phase run (insert + 50% deletes) ==");
    println!("  makespan:            {:.3} ms", report.makespan_ms);
    println!("  block balance:       {:.2}", report.balance());
    println!(
        "  delete-mins:         {} ({} root-served, {:.1}% hit rate)",
        s.delete_mins,
        s.deletes_from_root,
        s.delete_root_hit_rate() * 100.0
    );
    println!("  delete-heapifies:    {}", s.delete_heapifies);
    println!("  collaborations:      {}", s.collaborations);
    println!("\n== lock behaviour (scheduler) ==");
    println!("  acquisitions:        {}", m.lock_acquisitions);
    println!(
        "  contended:           {} ({:.1}%)",
        m.lock_contended,
        100.0 * m.lock_contended as f64 / m.lock_acquisitions.max(1) as f64
    );
    println!(
        "  wait cycles:         {} ({:.1}% of makespan x blocks)",
        m.lock_wait_cycles,
        100.0 * m.lock_wait_cycles as f64 / (report.makespan_cycles * blocks as u64).max(1) as f64
    );
    println!("  virtual switches:    {}", m.switches);
    println!("  charge points:       {}", m.advances);
    println!(
        "\nremaining items: {} (memory: {:.1} MiB resident)",
        q.len(),
        q.memory_bytes() as f64 / (1 << 20) as f64
    );
    q.check_invariants();
    println!("invariants: OK");
}
