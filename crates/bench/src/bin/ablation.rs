//! Design-choice ablations (DESIGN.md experiment E7): what each of
//! BGPQ's collaboration mechanisms buys, on the virtual-time simulator.
//!
//! * partial buffer on/off (insert batching, §4.3),
//! * TARGET/MARKED key stealing on/off (§4.3),
//! * delete batch granularity (root-cache batching): m = k vs m = 1.
//!
//! Usage: `ablation [--scale small|medium|full]`

use bench::report::{ms, results_dir, Table};
use bench::sim::BgpqAblation;
use bench::Scale;
use bgpq::{Bgpq, BgpqOptions};
use bgpq_runtime::SimPlatform;
use gpu_sim::{launch, GpuConfig};
use pq_api::Entry;
use std::sync::atomic::{AtomicUsize, Ordering};
use workloads::{generate_keys, KeyDist};

fn parse() -> Scale {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Medium;
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--scale" {
            i += 1;
            scale = Scale::parse(&argv[i]).expect("--scale small|medium|full");
        }
        i += 1;
    }
    scale
}

/// Insert-batch granularity: the partial buffer lets small inserts
/// amortize into one heapify per `k` keys — without it, every partial
/// batch would walk the tree (the fixed-batch P-Sync restriction the
/// paper contrasts against). Heapify counts make the amortization
/// visible: they track keys/k, not the op count.
fn buffer_ablation(scale: Scale, gpu: GpuConfig, t: &mut Table) {
    let n = scale.fig6_keys() / 4;
    let keys = generate_keys(n, KeyDist::Random, 0xAB1);
    let k = 1024;
    for batch in [k, k / 4, k / 16] {
        let timing =
            bench::sim::bgpq_sim_insdel_batched(gpu, k, batch, &keys, BgpqAblation::default());
        t.row(vec![
            format!("buffer, batch={batch}"),
            format!("{} inserts -> {} heapifies", timing.inserts, timing.insert_heapifies),
            ms(timing.insert_ms),
            ms(timing.delete_ms),
            format!("{:.2}", timing.insert_buffer_hit_rate),
            format!("{}", timing.collaborations),
        ]);
    }
}

/// Mixed insert/delete with tiny nodes: collaboration opportunities are
/// constant; toggling TARGET/MARKED shows the stealing win.
fn collaboration_ablation(scale: Scale, gpu: GpuConfig, t: &mut Table) {
    let rounds = match scale {
        Scale::Small => 50,
        Scale::Medium => 200,
        Scale::Full => 800,
    };
    for (label, collab) in [("collab=on", true), ("collab=off", false)] {
        let opts = BgpqOptions {
            node_capacity: 32,
            max_nodes: 4 * gpu.num_blocks * rounds + 8,
            use_collaboration: collab,
            ..Default::default()
        };
        let counter = AtomicUsize::new(0);
        let (report, q) = launch(
            gpu,
            |sched| {
                let platform = SimPlatform::new(sched, opts.max_nodes + 1, gpu.cost, gpu.block_dim);
                Bgpq::<u32, (), _>::with_platform(platform, opts)
            },
            |ctx, q| {
                let mut out = Vec::new();
                let mut i = 0u32;
                while counter.fetch_add(1, Ordering::Relaxed) < rounds * gpu.num_blocks {
                    let base = ctx.block_id() as u32 * 1_000_000 + i * 64;
                    let items: Vec<Entry<u32, ()>> =
                        (0..32).map(|j| Entry::new(base + j, ())).collect();
                    q.insert(ctx.worker(), &items);
                    out.clear();
                    q.delete_min(ctx.worker(), &mut out, 32);
                    i += 1;
                }
            },
        );
        let stats = q.stats().snapshot();
        t.row(vec![
            label.into(),
            format!("{} tight ins/del rounds", rounds * gpu.num_blocks),
            ms(gpu.cost.cycles_to_ms(report.makespan_cycles)),
            "-".into(),
            format!("{:.2}", stats.insert_buffer_hit_rate()),
            format!("{}", stats.collaborations),
        ]);
    }
}

/// Delete granularity: popping k at once amortizes one heapify over k
/// keys (root-cache batching); popping 1 at a time pays per key.
fn delete_batch_ablation(scale: Scale, gpu: GpuConfig, t: &mut Table) {
    let n = scale.fig6_keys() / 4;
    let keys = generate_keys(n, KeyDist::Random, 0xAB2);
    let k = 1024;
    for (label, m) in [("delete m=k", k), ("delete m=k/16", k / 16)] {
        let opts = BgpqOptions::with_capacity_for(k, n + 2 * k);
        let batches: Vec<&[u32]> = keys.chunks(k).collect();
        let next = AtomicUsize::new(0);
        let deletes_total = n.div_ceil(m);
        let next_del = AtomicUsize::new(0);
        let (report, q) = launch(
            gpu,
            |sched| {
                let platform = SimPlatform::new(sched, opts.max_nodes + 1, gpu.cost, gpu.block_dim);
                Bgpq::<u32, (), _>::with_platform(platform, opts)
            },
            |ctx, q| {
                let mut items: Vec<Entry<u32, ()>> = Vec::with_capacity(k);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= batches.len() {
                        break;
                    }
                    items.clear();
                    items.extend(batches[i].iter().map(|&key| Entry::new(key, ())));
                    q.insert(ctx.worker(), &items);
                }
                let mut out: Vec<Entry<u32, ()>> = Vec::with_capacity(m);
                loop {
                    let i = next_del.fetch_add(1, Ordering::Relaxed);
                    if i >= deletes_total {
                        break;
                    }
                    out.clear();
                    q.delete_min(ctx.worker(), &mut out, m);
                }
            },
        );
        let stats = q.stats().snapshot();
        t.row(vec![
            label.into(),
            format!("{n} keys, pop {m}"),
            "-".into(),
            ms(gpu.cost.cycles_to_ms(report.makespan_cycles)),
            format!("{:.2}", stats.delete_root_hit_rate()),
            format!("{}", stats.collaborations),
        ]);
    }
}

/// Sorting-primitive choice (§4 names bitonic, merge and radix sort):
/// same results, different lock-step schedules, so the virtual-time
/// cost of the insert pre-sort differs.
fn sort_algo_ablation(scale: Scale, gpu: GpuConfig, t: &mut Table) {
    use primitives::SortAlgo;
    let n = scale.fig6_keys() / 4;
    let keys = generate_keys(n, KeyDist::Random, 0xAB3);
    let k = 1024;
    for (label, algo) in [
        ("sort=bitonic", SortAlgo::Bitonic),
        ("sort=merge", SortAlgo::MergeSort),
        ("sort=radix32", SortAlgo::Radix { rank_bits: 32 }),
    ] {
        let opts = BgpqOptions { sort_algo: algo, ..BgpqOptions::with_capacity_for(k, n + 2 * k) };
        let batches: Vec<&[u32]> = keys.chunks(k).collect();
        let next = AtomicUsize::new(0);
        let (report, q) = launch(
            gpu,
            |sched| {
                let platform = SimPlatform::new(sched, opts.max_nodes + 1, gpu.cost, gpu.block_dim);
                Bgpq::<u32, (), _>::with_platform(platform, opts)
            },
            |ctx, q| {
                let mut items: Vec<Entry<u32, ()>> = Vec::with_capacity(k);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= batches.len() {
                        break;
                    }
                    items.clear();
                    items.extend(batches[i].iter().map(|&key| Entry::new(key, ())));
                    q.insert(ctx.worker(), &items);
                }
            },
        );
        q.check_invariants();
        t.row(vec![
            label.into(),
            format!("{n} keys, full batches"),
            ms(gpu.cost.cycles_to_ms(report.makespan_cycles)),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }
}

fn main() {
    let scale = parse();
    let gpu = GpuConfig::new(
        match scale {
            Scale::Small => 8,
            Scale::Medium => 32,
            Scale::Full => 128,
        },
        512,
    );
    eprintln!("ablation (scale {scale:?}, {} blocks)", gpu.num_blocks);
    let mut t = Table::new(
        "ablation",
        &["variant", "workload", "insert_ms", "delete_ms", "hit_rate", "collabs"],
    );
    buffer_ablation(scale, gpu, &mut t);
    collaboration_ablation(scale, gpu, &mut t);
    delete_batch_ablation(scale, gpu, &mut t);
    sort_algo_ablation(scale, gpu, &mut t);
    t.print();
    let p = t.write_csv(&results_dir()).expect("csv");
    eprintln!("wrote {}", p.display());
}
