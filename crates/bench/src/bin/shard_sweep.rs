//! Sweep the sharded BGPQ front over shards × threads × sample width.
//!
//! For every (S, c, threads) cell the driver preloads a key set, runs a
//! timed phase of paired insert+delete batches across real threads, and
//! reports wall-clock throughput next to the *relaxation price*: mean
//! and max per-delete rank error (theoretical quiescent bound `S - c`),
//! work-steal and exact-sweep counts, and per-shard load imbalance.
//! Every trial ends with a full drain so conservation is checked on the
//! way out.
//!
//! Usage: `shard_sweep [--scale small|medium|full] [--batch K]`
//!
//! Results land in `bench_results/shard_sweep.csv`; EXPERIMENTS.md
//! records the scaling shape (throughput non-decreasing in S at high
//! thread counts, rank error within the c-of-S expectation).

use bench::report::{results_dir, Table};
use bench::Scale;
use bgpq_shard::{CpuShardedBgpq, ShardedOptions};
use pq_api::{BatchPriorityQueue, Entry};
use std::time::Instant;
use workloads::{generate_keys, KeyDist};

struct Args {
    scale: Scale,
    batch: usize,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Medium;
    let mut batch = 64usize;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = argv.get(i).and_then(|s| Scale::parse(s)).unwrap_or_else(|| {
                    eprintln!("--scale needs small|medium|full");
                    std::process::exit(2);
                });
            }
            "--batch" => {
                i += 1;
                batch = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--batch needs a positive integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    Args { scale, batch }
}

/// (preload keys, paired-op keys) per scale.
fn sizes(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Small => (1 << 13, 1 << 14),
        Scale::Medium => (1 << 16, 1 << 18),
        Scale::Full => (1 << 19, 1 << 21),
    }
}

struct Cell {
    ops_per_ms: f64,
    mean_rank_error: f64,
    max_rank_error: u64,
    steals: u64,
    sweeps: u64,
    imbalance: f64,
    salvages: u64,
    readmissions: u64,
    keys_lost: u64,
}

/// One timed trial: preload, paired insert+delete phase, drain.
fn trial(shards: usize, sample: usize, threads: usize, batch: usize, scale: Scale) -> Cell {
    let (n_init, n_pairs) = sizes(scale);
    let init = generate_keys(n_init, KeyDist::Random, 11);
    let pairs = generate_keys(n_pairs, KeyDist::Random, 13);
    let q: CpuShardedBgpq<u32, ()> = CpuShardedBgpq::new(ShardedOptions::with_capacity_for(
        shards,
        sample,
        batch,
        n_init + n_pairs,
    ));

    // Preload from the measurement threads' chunks so sticky affinity
    // spreads the initial load the same way the timed phase will.
    let chunk = init.len().div_ceil(threads.max(1)).max(1);
    std::thread::scope(|s| {
        for part in init.chunks(chunk) {
            s.spawn(|| {
                let mut items: Vec<Entry<u32, ()>> = Vec::with_capacity(batch);
                for b in part.chunks(batch) {
                    items.clear();
                    items.extend(b.iter().map(|&k| Entry::new(k, ())));
                    q.insert_batch(&items);
                }
            });
        }
    });
    assert_eq!(q.len(), init.len(), "preload lost keys");
    q.inner().reset_quality();

    let chunk = pairs.len().div_ceil(threads.max(1)).max(1);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for part in pairs.chunks(chunk) {
            s.spawn(|| {
                let mut items: Vec<Entry<u32, ()>> = Vec::with_capacity(batch);
                let mut out: Vec<Entry<u32, ()>> = Vec::with_capacity(batch);
                for b in part.chunks(batch) {
                    items.clear();
                    items.extend(b.iter().map(|&k| Entry::new(k, ())));
                    q.insert_batch(&items);
                    out.clear();
                    q.delete_min_batch(&mut out, b.len());
                }
            });
        }
    });
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    let quality = q.inner().quality();
    let imbalance = q.inner().load_imbalance();

    // Exactness on the way out: the sweep fallback must drain every
    // shard and end exactly empty.
    assert_eq!(q.len(), init.len(), "paired phase must preserve size");
    let mut out: Vec<Entry<u32, ()>> = Vec::with_capacity(batch);
    let mut drained = 0usize;
    loop {
        out.clear();
        let got = q.delete_min_batch(&mut out, batch);
        if got == 0 {
            break;
        }
        drained += got;
    }
    assert_eq!(drained, init.len(), "drain must recover the preload exactly");
    assert!(q.is_empty());

    Cell {
        ops_per_ms: 2.0 * pairs.len() as f64 / elapsed_ms.max(1e-9),
        mean_rank_error: quality.mean_rank_error(),
        max_rank_error: quality.rank_error_max,
        steals: quality.steals,
        sweeps: quality.full_sweeps,
        imbalance,
        salvages: quality.salvages,
        readmissions: quality.readmissions,
        keys_lost: quality.keys_lost,
    }
}

fn main() {
    let args = parse_args();
    let mut table = Table::new(
        "shard_sweep",
        &[
            "S",
            "c",
            "threads",
            "kops/s",
            "rank_err",
            "rank_max",
            "bound",
            "steals",
            "sweeps",
            "imbalance",
            // Recovery counters: all zero on this healthy sweep (no
            // faults armed); surfaced so regressions that spuriously
            // trip the breaker show up in the CSV trajectory.
            "salvages",
            "readmit",
            "keys_lost",
        ],
    );
    for &shards in &[1usize, 2, 4, 8] {
        for &sample in &[1usize, 2, 4] {
            if sample > shards {
                continue;
            }
            for &threads in &[1usize, 2, 4, 8] {
                let cell = trial(shards, sample, threads, args.batch, args.scale);
                table.row(vec![
                    shards.to_string(),
                    sample.to_string(),
                    threads.to_string(),
                    format!("{:.0}", cell.ops_per_ms),
                    format!("{:.3}", cell.mean_rank_error),
                    cell.max_rank_error.to_string(),
                    (shards - sample).to_string(),
                    cell.steals.to_string(),
                    cell.sweeps.to_string(),
                    format!("{:.2}", cell.imbalance),
                    cell.salvages.to_string(),
                    cell.readmissions.to_string(),
                    cell.keys_lost.to_string(),
                ]);
            }
        }
    }
    table.print();
    match table.write_csv(&results_dir()) {
        Ok(p) => println!("\nwrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
