//! Sweep the sharded BGPQ front over shards × threads × sample width,
//! plus the buffered-vs-plain single-op front comparison.
//!
//! **Batch grid** (`mode = batch`): for every (S, c, threads) cell the
//! driver preloads a key set, runs a timed phase of paired
//! insert+delete batches across real threads, and reports wall-clock
//! throughput next to the *relaxation price*: mean and max per-delete
//! rank error (theoretical quiescent bound `S - c`), work-steal and
//! exact-sweep counts, and per-shard load imbalance. Every trial ends
//! with a full drain so conservation is checked on the way out.
//!
//! **Front comparison** (`mode = front-plain | front-buf`): single-op
//! traffic — the worst case for a sampled router, one sample + one
//! root-lock round-trip per key — issued either straight at the router
//! or through the per-worker buffered sticky front (staged inserts
//! flushed as k-batches, deletes served from a k-wide local refill).
//! Two sweeps, same workload shape:
//!
//! * **sim** — concurrent blocks on the virtual-time GPU simulator in
//!   simulated device time. This is the acceptance cell: at ≥ 8
//!   workers the buffered front must beat plain ≥ 2× with mean refill
//!   occupancy above half the refill width. Virtual time is where the
//!   batch economics are real: local serves touch no shared state, so
//!   they cost no device time, while every plain op pays the full
//!   sample + lock round-trip.
//! * **cpu** — the same sweep on OS threads in wall-clock time,
//!   recorded for context (single-core hosts serialize submitters; the
//!   JSON marks those cells advisory).
//!
//! Results land in `bench_results/shard_sweep.csv` (layout pinned by
//! [`bench::SHARD_SWEEP_COLUMNS`]) and `BENCH_shard.json` (per-cell
//! throughput, ratio, occupancy, rank-error delta, and an `acceptance`
//! object computed from the loaded sim cells).
//!
//! Usage: `shard_sweep [--scale small|medium|full] [--batch K]`

use bench::report::{results_dir, Table};
use bench::{Scale, SHARD_SWEEP_COLUMNS};
use bgpq_runtime::SimPlatform;
use bgpq_shard::{BufferPolicy, CpuShardedBgpq, ShardedBgpq, ShardedOptions};
use gpu_sim::{launch, GpuConfig};
use pq_api::{BatchPriorityQueue, Entry};
use std::fs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use workloads::{generate_keys, KeyDist};

/// Front-comparison fixed shape: S shards, c-of-S sampling, node width
/// k, and the buffered policy under test.
const FRONT_SHARDS: usize = 4;
const FRONT_SAMPLE: usize = 2;
const FRONT_K: usize = 8;
const FRONT_BUFFER: usize = 16;
const FRONT_REFILL: usize = 16;
const FRONT_STICKY: u32 = 4;
const FRONT_WORKERS: [usize; 5] = [1, 2, 4, 8, 16];
const CPU_TRIALS: usize = 3;

struct Args {
    scale: Scale,
    batch: usize,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Medium;
    let mut batch = 64usize;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = argv.get(i).and_then(|s| Scale::parse(s)).unwrap_or_else(|| {
                    eprintln!("--scale needs small|medium|full");
                    std::process::exit(2);
                });
            }
            "--batch" => {
                i += 1;
                batch = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--batch needs a positive integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    Args { scale, batch }
}

/// (preload keys, paired-op keys) per scale for the batch grid.
fn sizes(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Small => (1 << 13, 1 << 14),
        Scale::Medium => (1 << 16, 1 << 18),
        Scale::Full => (1 << 19, 1 << 21),
    }
}

/// Single-op pairs per worker for the front comparison (cpu, sim). The
/// simulator interprets every instruction, so its per-op wall cost is
/// far higher; device-time ratios converge with far fewer ops.
fn front_pairs(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Small => (2_000, 200),
        Scale::Medium => (10_000, 500),
        Scale::Full => (40_000, 2_000),
    }
}

fn front_policy() -> BufferPolicy {
    BufferPolicy::new()
        .with_insert_capacity(FRONT_BUFFER)
        .with_refill_width(FRONT_REFILL)
        .with_stickiness(FRONT_STICKY)
}

struct Cell {
    ops_per_ms: f64,
    mean_rank_error: f64,
    max_rank_error: u64,
    steals: u64,
    sweeps: u64,
    imbalance: f64,
    salvages: u64,
    readmissions: u64,
    keys_lost: u64,
}

/// One timed batch-grid trial: preload, paired insert+delete phase,
/// drain.
fn trial(shards: usize, sample: usize, threads: usize, batch: usize, scale: Scale) -> Cell {
    let (n_init, n_pairs) = sizes(scale);
    let init = generate_keys(n_init, KeyDist::Random, 11);
    let pairs = generate_keys(n_pairs, KeyDist::Random, 13);
    let q: CpuShardedBgpq<u32, ()> = CpuShardedBgpq::new(ShardedOptions::with_capacity_for(
        shards,
        sample,
        batch,
        n_init + n_pairs,
    ));

    // Preload from the measurement threads' chunks so sticky affinity
    // spreads the initial load the same way the timed phase will.
    let chunk = init.len().div_ceil(threads.max(1)).max(1);
    std::thread::scope(|s| {
        for part in init.chunks(chunk) {
            s.spawn(|| {
                let mut items: Vec<Entry<u32, ()>> = Vec::with_capacity(batch);
                for b in part.chunks(batch) {
                    items.clear();
                    items.extend(b.iter().map(|&k| Entry::new(k, ())));
                    q.insert_batch(&items);
                }
            });
        }
    });
    assert_eq!(q.len(), init.len(), "preload lost keys");
    q.inner().reset_quality();

    let chunk = pairs.len().div_ceil(threads.max(1)).max(1);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for part in pairs.chunks(chunk) {
            s.spawn(|| {
                let mut items: Vec<Entry<u32, ()>> = Vec::with_capacity(batch);
                let mut out: Vec<Entry<u32, ()>> = Vec::with_capacity(batch);
                for b in part.chunks(batch) {
                    items.clear();
                    items.extend(b.iter().map(|&k| Entry::new(k, ())));
                    q.insert_batch(&items);
                    out.clear();
                    q.delete_min_batch(&mut out, b.len());
                }
            });
        }
    });
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    let quality = q.inner().quality();
    let imbalance = q.inner().load_imbalance();

    // Exactness on the way out: the sweep fallback must drain every
    // shard and end exactly empty.
    assert_eq!(q.len(), init.len(), "paired phase must preserve size");
    let mut out: Vec<Entry<u32, ()>> = Vec::with_capacity(batch);
    let mut drained = 0usize;
    loop {
        out.clear();
        let got = q.delete_min_batch(&mut out, batch);
        if got == 0 {
            break;
        }
        drained += got;
    }
    assert_eq!(drained, init.len(), "drain must recover the preload exactly");
    assert!(q.is_empty());

    Cell {
        ops_per_ms: 2.0 * pairs.len() as f64 / elapsed_ms.max(1e-9),
        mean_rank_error: quality.mean_rank_error(),
        max_rank_error: quality.rank_error_max,
        steals: quality.steals,
        sweeps: quality.full_sweeps,
        imbalance,
        salvages: quality.salvages,
        readmissions: quality.readmissions,
        keys_lost: quality.keys_lost,
    }
}

// ---------------------------------------------------------------------
// Front comparison: single-op traffic, plain vs buffered.
// ---------------------------------------------------------------------

/// One front cell: throughput (ops per simulated ms for sim, ops per
/// wall second for cpu) plus the buffered front's quality/occupancy
/// counters (zero for plain cells).
#[derive(Clone, Copy, Default)]
struct FrontCell {
    throughput: f64,
    mean_rank_error: f64,
    max_rank_error: u64,
    flushes: u64,
    refills: u64,
    refill_occupancy: f64,
    sticky_reuse_rate: f64,
}

fn front_opts(workers: usize, pairs: usize, buffered: bool) -> ShardedOptions {
    let capacity = workers * pairs + workers * FRONT_K + (1 << 10);
    let mut opts =
        ShardedOptions::with_capacity_for(FRONT_SHARDS, FRONT_SAMPLE, FRONT_K, capacity);
    if buffered {
        opts = opts.with_buffering(front_policy());
    }
    opts
}

/// CPU front trial: every thread runs `pairs` iterations of one 1-wide
/// insert followed by one 1-wide delete-min, wall-clock timed,
/// median-of-trials. Conservation is asserted after a quiesce.
fn front_cpu(workers: usize, pairs: usize, buffered: bool) -> FrontCell {
    let mut trials: Vec<FrontCell> = (0..CPU_TRIALS)
        .map(|_| {
            let q: CpuShardedBgpq<u32, u32> =
                CpuShardedBgpq::new(front_opts(workers, pairs, buffered));
            let deleted = AtomicU64::new(0);
            let t0 = Instant::now();
            std::thread::scope(|s| {
                for t in 0..workers {
                    let q = &q;
                    let deleted = &deleted;
                    s.spawn(move || {
                        // Preload into the *shards* (like the sim
                        // trial) so refills have real work to take —
                        // without it every key ping-pongs through the
                        // slot's own stage and no shard is touched. A
                        // capacity-wide batch takes the direct route in
                        // buffered mode; plain mode needs ≤ k chunks.
                        let span = pairs + FRONT_BUFFER;
                        let base = (t * span) as u32;
                        let preload: Vec<Entry<u32, u32>> =
                            (0..FRONT_BUFFER as u32).map(|i| Entry::new(base + i, 0)).collect();
                        if buffered {
                            q.try_insert_batch(&preload).expect("preload fits");
                        } else {
                            for chunk in preload.chunks(FRONT_K) {
                                q.try_insert_batch(chunk).expect("preload fits");
                            }
                        }
                        let mut out: Vec<Entry<u32, u32>> = Vec::with_capacity(FRONT_REFILL);
                        for i in 0..pairs {
                            let key = base + (FRONT_BUFFER + i) as u32;
                            q.try_insert_batch(&[Entry::new(key, key)]).expect("capacity holds");
                            out.clear();
                            let got = q.try_delete_min_batch(&mut out, 1).expect("healthy front");
                            deleted.fetch_add(got as u64, Ordering::Relaxed);
                        }
                        q.flush().expect("flush");
                    });
                }
            });
            let secs = t0.elapsed().as_secs_f64();
            q.quiesce_all().expect("quiesce");
            let inserted = (workers * (pairs + FRONT_BUFFER)) as u64;
            assert_eq!(
                q.len() as u64 + deleted.load(Ordering::Relaxed),
                inserted,
                "front trial must conserve keys"
            );
            front_cell_from(q.inner(), (2 * workers * pairs) as f64 / secs.max(1e-9))
        })
        .collect();
    trials.sort_by(|a, b| b.throughput.partial_cmp(&a.throughput).unwrap());
    trials[CPU_TRIALS / 2]
}

fn front_cell_from(q: &ShardedBgpq<u32, u32, impl bgpq_runtime::Platform>, tp: f64) -> FrontCell {
    let quality = q.quality();
    let fs = q.front_stats().snapshot();
    FrontCell {
        throughput: tp,
        mean_rank_error: quality.mean_rank_error(),
        max_rank_error: quality.rank_error_max,
        flushes: fs.buffer_flushes,
        refills: fs.buffer_refills,
        refill_occupancy: fs.mean_refill_occupancy(),
        sticky_reuse_rate: fs.sticky_reuse_rate(),
    }
}

type SimSharded = ShardedBgpq<u32, u32, SimPlatform>;

/// Sim front trial: one block per worker on the virtual-time
/// simulator, device-time measured. Each block preloads `FRONT_K` keys
/// (both modes pay it identically, inside the makespan) and then runs
/// 1-wide insert+delete pairs; buffered blocks quiesce their slot at
/// the end so the accounting includes the cleanup cost.
fn front_sim(workers: usize, pairs: usize, buffered: bool) -> FrontCell {
    let cfg = GpuConfig::new(workers, 32).with_fuzz_seed(11);
    let opts = front_opts(workers, pairs + FRONT_K, buffered);
    let deleted = AtomicU64::new(0);
    let (report, q) = launch(
        cfg,
        |sched| {
            let platforms = (0..FRONT_SHARDS)
                .map(|_| SimPlatform::new(sched, opts.queue.max_nodes + 1, cfg.cost, cfg.block_dim))
                .collect();
            ShardedBgpq::with_platforms(platforms, opts)
        },
        |ctx, q: &SimSharded| {
            let bid = ctx.block_id();
            let base = (bid * (pairs + FRONT_K)) as u32 * 2;
            let mut rng = 0x5EED_0000 + bid as u64;
            let mut out: Vec<Entry<u32, u32>> = Vec::with_capacity(FRONT_REFILL);
            let w = ctx.worker();
            // Preload k keys so the paired phase never runs dry.
            let preload: Vec<Entry<u32, u32>> =
                (0..FRONT_K as u32).map(|i| Entry::new(base + i, 0)).collect();
            q.try_insert(w, bid, &preload).expect("preload fits");
            for i in 0..pairs as u32 {
                let key = base + FRONT_K as u32 + i;
                if buffered {
                    q.buffered_try_insert(w, bid, &[Entry::new(key, 0)]).expect("capacity holds");
                    out.clear();
                    let got = q
                        .buffered_try_delete_min(w, bid, &mut rng, &mut out, 1)
                        .expect("healthy front");
                    deleted.fetch_add(got as u64, Ordering::Relaxed);
                } else {
                    q.try_insert(w, bid, &[Entry::new(key, 0)]).expect("capacity holds");
                    out.clear();
                    let got =
                        q.try_delete_min(w, &mut rng, &mut out, 1).expect("healthy front");
                    deleted.fetch_add(got as u64, Ordering::Relaxed);
                }
            }
            if buffered {
                q.quiesce_slot(w, bid).expect("quiesce");
            }
        },
    );
    let inserted = (workers * (pairs + FRONT_K)) as u64;
    assert_eq!(
        q.len() as u64 + deleted.load(Ordering::Relaxed),
        inserted,
        "sim front trial must conserve keys"
    );
    assert_eq!(q.buffered_len(), 0, "quiesced slots leave nothing parked");
    let ops = (2 * pairs * workers) as f64;
    front_cell_from(&q, ops / report.makespan_ms)
}

struct FrontRow {
    workers: usize,
    plain: FrontCell,
    buffered: FrontCell,
}

impl FrontRow {
    fn ratio(&self) -> f64 {
        self.buffered.throughput / self.plain.throughput
    }
    fn rank_err_delta(&self) -> f64 {
        self.buffered.mean_rank_error - self.plain.mean_rank_error
    }
}

fn front_sweep(label: &str, pairs: usize, run: impl Fn(usize, usize, bool) -> FrontCell) -> Vec<FrontRow> {
    let mut rows = Vec::new();
    for &n in &FRONT_WORKERS {
        let row =
            FrontRow { workers: n, plain: run(n, pairs, false), buffered: run(n, pairs, true) };
        eprintln!(
            "  {label} x{n:>2}: plain {:>12.0}, buffered {:>12.0} ({:.2}x, refill occupancy \
             {:.2}, sticky reuse {:.2}, rank err {:.3} -> {:.3})",
            row.plain.throughput,
            row.buffered.throughput,
            row.ratio(),
            row.buffered.refill_occupancy,
            row.buffered.sticky_reuse_rate,
            row.plain.mean_rank_error,
            row.buffered.mean_rank_error,
        );
        rows.push(row);
    }
    rows
}

fn front_json_rows(json: &mut String, rows: &[FrontRow]) {
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"plain\": {:.1}, \"buffered\": {:.1}, \"ratio\": {:.3}, \
             \"refill_occupancy\": {:.3}, \"sticky_reuse_rate\": {:.3}, \"flushes\": {}, \
             \"refills\": {}, \"rank_err_plain\": {:.3}, \"rank_err_buffered\": {:.3}, \
             \"rank_max_plain\": {}, \"rank_max_buffered\": {}}}{}",
            row.workers,
            row.plain.throughput,
            row.buffered.throughput,
            row.ratio(),
            row.buffered.refill_occupancy,
            row.buffered.sticky_reuse_rate,
            row.buffered.flushes,
            row.buffered.refills,
            row.plain.mean_rank_error,
            row.buffered.mean_rank_error,
            row.plain.max_rank_error,
            row.buffered.max_rank_error,
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        ));
    }
}

fn front_csv_rows(table: &mut Table, rows: &[FrontRow]) {
    for row in rows {
        for (mode, cell) in [("front-plain", &row.plain), ("front-buf", &row.buffered)] {
            table.row(vec![
                mode.to_string(),
                FRONT_SHARDS.to_string(),
                FRONT_SAMPLE.to_string(),
                row.workers.to_string(),
                format!("{:.0}", cell.throughput),
                format!("{:.3}", cell.mean_rank_error),
                cell.max_rank_error.to_string(),
                (FRONT_SHARDS - 1).to_string(),
                "0".to_string(),
                "0".to_string(),
                "1.00".to_string(),
                "0".to_string(),
                "0".to_string(),
                "0".to_string(),
                cell.flushes.to_string(),
                cell.refills.to_string(),
                format!("{:.2}", cell.refill_occupancy),
                format!("{:.2}", cell.sticky_reuse_rate),
            ]);
        }
    }
}

fn main() {
    let args = parse_args();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut table = Table::new("shard_sweep", &SHARD_SWEEP_COLUMNS);
    for &shards in &[1usize, 2, 4, 8] {
        for &sample in &[1usize, 2, 4] {
            if sample > shards {
                continue;
            }
            for &threads in &[1usize, 2, 4, 8] {
                let cell = trial(shards, sample, threads, args.batch, args.scale);
                table.row(vec![
                    "batch".to_string(),
                    shards.to_string(),
                    sample.to_string(),
                    threads.to_string(),
                    format!("{:.0}", cell.ops_per_ms),
                    format!("{:.3}", cell.mean_rank_error),
                    cell.max_rank_error.to_string(),
                    (shards - sample).to_string(),
                    cell.steals.to_string(),
                    cell.sweeps.to_string(),
                    format!("{:.2}", cell.imbalance),
                    cell.salvages.to_string(),
                    cell.readmissions.to_string(),
                    cell.keys_lost.to_string(),
                    "0".to_string(),
                    "0".to_string(),
                    "0.00".to_string(),
                    "0.00".to_string(),
                ]);
            }
        }
    }

    let (cpu_pairs, sim_pairs) = front_pairs(args.scale);
    eprintln!(
        "front comparison: S = {FRONT_SHARDS}, c = {FRONT_SAMPLE}, k = {FRONT_K}, buffer \
         {FRONT_BUFFER}, refill {FRONT_REFILL}, stickiness {FRONT_STICKY}, {cpu_pairs} cpu \
         pairs, {sim_pairs} sim pairs, {host_cores} host cores"
    );
    eprintln!("sim sweep (device time, ops per simulated ms):");
    let sim_rows = front_sweep("sim", sim_pairs, front_sim);
    eprintln!("cpu sweep (wall clock, ops per second):");
    let cpu_rows = front_sweep("cpu", cpu_pairs, front_cpu);
    front_csv_rows(&mut table, &sim_rows);

    table.print();
    match table.write_csv(&results_dir()) {
        Ok(p) => println!("\nwrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }

    // Acceptance: the loaded sim cells (≥ 8 concurrent workers) in
    // device time — the regime the buffered front exists for. Best
    // loaded cell must clear 2× with mean refill occupancy above half
    // the node width `k` (each refill must deliver more than half a
    // node's worth of keys, else the wide delete isn't amortizing),
    // and the rank-error delta is reported alongside.
    let best = sim_rows
        .iter()
        .filter(|r| r.workers >= 8)
        .max_by(|a, b| a.ratio().partial_cmp(&b.ratio()).unwrap())
        .expect("FRONT_WORKERS includes a loaded point");
    let occupancy_floor = FRONT_K as f64 / 2.0;
    let pass = best.ratio() >= 2.0 && best.buffered.refill_occupancy > occupancy_floor;
    eprintln!(
        "acceptance (sim, {} workers): ratio {:.2} (need >= 2.0), refill occupancy {:.2} \
         (need > {:.1}), rank err delta {:+.3} => {}",
        best.workers,
        best.ratio(),
        best.buffered.refill_occupancy,
        occupancy_floor,
        best.rank_err_delta(),
        if pass { "PASS" } else { "FAIL" }
    );

    let advisory = host_cores == 1;
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"shard_sweep\",\n  \"scale\": \"{:?}\",\n  \"shards\": {FRONT_SHARDS},\n  \
         \"sample\": {FRONT_SAMPLE},\n  \"k\": {FRONT_K},\n  \"buffer\": {{\"insert_capacity\": \
         {FRONT_BUFFER}, \"refill_width\": {FRONT_REFILL}, \"stickiness\": {FRONT_STICKY}}},\n  \
         \"host_cores\": {host_cores},\n  \"cpu_wall_clock_advisory\": {advisory},\n  \
         \"cpu_pairs_per_thread\": {cpu_pairs},\n  \"sim_pairs_per_block\": {sim_pairs},\n",
        args.scale
    ));
    json.push_str("  \"sim_device_time\": [\n");
    front_json_rows(&mut json, &sim_rows);
    json.push_str("  ],\n  \"cpu_wall_clock\": [\n");
    front_json_rows(&mut json, &cpu_rows);
    json.push_str(&format!(
        "  ],\n  \"acceptance\": {{\"basis\": \"sim_device_time\", \"workers\": {}, \"ratio\": \
         {:.3}, \"refill_occupancy\": {:.3}, \"occupancy_floor\": {:.1}, \"rank_err_delta\": \
         {:.3}, \"pass\": {}}},\n",
        best.workers,
        best.ratio(),
        best.buffered.refill_occupancy,
        occupancy_floor,
        best.rank_err_delta(),
        pass
    ));
    json.push_str(&format!(
        "  \"note\": \"{}sim_device_time models truly concurrent workers where buffered local \
         serves cost no device time while every plain op pays a sample plus a root-lock \
         round-trip; it is the acceptance basis.\"\n}}\n",
        if advisory {
            "cpu_wall_clock cells are advisory on this single-core host (time-sliced threads \
             serialize, hiding the contention the buffers remove); "
        } else {
            ""
        }
    ));
    fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
    eprintln!("wrote BENCH_shard.json");
}
