//! Coalescing-front sweep: single-op insert/delete-min traffic issued
//! either as a naive single-op loop straight at the queue (1-wide
//! batches, one heap lock round-trip per key) or through the
//! `bgpq-combine` flat-combining front (requests coalesce into
//! up-to-`k`-wide batches under the adaptive window policy).
//!
//! Two sweeps, same workload shape (every submitter runs `pairs`
//! iterations of one single-item insert followed by one single-item
//! delete-min):
//!
//! * **sim** — concurrent blocks on the virtual-time GPU simulator,
//!   measured in simulated device time. This is the acceptance cell:
//!   at ≥ 8 blocks the coalesced path must beat the naive loop ≥ 2×
//!   with mean issued batch occupancy > `k/2`. Virtual time is where
//!   batch economics are real: submitters genuinely overlap, so
//!   requests queue behind an active combiner and rounds fill.
//! * **cpu** — the same sweep with OS threads over `CpuBgpq` in
//!   wall-clock time, recorded for context. On a single-core host
//!   (this repo's CI) time-sliced threads serialize: arrivals never
//!   outpace service, rounds stay solo, and the front's per-request
//!   overhead is pure loss — the JSON records `host_cores` so the
//!   number can be read for what it is.
//!
//! Results land in `bench_results/coalesce.csv` and
//! `BENCH_coalesce.json` (per-cell throughput, ratio, occupancy, and
//! an `acceptance` object computed from the loaded sim cells).
//!
//! Usage: `coalesce [--scale small|medium|full] [--k K]`

use bench::report::{results_dir, Table};
use bench::Scale;
use bgpq::{Bgpq, BgpqOptions, CpuBgpq};
use bgpq_combine::{CombineBackend, CombineShared, Combiner, CombinerOptions, Op};
use bgpq_runtime::{Platform, SimPlatform};
use gpu_sim::sched::SimWorker;
use gpu_sim::{launch, GpuConfig};
use pq_api::{Entry, QueueError};
use std::fs;
use std::sync::Arc;
use std::time::Instant;

const TRIALS: usize = 3;
const SUBMITTERS: [usize; 6] = [1, 2, 4, 8, 16, 32];

struct Args {
    scale: Scale,
    k: usize,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Medium;
    // k = 8 by default: the sweep targets single-op traffic, where the
    // interesting regime is window ≈ submitter count, not the heap's
    // full node width.
    let mut k = 8usize;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = argv.get(i).and_then(|s| Scale::parse(s)).unwrap_or_else(|| {
                    eprintln!("--scale needs small|medium|full");
                    std::process::exit(2);
                });
            }
            "--k" => {
                i += 1;
                k = argv.get(i).and_then(|s| s.parse().ok()).filter(|&k| k >= 2).unwrap_or_else(
                    || {
                        eprintln!("--k needs an integer >= 2");
                        std::process::exit(2);
                    },
                );
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    Args { scale, k }
}

/// Insert+delete pairs per submitter, per mode.
fn pairs_per_submitter(scale: Scale) -> (usize, usize) {
    // (cpu, sim): the simulator interprets every instruction, so its
    // per-op wall cost is far higher; device-time ratios converge with
    // far fewer ops than wall-clock medians do.
    match scale {
        Scale::Small => (2_000, 200),
        Scale::Medium => (10_000, 500),
        Scale::Full => (40_000, 2_000),
    }
}

/// One sweep cell: throughput (wall ops/s for cpu, ops per simulated
/// ms for sim), the front's mean items per issued insert batch (1.0 by
/// construction for naive cells), and the final adaptive window.
#[derive(Clone, Copy)]
struct Cell {
    throughput: f64,
    mean_occupancy: f64,
    window: usize,
}

// ---------------------------------------------------------------------
// CPU sweep: OS threads, wall-clock time.
// ---------------------------------------------------------------------

fn cpu_queue(k: usize, preload: usize, headroom: usize) -> CpuBgpq<u32, u32> {
    let q = CpuBgpq::new(BgpqOptions::with_capacity_for(k, preload + headroom));
    let mut batch: Vec<Entry<u32, u32>> = Vec::with_capacity(k);
    for base in (0..preload as u32).step_by(k) {
        batch.clear();
        batch.extend((base..(base + k as u32).min(preload as u32)).map(|x| Entry::new(x, x)));
        q.try_insert_batch(&batch).expect("preload fits");
    }
    q
}

/// Median-of-trials over one full multi-threaded run.
fn median_cell(mut run: impl FnMut() -> Cell) -> Cell {
    let mut trials: Vec<Cell> = (0..TRIALS).map(|_| run()).collect();
    trials.sort_by(|a, b| b.throughput.partial_cmp(&a.throughput).unwrap());
    trials[TRIALS / 2]
}

/// Naive mode: every thread drives `CpuBgpq`'s hardened batch paths
/// with 1-wide batches — the exact traffic shape the front exists to
/// fix.
fn cpu_naive(threads: usize, pairs: usize, k: usize) -> Cell {
    median_cell(|| {
        let q = cpu_queue(k, 1 << 10, threads * k + k);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let q = &q;
                s.spawn(move || {
                    let mut out: Vec<Entry<u32, u32>> = Vec::with_capacity(1);
                    for i in 0..pairs {
                        let key = (t * pairs + i) as u32;
                        q.try_insert_batch(&[Entry::new(key, key)]).expect("capacity holds");
                        out.clear();
                        q.try_delete_min_batch(&mut out, 1).expect("healthy queue");
                    }
                });
            }
        });
        let secs = t0.elapsed().as_secs_f64();
        Cell { throughput: (2 * pairs * threads) as f64 / secs, mean_occupancy: 1.0, window: 0 }
    })
}

/// Coalesced mode: the same traffic submitted through the combining
/// front; the adaptive window decides the issued batch widths.
fn cpu_combined(threads: usize, pairs: usize, k: usize) -> Cell {
    median_cell(|| {
        let q = Combiner::wrap(cpu_queue(k, 1 << 10, threads * k + k));
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let q = &q;
                s.spawn(move || {
                    for i in 0..pairs {
                        let key = (t * pairs + i) as u32;
                        q.try_insert(key, key).expect("capacity holds");
                        q.try_delete_min().expect("healthy front");
                    }
                });
            }
        });
        let secs = t0.elapsed().as_secs_f64();
        let snap = q.stats().snapshot();
        let mean_occupancy =
            if snap.inserts > 0 { snap.items_inserted as f64 / snap.inserts as f64 } else { 0.0 };
        Cell { throughput: (2 * pairs * threads) as f64 / secs, mean_occupancy, window: q.window() }
    })
}

// ---------------------------------------------------------------------
// Simulator sweep: concurrent blocks, device time.
// ---------------------------------------------------------------------

type SimQueue = Bgpq<u32, u32, SimPlatform>;

fn sim_opts(k: usize, blocks: usize, pairs: usize) -> BgpqOptions {
    BgpqOptions {
        node_capacity: k,
        max_nodes: ((blocks * pairs).div_ceil(k) + blocks + 2).next_power_of_two(),
        ..Default::default()
    }
}

/// Naive mode on the simulator: each block agent issues 1-wide batches
/// straight at the shared sim heap, paying the full lock round-trip in
/// device time per key.
fn sim_naive(blocks: usize, pairs: usize, k: usize) -> Cell {
    let cfg = GpuConfig::new(blocks, 32).with_fuzz_seed(11);
    let opts = sim_opts(k, blocks, pairs);
    let (report, _q) = launch(
        cfg,
        |sched| {
            let p = SimPlatform::new(sched, opts.max_nodes + 1, cfg.cost, cfg.block_dim);
            Arc::new(Bgpq::with_platform(p, opts))
        },
        move |ctx, q: &Arc<SimQueue>| {
            let bid = ctx.block_id() as u32;
            let w = ctx.worker();
            let mut out: Vec<Entry<u32, u32>> = Vec::with_capacity(1);
            for i in 0..pairs as u32 {
                let key = bid * 1_000_000 + i;
                q.try_insert(w, &[Entry::new(key, key)]).expect("capacity holds");
                out.clear();
                q.try_delete_min(w, &mut out, 1).expect("healthy queue");
            }
        },
    );
    let ops = (2 * pairs * blocks) as f64;
    Cell { throughput: ops / report.makespan_ms, mean_occupancy: 1.0, window: 0 }
}

/// Combining backend for a simulated block (same shape as the
/// integration tests): batched calls to the shared sim heap, waiting
/// yields virtual time through the platform's backoff, lane = block.
struct SimBackend<'a> {
    q: &'a SimQueue,
    w: &'a mut SimWorker,
    lane: usize,
}

impl CombineBackend<u32, u32> for SimBackend<'_> {
    const CAN_PARK: bool = false;

    fn batch_capacity(&self) -> usize {
        self.q.node_capacity()
    }

    fn try_insert_batch(&mut self, items: &[Entry<u32, u32>]) -> Result<(), QueueError> {
        self.q.try_insert(self.w, items)
    }

    fn try_delete_min_batch(
        &mut self,
        out: &mut Vec<Entry<u32, u32>>,
        count: usize,
    ) -> Result<usize, QueueError> {
        self.q.try_delete_min(self.w, out, count)
    }

    fn relax(&mut self) {
        self.q.platform().backoff(self.w);
    }

    fn lane(&self) -> usize {
        self.lane
    }
}

type SimFront = (Arc<SimQueue>, CombineShared<u32, u32>);

/// Coalesced mode on the simulator: the same traffic through the
/// combining front, polling in virtual time.
fn sim_combined(blocks: usize, pairs: usize, k: usize) -> Cell {
    let cfg = GpuConfig::new(blocks, 32).with_fuzz_seed(11);
    let opts = sim_opts(k, blocks, pairs);
    let (report, st) = launch(
        cfg,
        |sched| {
            let p = SimPlatform::new(sched, opts.max_nodes + 1, cfg.cost, cfg.block_dim);
            let q = Arc::new(Bgpq::with_platform(p, opts));
            let front = CombineShared::new(q.node_capacity(), CombinerOptions::default());
            let st: SimFront = (q, front);
            st
        },
        move |ctx, st: &SimFront| {
            let lane = ctx.block_id();
            let mut backend = SimBackend { q: &st.0, w: ctx.worker(), lane };
            let bid = lane as u32;
            for i in 0..pairs as u32 {
                let key = bid * 1_000_000 + i;
                st.1.submit(&mut backend, Op::Insert(Entry::new(key, key)))
                    .expect("capacity holds");
                st.1.submit(&mut backend, Op::DeleteMin).expect("healthy front");
            }
        },
    );
    let (_, front) = st;
    let snap = front.stats().snapshot();
    if std::env::var_os("COALESCE_DEBUG").is_some() {
        eprintln!(
            "    [debug] blocks={blocks} inserts={} items_inserted={} delete_mins={} \
             items_deleted={} hist={:?} window={}",
            snap.inserts,
            snap.items_inserted,
            snap.delete_mins,
            snap.items_deleted,
            snap.batch_occupancy,
            front.window()
        );
        eprintln!("    [debug] peak_pending={}", front.peak_pending());
        eprintln!(
            "    [debug] makespan={} finishes={:?}",
            report.makespan_cycles, report.block_finish_cycles
        );
    }
    let mean_occupancy =
        if snap.inserts > 0 { snap.items_inserted as f64 / snap.inserts as f64 } else { 0.0 };
    let ops = (2 * pairs * blocks) as f64;
    Cell { throughput: ops / report.makespan_ms, mean_occupancy, window: front.window() }
}

// ---------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------

struct Row {
    submitters: usize,
    naive: Cell,
    combined: Cell,
}

impl Row {
    fn ratio(&self) -> f64 {
        self.combined.throughput / self.naive.throughput
    }
}

fn sweep(
    label: &str,
    pairs: usize,
    k: usize,
    naive: impl Fn(usize, usize, usize) -> Cell,
    combined: impl Fn(usize, usize, usize) -> Cell,
) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in &SUBMITTERS {
        let row = Row { submitters: n, naive: naive(n, pairs, k), combined: combined(n, pairs, k) };
        eprintln!(
            "  {label} x{n:>2}: naive {:>12.0}, coalesced {:>12.0} ({:.2}x, occupancy {:.2}, \
             window {})",
            row.naive.throughput,
            row.combined.throughput,
            row.ratio(),
            row.combined.mean_occupancy,
            row.combined.window
        );
        rows.push(row);
    }
    rows
}

fn json_rows(json: &mut String, rows: &[Row]) {
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"submitters\": {}, \"naive\": {:.1}, \"coalesced\": {:.1}, \
             \"ratio\": {:.3}, \"mean_occupancy\": {:.3}, \"final_window\": {}}}{}",
            row.submitters,
            row.naive.throughput,
            row.combined.throughput,
            row.ratio(),
            row.combined.mean_occupancy,
            row.combined.window,
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        ));
    }
}

fn main() {
    let args = parse_args();
    let (cpu_pairs, sim_pairs) = pairs_per_submitter(args.scale);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "coalesce: scale {:?}, k = {}, submitters {:?}, {} cpu pairs, {} sim pairs, {} host \
         cores",
        args.scale, args.k, SUBMITTERS, cpu_pairs, sim_pairs, host_cores
    );

    eprintln!("sim sweep (device time, ops per simulated ms):");
    let sim_rows = sweep("sim", sim_pairs, args.k, sim_naive, sim_combined);
    eprintln!("cpu sweep (wall clock, ops per second):");
    let cpu_rows = sweep("cpu", cpu_pairs, args.k, cpu_naive, cpu_combined);

    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create bench_results");

    let mut table = Table::new(
        "coalesce",
        &["sweep", "submitters", "naive", "coalesced", "ratio", "mean_occupancy", "window"],
    );
    for (label, rows) in [("sim", &sim_rows), ("cpu", &cpu_rows)] {
        for row in rows {
            table.row(vec![
                label.to_string(),
                row.submitters.to_string(),
                format!("{:.0}", row.naive.throughput),
                format!("{:.0}", row.combined.throughput),
                format!("{:.2}", row.ratio()),
                format!("{:.2}", row.combined.mean_occupancy),
                row.combined.window.to_string(),
            ]);
        }
    }
    table.print();
    table.write_csv(&dir).expect("write csv");

    // Acceptance: the loaded sim cells (≥ 8 concurrent submitters) in
    // device time — the regime the front exists for. Best loaded cell
    // must clear 2× with occupancy above half the node width.
    let best = sim_rows
        .iter()
        .filter(|r| r.submitters >= 8)
        .max_by(|a, b| a.ratio().partial_cmp(&b.ratio()).unwrap())
        .expect("SUBMITTERS includes a loaded point");
    let pass = best.ratio() >= 2.0 && best.combined.mean_occupancy > args.k as f64 / 2.0;
    eprintln!(
        "acceptance (sim, {} submitters): ratio {:.2} (need >= 2.0), occupancy {:.2} (need > \
         {:.1}) => {}",
        best.submitters,
        best.ratio(),
        best.combined.mean_occupancy,
        args.k as f64 / 2.0,
        if pass { "PASS" } else { "FAIL" }
    );

    // Detected at runtime, not hand-written: on a single-core host the
    // cpu_wall_clock sweep time-slices its submitters, so those cells
    // measure a serialized schedule and are marked advisory.
    let advisory = host_cores == 1;
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"coalesce\",\n  \"scale\": \"{:?}\",\n  \"k\": {},\n  \
         \"window_policy\": \"adaptive\",\n  \"host_cores\": {},\n  \
         \"cpu_wall_clock_advisory\": {},\n  \
         \"cpu_pairs_per_thread\": {},\n  \"sim_pairs_per_block\": {},\n",
        args.scale, args.k, host_cores, advisory, cpu_pairs, sim_pairs
    ));
    json.push_str("  \"sim_device_time\": [\n");
    json_rows(&mut json, &sim_rows);
    json.push_str("  ],\n  \"cpu_wall_clock\": [\n");
    json_rows(&mut json, &cpu_rows);
    json.push_str(&format!(
        "  ],\n  \"acceptance\": {{\"basis\": \"sim_device_time\", \"submitters\": {}, \
         \"ratio\": {:.3}, \"mean_occupancy\": {:.3}, \"occupancy_floor\": {:.1}, \
         \"pass\": {}}},\n",
        best.submitters,
        best.ratio(),
        best.combined.mean_occupancy,
        args.k as f64 / 2.0,
        pass
    ));
    json.push_str(&format!(
        "  \"note\": \"{}the sim_device_time sweep models truly concurrent submitters and is \
         the acceptance basis.\"\n}}\n",
        if advisory {
            "cpu_wall_clock cells are advisory on this single-core host: time-sliced threads \
             serialize, so arrivals never outpace service and rounds stay near-solo; "
        } else {
            ""
        }
    ));
    fs::write("BENCH_coalesce.json", &json).expect("write BENCH_coalesce.json");
    eprintln!("wrote bench_results/coalesce.csv and BENCH_coalesce.json");
}
