//! Regenerates **Figure 6** of the paper: BGPQ performance w.r.t.
//! thread-block size, node capacity (6a insert / 6b delete), and
//! thread-block count (6c), on the virtual-time simulator.
//!
//! Usage: `fig6 [a|b|c|all] [--scale small|medium|full]`

use bench::report::{ms, results_dir, Table};
use bench::sim::bgpq_sim_insdel;
use bench::Scale;
use gpu_sim::GpuConfig;
use workloads::{generate_keys, KeyDist};

const CAPACITIES: [usize; 5] = [64, 128, 256, 512, 1024];
const BLOCK_SIZES: [u32; 4] = [128, 256, 512, 1024];
const BLOCK_COUNTS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

fn parse() -> (String, Scale) {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut what = "all".to_string();
    let mut scale = Scale::Medium;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::parse(&argv[i]).expect("--scale small|medium|full");
            }
            w if !w.starts_with('-') => what = w.to_string(),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    (what, scale)
}

/// Fig. 6a/6b: capacity × block size sweep at 128 (scaled: 32) blocks.
fn fig6_ab(scale: Scale) {
    let n = scale.fig6_keys();
    let keys = generate_keys(n, KeyDist::Random, 0xF16);
    let blocks = match scale {
        Scale::Small => 8,
        Scale::Medium => 32,
        Scale::Full => 128,
    };
    let mut ta = Table::new("fig6a_insert", &["capacity", "t=128", "t=256", "t=512", "t=1024"]);
    let mut tb = Table::new("fig6b_delete", &["capacity", "t=128", "t=256", "t=512", "t=1024"]);
    for k in CAPACITIES {
        let mut row_a = vec![format!("{k}")];
        let mut row_b = vec![format!("{k}")];
        for t in BLOCK_SIZES {
            eprintln!("[fig6ab] capacity {k}, block size {t} ...");
            let timing = bgpq_sim_insdel(GpuConfig::new(blocks, t), k, &keys);
            row_a.push(ms(timing.insert_ms));
            row_b.push(ms(timing.delete_ms));
        }
        ta.row(row_a);
        tb.row(row_b);
    }
    ta.print();
    tb.print();
    ta.write_csv(&results_dir()).expect("csv");
    tb.write_csv(&results_dir()).expect("csv");
}

/// Fig. 6c: block-count sweep at block size 512, capacity 1024.
fn fig6_c(scale: Scale) {
    let n = scale.fig6_keys();
    let keys = generate_keys(n, KeyDist::Random, 0xF16C);
    let k = 1024;
    let mut t = Table::new("fig6c_blocks", &["blocks", "insert_ms", "delete_ms", "total_ms"]);
    for blocks in BLOCK_COUNTS {
        eprintln!("[fig6c] {blocks} blocks ...");
        let timing = bgpq_sim_insdel(GpuConfig::new(blocks, 512), k, &keys);
        t.row(vec![
            format!("{blocks}"),
            ms(timing.insert_ms),
            ms(timing.delete_ms),
            ms(timing.total_ms),
        ]);
    }
    t.print();
    t.write_csv(&results_dir()).expect("csv");
}

fn main() {
    let (what, scale) = parse();
    eprintln!("fig6: {what} (scale {scale:?})");
    match what.as_str() {
        "a" | "b" | "ab" => fig6_ab(scale),
        "c" => fig6_c(scale),
        "all" => {
            fig6_ab(scale);
            fig6_c(scale);
        }
        other => {
            eprintln!("unknown figure {other}; use a|b|c|all");
            std::process::exit(2);
        }
    }
}
