//! Recovery benchmark: how fast does the self-healing path run, and
//! what does a crash cost in keys?
//!
//! Two measurements:
//!
//! * `salvage` — raw salvage throughput: walk + reset of a healthy
//!   preloaded `CpuBgpq` (the storage scan that dominates a recovery
//!   pass), median over trials, reported in keys/s.
//! * `mttr`    — mean time to repair on the sharded front: a fault
//!   plan crashes one shard under traffic, the breaker quarantines it,
//!   and the driver pumps tracked operations until the shard is
//!   salvaged, trial-served, and re-admitted. Wall-clock from
//!   quarantine to breaker-closed is the MTTR; the trial also reports
//!   ops-to-recover and the exact keys-lost accounting from the
//!   router's quality counters.
//!
//! Results land in `bench_results/recover.csv` and `BENCH_recover.json`
//! (MTTR and keys-lost are the acceptance numbers tracked across PRs).
//!
//! Usage: `recover [--scale small|medium|full]`

use bench::report::{results_dir, Table};
use bench::Scale;
use bgpq::{BgpqOptions, CpuBgpq};
use bgpq_runtime::{CpuPlatform, CpuWorker, FaultAction, FaultPlan, InjectionPoint};
use bgpq_shard::{BreakerState, RecoveryOptions, ShardedBgpq, ShardedOptions};
use pq_api::{BatchPriorityQueue, Entry};
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};
use workloads::{generate_keys, KeyDist};

const TRIALS: usize = 5;

fn parse_args() -> Scale {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Medium;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = argv.get(i).and_then(|s| Scale::parse(s)).unwrap_or_else(|| {
                    eprintln!("--scale needs small|medium|full");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    scale
}

/// Salvaged keys per scale (raw-walk phase) and per-shard preload for
/// the MTTR phase.
fn sizes(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Small => (1 << 14, 1 << 10),
        Scale::Medium => (1 << 18, 1 << 13),
        Scale::Full => (1 << 20, 1 << 15),
    }
}

/// Median of a sorted copy of `v`.
fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Raw salvage throughput: preload `n` keys, time `salvage` (walk +
/// reset), rebuild for the next trial is a fresh queue.
fn salvage_phase(n: usize, k: usize) -> (f64, f64) {
    let keys = generate_keys(n, KeyDist::Random, 31);
    let mut secs: Vec<f64> = (0..TRIALS)
        .map(|_| {
            let mut q: CpuBgpq<u32, u32> = CpuBgpq::new(BgpqOptions::with_capacity_for(k, n + k));
            for chunk in keys.chunks(k) {
                let items: Vec<Entry<u32, u32>> =
                    chunk.iter().map(|&key| Entry::new(key, key)).collect();
                q.insert_batch(&items);
            }
            let mut out = Vec::with_capacity(n);
            let t0 = Instant::now();
            let report = bgpq_recover::salvage(&mut q, &mut out);
            let secs = t0.elapsed().as_secs_f64();
            assert_eq!(report.keys_recovered, n, "healthy salvage must recover everything");
            assert_eq!(report.keys_lost, 0);
            secs
        })
        .collect();
    let med = median(&mut secs);
    (med * 1e3, n as f64 / med)
}

struct MttrTrial {
    mttr_ms: f64,
    ops_to_recover: u64,
    keys_recovered: u64,
    keys_lost: u64,
    probes: u64,
}

/// One crash-to-readmission cycle on a 4-shard front.
fn mttr_trial(preload_per_shard: usize, k: usize, seed: u64) -> MttrTrial {
    const SHARDS: usize = 4;
    let queue = BgpqOptions::with_capacity_for(k, 2 * preload_per_shard + 2 * k);
    // Fire roughly when the crash loop has filled shard 0 to its target
    // occupancy, so the salvage pass walks a realistically loaded heap.
    let nth = (preload_per_shard / k).max(3) as u64;
    let plan = Arc::new(FaultPlan::new().with_rule(
        InjectionPoint::MidInsertHeapify,
        nth,
        FaultAction::Panic,
    ));
    let platforms: Vec<CpuPlatform> = (0..SHARDS)
        .map(|i| {
            let p = CpuPlatform::new(queue.max_nodes + 1).with_watchdog(Duration::from_millis(75));
            if i == 0 {
                p.with_faults(plan.clone())
            } else {
                p
            }
        })
        .collect();
    let opts = ShardedOptions::new(SHARDS, 2, queue).with_recovery(RecoveryOptions {
        base_backoff_ops: 64,
        max_backoff_ops: 1024,
        trial_ops: 8,
        max_generations: 8,
    });
    let q: ShardedBgpq<u32, u32, CpuPlatform> =
        ShardedBgpq::with_platforms_recovering(platforms, opts, bgpq_recover::salvage_heap);

    // Preload the survivor shards only; shard 0 is filled by the crash
    // loop below so the armed heapify panic cannot fire during setup.
    let mut w = CpuWorker::new();
    let keys = generate_keys((SHARDS - 1) * preload_per_shard, KeyDist::Random, seed);
    for (i, chunk) in keys.chunks(k).enumerate() {
        let items: Vec<Entry<u32, u32>> = chunk.iter().map(|&key| Entry::new(key, key)).collect();
        let _ = q.try_insert(&mut w, 1 + (i % (SHARDS - 1)), &items);
    }

    // Crash shard 0: feed it full batches until the armed heapify panic
    // fires, then one more routed op notices the poison and quarantines.
    let mut i = 0u32;
    while plan.fired_count() == 0 {
        let batch: Vec<Entry<u32, u32>> =
            (0..k as u32).map(|j| Entry::new(1_000_000 + i + j, 0)).collect();
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _ = q.try_insert(&mut w, 0, &batch);
        }));
        i += k as u32;
        assert!(i < 50_000_000, "fault never fired");
    }
    while !q.is_quarantined(0) {
        let _ = q.try_insert(&mut w, 0, &[Entry::new(i, 0)]);
        i += 1;
    }

    // Recovery clock: pump tracked ops until the breaker closes again.
    let t0 = Instant::now();
    let mut ops = 0u64;
    while q.breaker_state(0) != BreakerState::Closed {
        let _ = q.try_insert(&mut w, (ops % SHARDS as u64) as usize, &[Entry::new(i, 0)]);
        i += 1;
        ops += 1;
        assert!(ops < 1_000_000, "breaker never closed: {:?}", q.quality());
    }
    let mttr_ms = t0.elapsed().as_secs_f64() * 1e3;

    let quality = q.quality();
    MttrTrial {
        mttr_ms,
        ops_to_recover: ops,
        keys_recovered: quality.keys_recovered,
        keys_lost: quality.keys_lost,
        probes: quality.probes,
    }
}

fn main() {
    let scale = parse_args();
    let (salvage_n, preload_per_shard) = sizes(scale);
    let k = 64usize;
    eprintln!(
        "recover: scale {scale:?}, salvage walk over {salvage_n} keys, \
         MTTR with {preload_per_shard} keys/shard, {TRIALS} trials"
    );

    let (salvage_ms, salvage_keys_per_s) = salvage_phase(salvage_n, k);

    // Each MTTR trial deliberately crashes a shard; keep the injected
    // panic out of the bench output while leaving real failures loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected fault"))
            .or_else(|| {
                info.payload().downcast_ref::<String>().map(|s| s.contains("injected fault"))
            })
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));
    let trials: Vec<MttrTrial> =
        (0..TRIALS).map(|t| mttr_trial(preload_per_shard, k, 41 + t as u64)).collect();
    let _ = std::panic::take_hook();
    let mut mttrs: Vec<f64> = trials.iter().map(|t| t.mttr_ms).collect();
    let mttr_med = median(&mut mttrs);
    let mttr_max = trials.iter().map(|t| t.mttr_ms).fold(0.0f64, f64::max);
    let last = trials.last().unwrap();

    let dir = results_dir();
    let mut table = Table::new(
        "recover",
        &["phase", "ms", "keys/s", "ops_to_recover", "probes", "keys_recovered", "keys_lost"],
    );
    table.row(vec![
        "salvage".into(),
        format!("{salvage_ms:.3}"),
        format!("{salvage_keys_per_s:.0}"),
        "-".into(),
        "-".into(),
        salvage_n.to_string(),
        "0".into(),
    ]);
    table.row(vec![
        "mttr".into(),
        format!("{mttr_med:.3}"),
        "-".into(),
        last.ops_to_recover.to_string(),
        last.probes.to_string(),
        last.keys_recovered.to_string(),
        last.keys_lost.to_string(),
    ]);
    table.print();
    match table.write_csv(&dir) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }

    let json = format!(
        "{{\n  \"bench\": \"recover\",\n  \"scale\": \"{scale:?}\",\n  \"k\": {k},\n  \
         \"salvage_keys\": {salvage_n},\n  \"salvage_ms\": {salvage_ms:.3},\n  \
         \"salvage_keys_per_s\": {salvage_keys_per_s:.1},\n  \
         \"mttr_ms_median\": {mttr_med:.3},\n  \"mttr_ms_max\": {mttr_max:.3},\n  \
         \"ops_to_recover\": {},\n  \"probes\": {},\n  \"keys_recovered\": {},\n  \
         \"keys_lost\": {},\n  \"trials\": {TRIALS}\n}}\n",
        last.ops_to_recover, last.probes, last.keys_recovered, last.keys_lost
    );
    fs::write("BENCH_recover.json", &json).expect("write BENCH_recover.json");
    eprintln!("wrote BENCH_recover.json");
}
