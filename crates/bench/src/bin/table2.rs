//! Regenerates **Table 2** of the paper: synthetic insert/delete
//! (3 sizes × 3 key distributions × all queues), heap-utilization rows,
//! 0-1 knapsack rows, and A* rows — with the paper's speedup columns
//! (B/T, B/S, B/C, B/L, B/P).
//!
//! Usage: `table2 [insdel|util|knapsack|astar|all] [--scale small|medium|full] [--threads N]`
//!
//! BGPQ and P-Sync run on the virtual-time GPU simulator (simulated ms,
//! TITAN-X-calibrated cost model); CPU baselines run on real threads in
//! wall-clock ms. Absolute values are not comparable to the paper's
//! testbed — EXPERIMENTS.md records whether the *shapes* hold.

use apps::{solve_astar, solve_knapsack_budgeted, AstarNode, KsNode};
use bench::cpu::{build_queue, cpu_insdel, cpu_util, QueueKind};
use bench::report::{ms, results_dir, speedup, Table};
use bench::sim::{bgpq_sim_insdel, bgpq_sim_util, psync_sim_insdel};
use bench::Scale;
use gpu_sim::GpuConfig;
use workloads::{
    generate_keys, Correlation, Grid, GridSpec, KeyDist, KnapsackInstance, KnapsackSpec,
};

struct Args {
    what: String,
    scale: Scale,
    threads: usize,
    k: usize,
    gpu: GpuConfig,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut what = "all".to_string();
    let mut scale = Scale::Medium;
    let mut threads = 4usize;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::parse(&argv[i]).unwrap_or_else(|| {
                    eprintln!("unknown scale {:?}", argv[i]);
                    std::process::exit(2);
                });
            }
            "--threads" => {
                i += 1;
                threads = argv[i].parse().expect("--threads N");
            }
            w if !w.starts_with('-') => what = w.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // Paper config: 128 blocks × 512 threads, 1024-key nodes (§6.1).
    // Block count is scaled down with the workload so sim runs stay
    // tractable.
    let (blocks, k) = match scale {
        Scale::Small => (16, 256),
        Scale::Medium => (32, 1024),
        Scale::Full => (128, 1024),
    };
    Args { what, scale, threads, k, gpu: GpuConfig::new(blocks, 512) }
}

fn insdel(a: &Args) {
    let mut t = Table::new(
        "table2_insdel",
        &[
            "dist", "keys", "TBB", "Spray", "CBPQ", "LJSL", "Fine", "Shard", "P-Sync", "BGPQ",
            "B/T", "B/S", "B/C", "B/L", "B/P",
        ],
    );
    for n in a.scale.insdel_sizes() {
        for dist in KeyDist::ALL {
            eprintln!("[insdel] {} keys, {} ...", n, dist.label());
            let keys = generate_keys(n, dist, 0xB67D ^ n as u64);
            let cell = |kind: QueueKind| {
                let q = build_queue::<u32, ()>(kind, n, a.k, a.threads);
                let (i, d) = cpu_insdel(q.as_ref(), &keys, a.threads, a.k);
                i + d
            };
            let tbb = cell(QueueKind::Tbb);
            let spray = cell(QueueKind::Spray);
            let cbpq = cell(QueueKind::Cbpq);
            let ljsl = cell(QueueKind::Ljsl);
            let fine = cell(QueueKind::FineHeap);
            let shard = cell(QueueKind::BgpqShard);
            let psync = psync_sim_insdel(a.gpu, a.k, &keys).total_ms;
            let bgpq = bgpq_sim_insdel(a.gpu, a.k, &keys).total_ms;
            t.row(vec![
                dist.label().into(),
                format!("{}", n),
                ms(tbb),
                ms(spray),
                ms(cbpq),
                ms(ljsl),
                ms(fine),
                ms(shard),
                ms(psync),
                ms(bgpq),
                speedup(tbb, bgpq),
                speedup(spray, bgpq),
                speedup(cbpq, bgpq),
                speedup(ljsl, bgpq),
                speedup(psync, bgpq),
            ]);
        }
    }
    t.print();
    let p = t.write_csv(&results_dir()).expect("csv");
    eprintln!("wrote {}", p.display());
}

fn util(a: &Args) {
    let mut t = Table::new(
        "table2_util",
        &["init", "pairs", "TBB", "Spray", "LJSL", "Fine", "BGPQ", "B/T", "B/S", "B/L"],
    );
    let (inits, pairs_n) = a.scale.util_params();
    let pair_keys = generate_keys(pairs_n, KeyDist::Random, 0x7A1);
    for init_n in inits {
        eprintln!("[util] init {} ...", init_n);
        let init = generate_keys(init_n, KeyDist::Random, 0x9C3);
        // CBPQ and P-Sync are N/A in the paper's util rows (footnotes
        // 5/6); we match that.
        let cell = |kind: QueueKind| {
            let q = build_queue::<u32, ()>(kind, init_n + pairs_n, a.k, a.threads);
            cpu_util(q.as_ref(), &init, &pair_keys, a.threads, a.k)
        };
        let tbb = cell(QueueKind::Tbb);
        let spray = cell(QueueKind::Spray);
        let ljsl = cell(QueueKind::Ljsl);
        let fine = cell(QueueKind::FineHeap);
        let bgpq = bgpq_sim_util(a.gpu, a.k, &init, &pair_keys);
        t.row(vec![
            format!("{init_n}"),
            format!("{pairs_n}"),
            ms(tbb),
            ms(spray),
            ms(ljsl),
            ms(fine),
            ms(bgpq),
            speedup(tbb, bgpq),
            speedup(spray, bgpq),
            speedup(ljsl, bgpq),
        ]);
    }
    t.print();
    let p = t.write_csv(&results_dir()).expect("csv");
    eprintln!("wrote {}", p.display());
}

fn knapsack(a: &Args) {
    let mut t = Table::new(
        "table2_knapsack",
        &[
            "items", "budget", "TBB", "Spray", "LJSL", "Fine", "BGPQ-cpu", "BGPQ", "B/T", "B/S",
            "B/L",
        ],
    );
    let (items_list, budget) = a.scale.knapsack_params();
    for items in items_list {
        eprintln!("[knapsack] {} items ...", items);
        let inst =
            KnapsackInstance::generate(KnapsackSpec::new(items, Correlation::Weak, items as u64));
        let run = |kind: QueueKind| {
            let q = build_queue::<u64, KsNode>(kind, 1 << 22, a.k.min(512), a.threads);
            let t0 = std::time::Instant::now();
            let r = solve_knapsack_budgeted(&inst, q.as_ref(), a.threads, Some(budget));
            (t0.elapsed().as_secs_f64() * 1e3, r.best_profit)
        };
        let (tbb, p1) = run(QueueKind::Tbb);
        let (spray, _) = run(QueueKind::Spray);
        let (ljsl, _) = run(QueueKind::Ljsl);
        let (fine, _) = run(QueueKind::FineHeap);
        let (bgpq_cpu, p2) = run(QueueKind::BgpqCpu);
        // BGPQ on the simulated GPU — the paper's actual configuration.
        let gpu = bench::sim_apps::knapsack_sim(a.gpu, a.k.min(512), &inst, Some(budget));
        // Strict queues under the same budget should agree closely.
        if p1 != p2 {
            eprintln!("  note: incumbents differ under budget (TBB {p1} vs BGPQ {p2})");
        }
        t.row(vec![
            format!("{items}"),
            format!("{budget}"),
            ms(tbb),
            ms(spray),
            ms(ljsl),
            ms(fine),
            ms(bgpq_cpu),
            ms(gpu.sim_ms),
            speedup(tbb, gpu.sim_ms),
            speedup(spray, gpu.sim_ms),
            speedup(ljsl, gpu.sim_ms),
        ]);
    }
    t.print();
    let p = t.write_csv(&results_dir()).expect("csv");
    eprintln!("wrote {}", p.display());
}

fn astar(a: &Args) {
    let mut t = Table::new(
        "table2_astar",
        &["grid", "obst%", "TBB", "Spray", "LJSL", "Fine", "BGPQ-cpu", "BGPQ", "B/T", "B/S", "B/L"],
    );
    let (sides, rates) = a.scale.astar_params();
    for side in sides {
        for &rate in &rates {
            eprintln!("[astar] {side}x{side}, {:.0}% obstacles ...", rate * 100.0);
            let grid = Grid::generate(GridSpec::new(side, rate, side as u64));
            let run = |kind: QueueKind| {
                let q = build_queue::<u64, AstarNode>(kind, grid.cells(), a.k.min(512), a.threads);
                let t0 = std::time::Instant::now();
                let r = solve_astar(&grid, q.as_ref(), a.threads);
                assert!(r.cost.is_some(), "generated grids always have a path");
                (t0.elapsed().as_secs_f64() * 1e3, r.cost.unwrap())
            };
            let (tbb, c1) = run(QueueKind::Tbb);
            let (spray, c2) = run(QueueKind::Spray);
            let (ljsl, _) = run(QueueKind::Ljsl);
            let (fine, _) = run(QueueKind::FineHeap);
            let (bgpq_cpu, c3) = run(QueueKind::BgpqCpu);
            // BGPQ on the simulated GPU — the paper's configuration.
            let gpu = bench::sim_apps::astar_sim(a.gpu, a.k.min(512), &grid);
            assert_eq!(c1, c3, "optimal costs must agree");
            assert_eq!(c1, c2, "relaxed queue must still find the optimum");
            assert_eq!(c1, gpu.answer, "simulated-GPU A* must find the optimum");
            t.row(vec![
                format!("{side}x{side}"),
                format!("{:.0}", rate * 100.0),
                ms(tbb),
                ms(spray),
                ms(ljsl),
                ms(fine),
                ms(bgpq_cpu),
                ms(gpu.sim_ms),
                speedup(tbb, gpu.sim_ms),
                speedup(spray, gpu.sim_ms),
                speedup(ljsl, gpu.sim_ms),
            ]);
        }
    }
    t.print();
    let p = t.write_csv(&results_dir()).expect("csv");
    eprintln!("wrote {}", p.display());
}

fn main() {
    let a = parse_args();
    eprintln!(
        "table2: {} (scale {:?}, {} CPU threads, {} blocks x {} threads, k={})",
        a.what, a.scale, a.threads, a.gpu.num_blocks, a.gpu.block_dim, a.k
    );
    match a.what.as_str() {
        "insdel" => insdel(&a),
        "util" => util(&a),
        "knapsack" => knapsack(&a),
        "astar" => astar(&a),
        "all" => {
            insdel(&a);
            util(&a);
            knapsack(&a);
            astar(&a);
        }
        other => {
            eprintln!("unknown experiment {other}; use insdel|util|knapsack|astar|all");
            std::process::exit(2);
        }
    }
}
