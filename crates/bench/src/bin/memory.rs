//! Memory-footprint experiment (E8): the paper's §2.1 argument for
//! heaps over skiplists on GPUs — "With p = 50%, skip-list may use as
//! much as twice memory as a heap. GPU memory … is scarce" — and
//! Table 1's memory-efficiency criterion ("k + O(1) memory, where k is
//! the number of keys").
//!
//! Usage: `memory [--scale small|medium|full]`
//!
//! Loads the same key set into BGPQ and into the skiplist and reports
//! resident bytes per key. The skiplist is also measured after a
//! delete-heavy phase to show logical-deletion garbage (arena nodes
//! that batched cleanup has unlinked but not freed).

use bench::report::{results_dir, Table};
use bench::Scale;
use bgpq::{BgpqOptions, CpuBgpq};
use pq_api::{BatchPriorityQueue, Entry, PriorityQueue};
use skiplist_pq::LindenJonssonPq;
use workloads::{generate_keys, KeyDist};

fn parse() -> Scale {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Medium;
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--scale" {
            i += 1;
            scale = Scale::parse(&argv[i]).expect("--scale small|medium|full");
        }
        i += 1;
    }
    scale
}

fn main() {
    let scale = parse();
    let n = scale.fig6_keys();
    let keys = generate_keys(n, KeyDist::Random, 0x3E3);
    let entry_bytes = std::mem::size_of::<Entry<u32, ()>>();
    eprintln!("memory experiment: {n} keys of {entry_bytes} payload bytes each");

    let mut t = Table::new(
        "memory_footprint",
        &["structure", "phase", "keys", "resident_bytes", "bytes/key", "overhead_vs_payload"],
    );

    // BGPQ sized for exactly this workload (k = 1024, as evaluated).
    let q: CpuBgpq<u32, ()> = CpuBgpq::new(BgpqOptions::with_capacity_for(1024, n));
    let mut items = Vec::with_capacity(1024);
    for chunk in keys.chunks(1024) {
        items.clear();
        items.extend(chunk.iter().map(|&k| Entry::new(k, ())));
        q.insert_batch(&items);
    }
    let b = q.inner().memory_bytes();
    t.row(vec![
        "BGPQ (k=1024)".into(),
        "loaded".into(),
        format!("{n}"),
        format!("{b}"),
        format!("{:.2}", b as f64 / n as f64),
        format!("{:.2}x", b as f64 / (n * entry_bytes) as f64),
    ]);

    // Skiplist, same keys.
    let sl = LindenJonssonPq::<u32, ()>::new(32);
    for &k in &keys {
        sl.insert(k, ());
    }
    let b = sl.list().memory_bytes();
    t.row(vec![
        "LJSL skiplist".into(),
        "loaded".into(),
        format!("{n}"),
        format!("{b}"),
        format!("{:.2}", b as f64 / n as f64),
        format!("{:.2}x", b as f64 / (n * entry_bytes) as f64),
    ]);

    // Delete-heavy phase: logical deletion leaves arena garbage.
    for _ in 0..n / 2 {
        sl.delete_min();
    }
    let b = sl.list().memory_bytes();
    let live = sl.len();
    t.row(vec![
        "LJSL skiplist".into(),
        "after 50% deletes".into(),
        format!("{live}"),
        format!("{b}"),
        format!("{:.2}", b as f64 / live as f64),
        format!("{:.2}x", b as f64 / (live * entry_bytes) as f64),
    ]);

    t.print();
    let p = t.write_csv(&results_dir()).expect("csv");
    eprintln!("wrote {}", p.display());
}
