//! Steady-state hot-path microbench: single-thread insert / delete-min
//! / mixed batch throughput on `CpuPlatform`, at one node capacity `k`.
//!
//! This is the perf trajectory for the zero-allocation + branchless
//! node-primitive work: every phase runs against a preloaded queue so
//! the numbers reflect the steady state (root cache warm, partial
//! buffer active, heapifies at working depth), not cold-start behavior.
//!
//! * `insert`  — `m` full-batch inserts into a queue preloaded with
//!   `n` keys (exercises root merge + overflow `SORT_SPLIT` + full
//!   insert-heapify).
//! * `delete`  — `m` `delete_min(k)` batches from a queue preloaded
//!   with `n + m*k` keys (root-cache extraction + delete-heapify).
//! * `mixed`   — `m` insert+delete pairs at constant occupancy `n`
//!   (the acceptance workload: both hot paths alternating).
//!
//! Each phase is repeated and the median trial is reported. Results
//! land in `bench_results/hotpath.csv` and `BENCH_hotpath.json`; when
//! `bench_results/hotpath_baseline.csv` exists (captured with
//! `--baseline` on a pre-change build), the JSON carries before/after
//! and the speedup per phase.
//!
//! Usage: `hotpath [--scale small|medium|full] [--k K] [--baseline]`

use bench::report::{results_dir, Table};
use bench::Scale;
use bgpq::{Bgpq, BgpqOptions};
use bgpq_runtime::{CpuPlatform, CpuWorker};
use pq_api::Entry;
use std::fs;
use std::io::Write as _;
use std::time::Instant;
use workloads::{generate_keys, KeyDist};

const TRIALS: usize = 5;

struct Args {
    scale: Scale,
    k: usize,
    baseline: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Medium;
    let mut k = 1024usize;
    let mut baseline = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = argv.get(i).and_then(|s| Scale::parse(s)).unwrap_or_else(|| {
                    eprintln!("--scale needs small|medium|full");
                    std::process::exit(2);
                });
            }
            "--k" => {
                i += 1;
                k = argv.get(i).and_then(|s| s.parse().ok()).filter(|&k| k >= 2).unwrap_or_else(
                    || {
                        eprintln!("--k needs an integer >= 2");
                        std::process::exit(2);
                    },
                );
            }
            "--baseline" => baseline = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    Args { scale, k, baseline }
}

/// (preload keys, measured batches) per scale, scaled so a trial stays
/// in the hundreds of milliseconds at k = 1024.
fn sizes(scale: Scale, k: usize) -> (usize, usize) {
    let (preload_target, batches): (usize, usize) = match scale {
        Scale::Small => (1 << 14, 64),
        Scale::Medium => (1 << 18, 1024),
        Scale::Full => (1 << 20, 8192),
    };
    (preload_target.div_ceil(k).max(2) * k, batches)
}

#[derive(Clone, Copy)]
struct PhaseResult {
    ns_per_op: f64,
    ns_per_key: f64,
    ops_per_s: f64,
    keys_per_s: f64,
}

impl PhaseResult {
    fn from_elapsed(secs: f64, ops: usize, keys: usize) -> Self {
        Self {
            ns_per_op: secs * 1e9 / ops as f64,
            ns_per_key: secs * 1e9 / keys as f64,
            ops_per_s: ops as f64 / secs,
            keys_per_s: keys as f64 / secs,
        }
    }
}

fn build_queue(k: usize, capacity: usize) -> Bgpq<u32, u32, CpuPlatform> {
    let opts = BgpqOptions::with_capacity_for(k, capacity);
    let platform = CpuPlatform::new(opts.max_nodes + 1);
    Bgpq::with_platform(platform, opts)
}

fn preload(q: &Bgpq<u32, u32, CpuPlatform>, w: &mut CpuWorker, keys: &[u32], k: usize) {
    let mut batch: Vec<Entry<u32, u32>> = Vec::with_capacity(k);
    for chunk in keys.chunks(k) {
        batch.clear();
        batch.extend(chunk.iter().map(|&key| Entry::new(key, key)));
        q.insert(w, &batch);
    }
}

/// Median-of-trials runner: `run` executes one full timed trial and
/// returns (elapsed seconds, batch ops, keys moved).
fn median_trial(mut run: impl FnMut() -> (f64, usize, usize)) -> PhaseResult {
    let mut trials: Vec<(f64, usize, usize)> = (0..TRIALS).map(|_| run()).collect();
    trials.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let (secs, ops, keys) = trials[TRIALS / 2];
    PhaseResult::from_elapsed(secs, ops, keys)
}

fn phase_insert(k: usize, n: usize, m: usize) -> PhaseResult {
    let init = generate_keys(n, KeyDist::Random, 21);
    let grow = generate_keys(m * k, KeyDist::Random, 22);
    median_trial(|| {
        let q = build_queue(k, n + (m + 9) * k);
        let mut w = CpuWorker::default();
        preload(&q, &mut w, &init, k);
        let mut batch: Vec<Entry<u32, u32>> = Vec::with_capacity(k);
        // Warmup outside the timed window (scratch sizing, page touch).
        for chunk in grow[..(8 * k).min(grow.len())].chunks(k) {
            batch.clear();
            batch.extend(chunk.iter().map(|&key| Entry::new(key, key)));
            q.insert(&mut w, &batch);
        }
        let t0 = Instant::now();
        for chunk in grow.chunks(k) {
            batch.clear();
            batch.extend(chunk.iter().map(|&key| Entry::new(key, key)));
            q.insert(&mut w, &batch);
        }
        (t0.elapsed().as_secs_f64(), m, m * k)
    })
}

fn phase_delete(k: usize, n: usize, m: usize) -> PhaseResult {
    let init = generate_keys(n + m * k, KeyDist::Random, 23);
    median_trial(|| {
        let q = build_queue(k, init.len() + k);
        let mut w = CpuWorker::default();
        preload(&q, &mut w, &init, k);
        let mut out: Vec<Entry<u32, u32>> = Vec::with_capacity((m + 8) * k);
        for _ in 0..8 {
            q.delete_min(&mut w, &mut out, k);
        }
        out.clear();
        let t0 = Instant::now();
        for _ in 0..m {
            q.delete_min(&mut w, &mut out, k);
        }
        let secs = t0.elapsed().as_secs_f64();
        let keys = out.len();
        (secs, m, keys)
    })
}

fn phase_mixed(k: usize, n: usize, m: usize) -> PhaseResult {
    let init = generate_keys(n, KeyDist::Random, 24);
    let flow = generate_keys(m * k, KeyDist::Random, 25);
    median_trial(|| {
        let q = build_queue(k, n + 2 * k);
        let mut w = CpuWorker::default();
        preload(&q, &mut w, &init, k);
        let mut batch: Vec<Entry<u32, u32>> = Vec::with_capacity(k);
        let mut out: Vec<Entry<u32, u32>> = Vec::with_capacity(k);
        let mut pairs = 0usize;
        let mut keys = 0usize;
        for chunk in flow[..(8 * k).min(flow.len())].chunks(k) {
            batch.clear();
            batch.extend(chunk.iter().map(|&key| Entry::new(key, key)));
            q.insert(&mut w, &batch);
            out.clear();
            q.delete_min(&mut w, &mut out, k);
        }
        let t0 = Instant::now();
        for chunk in flow.chunks(k) {
            batch.clear();
            batch.extend(chunk.iter().map(|&key| Entry::new(key, key)));
            q.insert(&mut w, &batch);
            out.clear();
            keys += chunk.len() + q.delete_min(&mut w, &mut out, k);
            pairs += 1;
        }
        // 2 queue ops per pair.
        (t0.elapsed().as_secs_f64(), 2 * pairs, keys)
    })
}

const PHASES: [&str; 3] = ["insert", "delete", "mixed"];

fn baseline_path() -> std::path::PathBuf {
    results_dir().join("hotpath_baseline.csv")
}

/// Parse `phase,ns_per_op,ns_per_key,ops_per_s,keys_per_s` rows. The
/// first line tags the configuration the baseline was captured at; a
/// baseline from a different scale/k is not comparable and is ignored.
fn read_baseline(scale: Scale, k: usize) -> Option<Vec<(String, PhaseResult)>> {
    let text = fs::read_to_string(baseline_path()).ok()?;
    let tag = format!("# scale={scale:?},k={k}");
    if text.lines().next() != Some(tag.as_str()) {
        eprintln!("note: ignoring baseline captured at a different scale/k");
        return None;
    }
    let mut rows = Vec::new();
    for line in text.lines().skip(2) {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 5 {
            continue;
        }
        let num = |i: usize| f[i].parse::<f64>().ok();
        rows.push((
            f[0].to_string(),
            PhaseResult {
                ns_per_op: num(1)?,
                ns_per_key: num(2)?,
                ops_per_s: num(3)?,
                keys_per_s: num(4)?,
            },
        ));
    }
    Some(rows)
}

fn json_phase(out: &mut String, name: &str, r: &PhaseResult) {
    out.push_str(&format!(
        "    \"{name}\": {{\"ns_per_op\": {:.1}, \"ns_per_key\": {:.3}, \
         \"ops_per_s\": {:.1}, \"keys_per_s\": {:.1}}}",
        r.ns_per_op, r.ns_per_key, r.ops_per_s, r.keys_per_s
    ));
}

fn main() {
    let args = parse_args();
    let (n, m) = sizes(args.scale, args.k);
    eprintln!(
        "hotpath: scale {:?}, k = {}, preload = {} keys, {} measured batches, {} trials",
        args.scale, args.k, n, m, TRIALS
    );

    let results: Vec<(&str, PhaseResult)> = vec![
        ("insert", phase_insert(args.k, n, m)),
        ("delete", phase_delete(args.k, n, m)),
        ("mixed", phase_mixed(args.k, n, m)),
    ];

    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create bench_results");

    if args.baseline {
        let mut f = fs::File::create(baseline_path()).expect("write baseline");
        writeln!(f, "# scale={:?},k={}", args.scale, args.k).unwrap();
        writeln!(f, "phase,ns_per_op,ns_per_key,ops_per_s,keys_per_s").unwrap();
        for (name, r) in &results {
            writeln!(
                f,
                "{name},{:.1},{:.3},{:.1},{:.1}",
                r.ns_per_op, r.ns_per_key, r.ops_per_s, r.keys_per_s
            )
            .unwrap();
        }
        eprintln!("baseline written to {}", baseline_path().display());
    }

    let base = read_baseline(args.scale, args.k);
    let mut t = Table::new("hotpath", &["phase", "ns/op", "ns/key", "ops/s", "keys/s", "speedup"]);
    for (name, r) in &results {
        let speedup = base
            .as_ref()
            .and_then(|b| b.iter().find(|(p, _)| p == name))
            .map(|(_, b)| format!("{:.2}", b.ns_per_op / r.ns_per_op))
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            name.to_string(),
            format!("{:.1}", r.ns_per_op),
            format!("{:.3}", r.ns_per_key),
            format!("{:.1}", r.ops_per_s),
            format!("{:.1}", r.keys_per_s),
            speedup,
        ]);
    }
    t.print();
    t.write_csv(&dir).expect("write csv");

    // BENCH_hotpath.json: machine-readable before/after for the perf
    // trajectory across PRs.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"hotpath\",\n  \"scale\": \"{:?}\",\n  \"k\": {},\n  \
         \"preload_keys\": {},\n  \"measured_batches\": {},\n",
        args.scale, args.k, n, m
    ));
    json.push_str("  \"after\": {\n");
    for (i, (name, r)) in results.iter().enumerate() {
        json_phase(&mut json, name, r);
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }");
    if let Some(b) = &base {
        json.push_str(",\n  \"before\": {\n");
        let rows: Vec<&(String, PhaseResult)> =
            PHASES.iter().filter_map(|p| b.iter().find(|(n2, _)| n2 == p)).collect();
        for (i, (name, r)) in rows.iter().enumerate() {
            json_phase(&mut json, name, r);
            json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        json.push_str("  },\n  \"speedup\": {\n");
        for (i, (name, r)) in results.iter().enumerate() {
            if let Some((_, before)) = b.iter().find(|(p, _)| p == name) {
                json.push_str(&format!(
                    "    \"{name}\": {:.3}{}",
                    before.ns_per_op / r.ns_per_op,
                    if i + 1 < results.len() { ",\n" } else { "\n" }
                ));
            }
        }
        json.push_str("  }");
    }
    json.push_str("\n}\n");
    fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    eprintln!("wrote bench_results/hotpath.csv and BENCH_hotpath.json");
}
