//! Per-kernel microbench: scalar vs SIMD node primitives.
//!
//! Times the three data-parallel kernels (`merge_into`, `bitonic_sort`,
//! `sort_split`) through the `primitives::simd` dispatch layer at both
//! dispatch modes, over a sweep of run lengths, and reports ns/key and
//! the scalar→SIMD speedup per (kernel, n) cell. This isolates the raw
//! kernel gain from the heap-level effects measured by `hotpath` (lock
//! overlap, pure-chunk bulk copies, prefetch).
//!
//! Inputs are fully interleaved random runs — the vector kernels' worst
//! case (no pure chunks to shortcut), so the table reports the floor of
//! the SIMD advantage, not cherry-picked stretches.
//!
//! Results land in `bench_results/kernels.csv` and `BENCH_kernels.json`.
//!
//! Usage: `kernels [--quick]` (`--quick` trims trials for CI smoke).

use bench::report::{results_dir, Table};
use primitives::simd::{self, DispatchMode};
use std::fs;
use std::hint::black_box;
use std::time::Instant;
use workloads::{generate_keys, KeyDist};

/// Run lengths to sweep; 1024 is the acceptance point (node capacity
/// used by the hotpath bench).
const SIZES: [usize; 6] = [64, 128, 256, 512, 1024, 4096];
const KERNELS: [&str; 3] = ["merge", "sort", "sort_split"];

fn sorted_run(n: usize, seed: u64) -> Vec<u32> {
    let mut v = generate_keys(n, KeyDist::Random, seed);
    v.sort_unstable();
    v
}

/// Median-of-trials ns/key for one (kernel, mode, n) cell. `keys` is
/// how many keys one call moves; `body` performs one call.
fn time_cell(trials: usize, n_keys_per_call: usize, mut body: impl FnMut()) -> f64 {
    // Size the inner loop so a trial spans a few milliseconds.
    let reps = (4_000_000 / n_keys_per_call).max(8);
    let mut samples: Vec<f64> = (0..trials)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..reps {
                body();
            }
            t0.elapsed().as_secs_f64() * 1e9 / (reps * n_keys_per_call) as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[trials / 2]
}

fn bench_merge(trials: usize, n: usize) -> f64 {
    let a = sorted_run(n, 31);
    let b = sorted_run(n, 32);
    let mut out = vec![0u32; 2 * n];
    time_cell(trials, 2 * n, || {
        simd::merge_into(black_box(&a), black_box(&b), black_box(&mut out));
    })
}

fn bench_sort(trials: usize, n: usize) -> f64 {
    let base = generate_keys(n, KeyDist::Random, 33);
    let mut buf = base.clone();
    time_cell(trials, n, || {
        buf.copy_from_slice(&base);
        simd::bitonic_sort(black_box(&mut buf));
    })
}

fn bench_sort_split(trials: usize, n: usize) -> f64 {
    let z0 = sorted_run(n, 34);
    let w0 = sorted_run(n, 35);
    let mut z = z0.clone();
    let mut w = w0.clone();
    let mut scratch = Vec::new();
    time_cell(trials, 2 * n, || {
        z.copy_from_slice(&z0);
        w.copy_from_slice(&w0);
        simd::sort_split(black_box(&mut z), n, black_box(&mut w), n, n, &mut scratch);
    })
}

fn bench_kernel(kernel: &str, trials: usize, n: usize) -> f64 {
    match kernel {
        "merge" => bench_merge(trials, n),
        "sort" => bench_sort(trials, n),
        "sort_split" => bench_sort_split(trials, n),
        _ => unreachable!(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trials = if quick { 3 } else { 7 };

    // Capture both modes regardless of the environment: pin scalar,
    // measure, then release the pin and measure whatever the host
    // dispatches to (scalar again if AVX2 is absent or the env forces
    // it — the JSON records which).
    simd::set_forced_scalar(true);
    assert_eq!(simd::dispatch_mode(), DispatchMode::Scalar);
    let mut scalar = Vec::new();
    for &kernel in &KERNELS {
        for &n in &SIZES {
            scalar.push((kernel, n, bench_kernel(kernel, trials, n)));
        }
    }
    simd::set_forced_scalar(false);
    let vector_mode = simd::dispatch_mode();
    let mut vector = Vec::new();
    for &kernel in &KERNELS {
        for &n in &SIZES {
            vector.push((kernel, n, bench_kernel(kernel, trials, n)));
        }
    }

    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create bench_results");
    let mut t = Table::new("kernels", &["kernel", "n", "scalar ns/key", "simd ns/key", "speedup"]);
    let mut json = String::from("{\n  \"bench\": \"kernels\",\n");
    json.push_str(&format!("  \"vector_mode\": \"{vector_mode:?}\",\n  \"cells\": [\n"));
    for (i, ((kernel, n, s_ns), (_, _, v_ns))) in scalar.iter().zip(vector.iter()).enumerate() {
        let speedup = s_ns / v_ns;
        t.row(vec![
            kernel.to_string(),
            n.to_string(),
            format!("{s_ns:.3}"),
            format!("{v_ns:.3}"),
            format!("{speedup:.2}"),
        ]);
        json.push_str(&format!(
            "    {{\"kernel\": \"{kernel}\", \"n\": {n}, \"scalar_ns_per_key\": {s_ns:.3}, \
             \"simd_ns_per_key\": {v_ns:.3}, \"speedup\": {speedup:.3}}}{}",
            if i + 1 < scalar.len() { ",\n" } else { "\n" }
        ));
    }
    json.push_str("  ],\n  \"speedup_at_1024\": {\n");
    for (i, &kernel) in KERNELS.iter().enumerate() {
        let cell = |rows: &[(&str, usize, f64)]| {
            rows.iter().find(|(k2, n, _)| *k2 == kernel && *n == 1024).map(|r| r.2).unwrap()
        };
        json.push_str(&format!(
            "    \"{kernel}\": {:.3}{}",
            cell(&scalar) / cell(&vector),
            if i + 1 < KERNELS.len() { ",\n" } else { "\n" }
        ));
    }
    json.push_str("  }\n}\n");

    t.print();
    t.write_csv(&dir).expect("write csv");
    fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    eprintln!(
        "wrote bench_results/kernels.csv and BENCH_kernels.json (vector mode {vector_mode:?})"
    );
}
