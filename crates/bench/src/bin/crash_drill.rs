//! Crash-drill harness: run the fault matrix (every injection point ×
//! panic/stall, CPU platform and simulator) outside the test runner and
//! report what each drill did to the queue — poisoned or survived, how
//! many lock timeouts and spin escalations the watchdog and the MARKED
//! wait loop absorbed, and whether the committed history stayed
//! linearizable.
//!
//! Usage: `crash_drill [--threads N] [--ops N] [--watchdog-ms N]`

use bench::report::{results_dir, Table};
use bgpq::{check_history, Bgpq, BgpqOptions, CpuBgpq, HistoryEvent, HistoryOp};
use bgpq_runtime::{CpuPlatform, FaultAction, FaultPlan, InjectionPoint, SimPlatform};
use gpu_sim::{launch, GpuConfig};
use pq_api::{Entry, QueueError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    threads: usize,
    ops: usize,
    watchdog_ms: u64,
}

fn parse() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args { threads: 4, ops: 400, watchdog_ms: 75 };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--threads" => {
                i += 1;
                args.threads = argv[i].parse().expect("--threads N");
            }
            "--ops" => {
                i += 1;
                args.ops = argv[i].parse().expect("--ops N");
            }
            "--watchdog-ms" => {
                i += 1;
                args.watchdog_ms = argv[i].parse().expect("--watchdog-ms N");
            }
            other => panic!("unknown argument {other}; usage: crash_drill [--threads N] [--ops N] [--watchdog-ms N]"),
        }
        i += 1;
    }
    args
}

/// Balance of committed keys: inserted − deleted, and whether the
/// truncated history linearizes.
fn audit(events: &[HistoryEvent<u32>]) -> (i64, &'static str) {
    let mut balance = 0i64;
    for e in events {
        match &e.op {
            HistoryOp::Insert { keys } => balance += keys.len() as i64,
            HistoryOp::DeleteMin { keys, .. } => balance -= keys.len() as i64,
        }
    }
    let verdict = if check_history(events).is_none() { "linearizable" } else { "VIOLATION" };
    (balance, verdict)
}

fn action_name(action: FaultAction) -> &'static str {
    match action {
        FaultAction::Panic => "panic",
        FaultAction::Stall { .. } => "stall",
        FaultAction::Delay { .. } => "delay",
    }
}

fn cpu_drill(args: &Args, point: InjectionPoint, nth: u64, action: FaultAction, t: &mut Table) {
    let opts = BgpqOptions { node_capacity: 4, max_nodes: 1 << 10, ..Default::default() };
    let plan = Arc::new(FaultPlan::new().with_rule(point, nth, action));
    let platform = CpuPlatform::new(opts.max_nodes + 1)
        .with_watchdog(Duration::from_millis(args.watchdog_ms))
        .with_faults(plan.clone());
    let q: CpuBgpq<u32, u32> = CpuBgpq::on_platform(platform, opts).with_history();

    std::thread::scope(|s| {
        for th in 0..args.threads as u32 {
            let q = &q;
            let ops = args.ops;
            s.spawn(move || {
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    let mut out = Vec::new();
                    for i in 0..ops as u32 {
                        let key = th * 1_000_000 + i;
                        let r = if i % 4 != 3 {
                            q.try_insert_batch(&[
                                Entry::new(key, th),
                                Entry::new(key + 500_000, th),
                            ])
                            .map(|()| 0)
                        } else {
                            out.clear();
                            q.try_delete_min_batch(&mut out, 4)
                        };
                        match r {
                            Ok(_) | Err(QueueError::Full { .. }) => {}
                            Err(QueueError::Poisoned) => break,
                            Err(QueueError::LockTimeout { .. }) | Err(QueueError::Unavailable) => {}
                        }
                    }
                }));
            });
        }
    });

    let events = q.inner().take_history();
    let (balance, verdict) = audit(&events);
    let snap = q.inner().stats().snapshot();
    let outcome = if q.inner().is_poisoned() { "poisoned" } else { "survived" };
    t.row(vec![
        "cpu".into(),
        format!("{point:?}"),
        action_name(action).into(),
        format!("{}", plan.fired_count()),
        outcome.into(),
        format!("{}", snap.lock_timeouts),
        format!("{}", snap.spin_escalations),
        format!("{}", events.len()),
        format!("{balance}"),
        verdict.into(),
    ]);
}

fn sim_drill(point: InjectionPoint, nth: u64, action: FaultAction, t: &mut Table) {
    type SimQueue = Arc<Bgpq<u32, u32, SimPlatform>>;
    let cfg = GpuConfig::new(6, 32).with_fuzz_seed(7);
    let opts = BgpqOptions { node_capacity: 2, max_nodes: 4096, ..Default::default() };
    let plan = Arc::new(FaultPlan::new().with_rule(point, nth, action));
    let stash: std::sync::Mutex<Option<SimQueue>> = std::sync::Mutex::new(None);

    let _ = catch_unwind(AssertUnwindSafe(|| {
        launch(
            cfg,
            |sched| {
                let p = SimPlatform::new(sched, opts.max_nodes + 1, cfg.cost, cfg.block_dim)
                    .with_faults(plan.clone());
                let q: SimQueue = Arc::new(Bgpq::with_platform(p, opts).with_history());
                *stash.lock().unwrap() = Some(q.clone());
                q
            },
            |ctx, q: &SimQueue| {
                let bid = ctx.block_id() as u32;
                let mut out = Vec::new();
                for i in 0..40u32 {
                    let key = bid * 1_000_000 + i;
                    if q.try_insert(
                        ctx.worker(),
                        &[Entry::new(key, bid), Entry::new(key + 500_000, bid)],
                    )
                    .is_err()
                    {
                        return;
                    }
                    if i % 2 == 1 {
                        out.clear();
                        if q.try_delete_min(ctx.worker(), &mut out, 2).is_err() {
                            return;
                        }
                    }
                }
            },
        );
    }));

    let q = stash.lock().unwrap().take().expect("setup ran");
    let events = q.take_history();
    let (balance, verdict) = audit(&events);
    let snap = q.stats().snapshot();
    let outcome = if q.is_poisoned() { "poisoned" } else { "survived" };
    t.row(vec![
        "sim".into(),
        format!("{point:?}"),
        action_name(action).into(),
        format!("{}", plan.fired_count()),
        outcome.into(),
        format!("{}", snap.lock_timeouts),
        format!("{}", snap.spin_escalations),
        format!("{}", events.len()),
        format!("{balance}"),
        verdict.into(),
    ]);
}

fn main() {
    let args = parse();
    let mut t = Table::new(
        "crash_drill",
        &[
            "platform",
            "point",
            "action",
            "fired",
            "outcome",
            "lock_timeouts",
            "spin_escalations",
            "committed_ops",
            "key_balance",
            "history",
        ],
    );

    let cpu_matrix = [
        (InjectionPoint::PreLockAcquire, 201),
        (InjectionPoint::PostLockAcquire, 201),
        (InjectionPoint::PreLockRelease, 200),
        (InjectionPoint::MidInsertHeapify, 5),
        (InjectionPoint::MidDeleteHeapify, 5),
        (InjectionPoint::MarkedSpin, 1),
    ];
    for (point, nth) in cpu_matrix {
        cpu_drill(&args, point, nth, FaultAction::Panic, &mut t);
        cpu_drill(
            &args,
            point,
            nth,
            FaultAction::Stall { units: 2 * 1000 * args.watchdog_ms },
            &mut t,
        );
    }

    let sim_matrix = [
        (InjectionPoint::PreLockAcquire, 40),
        (InjectionPoint::PostLockAcquire, 40),
        (InjectionPoint::PreLockRelease, 40),
        (InjectionPoint::MidInsertHeapify, 3),
        (InjectionPoint::MidDeleteHeapify, 3),
        (InjectionPoint::MarkedSpin, 1),
    ];
    for (point, nth) in sim_matrix {
        sim_drill(point, nth, FaultAction::Panic, &mut t);
        sim_drill(point, nth, FaultAction::Stall { units: 1_000_000 }, &mut t);
    }

    t.print();
    if let Ok(path) = t.write_csv(&results_dir()) {
        eprintln!("wrote {}", path.display());
    }
}
