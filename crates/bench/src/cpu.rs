//! CPU-baseline drivers: real threads, wall-clock timing.
//!
//! One builder produces any of the queue designs behind a
//! `Box<dyn BatchPriorityQueue>` so every experiment drives every queue
//! through identical code. Wall-clock numbers on this host measure
//! *throughput*, not scalability (the CI machine is single-core); the
//! paper-facing comparisons are assembled in EXPERIMENTS.md with that
//! caveat.

use baseline_heaps::{CoarseLockPq, FineHeapPq};
use bgpq::{BgpqOptions, CpuBgpq};
use bgpq_shard::{CpuShardedBgpq, ShardedOptions};
use cbpq::CbpqPq;
use pq_api::{BatchPriorityQueue, Entry, ItemwiseBatch, KeyType, ValueType};
use skiplist_pq::{LindenJonssonPq, LotanShavitPq, SprayListPq};
use std::time::Instant;

/// The queue designs of Table 2 (CPU side), plus BGPQ-on-CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Coarse-locked binary heap (TBB stand-in).
    Tbb,
    /// Fine-grained one-key-per-node heap (Rao-Kumar/Hunt family).
    FineHeap,
    /// Lindén-Jonsson skiplist.
    Ljsl,
    /// SprayList (relaxed).
    Spray,
    /// Chunk-based PQ.
    Cbpq,
    /// Lotan-Shavit/Sundell-Tsigas skiplist (eager physical deletes;
    /// Table 1's STSL design point, not part of Table 2).
    Stsl,
    /// BGPQ running on the CPU platform.
    BgpqCpu,
    /// Sharded BGPQ front (4 shards, c = 2 sampling) on the CPU
    /// platform — the relaxed scale-out design from `bgpq-shard`.
    BgpqShard,
}

impl QueueKind {
    pub const TABLE2: [QueueKind; 7] = [
        QueueKind::Tbb,
        QueueKind::Spray,
        QueueKind::Cbpq,
        QueueKind::Ljsl,
        QueueKind::FineHeap,
        QueueKind::BgpqCpu,
        QueueKind::BgpqShard,
    ];

    /// Queues the paper runs the application benchmarks on (CBPQ is
    /// N/A there: its 30-bit keys cannot hold app payload priorities,
    /// footnote 7).
    pub const APPS: [QueueKind; 5] = [
        QueueKind::Tbb,
        QueueKind::Spray,
        QueueKind::Ljsl,
        QueueKind::FineHeap,
        QueueKind::BgpqCpu,
    ];

    pub fn label(self) -> &'static str {
        match self {
            QueueKind::Tbb => "TBB",
            QueueKind::FineHeap => "FineHeap",
            QueueKind::Ljsl => "LJSL",
            QueueKind::Stsl => "STSL",
            QueueKind::Spray => "SprayList",
            QueueKind::Cbpq => "CBPQ",
            QueueKind::BgpqCpu => "BGPQ-cpu",
            QueueKind::BgpqShard => "BGPQ-shard",
        }
    }
}

/// Build a queue of `kind` as a batched trait object.
pub fn build_queue<K: KeyType, V: ValueType>(
    kind: QueueKind,
    capacity_hint: usize,
    batch: usize,
    threads_hint: usize,
) -> Box<dyn BatchPriorityQueue<K, V>> {
    match kind {
        QueueKind::Tbb => {
            Box::new(ItemwiseBatch::new(CoarseLockPq::with_capacity(capacity_hint), batch))
        }
        QueueKind::FineHeap => {
            Box::new(ItemwiseBatch::new(FineHeapPq::new(capacity_hint.max(1024)), batch))
        }
        QueueKind::Ljsl => Box::new(ItemwiseBatch::new(LindenJonssonPq::new(32), batch)),
        QueueKind::Stsl => Box::new(ItemwiseBatch::new(LotanShavitPq::new(), batch)),
        QueueKind::Spray => Box::new(ItemwiseBatch::new(SprayListPq::new(threads_hint, 64), batch)),
        QueueKind::Cbpq => Box::new(ItemwiseBatch::new(CbpqPq::new(928), batch)),
        QueueKind::BgpqCpu => Box::new(CpuBgpq::new(BgpqOptions::with_capacity_for(
            batch,
            capacity_hint.max(batch * 4),
        ))),
        QueueKind::BgpqShard => Box::new(CpuShardedBgpq::new(ShardedOptions::with_capacity_for(
            4,
            2,
            batch,
            capacity_hint.max(batch * 4),
        ))),
    }
}

/// Wall-clock insert-all-then-delete-all, `threads` workers.
/// Returns (insert_ms, delete_ms).
pub fn cpu_insdel(
    q: &dyn BatchPriorityQueue<u32, ()>,
    keys: &[u32],
    threads: usize,
    batch: usize,
) -> (f64, f64) {
    let chunk = keys.len().div_ceil(threads.max(1));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for part in keys.chunks(chunk.max(1)) {
            s.spawn(move || {
                let mut items: Vec<Entry<u32, ()>> = Vec::with_capacity(batch);
                for b in part.chunks(batch) {
                    items.clear();
                    items.extend(b.iter().map(|&k| Entry::new(k, ())));
                    q.insert_batch(&items);
                }
            });
        }
    });
    let insert_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(q.len(), keys.len(), "insert phase lost keys");

    let t1 = Instant::now();
    std::thread::scope(|s| {
        for part in keys.chunks(chunk.max(1)) {
            s.spawn(move || {
                let mut out: Vec<Entry<u32, ()>> = Vec::with_capacity(batch);
                let mut remaining = part.len();
                while remaining > 0 {
                    out.clear();
                    let want = remaining.min(batch);
                    let got = q.delete_min_batch(&mut out, want);
                    if got == 0 {
                        break;
                    }
                    remaining -= got;
                }
            });
        }
    });
    let delete_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert!(q.is_empty(), "delete phase must drain");
    (insert_ms, delete_ms)
}

/// Wall-clock utilization run: preload `init`, then `pair_keys` paired
/// insert/delete ops across `threads` workers. Returns milliseconds of
/// the measured (paired) phase.
pub fn cpu_util(
    q: &dyn BatchPriorityQueue<u32, ()>,
    init: &[u32],
    pair_keys: &[u32],
    threads: usize,
    batch: usize,
) -> f64 {
    let mut items: Vec<Entry<u32, ()>> = Vec::with_capacity(batch);
    for b in init.chunks(batch) {
        items.clear();
        items.extend(b.iter().map(|&k| Entry::new(k, ())));
        q.insert_batch(&items);
    }
    let chunk = pair_keys.len().div_ceil(threads.max(1));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for part in pair_keys.chunks(chunk.max(1)) {
            s.spawn(move || {
                let mut items: Vec<Entry<u32, ()>> = Vec::with_capacity(batch);
                let mut out: Vec<Entry<u32, ()>> = Vec::with_capacity(batch);
                for b in part.chunks(batch) {
                    items.clear();
                    items.extend(b.iter().map(|&k| Entry::new(k, ())));
                    q.insert_batch(&items);
                    out.clear();
                    q.delete_min_batch(&mut out, b.len());
                }
            });
        }
    });
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(q.len(), init.len(), "pairs must preserve utilization");
    ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{generate_keys, KeyDist};

    #[test]
    fn every_kind_builds_and_round_trips() {
        for kind in QueueKind::TABLE2 {
            let q = build_queue::<u32, ()>(kind, 1 << 12, 64, 4);
            let keys = generate_keys(2048, KeyDist::Random, 1);
            let (ins, del) = cpu_insdel(q.as_ref(), &keys, 4, 64);
            assert!(ins >= 0.0 && del >= 0.0, "{kind:?}");
        }
    }

    #[test]
    fn util_preserves_len_for_strict_queues() {
        for kind in [QueueKind::Tbb, QueueKind::BgpqCpu, QueueKind::Ljsl, QueueKind::Cbpq] {
            let q = build_queue::<u32, ()>(kind, 1 << 12, 32, 2);
            let init = generate_keys(512, KeyDist::Random, 2);
            let pairs = generate_keys(1024, KeyDist::Random, 3);
            let ms = cpu_util(q.as_ref(), &init, &pairs, 2, 32);
            assert!(ms >= 0.0, "{kind:?}");
        }
    }
}
