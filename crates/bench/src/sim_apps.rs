//! The paper's applications running *inside simulated GPU kernels* —
//! §6.5's actual setup: "A thread block in BGPQ always retrieves a full
//! node from the priority queue for load balancing purposes."
//!
//! Each thread block loops: pop a batch of search nodes, process them
//! data-parallel (one thread per node; the per-node work is charged to
//! the virtual clock), push surviving children as batches. Termination
//! uses the same outstanding-work counter as the CPU drivers, with
//! virtual-time backoff while the queue is momentarily empty.
//!
//! The search itself is performed for real — results are validated
//! against the sequential references by the integration tests.

use apps::knapsack::bound_to_key;
use apps::{AstarNode, KsNode};
use bgpq::{Bgpq, BgpqOptions};
use bgpq_runtime::SimPlatform;
use gpu_sim::{launch, BlockCtx, GpuConfig};
use pq_api::Entry;
use primitives::PrimitiveCost;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use workloads::{Grid, KnapsackInstance};

/// Result of a simulated-GPU application run.
#[derive(Debug, Clone, Copy)]
pub struct SimAppResult {
    /// Simulated milliseconds at the device clock.
    pub sim_ms: f64,
    /// Application answer (best profit / path cost).
    pub answer: u64,
    /// Search nodes processed.
    pub expanded: u64,
}

/// Branch-and-bound 0/1 knapsack on BGPQ inside a simulated kernel.
pub fn knapsack_sim(
    gpu: GpuConfig,
    k: usize,
    inst: &KnapsackInstance,
    budget: Option<u64>,
) -> SimAppResult {
    type Q = Bgpq<u64, KsNode, SimPlatform>;
    let opts = BgpqOptions::with_capacity_for(
        k,
        budget.map(|b| 4 * b as usize).unwrap_or(1 << 22).max(16 * k),
    );
    let incumbent = AtomicU64::new(0);
    let outstanding = AtomicI64::new(1);
    let expanded = AtomicU64::new(0);
    // Per-node bound evaluation: the Dantzig loop scans density-sorted
    // items; one thread evaluates one node, so a block pays
    // ceil(batch/block_dim) rounds of roughly items/2 steps.
    let node_ops = (inst.items() as u64) / 2 + 24;

    let (report, q) = launch(
        gpu,
        |sched| {
            let p = SimPlatform::new(sched, opts.max_nodes + 1, gpu.cost, gpu.block_dim);
            let q: Q = Bgpq::with_platform(p, opts);
            q
        },
        |ctx: &mut BlockCtx, q: &Q| {
            // Block 0 seeds the root node.
            if ctx.block_id() == 0 {
                let root_bound = inst.upper_bound(0, 0, 0);
                q.insert(ctx.worker(), &[Entry::new(bound_to_key(root_bound), KsNode::default())]);
            }
            let mut out: Vec<Entry<u64, KsNode>> = Vec::with_capacity(k);
            let mut children: Vec<Entry<u64, KsNode>> = Vec::with_capacity(2 * k);
            loop {
                if let Some(b) = budget {
                    if expanded.load(Ordering::Relaxed) >= b {
                        return;
                    }
                }
                out.clear();
                let got = q.delete_min(ctx.worker(), &mut out, k);
                if got == 0 {
                    if outstanding.load(Ordering::Acquire) <= 0 {
                        return;
                    }
                    ctx.advance(ctx.cost_model().c_spin);
                    continue;
                }
                // Data-parallel node evaluation.
                ctx.charge(PrimitiveCost::Compute {
                    ops: (got as u64).div_ceil(u64::from(ctx.block_dim())) * node_ops,
                });
                children.clear();
                let mut best = incumbent.load(Ordering::Relaxed);
                for e in &out {
                    let node = e.value;
                    let bound = u64::MAX - e.key;
                    if bound <= best || (node.level as usize) >= inst.items() {
                        continue;
                    }
                    let i = node.level as usize;
                    let (p, w) = (inst.profits[i], inst.weights[i]);
                    if node.weight + w <= inst.capacity {
                        let taken = KsNode {
                            level: node.level + 1,
                            profit: node.profit + p,
                            weight: node.weight + w,
                        };
                        best = best.max(taken.profit);
                        let b = inst.upper_bound(i + 1, taken.profit, taken.weight);
                        if b > best {
                            children.push(Entry::new(bound_to_key(b), taken));
                        }
                    }
                    let skipped =
                        KsNode { level: node.level + 1, profit: node.profit, weight: node.weight };
                    let b = inst.upper_bound(i + 1, skipped.profit, skipped.weight);
                    if b > best {
                        children.push(Entry::new(bound_to_key(b), skipped));
                    }
                }
                incumbent.fetch_max(best, Ordering::AcqRel);
                ctx.charge(PrimitiveCost::Atomic);
                expanded.fetch_add(got as u64, Ordering::Relaxed);
                if !children.is_empty() {
                    outstanding.fetch_add(children.len() as i64, Ordering::AcqRel);
                    for chunk in children.chunks(k) {
                        q.insert(ctx.worker(), chunk);
                    }
                }
                outstanding.fetch_sub(got as i64, Ordering::AcqRel);
            }
        },
    );
    let _ = q;
    SimAppResult {
        sim_ms: gpu.cost.cycles_to_ms(report.makespan_cycles),
        answer: incumbent.load(Ordering::Acquire),
        expanded: expanded.load(Ordering::Relaxed),
    }
}

/// A* route planning on BGPQ inside a simulated kernel.
pub fn astar_sim(gpu: GpuConfig, k: usize, grid: &Grid) -> SimAppResult {
    type Q = Bgpq<u64, AstarNode, SimPlatform>;
    let opts = BgpqOptions::with_capacity_for(k, grid.cells() * 2 + 16 * k);
    let best_g: Vec<AtomicU64> = (0..grid.cells()).map(|_| AtomicU64::new(u64::MAX)).collect();
    let incumbent = AtomicU64::new(u64::MAX);
    let outstanding = AtomicI64::new(1);
    let expanded = AtomicU64::new(0);
    let (sx, sy) = grid.start();
    best_g[grid.idx(sx, sy)].store(0, Ordering::Release);
    let goal = grid.goal();
    // Per-node work: 8 neighbour probes + heuristic arithmetic.
    let node_ops = 64u64;

    let (report, q) = launch(
        gpu,
        |sched| {
            let p = SimPlatform::new(sched, opts.max_nodes + 1, gpu.cost, gpu.block_dim);
            let q: Q = Bgpq::with_platform(p, opts);
            q
        },
        |ctx: &mut BlockCtx, q: &Q| {
            if ctx.block_id() == 0 {
                let h0 = grid.manhattan_to_goal(sx, sy);
                q.insert(
                    ctx.worker(),
                    &[Entry::new(h0, AstarNode { x: sx as u32, y: sy as u32, g: 0 })],
                );
            }
            let mut out: Vec<Entry<u64, AstarNode>> = Vec::with_capacity(k);
            let mut children: Vec<Entry<u64, AstarNode>> = Vec::with_capacity(8 * k);
            loop {
                out.clear();
                let got = q.delete_min(ctx.worker(), &mut out, k);
                if got == 0 {
                    if outstanding.load(Ordering::Acquire) <= 0 {
                        return;
                    }
                    ctx.advance(ctx.cost_model().c_spin);
                    continue;
                }
                ctx.charge(PrimitiveCost::Compute {
                    ops: (got as u64).div_ceil(u64::from(ctx.block_dim())) * node_ops,
                });
                children.clear();
                for e in &out {
                    let node = e.value;
                    let (x, y) = (node.x as usize, node.y as usize);
                    if node.g > best_g[grid.idx(x, y)].load(Ordering::Acquire) {
                        continue;
                    }
                    let f = node.g + grid.manhattan_to_goal(x, y);
                    if f >= incumbent.load(Ordering::Acquire) {
                        continue;
                    }
                    if (x, y) == goal {
                        incumbent.fetch_min(node.g, Ordering::AcqRel);
                        continue;
                    }
                    for (nx, ny) in grid.neighbors(x, y) {
                        let step = if nx != x && ny != y {
                            apps::astar::DIAGONAL_COST
                        } else {
                            apps::astar::STRAIGHT_COST
                        };
                        let ng = node.g + step;
                        let ncell = grid.idx(nx, ny);
                        let mut cur = best_g[ncell].load(Ordering::Acquire);
                        loop {
                            if ng >= cur {
                                break;
                            }
                            match best_g[ncell].compare_exchange_weak(
                                cur,
                                ng,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            ) {
                                Ok(_) => {
                                    let nf = ng + grid.manhattan_to_goal(nx, ny);
                                    if nf < incumbent.load(Ordering::Acquire) {
                                        children.push(Entry::new(
                                            nf,
                                            AstarNode { x: nx as u32, y: ny as u32, g: ng },
                                        ));
                                    }
                                    break;
                                }
                                Err(now) => cur = now,
                            }
                        }
                    }
                }
                // Relaxations are global atomics issued warp-wide.
                ctx.charge(PrimitiveCost::GlobalWrite { n: children.len() });
                expanded.fetch_add(got as u64, Ordering::Relaxed);
                if !children.is_empty() {
                    outstanding.fetch_add(children.len() as i64, Ordering::AcqRel);
                    for chunk in children.chunks(k) {
                        q.insert(ctx.worker(), chunk);
                    }
                }
                outstanding.fetch_sub(got as i64, Ordering::AcqRel);
            }
        },
    );
    let _ = q;
    let g = incumbent.load(Ordering::Acquire);
    SimAppResult {
        sim_ms: gpu.cost.cycles_to_ms(report.makespan_cycles),
        answer: g,
        expanded: expanded.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{Correlation, GridSpec, KnapsackSpec};

    #[test]
    fn knapsack_sim_finds_the_optimum() {
        let inst = KnapsackInstance::generate(KnapsackSpec::new(24, Correlation::Weak, 3));
        let r = knapsack_sim(GpuConfig::new(4, 128), 16, &inst, None);
        assert_eq!(r.answer, inst.optimum_dp());
        assert!(r.sim_ms > 0.0);
    }

    #[test]
    fn astar_sim_matches_sequential() {
        let grid = Grid::generate(GridSpec::new(32, 0.2, 5));
        let seq = apps::solve_astar_sequential(&grid);
        let r = astar_sim(GpuConfig::new(4, 128), 16, &grid);
        assert_eq!(Some(r.answer), seq.cost);
    }

    #[test]
    fn more_blocks_do_not_change_the_answer() {
        let inst = KnapsackInstance::generate(KnapsackSpec::new(20, Correlation::Strong, 8));
        let a = knapsack_sim(GpuConfig::new(1, 128), 8, &inst, None);
        let b = knapsack_sim(GpuConfig::new(8, 128), 8, &inst, None);
        assert_eq!(a.answer, b.answer);
        assert_eq!(a.answer, inst.optimum_dp());
    }
}
