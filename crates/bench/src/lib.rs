//! # bench — the evaluation harness (Table 2 + Figure 6 + ablations)
//!
//! Shared drivers used by the harness binaries (`table2`, `fig6`,
//! `ablation`) and the Criterion benches:
//!
//! * [`sim`] — BGPQ and P-Sync on the virtual-time GPU simulator
//!   (simulated milliseconds; this is the "GPU side" of every
//!   comparison — see DESIGN.md §2 for the substitution rationale).
//! * [`cpu`] — the CPU baselines driven by real OS threads and measured
//!   in wall-clock time.
//! * [`report`] — fixed-width table printing plus CSV output under
//!   `bench_results/`.

pub mod cpu;
pub mod report;
pub mod sim;
pub mod sim_apps;

/// Experiment scale presets so the full suite stays tractable on a
/// laptop-class host while preserving the paper's sweep structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke runs (also used by integration tests).
    Small,
    /// Default: minutes-long, reproduces every shape.
    Medium,
    /// Closest to the paper's sizes that remains practical here.
    Full,
}

impl Scale {
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Key counts for the "Ins & Del" rows (paper: 1M / 8M / 64M).
    pub fn insdel_sizes(self) -> Vec<usize> {
        match self {
            Scale::Small => vec![1 << 16],
            Scale::Medium => vec![1 << 20, 1 << 22],
            Scale::Full => vec![1 << 20, 1 << 23, 1 << 25],
        }
    }

    /// (initial keys, pair ops) for the utilization rows
    /// (paper: init {0, 1M, 8M}, then 64M pairs).
    pub fn util_params(self) -> (Vec<usize>, usize) {
        match self {
            Scale::Small => (vec![0, 1 << 14], 1 << 15),
            Scale::Medium => (vec![0, 1 << 17, 1 << 20], 1 << 20),
            Scale::Full => (vec![0, 1 << 20, 1 << 23], 1 << 22),
        }
    }

    /// Knapsack item counts (paper: 200..1000) and the node budget that
    /// fixes the amount of explored tree per queue.
    pub fn knapsack_params(self) -> (Vec<usize>, u64) {
        match self {
            Scale::Small => (vec![200, 400], 50_000),
            Scale::Medium => (vec![200, 400, 600, 800, 1000], 400_000),
            Scale::Full => (vec![200, 400, 600, 800, 1000], 4_000_000),
        }
    }

    /// A* grid sides (paper: 5K/10K/20K) and obstacle rates.
    pub fn astar_params(self) -> (Vec<usize>, Vec<f64>) {
        match self {
            Scale::Small => (vec![128], vec![0.10, 0.20]),
            Scale::Medium => (vec![512, 1024], vec![0.10, 0.20]),
            Scale::Full => (vec![1024, 2048, 4096], vec![0.10, 0.20]),
        }
    }

    /// Keys for the Fig. 6 sweeps (paper: 64M).
    pub fn fig6_keys(self) -> usize {
        match self {
            Scale::Small => 1 << 16,
            Scale::Medium => 1 << 19,
            Scale::Full => 1 << 22,
        }
    }
}

/// Pinned column layout of `bench_results/shard_sweep.csv`. Downstream
/// tooling (CI artifact diffs, EXPERIMENTS.md tables) parses this file
/// by header name, so the layout is a compatibility surface: extend it
/// only by appending, and update the pinned-format test alongside.
///
/// `mode` distinguishes the batched-op grid (`batch`) from the
/// single-op front comparison on the simulator (`front-plain`,
/// `front-buf`); the four trailing columns are the buffered front's
/// counters and are zero for unbuffered rows.
pub const SHARD_SWEEP_COLUMNS: [&str; 18] = [
    "mode",
    "S",
    "c",
    "threads",
    "kops/s",
    "rank_err",
    "rank_max",
    "bound",
    "steals",
    "sweeps",
    "imbalance",
    "salvages",
    "readmit",
    "keys_lost",
    "flushes",
    "refills",
    "refill_occ",
    "sticky_reuse",
];

#[cfg(test)]
mod tests {
    use super::*;

    /// The CSV layout is pinned: a change here must be deliberate and
    /// must keep existing columns at their positions (append-only).
    #[test]
    fn shard_sweep_csv_format_is_pinned() {
        assert_eq!(
            SHARD_SWEEP_COLUMNS.join(","),
            "mode,S,c,threads,kops/s,rank_err,rank_max,bound,steals,sweeps,imbalance,\
             salvages,readmit,keys_lost,flushes,refills,refill_occ,sticky_reuse"
        );
        let grid_cols = &SHARD_SWEEP_COLUMNS[..14];
        assert_eq!(grid_cols[0], "mode", "mode column leads");
        assert_eq!(grid_cols[4], "kops/s", "throughput column is stable");
        assert_eq!(SHARD_SWEEP_COLUMNS[14..], ["flushes", "refills", "refill_occ", "sticky_reuse"]);
    }
}
