//! Typed failures for the non-panicking queue APIs.
//!
//! The paper's pseudocode assumes an infallible device: locks are always
//! granted, node slots never run out, and no thread dies mid-operation.
//! A production queue gets none of those guarantees, so the hardened
//! `try_*` entry points surface each failure as a [`QueueError`] instead
//! of panicking or silently dropping keys (see DESIGN.md "Failure
//! model").

/// Why a `try_insert` / `try_delete_min` refused or abandoned an
/// operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueError {
    /// The heap body has no free node slot for the batch this insert
    /// would have to heapify. Raised *before* any state is mutated, so
    /// no key is ever silently lost — the caller still owns the batch
    /// and can apply backpressure or route elsewhere.
    Full {
        /// The configured node-slot limit that was hit.
        max_nodes: usize,
    },
    /// A worker crashed (panicked, or timed out mid-traversal) while
    /// restructuring the heap; the queue refuses all further operations
    /// because its internal invariants may no longer hold. Keys already
    /// returned remain valid; keys still inside are unreachable.
    Poisoned,
    /// A lock acquisition exceeded the platform's watchdog bound. The
    /// holder is likely wedged or dead; `detail` carries the platform's
    /// holder/state diagnostic dump.
    LockTimeout {
        /// Index of the lock (= heap node) that could not be acquired.
        lock: usize,
        /// Human-readable diagnostic from the platform watchdog.
        detail: String,
    },
    /// The front serving this call has already observed its backend
    /// fail and is fast-failing new traffic instead of letting every
    /// submitter rediscover the crash. Unlike [`QueueError::Poisoned`]
    /// this is a *front* state, not a structural verdict: the backend
    /// may be salvaged and the front may return to service, so callers
    /// with slack should treat it as retryable-after-backoff.
    Unavailable,
}

impl QueueError {
    /// Whether retrying the same call later can reasonably succeed.
    ///
    /// * [`QueueError::LockTimeout`] — the holder may recover, or a
    ///   recovery pass may reset the queue; retry with backoff.
    /// * [`QueueError::Unavailable`] — the front is fast-failing while
    ///   its backend is down; a later probe may find it re-admitted.
    /// * [`QueueError::Full`] — backpressure, not failure; retryable
    ///   only if something is draining the queue (callers decide via
    ///   [`crate::RetryPolicy::retry_full`]).
    /// * [`QueueError::Poisoned`] — a structural verdict on *this*
    ///   queue; retrying the same handle cannot succeed until an
    ///   external salvage rebuilds it.
    pub fn retryable(&self) -> bool {
        matches!(self, QueueError::LockTimeout { .. } | QueueError::Unavailable)
    }
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::Full { max_nodes } => {
                write!(f, "out of node slots (max_nodes = {max_nodes})")
            }
            QueueError::Poisoned => write!(f, "queue poisoned by a crashed worker"),
            QueueError::LockTimeout { lock, detail } => {
                write!(f, "watchdog timeout acquiring lock {lock}: {detail}")
            }
            QueueError::Unavailable => {
                write!(f, "front unavailable: backend down, fast-failing until re-admission")
            }
        }
    }
}

impl std::error::Error for QueueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_specifics() {
        let full = QueueError::Full { max_nodes: 64 };
        assert!(full.to_string().contains("out of node slots"));
        assert!(full.to_string().contains("64"));
        let t = QueueError::LockTimeout { lock: 7, detail: "holder: worker 3".into() };
        assert!(t.to_string().contains("lock 7"));
        assert!(t.to_string().contains("worker 3"));
        assert!(QueueError::Poisoned.to_string().contains("poisoned"));
        assert!(QueueError::Unavailable.to_string().contains("unavailable"));
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(QueueError::Full { max_nodes: 8 }, QueueError::Full { max_nodes: 8 });
        assert_ne!(QueueError::Full { max_nodes: 8 }, QueueError::Poisoned);
        assert_ne!(QueueError::Unavailable, QueueError::Poisoned);
    }

    #[test]
    fn retryable_classes() {
        assert!(QueueError::LockTimeout { lock: 0, detail: String::new() }.retryable());
        assert!(QueueError::Unavailable.retryable());
        assert!(!QueueError::Poisoned.retryable());
        assert!(!QueueError::Full { max_nodes: 8 }.retryable());
    }
}
