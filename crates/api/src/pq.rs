//! Priority-queue ADTs.
//!
//! Two traits mirror the two API shapes in the paper:
//!
//! * [`PriorityQueue`] — classical item-at-a-time `INSERT` / `DELETEMIN`,
//!   implemented by every CPU baseline (TBB stand-in, Hunt, LJSL,
//!   SprayList, CBPQ).
//! * [`BatchPriorityQueue`] — BGPQ's batched API (§3.2): "Our INSERT API
//!   supports the insertion of 1 to k keys to the heap. Our deleteMin API
//!   supports the deletion of 1 to k smallest keys from the heap."
//!
//! All methods take `&self`: these are concurrent structures shared
//! across threads.

use crate::entry::Entry;
use crate::error::QueueError;
use crate::key::{KeyType, ValueType};

/// Classical concurrent priority queue ADT.
pub trait PriorityQueue<K: KeyType, V: ValueType>: Send + Sync {
    /// Insert one `(key, value)` pair.
    fn insert(&self, key: K, value: V);

    /// Remove and return an entry with the smallest key, or `None` when
    /// the queue is (momentarily) empty.
    ///
    /// Relaxed implementations (SprayList) may return an entry *near* the
    /// minimum; see the implementation's docs.
    fn delete_min(&self) -> Option<Entry<K, V>>;

    /// A best-effort size snapshot (exact at quiescence).
    fn len(&self) -> usize;

    /// True when `len() == 0`. Only meaningful at quiescence.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Batched concurrent priority queue ADT (BGPQ's native shape).
pub trait BatchPriorityQueue<K: KeyType, V: ValueType>: Send + Sync {
    /// Maximum batch size (`k`, the node capacity). Calls may pass fewer
    /// items but never more.
    fn batch_capacity(&self) -> usize;

    /// Insert `items` (1..=`batch_capacity()` entries, any order).
    fn insert_batch(&self, items: &[Entry<K, V>]);

    /// Delete up to `count` smallest entries (1..=`batch_capacity()`),
    /// appending them to `out` in ascending key order. Returns the number
    /// of entries actually deleted, which is smaller than `count` only
    /// when the queue ran out of items.
    fn delete_min_batch(&self, out: &mut Vec<Entry<K, V>>, count: usize) -> usize;

    /// Best-effort size snapshot (exact at quiescence).
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Batched queue with non-panicking entry points: backpressure
/// ([`QueueError::Full`]) and failure ([`QueueError::Poisoned`],
/// [`QueueError::LockTimeout`]) surface as values instead of panics.
///
/// The default methods delegate to the infallible
/// [`BatchPriorityQueue`] operations — correct for implementations
/// that cannot fail (the CPU baselines, [`ItemwiseBatch`]). Hardened
/// queues (`CpuBgpq`, `CpuShardedBgpq`) override both methods with
/// their real `try_*` paths, which is what lets generic fronts (the
/// coalescing combiner) propagate `Full`/`Poisoned`/`LockTimeout` to
/// blocked submitters instead of wedging them.
pub trait TryBatchPriorityQueue<K: KeyType, V: ValueType>: BatchPriorityQueue<K, V> {
    /// Insert `items` (1..=`batch_capacity()`), surfacing failures.
    /// On `Err` the batch was not inserted and the caller still owns
    /// every key.
    fn try_insert_batch(&self, items: &[Entry<K, V>]) -> Result<(), QueueError> {
        self.insert_batch(items);
        Ok(())
    }

    /// Delete up to `count` smallest entries, surfacing failures. On
    /// `Err`, `out` is unchanged.
    fn try_delete_min_batch(
        &self,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> Result<usize, QueueError> {
        Ok(self.delete_min_batch(out, count))
    }
}

/// Adapter: any single-item [`PriorityQueue`] is a batched queue that
/// processes batch elements one at a time. This is how CPU baselines run
/// under the batched application drivers (knapsack, A*) — exactly the
/// paper's setup, where the CPU baselines pop/push individual nodes while
/// BGPQ moves full batch nodes.
pub struct ItemwiseBatch<Q> {
    inner: Q,
    batch: usize,
}

impl<Q> ItemwiseBatch<Q> {
    pub fn new(inner: Q, batch: usize) -> Self {
        assert!(batch >= 1, "batch capacity must be at least 1");
        Self { inner, batch }
    }

    pub fn into_inner(self) -> Q {
        self.inner
    }

    pub fn inner(&self) -> &Q {
        &self.inner
    }
}

impl<K, V, Q> BatchPriorityQueue<K, V> for ItemwiseBatch<Q>
where
    K: KeyType,
    V: ValueType,
    Q: PriorityQueue<K, V>,
{
    fn batch_capacity(&self) -> usize {
        self.batch
    }

    fn insert_batch(&self, items: &[Entry<K, V>]) {
        assert!(items.len() <= self.batch);
        for e in items {
            self.inner.insert(e.key, e.value);
        }
    }

    fn delete_min_batch(&self, out: &mut Vec<Entry<K, V>>, count: usize) -> usize {
        assert!(count <= self.batch);
        let mut got = 0;
        while got < count {
            match self.inner.delete_min() {
                Some(e) => {
                    out.push(e);
                    got += 1;
                }
                None => break,
            }
        }
        got
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

/// Itemwise baselines never fail structurally; the defaults apply.
impl<K, V, Q> TryBatchPriorityQueue<K, V> for ItemwiseBatch<Q>
where
    K: KeyType,
    V: ValueType,
    Q: PriorityQueue<K, V>,
{
}

/// Factory for building fresh queue instances inside the bench harness
/// (each trial constructs its own queue).
pub trait QueueFactory<K: KeyType, V: ValueType>: Send + Sync {
    type Queue: BatchPriorityQueue<K, V>;

    /// Human-readable name used in tables ("BGPQ", "TBB", ...).
    fn name(&self) -> &str;

    /// Build a queue expected to hold around `capacity_hint` entries.
    fn build(&self, capacity_hint: usize) -> Self::Queue;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;
    use std::sync::Mutex;

    /// Minimal reference queue for exercising the adapters.
    struct RefPq(Mutex<BinaryHeap<core::cmp::Reverse<Entry<u32, u32>>>>);

    impl PriorityQueue<u32, u32> for RefPq {
        fn insert(&self, key: u32, value: u32) {
            self.0.lock().unwrap().push(core::cmp::Reverse(Entry::new(key, value)));
        }
        fn delete_min(&self) -> Option<Entry<u32, u32>> {
            self.0.lock().unwrap().pop().map(|r| r.0)
        }
        fn len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
    }

    #[test]
    fn itemwise_batch_roundtrip() {
        let q = ItemwiseBatch::new(RefPq(Mutex::new(BinaryHeap::new())), 4);
        let items: Vec<Entry<u32, u32>> =
            [(5, 0), (1, 1), (9, 2), (3, 3)].iter().map(|&(k, v)| Entry::new(k, v)).collect();
        q.insert_batch(&items);
        assert_eq!(BatchPriorityQueue::len(&q), 4);

        let mut out = Vec::new();
        let n = q.delete_min_batch(&mut out, 3);
        assert_eq!(n, 3);
        assert_eq!(out.iter().map(|e| e.key).collect::<Vec<_>>(), vec![1, 3, 5]);

        let n = q.delete_min_batch(&mut out, 4);
        assert_eq!(n, 1, "only one item left");
        assert_eq!(out.last().unwrap().key, 9);
        assert!(BatchPriorityQueue::is_empty(&q));
    }

    #[test]
    #[should_panic]
    fn oversized_batch_is_rejected() {
        let q = ItemwiseBatch::new(RefPq(Mutex::new(BinaryHeap::new())), 2);
        let items = vec![Entry::new(1u32, 0u32); 3];
        q.insert_batch(&items);
    }
}
