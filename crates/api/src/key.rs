//! Key and value bounds.
//!
//! The paper's evaluation uses 30-bit and 32-bit integer keys (Table 2,
//! footnote 3) with an application payload (knapsack nodes, A* grid
//! cells). We keep keys generic but require the handful of properties the
//! batched heap relies on:
//!
//! * total order (`Ord`) — the priority;
//! * `Copy` — batch nodes are moved between levels with bulk copies, the
//!   GPU analogue of coalesced loads/stores;
//! * a `MAX` sentinel — used to pad partially-filled batches so that the
//!   data-parallel sort/merge primitives always operate on full,
//!   power-of-two-sized lanes exactly like the CUDA implementation pads
//!   shared-memory tiles.

/// A priority-queue key: a totally ordered, copyable scalar with
/// `MIN`/`MAX` sentinels.
pub trait KeyType: Copy + Ord + Send + Sync + core::fmt::Debug + Default + 'static {
    /// Largest representable key; used as the padding sentinel.
    const MAX_KEY: Self;
    /// Smallest representable key.
    const MIN_KEY: Self;

    /// Lossy conversion used only for diagnostics/statistics.
    fn as_u64(self) -> u64;

    /// Order-preserving encoding: `a <= b` iff
    /// `a.to_ordered_bits() <= b.to_ordered_bits()`. Lets relaxed
    /// frontends publish a key through a single `AtomicU64` (the
    /// sharded router's root-min hint) without locking. For unsigned
    /// keys this is the identity; signed keys flip the sign bit.
    fn to_ordered_bits(self) -> u64;

    /// Whether [`KeyType::to_lane32`] is a strictly monotone
    /// order-embedding into `u32` — the SIMD specialization hook: key
    /// types that fit a 32-bit lane ride the vector kernels (packed as
    /// key|index lanes so payload permutations stay exactly stable);
    /// wider keys keep the scalar path. `false` by default; the
    /// built-in impls up to 32 bits opt in.
    const HAS_LANE32: bool = false;

    /// 32-bit order-preserving encoding: when [`KeyType::HAS_LANE32`]
    /// is `true`, `a < b` iff `a.to_lane32() < b.to_lane32()`
    /// (strictly — distinct keys map to distinct lanes). Unspecified
    /// (never called) when `HAS_LANE32` is `false`.
    fn to_lane32(self) -> u32 {
        0
    }
}

macro_rules! impl_key_unsigned {
    ($($t:ty),*) => {$(
        impl KeyType for $t {
            const MAX_KEY: Self = <$t>::MAX;
            const MIN_KEY: Self = <$t>::MIN;
            #[inline]
            fn as_u64(self) -> u64 { self as u64 }
            #[inline]
            fn to_ordered_bits(self) -> u64 { self as u64 }
        }
    )*};
    ($($t:ty),*; lane32) => {$(
        impl KeyType for $t {
            const MAX_KEY: Self = <$t>::MAX;
            const MIN_KEY: Self = <$t>::MIN;
            const HAS_LANE32: bool = true;
            #[inline]
            fn as_u64(self) -> u64 { self as u64 }
            #[inline]
            fn to_ordered_bits(self) -> u64 { self as u64 }
            #[inline]
            fn to_lane32(self) -> u32 { self as u32 }
        }
    )*};
}

macro_rules! impl_key_signed {
    ($($t:ty),*) => {$(
        impl KeyType for $t {
            const MAX_KEY: Self = <$t>::MAX;
            const MIN_KEY: Self = <$t>::MIN;
            #[inline]
            fn as_u64(self) -> u64 { self as u64 }
            #[inline]
            fn to_ordered_bits(self) -> u64 {
                // Sign-extend to i64, then flip the sign bit: negative
                // keys land below positive ones in unsigned order.
                (self as i64 as u64) ^ (1 << 63)
            }
        }
    )*};
    ($($t:ty),*; lane32) => {$(
        impl KeyType for $t {
            const MAX_KEY: Self = <$t>::MAX;
            const MIN_KEY: Self = <$t>::MIN;
            const HAS_LANE32: bool = true;
            #[inline]
            fn as_u64(self) -> u64 { self as u64 }
            #[inline]
            fn to_ordered_bits(self) -> u64 {
                (self as i64 as u64) ^ (1 << 63)
            }
            #[inline]
            fn to_lane32(self) -> u32 {
                // Sign-extend to i32, flip the sign bit: same trick as
                // `to_ordered_bits`, at lane width.
                (self as i32 as u32) ^ (1 << 31)
            }
        }
    )*};
}

// Keys up to 32 bits embed into a vector lane; 64-bit keys (and the
// pointer-width ones, which may be 64-bit) stay on the scalar path.
impl_key_unsigned!(u8, u16, u32; lane32);
impl_key_unsigned!(u64, usize);
impl_key_signed!(i8, i16, i32; lane32);
impl_key_signed!(i64, isize);

/// A priority-queue payload. BGPQ moves values together with their keys in
/// bulk, so values must be `Copy` (the paper stores fixed-width payloads
/// such as packed knapsack nodes next to the keys in GPU global memory).
pub trait ValueType: Copy + Send + Sync + Default + 'static {}

impl<T: Copy + Send + Sync + Default + 'static> ValueType for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_are_extremes() {
        assert_eq!(<u32 as KeyType>::MAX_KEY, u32::MAX);
        assert_eq!(<u32 as KeyType>::MIN_KEY, 0);
        assert_eq!(<i32 as KeyType>::MAX_KEY, i32::MAX);
        assert_eq!(<i32 as KeyType>::MIN_KEY, i32::MIN);
    }

    #[test]
    fn as_u64_is_monotone_for_unsigned() {
        let mut prev = 0u64;
        for k in [0u32, 1, 7, 1 << 20, u32::MAX] {
            assert!(KeyType::as_u64(k) >= prev);
            prev = KeyType::as_u64(k);
        }
    }

    #[test]
    fn ordered_bits_are_monotone() {
        let us = [0u32, 1, 7, 1 << 20, u32::MAX];
        assert!(us.windows(2).all(|w| w[0].to_ordered_bits() < w[1].to_ordered_bits()));
        let is = [i32::MIN, -5, -1, 0, 1, 42, i32::MAX];
        assert!(is.windows(2).all(|w| w[0].to_ordered_bits() < w[1].to_ordered_bits()));
        let ls = [i64::MIN, -1, 0, i64::MAX];
        assert!(ls.windows(2).all(|w| w[0].to_ordered_bits() < w[1].to_ordered_bits()));
    }

    #[test]
    fn lane32_is_a_strict_order_embedding() {
        const {
            assert!(<u32 as KeyType>::HAS_LANE32);
            assert!(<i32 as KeyType>::HAS_LANE32);
            assert!(<u8 as KeyType>::HAS_LANE32);
            assert!(!<u64 as KeyType>::HAS_LANE32);
            assert!(!<i64 as KeyType>::HAS_LANE32);
            assert!(!<usize as KeyType>::HAS_LANE32);
        }
        let us = [0u32, 1, 7, 1 << 20, u32::MAX - 1, u32::MAX];
        assert!(us.windows(2).all(|w| w[0].to_lane32() < w[1].to_lane32()));
        let is = [i32::MIN, -5, -1, 0, 1, 42, i32::MAX];
        assert!(is.windows(2).all(|w| w[0].to_lane32() < w[1].to_lane32()));
        let bs = [i8::MIN, -1i8, 0, 5, i8::MAX];
        assert!(bs.windows(2).all(|w| w[0].to_lane32() < w[1].to_lane32()));
    }

    #[test]
    fn unit_value_is_a_value() {
        fn takes_value<V: ValueType>(_v: V) {}
        takes_value(());
        takes_value(0u64);
        takes_value([0u8; 16]);
    }
}
