//! Retry policy and deadline plumbing for the hardened `try_*` API.
//!
//! PR 2 made failures *visible* (`Full`, `Poisoned`, `LockTimeout`);
//! the recovery work makes some of them *transient* (`LockTimeout`
//! while a watchdog-hit holder unwinds, [`QueueError::Unavailable`]
//! while a front waits out a backend salvage). This module gives
//! callers one vetted answer to "what do I do with a transient error"
//! instead of every call site growing its own ad-hoc loop:
//!
//! * [`RetryPolicy`] — bounded attempts, exponential backoff with
//!   deterministic jitter, per-class retry switches keyed off
//!   [`QueueError::retryable`].
//! * [`Deadline`] — a wall-clock budget the whole retry loop must fit
//!   in, so a caller-facing latency bound survives arbitrarily
//!   unlucky backoff draws.
//! * [`Retrying`] — a wrapper queue applying the policy around any
//!   [`TryBatchPriorityQueue`], so batched callers opt in by wrapping
//!   rather than rewriting.
//!
//! The backoff sleeps on the OS clock (`std::thread::sleep`), which
//! makes [`Retrying`] a host-side tool: simulator agents must keep
//! using their platform's virtual-time backoff instead.

use crate::entry::Entry;
use crate::error::QueueError;
use crate::key::{KeyType, ValueType};
use crate::pq::{BatchPriorityQueue, TryBatchPriorityQueue};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A wall-clock budget for a whole retry loop.
///
/// `Deadline` is deliberately dumb — capture `Instant::now() + budget`
/// once, ask [`Deadline::expired`] before each attempt — so it can
/// also bound hand-written loops that do not go through [`Retrying`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Self { at: Instant::now() + budget }
    }

    /// The instant this deadline lands on.
    pub fn instant(&self) -> Instant {
        self.at
    }

    /// True once the budget is exhausted.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left, saturating at zero.
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// Clamp `d` so a sleep cannot overshoot the deadline.
    pub fn clamp(&self, d: Duration) -> Duration {
        d.min(self.remaining())
    }
}

/// How a caller wants transient [`QueueError`]s handled: how many
/// attempts, how long between them, and which error classes are worth
/// retrying at all.
///
/// The default policy retries exactly the classes
/// [`QueueError::retryable`] admits — `LockTimeout` and `Unavailable`
/// — and fast-fails `Poisoned` (a structural verdict no retry can
/// change) and `Full` (backpressure; only meaningful to retry when
/// something else is draining the queue, so it is an explicit opt-in
/// via [`RetryPolicy::retry_full`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "no retry").
    pub max_attempts: u32,
    /// Backoff before retry `n` starts from `base_backoff << (n-1)`…
    pub base_backoff: Duration,
    /// …and is capped here, pre-jitter.
    pub max_backoff: Duration,
    /// Also retry [`QueueError::Full`] (backpressure). Off by default:
    /// retrying `Full` only converges when a consumer is draining.
    pub retry_full: bool,
    /// Optional wall-clock budget for the whole loop; `None` bounds it
    /// by attempts alone.
    pub total_budget: Option<Duration>,
    /// Seed for the deterministic jitter stream (tests pin this).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
            retry_full: false,
            total_budget: None,
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// The default policy with a different attempt bound.
    pub fn with_attempts(max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "at least the first attempt must run");
        Self { max_attempts, ..Self::default() }
    }

    /// Builder: also retry `Full` (see [`RetryPolicy::retry_full`]).
    pub fn retrying_full(mut self) -> Self {
        self.retry_full = true;
        self
    }

    /// Builder: bound the whole loop by a wall-clock budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.total_budget = Some(budget);
        self
    }

    /// Whether `e` is worth another attempt under this policy.
    pub fn should_retry(&self, e: &QueueError) -> bool {
        e.retryable() || (self.retry_full && matches!(e, QueueError::Full { .. }))
    }

    /// Backoff before attempt `attempt` (2-based: the first retry is
    /// attempt 2): exponential in the retry count, jittered to ±50% so
    /// colliding retriers decorrelate, deterministic in
    /// `(jitter_seed, attempt, salt)` so drills replay bit-for-bit.
    pub fn backoff_before(&self, attempt: u32, salt: u64) -> Duration {
        debug_assert!(attempt >= 2);
        let shift = (attempt - 2).min(20);
        let raw = self.base_backoff.saturating_mul(1 << shift).min(self.max_backoff);
        let nanos = raw.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        // Map a splitmix64 draw into [0.5, 1.5) of the raw backoff.
        let r = splitmix64(self.jitter_seed ^ (u64::from(attempt) << 32) ^ salt);
        Duration::from_nanos(nanos / 2 + r % nanos)
    }

    /// The loop's deadline, if a budget is configured.
    pub fn deadline(&self) -> Option<Deadline> {
        self.total_budget.map(Deadline::after)
    }

    /// Run `op` under this policy: call it up to
    /// [`RetryPolicy::max_attempts`] times, sleeping the jittered
    /// backoff between attempts, until it succeeds, fails with a
    /// non-retryable error, or the budget runs out. Returns the last
    /// error when every attempt failed. `salt` decorrelates the jitter
    /// of concurrent retriers (the [`Retrying`] wrapper feeds it a
    /// per-call counter).
    pub fn run<T>(
        &self,
        salt: u64,
        mut op: impl FnMut() -> Result<T, QueueError>,
    ) -> Result<T, QueueError> {
        let deadline = self.deadline();
        let mut last = None;
        for attempt in 1..=self.max_attempts.max(1) {
            if attempt > 1 {
                let pause = self.backoff_before(attempt, salt);
                let pause = deadline.map_or(pause, |d| d.clamp(pause));
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    let out_of_time = deadline.is_some_and(|d| d.expired());
                    if !self.should_retry(&e) || out_of_time {
                        return Err(e);
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or(QueueError::Unavailable))
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`TryBatchPriorityQueue`] wrapper that applies a [`RetryPolicy`]
/// around every `try_*` call. The infallible [`BatchPriorityQueue`]
/// face panics only after the policy is exhausted, so single-shot
/// callers get bounded retry for free.
pub struct Retrying<Q> {
    inner: Q,
    policy: RetryPolicy,
    salt: AtomicU64,
}

impl<Q> Retrying<Q> {
    pub fn new(inner: Q, policy: RetryPolicy) -> Self {
        Self { inner, policy, salt: AtomicU64::new(0) }
    }

    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    pub fn inner(&self) -> &Q {
        &self.inner
    }

    pub fn into_inner(self) -> Q {
        self.inner
    }

    fn next_salt(&self) -> u64 {
        self.salt.fetch_add(1, Ordering::Relaxed)
    }
}

impl<K, V, Q> BatchPriorityQueue<K, V> for Retrying<Q>
where
    K: KeyType,
    V: ValueType,
    Q: TryBatchPriorityQueue<K, V>,
{
    fn batch_capacity(&self) -> usize {
        self.inner.batch_capacity()
    }

    fn insert_batch(&self, items: &[Entry<K, V>]) {
        if let Err(e) = self.try_insert_batch(items) {
            panic!("insert failed after {} attempts: {e}", self.policy.max_attempts);
        }
    }

    fn delete_min_batch(&self, out: &mut Vec<Entry<K, V>>, count: usize) -> usize {
        match self.try_delete_min_batch(out, count) {
            Ok(n) => n,
            Err(e) => panic!("delete_min failed after {} attempts: {e}", self.policy.max_attempts),
        }
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

impl<K, V, Q> TryBatchPriorityQueue<K, V> for Retrying<Q>
where
    K: KeyType,
    V: ValueType,
    Q: TryBatchPriorityQueue<K, V>,
{
    fn try_insert_batch(&self, items: &[Entry<K, V>]) -> Result<(), QueueError> {
        let salt = self.next_salt();
        self.policy.run(salt, || self.inner.try_insert_batch(items))
    }

    fn try_delete_min_batch(
        &self,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> Result<usize, QueueError> {
        let salt = self.next_salt();
        self.policy.run(salt, || self.inner.try_delete_min_batch(out, count))
    }
}

/// Knobs for a buffered (MultiQueue-style "sticky batching") front:
/// per-worker insertion/deletion buffers plus sticky shard selection.
///
/// "Engineering MultiQueues" (Williams & Sanders) identifies three
/// levers that dominate relaxed-front throughput, and this struct names
/// all three so fronts across the workspace share one vocabulary:
///
/// * [`insert_capacity`](Self::insert_capacity) (`B`) — staged inserts
///   per worker before an automatic flush pushes them to the backend
///   as full batches.
/// * [`refill_width`](Self::refill_width) — keys fetched per
///   deletion-buffer refill; `0` means "the backend's natural batch
///   width `k`", the only value that makes the front's amortization
///   unit match BGPQ's node width.
/// * [`stickiness`](Self::stickiness) (`σ`) — shard-sourced refills
///   served by the same sampled shard before the front re-samples.
///   `1` re-samples every refill (stickiness off).
///
/// Larger `B`/`σ` buy fewer shared-memory operations at the price of a
/// larger relaxation window; the documented rank-error bound for the
/// sharded front is in `bgpq-shard`'s router docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferPolicy {
    /// Staged inserts per worker before an automatic flush (`B`).
    pub insert_capacity: usize,
    /// Keys fetched per deletion-buffer refill (`0` ⇒ backend batch
    /// width `k`).
    pub refill_width: usize,
    /// Shard-sourced refills served by the sticky shard before
    /// re-sampling (`σ ≥ 1`; `1` disables stickiness).
    pub stickiness: u32,
}

impl Default for BufferPolicy {
    fn default() -> Self {
        Self { insert_capacity: 64, refill_width: 0, stickiness: 4 }
    }
}

impl BufferPolicy {
    /// The default policy (`B = 64`, refill width = backend `k`,
    /// `σ = 4`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: staged-insert capacity `B`.
    pub fn with_insert_capacity(mut self, b: usize) -> Self {
        self.insert_capacity = b;
        self
    }

    /// Builder: deletion-buffer refill width (`0` ⇒ backend `k`).
    pub fn with_refill_width(mut self, w: usize) -> Self {
        self.refill_width = w;
        self
    }

    /// Builder: sticky tenure `σ` in refills.
    pub fn with_stickiness(mut self, s: u32) -> Self {
        self.stickiness = s;
        self
    }

    /// Panic on nonsensical settings (zero-capacity buffers, zero
    /// tenure). Called by fronts when buffering is enabled.
    pub fn validate(&self) {
        assert!(self.insert_capacity >= 1, "insertion buffer needs capacity for at least one key");
        assert!(self.stickiness >= 1, "sticky tenure counts the first refill itself");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    /// Scripted queue: pops one result per `try_*` call.
    struct Scripted {
        script: Mutex<Vec<Result<(), QueueError>>>,
        calls: AtomicUsize,
    }

    impl Scripted {
        fn new(mut script: Vec<Result<(), QueueError>>) -> Self {
            script.reverse();
            Self { script: Mutex::new(script), calls: AtomicUsize::new(0) }
        }
        fn calls(&self) -> usize {
            self.calls.load(Ordering::Relaxed)
        }
        fn step(&self) -> Result<(), QueueError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.script.lock().unwrap().pop().unwrap_or(Ok(()))
        }
    }

    impl BatchPriorityQueue<u32, u32> for Scripted {
        fn batch_capacity(&self) -> usize {
            8
        }
        fn insert_batch(&self, _items: &[Entry<u32, u32>]) {
            self.step().unwrap();
        }
        fn delete_min_batch(&self, _out: &mut Vec<Entry<u32, u32>>, _count: usize) -> usize {
            self.step().unwrap();
            0
        }
        fn len(&self) -> usize {
            0
        }
    }

    impl TryBatchPriorityQueue<u32, u32> for Scripted {
        fn try_insert_batch(&self, _items: &[Entry<u32, u32>]) -> Result<(), QueueError> {
            self.step()
        }
        fn try_delete_min_batch(
            &self,
            _out: &mut Vec<Entry<u32, u32>>,
            _count: usize,
        ) -> Result<usize, QueueError> {
            self.step().map(|()| 0)
        }
    }

    fn timeout() -> QueueError {
        QueueError::LockTimeout { lock: 1, detail: "t".into() }
    }

    fn fast() -> RetryPolicy {
        RetryPolicy {
            base_backoff: Duration::from_micros(1),
            max_backoff: Duration::from_micros(10),
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn transient_errors_are_retried_to_success() {
        let q = Retrying::new(
            Scripted::new(vec![Err(timeout()), Err(QueueError::Unavailable), Ok(())]),
            fast(),
        );
        assert_eq!(q.try_insert_batch(&[Entry::new(1, 1)]), Ok(()));
        assert_eq!(q.inner().calls(), 3);
    }

    #[test]
    fn poisoned_fast_fails_without_retry() {
        let q = Retrying::new(Scripted::new(vec![Err(QueueError::Poisoned), Ok(())]), fast());
        assert_eq!(q.try_insert_batch(&[Entry::new(1, 1)]), Err(QueueError::Poisoned));
        assert_eq!(q.inner().calls(), 1);
    }

    #[test]
    fn full_retries_only_when_opted_in() {
        let full = QueueError::Full { max_nodes: 4 };
        let q = Retrying::new(Scripted::new(vec![Err(full.clone()), Ok(())]), fast());
        assert_eq!(q.try_insert_batch(&[Entry::new(1, 1)]), Err(full.clone()));

        let q = Retrying::new(Scripted::new(vec![Err(full), Ok(())]), fast().retrying_full());
        assert_eq!(q.try_insert_batch(&[Entry::new(1, 1)]), Ok(()));
        assert_eq!(q.inner().calls(), 2);
    }

    #[test]
    fn attempts_are_bounded_and_last_error_surfaces() {
        let policy = RetryPolicy { max_attempts: 3, ..fast() };
        let q = Retrying::new(Scripted::new(vec![Err(timeout()); 10]), policy);
        assert!(matches!(
            q.try_insert_batch(&[Entry::new(1, 1)]),
            Err(QueueError::LockTimeout { .. })
        ));
        assert_eq!(q.inner().calls(), 3);
    }

    #[test]
    fn budget_bounds_the_loop() {
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        }
        .with_budget(Duration::from_millis(5));
        let q = Retrying::new(Scripted::new(vec![Err(timeout()); 4096]), policy);
        let t0 = Instant::now();
        assert!(q.try_insert_batch(&[Entry::new(1, 1)]).is_err());
        assert!(t0.elapsed() < Duration::from_secs(2), "deadline must cut the loop short");
        assert!(q.inner().calls() < 4096);
    }

    #[test]
    fn backoff_grows_and_jitter_is_deterministic() {
        let p = fast();
        assert!(p.backoff_before(4, 7) >= p.base_backoff / 2);
        assert_eq!(p.backoff_before(3, 9), p.backoff_before(3, 9));
        // Different salts decorrelate (overwhelmingly likely to differ).
        assert_ne!(p.backoff_before(5, 1), p.backoff_before(5, 2));
    }

    #[test]
    fn deadline_reports_expiry_and_clamps() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.clamp(Duration::from_secs(1)), Duration::ZERO);
        let far = Deadline::after(Duration::from_secs(60));
        assert!(!far.expired());
        assert_eq!(far.clamp(Duration::from_millis(1)), Duration::from_millis(1));
    }

    #[test]
    fn infallible_face_panics_only_after_exhaustion() {
        let q = Retrying::new(
            Scripted::new(vec![Err(timeout()), Ok(())]),
            RetryPolicy { max_attempts: 2, ..fast() },
        );
        q.insert_batch(&[Entry::new(1, 1)]);
        assert_eq!(q.inner().calls(), 2);
    }

    #[test]
    fn buffer_policy_builders_and_default() {
        let p = BufferPolicy::new();
        assert_eq!(p, BufferPolicy::default());
        p.validate();
        let q = BufferPolicy::new().with_insert_capacity(8).with_refill_width(16).with_stickiness(1);
        assert_eq!(q.insert_capacity, 8);
        assert_eq!(q.refill_width, 16);
        assert_eq!(q.stickiness, 1);
        q.validate();
    }

    #[test]
    #[should_panic(expected = "insertion buffer")]
    fn buffer_policy_rejects_zero_capacity() {
        BufferPolicy::new().with_insert_capacity(0).validate();
    }

    #[test]
    #[should_panic(expected = "sticky tenure")]
    fn buffer_policy_rejects_zero_tenure() {
        BufferPolicy::new().with_stickiness(0).validate();
    }
}
