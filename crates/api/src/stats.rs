//! Lightweight operation counters.
//!
//! Every queue implementation exposes an [`OpStats`] so the bench harness
//! can report *why* a design is fast or slow: how many heapify walks were
//! avoided by the partial buffer, how often delete-min was served straight
//! from the root cache, how often the TARGET/MARKED collaboration fired —
//! the mechanisms §4.3 of the paper credits for BGPQ's performance.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters. All increments are `Relaxed`: these are statistics,
/// not synchronization.
#[derive(Debug, Default)]
pub struct OpStats {
    /// Completed INSERT operations.
    pub inserts: AtomicU64,
    /// Completed DELETEMIN operations.
    pub delete_mins: AtomicU64,
    /// Items moved by INSERTs (batch sizes summed).
    pub items_inserted: AtomicU64,
    /// Items returned by DELETEMINs.
    pub items_deleted: AtomicU64,
    /// INSERTs fully absorbed by root + partial buffer (no heapify).
    pub inserts_buffered: AtomicU64,
    /// Full insert-heapify walks (buffer overflow path).
    pub insert_heapifies: AtomicU64,
    /// DELETEMINs served entirely from the root node (no heapify).
    pub deletes_from_root: AtomicU64,
    /// Full delete-heapify walks (root refill path).
    pub delete_heapifies: AtomicU64,
    /// TARGET/MARKED collaborations: a delete stole an in-flight
    /// insertion's keys to refill the root.
    pub collaborations: AtomicU64,
    /// Lock acquisitions (when the implementation counts them).
    pub lock_acquisitions: AtomicU64,
    /// Failed first lock attempts, i.e. contention events.
    pub lock_contended: AtomicU64,
}

impl OpStats {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot all counters (for printing / assertions).
    pub fn snapshot(&self) -> StatsSnapshot {
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            inserts: ld(&self.inserts),
            delete_mins: ld(&self.delete_mins),
            items_inserted: ld(&self.items_inserted),
            items_deleted: ld(&self.items_deleted),
            inserts_buffered: ld(&self.inserts_buffered),
            insert_heapifies: ld(&self.insert_heapifies),
            deletes_from_root: ld(&self.deletes_from_root),
            delete_heapifies: ld(&self.delete_heapifies),
            collaborations: ld(&self.collaborations),
            lock_acquisitions: ld(&self.lock_acquisitions),
            lock_contended: ld(&self.lock_contended),
        }
    }

    /// Reset all counters to zero (between bench trials).
    pub fn reset(&self) {
        let st = |c: &AtomicU64| c.store(0, Ordering::Relaxed);
        st(&self.inserts);
        st(&self.delete_mins);
        st(&self.items_inserted);
        st(&self.items_deleted);
        st(&self.inserts_buffered);
        st(&self.insert_heapifies);
        st(&self.deletes_from_root);
        st(&self.delete_heapifies);
        st(&self.collaborations);
        st(&self.lock_acquisitions);
        st(&self.lock_contended);
    }
}

/// Plain-data snapshot of [`OpStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub inserts: u64,
    pub delete_mins: u64,
    pub items_inserted: u64,
    pub items_deleted: u64,
    pub inserts_buffered: u64,
    pub insert_heapifies: u64,
    pub deletes_from_root: u64,
    pub delete_heapifies: u64,
    pub collaborations: u64,
    pub lock_acquisitions: u64,
    pub lock_contended: u64,
}

impl StatsSnapshot {
    /// Fraction of inserts that avoided a heapify — the partial-buffer
    /// batching win the paper describes in §4.3.
    pub fn insert_buffer_hit_rate(&self) -> f64 {
        if self.inserts == 0 {
            return 0.0;
        }
        self.inserts_buffered as f64 / self.inserts as f64
    }

    /// Fraction of delete-mins served straight from the root.
    pub fn delete_root_hit_rate(&self) -> f64 {
        if self.delete_mins == 0 {
            return 0.0;
        }
        self.deletes_from_root as f64 / self.delete_mins as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = OpStats::new();
        OpStats::bump(&s.inserts);
        OpStats::bump(&s.inserts);
        OpStats::add(&s.items_inserted, 17);
        let snap = s.snapshot();
        assert_eq!(snap.inserts, 2);
        assert_eq!(snap.items_inserted, 17);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn rates() {
        let snap = StatsSnapshot {
            inserts: 10,
            inserts_buffered: 9,
            delete_mins: 4,
            deletes_from_root: 1,
            ..Default::default()
        };
        assert!((snap.insert_buffer_hit_rate() - 0.9).abs() < 1e-12);
        assert!((snap.delete_root_hit_rate() - 0.25).abs() < 1e-12);
        assert_eq!(StatsSnapshot::default().insert_buffer_hit_rate(), 0.0);
    }

    #[test]
    fn stats_are_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<OpStats>();
    }
}
