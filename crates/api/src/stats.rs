//! Lightweight operation counters.
//!
//! Every queue implementation exposes an [`OpStats`] so the bench harness
//! can report *why* a design is fast or slow: how many heapify walks were
//! avoided by the partial buffer, how often delete-min was served straight
//! from the root cache, how often the TARGET/MARKED collaboration fired —
//! the mechanisms §4.3 of the paper credits for BGPQ's performance.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of batch-occupancy histogram buckets in [`OpStats`]. Bucket
/// `i` counts issued batches whose fill fraction `filled / capacity`
/// fell in `(i/B, (i+1)/B]` — bucket 0 is near-empty batches (the
/// single-op traffic the coalescing front exists to fix), bucket
/// `B - 1` is full `k`-wide batches.
pub const OCCUPANCY_BUCKETS: usize = 8;

/// Histogram bucket for a batch that moved `filled` of a possible
/// `capacity` items. `filled = 0` (an empty delete) lands in bucket 0
/// alongside the near-empty batches.
#[inline]
pub fn occupancy_bucket(filled: usize, capacity: usize) -> usize {
    debug_assert!(capacity >= 1, "batch capacity must be at least 1");
    debug_assert!(filled <= capacity, "batch cannot exceed its capacity");
    if filled == 0 {
        return 0;
    }
    // ceil(filled * B / capacity) - 1, clamped into range.
    ((filled * OCCUPANCY_BUCKETS).div_ceil(capacity) - 1).min(OCCUPANCY_BUCKETS - 1)
}

/// Atomic counters. All increments are `Relaxed`: these are statistics,
/// not synchronization.
#[derive(Debug, Default)]
pub struct OpStats {
    /// Completed INSERT operations.
    pub inserts: AtomicU64,
    /// Completed DELETEMIN operations.
    pub delete_mins: AtomicU64,
    /// Items moved by INSERTs (batch sizes summed).
    pub items_inserted: AtomicU64,
    /// Items returned by DELETEMINs.
    pub items_deleted: AtomicU64,
    /// INSERTs fully absorbed by root + partial buffer (no heapify).
    pub inserts_buffered: AtomicU64,
    /// Full insert-heapify walks (buffer overflow path).
    pub insert_heapifies: AtomicU64,
    /// DELETEMINs served entirely from the root node (no heapify).
    pub deletes_from_root: AtomicU64,
    /// Full delete-heapify walks (root refill path).
    pub delete_heapifies: AtomicU64,
    /// TARGET/MARKED collaborations: a delete stole an in-flight
    /// insertion's keys to refill the root.
    pub collaborations: AtomicU64,
    /// Lock acquisitions (when the implementation counts them).
    pub lock_acquisitions: AtomicU64,
    /// Failed first lock attempts, i.e. contention events.
    pub lock_contended: AtomicU64,
    /// Lock acquisitions abandoned by the platform watchdog.
    pub lock_timeouts: AtomicU64,
    /// Bounded waits (MARKED spin / TARGET wait) that escalated from
    /// cheap backoff to the platform's long backoff.
    pub spin_escalations: AtomicU64,
    /// Transitions of a queue into the poisoned state (crashed or
    /// timed-out worker detected mid-operation).
    pub poison_events: AtomicU64,
    /// Shards quarantined by a sharded router after this queue (or a
    /// sibling) failed.
    pub shard_quarantines: AtomicU64,
    /// Salvage passes that rebuilt this queue from poisoned node
    /// storage (see the `bgpq-recover` crate): the queue was reset to
    /// a fresh empty state after its surviving keys were walked out.
    pub salvages: AtomicU64,
    /// Insertion-buffer flushes by a buffered front: a worker's staged
    /// inserts were pushed to the backend as batches.
    pub buffer_flushes: AtomicU64,
    /// Items moved by insertion-buffer flushes (staged batch sizes
    /// summed; `buffer_flush_items / buffer_flushes` is the mean flush
    /// occupancy).
    pub buffer_flush_items: AtomicU64,
    /// Deletion-buffer refills by a buffered front: one wide delete-min
    /// issued against a backend to restock a worker-local buffer.
    pub buffer_refills: AtomicU64,
    /// Items fetched by deletion-buffer refills
    /// (`buffer_refill_items / buffer_refills` is the mean refill
    /// occupancy the acceptance gates compare against `k/2`).
    pub buffer_refill_items: AtomicU64,
    /// Refills that reused the previously sampled shard instead of
    /// re-sampling (sticky selection hits).
    pub sticky_reuses: AtomicU64,
    /// Refills that ran a fresh `c`-of-`S` sample (sticky tenure
    /// expired, first refill, or the sticky shard went empty/dead).
    pub sticky_resamples: AtomicU64,
    /// Batch-occupancy histogram: how full each issued batch was
    /// relative to the capacity it could have used (see
    /// [`occupancy_bucket`]). Every front that issues batches — the
    /// heap itself, the shard router, the coalescing combiner —
    /// records into the same shape so their reports merge.
    pub batch_occupancy: [AtomicU64; OCCUPANCY_BUCKETS],
}

impl OpStats {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one issued batch that moved `filled` of a possible
    /// `capacity` items into the occupancy histogram.
    #[inline]
    pub fn record_batch_occupancy(&self, filled: usize, capacity: usize) {
        self.batch_occupancy[occupancy_bucket(filled, capacity)].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot all counters (for printing / assertions).
    pub fn snapshot(&self) -> StatsSnapshot {
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            inserts: ld(&self.inserts),
            delete_mins: ld(&self.delete_mins),
            items_inserted: ld(&self.items_inserted),
            items_deleted: ld(&self.items_deleted),
            inserts_buffered: ld(&self.inserts_buffered),
            insert_heapifies: ld(&self.insert_heapifies),
            deletes_from_root: ld(&self.deletes_from_root),
            delete_heapifies: ld(&self.delete_heapifies),
            collaborations: ld(&self.collaborations),
            lock_acquisitions: ld(&self.lock_acquisitions),
            lock_contended: ld(&self.lock_contended),
            lock_timeouts: ld(&self.lock_timeouts),
            spin_escalations: ld(&self.spin_escalations),
            poison_events: ld(&self.poison_events),
            shard_quarantines: ld(&self.shard_quarantines),
            salvages: ld(&self.salvages),
            buffer_flushes: ld(&self.buffer_flushes),
            buffer_flush_items: ld(&self.buffer_flush_items),
            buffer_refills: ld(&self.buffer_refills),
            buffer_refill_items: ld(&self.buffer_refill_items),
            sticky_reuses: ld(&self.sticky_reuses),
            sticky_resamples: ld(&self.sticky_resamples),
            batch_occupancy: std::array::from_fn(|i| ld(&self.batch_occupancy[i])),
        }
    }

    /// Fold `other`'s counters into `self` — how a sharded frontend
    /// aggregates its per-shard counters into one report. `other` is
    /// left untouched; concurrent increments on either side are safe
    /// (each counter is summed with one relaxed read-modify-write).
    pub fn merge(&self, other: &OpStats) {
        let fold = |dst: &AtomicU64, src: &AtomicU64| {
            dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        };
        fold(&self.inserts, &other.inserts);
        fold(&self.delete_mins, &other.delete_mins);
        fold(&self.items_inserted, &other.items_inserted);
        fold(&self.items_deleted, &other.items_deleted);
        fold(&self.inserts_buffered, &other.inserts_buffered);
        fold(&self.insert_heapifies, &other.insert_heapifies);
        fold(&self.deletes_from_root, &other.deletes_from_root);
        fold(&self.delete_heapifies, &other.delete_heapifies);
        fold(&self.collaborations, &other.collaborations);
        fold(&self.lock_acquisitions, &other.lock_acquisitions);
        fold(&self.lock_contended, &other.lock_contended);
        fold(&self.lock_timeouts, &other.lock_timeouts);
        fold(&self.spin_escalations, &other.spin_escalations);
        fold(&self.poison_events, &other.poison_events);
        fold(&self.shard_quarantines, &other.shard_quarantines);
        fold(&self.salvages, &other.salvages);
        fold(&self.buffer_flushes, &other.buffer_flushes);
        fold(&self.buffer_flush_items, &other.buffer_flush_items);
        fold(&self.buffer_refills, &other.buffer_refills);
        fold(&self.buffer_refill_items, &other.buffer_refill_items);
        fold(&self.sticky_reuses, &other.sticky_reuses);
        fold(&self.sticky_resamples, &other.sticky_resamples);
        for (dst, src) in self.batch_occupancy.iter().zip(&other.batch_occupancy) {
            fold(dst, src);
        }
    }

    /// Reset all counters to zero (between bench trials).
    pub fn reset(&self) {
        let st = |c: &AtomicU64| c.store(0, Ordering::Relaxed);
        st(&self.inserts);
        st(&self.delete_mins);
        st(&self.items_inserted);
        st(&self.items_deleted);
        st(&self.inserts_buffered);
        st(&self.insert_heapifies);
        st(&self.deletes_from_root);
        st(&self.delete_heapifies);
        st(&self.collaborations);
        st(&self.lock_acquisitions);
        st(&self.lock_contended);
        st(&self.lock_timeouts);
        st(&self.spin_escalations);
        st(&self.poison_events);
        st(&self.shard_quarantines);
        st(&self.salvages);
        st(&self.buffer_flushes);
        st(&self.buffer_flush_items);
        st(&self.buffer_refills);
        st(&self.buffer_refill_items);
        st(&self.sticky_reuses);
        st(&self.sticky_resamples);
        for b in &self.batch_occupancy {
            st(b);
        }
    }
}

/// Plain-data snapshot of [`OpStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub inserts: u64,
    pub delete_mins: u64,
    pub items_inserted: u64,
    pub items_deleted: u64,
    pub inserts_buffered: u64,
    pub insert_heapifies: u64,
    pub deletes_from_root: u64,
    pub delete_heapifies: u64,
    pub collaborations: u64,
    pub lock_acquisitions: u64,
    pub lock_contended: u64,
    pub lock_timeouts: u64,
    pub spin_escalations: u64,
    pub poison_events: u64,
    pub shard_quarantines: u64,
    pub salvages: u64,
    pub buffer_flushes: u64,
    pub buffer_flush_items: u64,
    pub buffer_refills: u64,
    pub buffer_refill_items: u64,
    pub sticky_reuses: u64,
    pub sticky_resamples: u64,
    pub batch_occupancy: [u64; OCCUPANCY_BUCKETS],
}

impl std::ops::Add for StatsSnapshot {
    type Output = StatsSnapshot;

    fn add(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            inserts: self.inserts + rhs.inserts,
            delete_mins: self.delete_mins + rhs.delete_mins,
            items_inserted: self.items_inserted + rhs.items_inserted,
            items_deleted: self.items_deleted + rhs.items_deleted,
            inserts_buffered: self.inserts_buffered + rhs.inserts_buffered,
            insert_heapifies: self.insert_heapifies + rhs.insert_heapifies,
            deletes_from_root: self.deletes_from_root + rhs.deletes_from_root,
            delete_heapifies: self.delete_heapifies + rhs.delete_heapifies,
            collaborations: self.collaborations + rhs.collaborations,
            lock_acquisitions: self.lock_acquisitions + rhs.lock_acquisitions,
            lock_contended: self.lock_contended + rhs.lock_contended,
            lock_timeouts: self.lock_timeouts + rhs.lock_timeouts,
            spin_escalations: self.spin_escalations + rhs.spin_escalations,
            poison_events: self.poison_events + rhs.poison_events,
            shard_quarantines: self.shard_quarantines + rhs.shard_quarantines,
            salvages: self.salvages + rhs.salvages,
            buffer_flushes: self.buffer_flushes + rhs.buffer_flushes,
            buffer_flush_items: self.buffer_flush_items + rhs.buffer_flush_items,
            buffer_refills: self.buffer_refills + rhs.buffer_refills,
            buffer_refill_items: self.buffer_refill_items + rhs.buffer_refill_items,
            sticky_reuses: self.sticky_reuses + rhs.sticky_reuses,
            sticky_resamples: self.sticky_resamples + rhs.sticky_resamples,
            batch_occupancy: std::array::from_fn(|i| {
                self.batch_occupancy[i] + rhs.batch_occupancy[i]
            }),
        }
    }
}

impl std::iter::Sum for StatsSnapshot {
    fn sum<I: Iterator<Item = StatsSnapshot>>(iter: I) -> StatsSnapshot {
        iter.fold(StatsSnapshot::default(), std::ops::Add::add)
    }
}

impl StatsSnapshot {
    /// Fraction of inserts that avoided a heapify — the partial-buffer
    /// batching win the paper describes in §4.3.
    pub fn insert_buffer_hit_rate(&self) -> f64 {
        if self.inserts == 0 {
            return 0.0;
        }
        self.inserts_buffered as f64 / self.inserts as f64
    }

    /// Fraction of delete-mins served straight from the root.
    pub fn delete_root_hit_rate(&self) -> f64 {
        if self.delete_mins == 0 {
            return 0.0;
        }
        self.deletes_from_root as f64 / self.delete_mins as f64
    }

    /// Mean items fetched per deletion-buffer refill (0.0 when no
    /// refill ran). The buffered-front acceptance gates compare this
    /// against `k/2`.
    pub fn mean_refill_occupancy(&self) -> f64 {
        if self.buffer_refills == 0 {
            return 0.0;
        }
        self.buffer_refill_items as f64 / self.buffer_refills as f64
    }

    /// Fraction of shard-sourced refills that reused the sticky shard
    /// instead of running a fresh sample (0.0 when no refill ran).
    pub fn sticky_reuse_rate(&self) -> f64 {
        let total = self.sticky_reuses + self.sticky_resamples;
        if total == 0 {
            return 0.0;
        }
        self.sticky_reuses as f64 / total as f64
    }

    /// Total batches recorded into the occupancy histogram.
    pub fn batches_recorded(&self) -> u64 {
        self.batch_occupancy.iter().sum()
    }

    /// Mean fill fraction of recorded batches, estimated from bucket
    /// midpoints (0.0 when nothing was recorded). Exact means come
    /// from `items_inserted / inserts`; this estimator exists so the
    /// histogram alone tells a coherent story in reports.
    pub fn mean_occupancy_estimate(&self) -> f64 {
        let total = self.batches_recorded();
        if total == 0 {
            return 0.0;
        }
        let b = OCCUPANCY_BUCKETS as f64;
        let weighted: f64 = self
            .batch_occupancy
            .iter()
            .enumerate()
            .map(|(i, &n)| n as f64 * (i as f64 + 0.5) / b)
            .sum();
        weighted / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = OpStats::new();
        OpStats::bump(&s.inserts);
        OpStats::bump(&s.inserts);
        OpStats::add(&s.items_inserted, 17);
        let snap = s.snapshot();
        assert_eq!(snap.inserts, 2);
        assert_eq!(snap.items_inserted, 17);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn rates() {
        let snap = StatsSnapshot {
            inserts: 10,
            inserts_buffered: 9,
            delete_mins: 4,
            deletes_from_root: 1,
            ..Default::default()
        };
        assert!((snap.insert_buffer_hit_rate() - 0.9).abs() < 1e-12);
        assert!((snap.delete_root_hit_rate() - 0.25).abs() < 1e-12);
        assert_eq!(StatsSnapshot::default().insert_buffer_hit_rate(), 0.0);
    }

    #[test]
    fn merge_sums_every_counter() {
        let a = OpStats::new();
        let b = OpStats::new();
        // Distinct primes per counter so a missed field can't cancel out.
        fn fields(s: &OpStats) -> [(&AtomicU64, u64); 24] {
            [
                (&s.inserts, 2u64),
                (&s.delete_mins, 3),
                (&s.items_inserted, 5),
                (&s.items_deleted, 7),
                (&s.inserts_buffered, 11),
                (&s.insert_heapifies, 13),
                (&s.deletes_from_root, 17),
                (&s.delete_heapifies, 19),
                (&s.collaborations, 23),
                (&s.lock_acquisitions, 29),
                (&s.lock_contended, 31),
                (&s.lock_timeouts, 37),
                (&s.spin_escalations, 41),
                (&s.poison_events, 43),
                (&s.shard_quarantines, 47),
                (&s.salvages, 53),
                (&s.buffer_flushes, 59),
                (&s.buffer_flush_items, 61),
                (&s.buffer_refills, 67),
                (&s.buffer_refill_items, 71),
                (&s.sticky_reuses, 73),
                (&s.sticky_resamples, 79),
                (&s.batch_occupancy[0], 83),
                (&s.batch_occupancy[OCCUPANCY_BUCKETS - 1], 89),
            ]
        }
        for (c, n) in fields(&a) {
            OpStats::add(c, n);
        }
        for (c, n) in fields(&b) {
            OpStats::add(c, 10 * n);
        }
        a.merge(&b);
        let merged = a.snapshot();
        assert_eq!(merged.inserts, 22);
        assert_eq!(merged.lock_contended, 341);
        // merge must agree with snapshot addition, and leave `other` alone.
        let c = OpStats::new();
        for (cnt, n) in fields(&c) {
            OpStats::add(cnt, n);
        }
        assert_eq!(merged + c.snapshot(), {
            let d = OpStats::new();
            d.merge(&a);
            d.merge(&c);
            d.snapshot()
        });
        assert_eq!(b.snapshot().inserts, 20);
    }

    #[test]
    fn snapshot_sum_folds() {
        let mk = |n: u64| StatsSnapshot { inserts: n, items_deleted: 2 * n, ..Default::default() };
        let total: StatsSnapshot = [mk(1), mk(2), mk(3)].into_iter().sum();
        assert_eq!(total.inserts, 6);
        assert_eq!(total.items_deleted, 12);
    }

    #[test]
    fn buffer_front_rates() {
        let snap = StatsSnapshot {
            buffer_refills: 4,
            buffer_refill_items: 26,
            sticky_reuses: 3,
            sticky_resamples: 1,
            ..Default::default()
        };
        assert!((snap.mean_refill_occupancy() - 6.5).abs() < 1e-12);
        assert!((snap.sticky_reuse_rate() - 0.75).abs() < 1e-12);
        assert_eq!(StatsSnapshot::default().mean_refill_occupancy(), 0.0);
        assert_eq!(StatsSnapshot::default().sticky_reuse_rate(), 0.0);
    }

    #[test]
    fn stats_are_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<OpStats>();
    }

    #[test]
    fn occupancy_buckets_partition_the_fill_range() {
        // Full batches land in the top bucket regardless of capacity.
        for cap in [1usize, 2, 7, 8, 1024] {
            assert_eq!(occupancy_bucket(cap, cap), OCCUPANCY_BUCKETS - 1, "cap {cap}");
        }
        // A single item in a wide batch is near-empty.
        assert_eq!(occupancy_bucket(1, 1024), 0);
        assert_eq!(occupancy_bucket(0, 8), 0, "empty result batches count as near-empty");
        // Half-full sits at the histogram midpoint boundary.
        assert_eq!(occupancy_bucket(512, 1024), OCCUPANCY_BUCKETS / 2 - 1);
        // Buckets are monotone in fill for a fixed capacity.
        let cap = 64;
        let mut prev = 0;
        for filled in 1..=cap {
            let b = occupancy_bucket(filled, cap);
            assert!(b >= prev, "bucket regressed at filled = {filled}");
            prev = b;
        }
    }

    #[test]
    fn occupancy_histogram_records_merges_and_resets() {
        let s = OpStats::new();
        s.record_batch_occupancy(1, 8); // bucket 0
        s.record_batch_occupancy(8, 8); // top bucket
        s.record_batch_occupancy(8, 8);
        let snap = s.snapshot();
        assert_eq!(snap.batch_occupancy[0], 1);
        assert_eq!(snap.batch_occupancy[OCCUPANCY_BUCKETS - 1], 2);
        assert_eq!(snap.batches_recorded(), 3);
        assert!(snap.mean_occupancy_estimate() > 0.5, "two full batches dominate");

        let other = OpStats::new();
        other.record_batch_occupancy(4, 8);
        s.merge(&other);
        assert_eq!(s.snapshot().batches_recorded(), 4);

        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
        assert_eq!(StatsSnapshot::default().mean_occupancy_estimate(), 0.0);
    }
}
