//! # pq-api — shared vocabulary for the BGPQ reproduction
//!
//! This crate defines the types and traits every other crate in the
//! workspace speaks:
//!
//! * [`KeyType`] / [`ValueType`] — bounds for priority-queue keys and
//!   payloads (keys are totally ordered `Copy` scalars, as in the paper,
//!   which evaluates 30/32-bit integer keys carrying a value payload).
//! * [`Entry`] — a `(key, value)` pair ordered by key.
//! * [`PriorityQueue`] — the classical single-item concurrent priority
//!   queue ADT (`INSERT`, `DELETEMIN`) implemented by all CPU baselines.
//! * [`BatchPriorityQueue`] — the batched ADT BGPQ exposes: insert **1..=k**
//!   items and delete the **1..=k** smallest items per call (§3.2 of the
//!   paper). Every [`PriorityQueue`] is trivially a [`BatchPriorityQueue`]
//!   via [`ItemwiseBatch`].
//! * [`OpStats`] — cheap atomic operation counters shared by all
//!   implementations so the bench harness can report contention metrics.
//! * [`QueueError`] — typed failures (`Full`, `Poisoned`, `LockTimeout`,
//!   `Unavailable`) returned by the hardened `try_*` queue entry points.
//! * [`RetryPolicy`] / [`Deadline`] / [`Retrying`] — bounded
//!   retry-with-backoff for the transient error classes, so callers
//!   ride out a lock-holder unwind or a front's recovery window
//!   without hand-rolled loops.
//! * [`ScratchSlot`] — the type-keyed per-worker parking spot through
//!   which queue implementations keep their hot-path scratch arenas
//!   alive between operations (zero steady-state allocations).
//!
//! The crate is dependency-free so that substrates (simulator, baselines)
//! can depend on it without pulling anything else in.

pub mod entry;
pub mod error;
pub mod key;
pub mod policy;
pub mod pq;
pub mod scratch;
pub mod stats;

pub use entry::Entry;
pub use error::QueueError;
pub use key::{KeyType, ValueType};
pub use policy::{BufferPolicy, Deadline, RetryPolicy, Retrying};
pub use pq::{
    BatchPriorityQueue, ItemwiseBatch, PriorityQueue, QueueFactory, TryBatchPriorityQueue,
};
pub use scratch::ScratchSlot;
pub use stats::{occupancy_bucket, OpStats, StatsSnapshot, OCCUPANCY_BUCKETS};
