//! `(key, value)` pairs ordered by key.

use crate::key::{KeyType, ValueType};

/// A `(key, value)` pair. Ordering (and therefore heap priority) is by
/// `key` only; `value` is an opaque payload carried alongside, matching
/// the paper's ADT where "the priority is associated with the key"
/// (§2.1).
#[derive(Clone, Copy, Debug, Default)]
pub struct Entry<K, V> {
    pub key: K,
    pub value: V,
}

impl<K: KeyType, V: ValueType> Entry<K, V> {
    #[inline]
    pub fn new(key: K, value: V) -> Self {
        Self { key, value }
    }

    /// The padding sentinel: key = `K::MAX_KEY`, default value. Sentinels
    /// compare greater than (or equal to) every real entry, so padded
    /// lanes sort to the tail of a batch exactly like `+inf` pads in the
    /// CUDA bitonic-sort tiles.
    #[inline]
    pub fn sentinel() -> Self {
        Self { key: K::MAX_KEY, value: V::default() }
    }

    /// True if this entry is the padding sentinel by key comparison.
    ///
    /// Note: a *real* entry whose key happens to equal `K::MAX_KEY` is
    /// indistinguishable from padding; the heap therefore documents that
    /// `K::MAX_KEY` is reserved (the paper's implementation has the same
    /// restriction: CBPQ's 30-bit keys leave headroom in a 32-bit word).
    #[inline]
    pub fn is_sentinel(&self) -> bool {
        self.key == K::MAX_KEY
    }
}

impl<K: KeyType, V: ValueType> PartialEq for Entry<K, V> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<K: KeyType, V: ValueType> Eq for Entry<K, V> {}

impl<K: KeyType, V: ValueType> PartialOrd for Entry<K, V> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: KeyType, V: ValueType> Ord for Entry<K, V> {
    #[inline]
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<K: KeyType, V: ValueType> From<(K, V)> for Entry<K, V> {
    #[inline]
    fn from((key, value): (K, V)) -> Self {
        Self { key, value }
    }
}

/// Convenience constructor for keys carrying no payload.
impl<K: KeyType> From<K> for Entry<K, ()> {
    #[inline]
    fn from(key: K) -> Self {
        Self { key, value: () }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_by_key_only() {
        let a = Entry::new(1u32, 99u64);
        let b = Entry::new(2u32, 0u64);
        let c = Entry::new(1u32, 0u64);
        assert!(a < b);
        assert_eq!(a, c);
        assert_eq!(a.cmp(&c), core::cmp::Ordering::Equal);
    }

    #[test]
    fn sentinel_sorts_last() {
        let mut v = [Entry::<u32, ()>::sentinel(), Entry::new(5u32, ()), Entry::new(0u32, ())];
        v.sort();
        assert_eq!(v[0].key, 0);
        assert_eq!(v[1].key, 5);
        assert!(v[2].is_sentinel());
    }

    #[test]
    fn from_tuple_and_key() {
        let e: Entry<u32, u8> = (3u32, 7u8).into();
        assert_eq!(e.key, 3);
        assert_eq!(e.value, 7);
        let e2: Entry<u32, ()> = 9u32.into();
        assert_eq!(e2.key, 9);
    }
}
