//! Per-worker scratch storage for allocation-free hot paths.
//!
//! The batched heap's steady-state operations need a handful of
//! buffers (a staging batch, merge scratch) whose size depends only on
//! the node capacity `k`. Allocating them per operation costs more
//! than the arithmetic they support; sharing them across workers would
//! reintroduce the contention the per-node locks avoid. So every
//! platform worker carries a [`ScratchSlot`]: a tiny type-keyed map in
//! which each *user* of the worker (the heap with its `OpScratch<K, V>`,
//! the shard router with its index buffers) parks exactly one arena
//! object between operations.
//!
//! The slot is deliberately dumb: it neither knows the arena types nor
//! their sizing. Users [`take`](ScratchSlot::take) their arena out by
//! type (so nested users — a router calling into a heap — never alias),
//! use it exclusively for the duration of one operation, and
//! [`put`](ScratchSlot::put) it back. A missing entry means "first
//! operation on this worker" (or an unwind discarded the arena mid-op):
//! the user allocates once and the slot retains it from then on.

use std::any::Any;

/// A type-keyed parking spot for per-worker scratch arenas.
///
/// Holds at most one value per concrete type. Lookups are a linear
/// scan over a boxed-slice-backed `Vec` — the slot holds one or two
/// entries in practice, so this beats any hashing scheme.
#[derive(Default)]
pub struct ScratchSlot {
    entries: Vec<Box<dyn Any + Send>>,
}

impl ScratchSlot {
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove and return the stored arena of type `T`, if present.
    /// While taken out, the slot holds no `T` — a reentrant taker sees
    /// `None` and builds its own, so aliasing is impossible by
    /// construction.
    pub fn take<T: Any + Send>(&mut self) -> Option<Box<T>> {
        let idx = self.entries.iter().position(|e| e.is::<T>())?;
        let boxed = self.entries.swap_remove(idx);
        // The position() check guarantees the downcast succeeds.
        Some(boxed.downcast::<T>().expect("type-checked entry"))
    }

    /// Park `arena` for the next operation. If an entry of the same
    /// type is already present (a put without a take — user bug, or a
    /// recursive user that built a second arena), the *new* value
    /// replaces it so repeated put/put cannot grow the slot unboundedly.
    pub fn put<T: Any + Send>(&mut self, arena: Box<T>) {
        if let Some(existing) = self.entries.iter_mut().find(|e| e.is::<T>()) {
            *existing = arena;
        } else {
            self.entries.push(arena);
        }
    }

    /// Number of parked arenas (diagnostics).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl std::fmt::Debug for ScratchSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchSlot").field("entries", &self.entries.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_of_missing_type_is_none() {
        let mut s = ScratchSlot::new();
        assert!(s.take::<Vec<u32>>().is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn roundtrip_retains_capacity() {
        let mut s = ScratchSlot::new();
        let mut v: Box<Vec<u32>> = Box::new(Vec::with_capacity(64));
        v.push(7);
        s.put(v);
        let got = s.take::<Vec<u32>>().expect("stored");
        assert_eq!(got[0], 7);
        assert!(got.capacity() >= 64);
        assert!(s.take::<Vec<u32>>().is_none(), "take removes the entry");
    }

    #[test]
    fn distinct_types_coexist() {
        let mut s = ScratchSlot::new();
        s.put(Box::new(vec![1u32]));
        s.put(Box::new(vec![2u64]));
        s.put(Box::new(String::from("x")));
        assert_eq!(s.len(), 3);
        assert_eq!(*s.take::<Vec<u64>>().unwrap(), vec![2u64]);
        assert_eq!(*s.take::<Vec<u32>>().unwrap(), vec![1u32]);
        assert_eq!(*s.take::<String>().unwrap(), "x");
    }

    #[test]
    fn double_put_replaces() {
        let mut s = ScratchSlot::new();
        s.put(Box::new(vec![1u32]));
        s.put(Box::new(vec![2u32, 3]));
        assert_eq!(s.len(), 1, "same type must not accumulate");
        assert_eq!(*s.take::<Vec<u32>>().unwrap(), vec![2u32, 3]);
    }
}
