//! Single-threaded stress tests for the batched heap: every code path
//! (buffer absorb, buffer overflow, root refill, buffer refill,
//! heapify descent) against a reference model, with invariant checks.

use bgpq::{BgpqOptions, CpuBgpq};
use pq_api::{BatchPriorityQueue, Entry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;

fn opts(k: usize, max_nodes: usize) -> BgpqOptions {
    BgpqOptions { node_capacity: k, max_nodes, ..Default::default() }
}

/// Reference: std binary heap as a min-queue over keys.
#[derive(Default)]
struct Model {
    heap: BinaryHeap<std::cmp::Reverse<u32>>,
}

impl Model {
    fn insert(&mut self, keys: &[u32]) {
        for &k in keys {
            self.heap.push(std::cmp::Reverse(k));
        }
    }
    fn delete(&mut self, n: usize) -> Vec<u32> {
        (0..n).filter_map(|_| self.heap.pop().map(|r| r.0)).collect()
    }
    fn len(&self) -> usize {
        self.heap.len()
    }
}

fn drive(k: usize, ops: usize, seed: u64, max_nodes: usize) {
    let q: CpuBgpq<u32, u32> = CpuBgpq::new(opts(k, max_nodes));
    let mut model = Model::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for step in 0..ops {
        if rng.gen_bool(0.55) || model.len() == 0 {
            let n = rng.gen_range(1..=k);
            let items: Vec<Entry<u32, u32>> = (0..n)
                .map(|_| {
                    let key = rng.gen_range(0..1u32 << 30);
                    Entry::new(key, key.wrapping_mul(31))
                })
                .collect();
            model.insert(&items.iter().map(|e| e.key).collect::<Vec<_>>());
            q.insert_batch(&items);
        } else {
            let n = rng.gen_range(1..=k);
            out.clear();
            let got = q.delete_min_batch(&mut out, n);
            let expect = model.delete(n);
            assert_eq!(got, expect.len(), "step {step}: wrong count");
            let got_keys: Vec<u32> = out.iter().map(|e| e.key).collect();
            assert_eq!(got_keys, expect, "step {step}: wrong keys");
            // Values must still correspond to their keys.
            for e in &out {
                assert_eq!(e.value, e.key.wrapping_mul(31), "step {step}: value detached from key");
            }
        }
        assert_eq!(q.len(), model.len(), "step {step}: length drift");
    }
    q.inner().check_invariants();
    // Drain fully and verify global sorted order.
    let mut rest = Vec::new();
    while q.delete_min_batch(&mut rest, k) > 0 {}
    let rest_keys: Vec<u32> = rest.iter().map(|e| e.key).collect();
    let expect = model.delete(model.len());
    assert_eq!(rest_keys, expect, "drain mismatch");
    assert_eq!(q.inner().check_invariants(), 0);
}

#[test]
fn random_ops_k4() {
    drive(4, 3000, 42, 256);
}

#[test]
fn random_ops_k1_degenerate_classic_heap() {
    drive(1, 1500, 7, 2048);
}

#[test]
fn random_ops_k16() {
    drive(16, 1500, 99, 256);
}

#[test]
fn random_ops_k3_non_power_of_two() {
    drive(3, 2000, 1234, 512);
}

#[test]
fn random_ops_k64_large_batches() {
    drive(64, 600, 5, 64);
}

#[test]
fn ascending_then_drain() {
    let q: CpuBgpq<u32, ()> = CpuBgpq::new(opts(8, 128));
    for chunk in (0..512u32).collect::<Vec<_>>().chunks(8) {
        let items: Vec<Entry<u32, ()>> = chunk.iter().map(|&k| Entry::new(k, ())).collect();
        q.insert_batch(&items);
    }
    q.inner().check_invariants();
    let mut out = Vec::new();
    while q.delete_min_batch(&mut out, 8) > 0 {}
    let keys: Vec<u32> = out.iter().map(|e| e.key).collect();
    assert_eq!(keys, (0..512).collect::<Vec<_>>());
}

#[test]
fn descending_then_drain() {
    let q: CpuBgpq<u32, ()> = CpuBgpq::new(opts(8, 128));
    for chunk in (0..512u32).rev().collect::<Vec<_>>().chunks(8) {
        let items: Vec<Entry<u32, ()>> = chunk.iter().map(|&k| Entry::new(k, ())).collect();
        q.insert_batch(&items);
    }
    let mut out = Vec::new();
    while q.delete_min_batch(&mut out, 8) > 0 {}
    let keys: Vec<u32> = out.iter().map(|e| e.key).collect();
    assert_eq!(keys, (0..512).collect::<Vec<_>>());
}

#[test]
fn duplicate_keys_everywhere() {
    let q: CpuBgpq<u32, u32> = CpuBgpq::new(opts(4, 64));
    for i in 0..32u32 {
        q.insert_batch(&[Entry::new(7, i), Entry::new(7, i + 100), Entry::new(3, i + 200)]);
    }
    let mut out = Vec::new();
    while q.delete_min_batch(&mut out, 4) > 0 {}
    assert_eq!(out.len(), 96);
    assert!(out[..32].iter().all(|e| e.key == 3));
    assert!(out[32..].iter().all(|e| e.key == 7));
}

#[test]
fn delete_from_empty_returns_zero() {
    let q: CpuBgpq<u32, ()> = CpuBgpq::new(opts(4, 16));
    let mut out = Vec::new();
    assert_eq!(q.delete_min_batch(&mut out, 4), 0);
    assert!(out.is_empty());
    // Insert then over-delete.
    q.insert_batch(&[Entry::new(1, ()), Entry::new(2, ())]);
    assert_eq!(q.delete_min_batch(&mut out, 4), 2);
    assert_eq!(q.delete_min_batch(&mut out, 1), 0);
}

#[test]
fn interleaved_refill_from_buffer_only() {
    // Keep fewer than k keys around so everything lives in root+buffer.
    let q: CpuBgpq<u32, ()> = CpuBgpq::new(opts(8, 16));
    let mut out = Vec::new();
    for round in 0..50u32 {
        q.insert_batch(&[Entry::new(round * 2, ()), Entry::new(round * 2 + 1, ())]);
        out.clear();
        assert_eq!(q.delete_min_batch(&mut out, 2), 2);
        assert_eq!(out[0].key, round * 2);
        assert_eq!(out[1].key, round * 2 + 1);
        q.inner().check_invariants();
    }
    assert!(q.is_empty());
}

#[test]
fn stats_reflect_buffering_and_heapifies() {
    let q: CpuBgpq<u32, ()> = CpuBgpq::new(opts(8, 64));
    // 7 single-key inserts fit the buffer (7 < 8).
    for i in 0..7u32 {
        q.insert_batch(&[Entry::new(i, ())]);
    }
    let s = q.inner().stats().snapshot();
    assert_eq!(s.inserts, 7);
    assert_eq!(s.inserts_buffered, 7);
    assert_eq!(s.insert_heapifies, 0);
    // Two more overflow the buffer exactly once.
    q.insert_batch(&[Entry::new(100, ()), Entry::new(101, ())]);
    let s = q.inner().stats().snapshot();
    assert_eq!(s.insert_heapifies, 1);
}

#[test]
fn history_recording_sequential() {
    let q: CpuBgpq<u32, ()> = CpuBgpq::new(opts(4, 64)).with_history();
    let mut rng = StdRng::seed_from_u64(3);
    let mut out = Vec::new();
    for _ in 0..500 {
        if rng.gen_bool(0.5) {
            let n = rng.gen_range(1..=4usize);
            let items: Vec<Entry<u32, ()>> =
                (0..n).map(|_| Entry::new(rng.gen_range(0..1000), ())).collect();
            q.insert_batch(&items);
        } else {
            out.clear();
            q.delete_min_batch(&mut out, rng.gen_range(1..=4));
        }
    }
    let events = q.inner().take_history();
    assert!(bgpq::check_history(&events).is_none(), "sequential history must linearize");
}

#[test]
fn capacity_overflow_panics_with_clear_message() {
    let q: CpuBgpq<u32, ()> = CpuBgpq::new(opts(2, 2));
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for i in 0..64u32 {
            q.insert_batch(&[Entry::new(i, ()), Entry::new(i + 1, ())]);
        }
    }));
    let err = r.expect_err("must overflow");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("out of node slots"), "got: {msg}");
}

#[test]
fn large_sequential_run_matches_model() {
    drive(32, 800, 2024, 128);
}

#[test]
fn drain_returns_everything_sorted() {
    use bgpq_runtime::CpuWorker;
    let q: CpuBgpq<u32, u32> = CpuBgpq::new(opts(8, 64));
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..20 {
        let items: Vec<Entry<u32, u32>> =
            (0..8).map(|_| Entry::new(rng.gen_range(0..1000), 0)).collect();
        q.insert_batch(&items);
    }
    let mut out = Vec::new();
    let mut w = CpuWorker::new();
    let n = q.inner().drain(&mut w, &mut out);
    assert_eq!(n, 160);
    assert!(out.windows(2).all(|p| p[0].key <= p[1].key));
    assert!(q.is_empty());
    assert_eq!(q.inner().drain(&mut w, &mut out), 0, "second drain finds nothing");
}

#[test]
fn clear_empties_the_queue() {
    use bgpq_runtime::CpuWorker;
    let q: CpuBgpq<u32, ()> = CpuBgpq::new(opts(4, 64));
    for i in 0..30u32 {
        q.insert_batch(&[Entry::new(i, ()), Entry::new(i + 100, ())]);
    }
    let mut w = CpuWorker::new();
    assert_eq!(q.inner().clear(&mut w), 60);
    assert!(q.is_empty());
    assert_eq!(q.inner().check_invariants(), 0);
    // Queue remains usable after clear.
    q.insert_batch(&[Entry::new(5, ())]);
    assert_eq!(q.len(), 1);
}

#[test]
fn delete_up_to_spans_multiple_node_batches() {
    use bgpq_runtime::CpuWorker;
    let q: CpuBgpq<u32, u32> = CpuBgpq::new(opts(4, 64));
    let mut w = CpuWorker::new();
    let keys: Vec<u32> = (0..30u32).rev().collect();
    q.inner().insert_all(&mut w, keys.iter().map(|&k| Entry::new(k, k)));
    let mut out = Vec::new();
    // Wider than k: three full inner batches plus a partial one.
    let got = q.inner().try_delete_up_to(&mut w, &mut out, 14).unwrap();
    assert_eq!(got, 14);
    assert_eq!(out.iter().map(|e| e.key).collect::<Vec<_>>(), (0..14).collect::<Vec<_>>());
    // Short queue: stops early with whatever is left.
    out.clear();
    let got = q.inner().try_delete_up_to(&mut w, &mut out, 100).unwrap();
    assert_eq!(got, 16);
    assert!(q.is_empty());
    // Empty queue: Ok(0), nothing appended.
    out.clear();
    assert_eq!(q.inner().try_delete_up_to(&mut w, &mut out, 9).unwrap(), 0);
    assert!(out.is_empty());
}

#[test]
fn capacity_accessor() {
    let q: CpuBgpq<u32, ()> = CpuBgpq::new(opts(8, 16));
    assert_eq!(q.inner().capacity_items(), 8 * 16);
}

#[test]
fn queue_survives_capacity_panic() {
    // The capacity-exceeded panic must release the root lock so the
    // queue remains usable (keys beyond capacity are dropped).
    let q: CpuBgpq<u32, ()> = CpuBgpq::new(opts(2, 3));
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for i in 0..64u32 {
            q.insert_batch(&[Entry::new(i, ()), Entry::new(i + 1, ())]);
        }
    }));
    assert!(r.is_err(), "must hit the capacity panic");
    // Subsequent operations still work — the root lock was released.
    let mut out = Vec::new();
    let got = q.delete_min_batch(&mut out, 2);
    assert!(got > 0, "queue must remain usable after a capacity panic");
    while q.delete_min_batch(&mut out, 2) > 0 {}
    assert!(q.is_empty());
    q.insert_batch(&[Entry::new(9, ())]);
    assert_eq!(q.len(), 1);
}

// ----------------------------------------------------------------------
// Failure hardening: try_* APIs, backpressure, poisoning
// ----------------------------------------------------------------------

#[test]
fn try_insert_full_loses_no_keys() {
    // k = 2, max_nodes = 2 → 4 heap slots + 1 buffer slot.
    let q: CpuBgpq<u32, u32> = CpuBgpq::new(opts(2, 2));
    let mut accepted: Vec<u32> = Vec::new();
    let mut refused = 0usize;
    for i in 0..64u32 {
        let batch = [Entry::new(i, i), Entry::new(i + 1000, i)];
        match q.try_insert_batch(&batch) {
            Ok(()) => accepted.extend(batch.iter().map(|e| e.key)),
            Err(bgpq::QueueError::Full { max_nodes }) => {
                assert_eq!(max_nodes, 2);
                refused += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
        // A refused batch must not change the count.
        assert_eq!(q.len(), accepted.len(), "after batch {i}");
    }
    assert!(refused > 0, "queue must have refused something");
    assert!(!accepted.is_empty(), "queue must have accepted something");
    // Drain: exactly the accepted multiset comes back, sorted.
    let mut out = Vec::new();
    while q.try_delete_min_batch(&mut out, 2).expect("healthy queue") > 0 {}
    let mut got: Vec<u32> = out.iter().map(|e| e.key).collect();
    assert!(got.windows(2).all(|p| p[0] <= p[1]));
    got.sort_unstable();
    accepted.sort_unstable();
    assert_eq!(got, accepted, "Full refusal dropped or duplicated keys");
    q.inner().check_invariants();
}

#[test]
fn full_refusal_then_delete_makes_room() {
    let q: CpuBgpq<u32, ()> = CpuBgpq::new(opts(2, 2));
    while q.try_insert_batch(&[Entry::new(1, ()), Entry::new(2, ())]).is_ok() {}
    let n_before = q.len();
    let mut out = Vec::new();
    q.try_delete_min_batch(&mut out, 2).unwrap();
    // Backpressure is transient: space freed by the delete is reusable.
    q.try_insert_batch(&[Entry::new(3, ()), Entry::new(4, ())])
        .expect("insert after delete must succeed");
    assert_eq!(q.len(), n_before);
}

#[test]
fn injected_panic_poisons_queue_and_try_ops_refuse() {
    use bgpq_runtime::{CpuPlatform, FaultAction, FaultPlan, InjectionPoint};
    use std::sync::Arc;

    let o = opts(2, 64);
    let plan = Arc::new(FaultPlan::new().with_rule(
        InjectionPoint::MidInsertHeapify,
        1,
        FaultAction::Panic,
    ));
    let platform = CpuPlatform::new(o.max_nodes + 1).with_faults(plan);
    let q: CpuBgpq<u32, ()> = CpuBgpq::on_platform(platform, o);

    // Drive inserts until the injected panic fires mid-heapify.
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for i in 0..64u32 {
            q.insert_batch(&[Entry::new(i, ()), Entry::new(i + 100, ())]);
        }
    }));
    assert!(r.is_err(), "injected panic must surface");
    assert!(q.inner().is_poisoned(), "unwound critical section must poison");
    assert_eq!(q.inner().stats().snapshot().poison_events, 1);

    // Every subsequent operation refuses cleanly — and no lock is left
    // held, so these return instead of deadlocking.
    assert!(matches!(q.try_insert_batch(&[Entry::new(1, ())]), Err(bgpq::QueueError::Poisoned)));
    let mut out = Vec::new();
    assert!(matches!(q.try_delete_min_batch(&mut out, 2), Err(bgpq::QueueError::Poisoned)));
    assert!(out.is_empty(), "failed delete must not emit keys");
}

#[test]
fn poisoned_queue_reports_empty_min_hint() {
    use bgpq_runtime::{CpuPlatform, FaultAction, FaultPlan, InjectionPoint};
    use std::sync::Arc;

    let o = opts(2, 64);
    let plan = Arc::new(FaultPlan::new().with_rule(
        InjectionPoint::MidDeleteHeapify,
        1,
        FaultAction::Panic,
    ));
    let platform = CpuPlatform::new(o.max_nodes + 1).with_faults(plan);
    let q: CpuBgpq<u32, ()> = CpuBgpq::on_platform(platform, o);
    for i in 0..16u32 {
        q.insert_batch(&[Entry::new(i, ()), Entry::new(i + 100, ())]);
    }
    let mut out = Vec::new();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for _ in 0..16 {
            q.delete_min_batch(&mut out, 2);
        }
    }));
    assert!(r.is_err(), "injected panic must surface");
    assert!(q.inner().is_poisoned());
    // The min hint is parked at "empty" so shard fronts stop sampling it.
    assert_eq!(q.inner().min_hint_bits(), u64::MAX);
}
