//! Property-based tests: arbitrary operation sequences against the
//! reference model, across node capacities and ablation settings.

use bgpq::{BgpqOptions, CpuBgpq};
use pq_api::{BatchPriorityQueue, Entry};
use proptest::prelude::*;
use std::collections::BinaryHeap;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u32>),
    Delete(usize),
}

fn ops_strategy(k: usize, len: usize) -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        proptest::collection::vec(any::<u32>().prop_map(|x| x % (1 << 30)), 1..=k)
            .prop_map(Op::Insert),
        (1..=k).prop_map(Op::Delete),
    ];
    proptest::collection::vec(op, 1..len)
}

fn run_against_model(k: usize, opts: BgpqOptions, ops: &[Op]) -> Result<(), TestCaseError> {
    let q: CpuBgpq<u32, ()> = CpuBgpq::new(opts);
    let mut model: BinaryHeap<std::cmp::Reverse<u32>> = BinaryHeap::new();
    let mut out = Vec::new();
    for op in ops {
        match op {
            Op::Insert(keys) => {
                let items: Vec<Entry<u32, ()>> = keys.iter().map(|&x| Entry::new(x, ())).collect();
                q.insert_batch(&items);
                for &x in keys {
                    model.push(std::cmp::Reverse(x));
                }
            }
            Op::Delete(n) => {
                out.clear();
                let got = q.delete_min_batch(&mut out, (*n).min(k));
                let mut expect = Vec::new();
                for _ in 0..(*n).min(k) {
                    match model.pop() {
                        Some(std::cmp::Reverse(x)) => expect.push(x),
                        None => break,
                    }
                }
                prop_assert_eq!(got, expect.len());
                let got_keys: Vec<u32> = out.iter().map(|e| e.key).collect();
                prop_assert_eq!(got_keys, expect);
            }
        }
        prop_assert_eq!(BatchPriorityQueue::<u32, ()>::len(&q), model.len());
    }
    q.inner().check_invariants();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matches_model_k4(ops in ops_strategy(4, 120)) {
        run_against_model(4, BgpqOptions { node_capacity: 4, max_nodes: 512, ..Default::default() }, &ops)?;
    }

    #[test]
    fn matches_model_k8_no_buffer(ops in ops_strategy(8, 80)) {
        let o = BgpqOptions {
            node_capacity: 8,
            max_nodes: 512,
            use_partial_buffer: false,
            ..Default::default()
        };
        run_against_model(8, o, &ops)?;
    }

    #[test]
    fn matches_model_k5_odd_capacity(ops in ops_strategy(5, 100)) {
        run_against_model(5, BgpqOptions { node_capacity: 5, max_nodes: 512, ..Default::default() }, &ops)?;
    }

    #[test]
    fn matches_model_k1(ops in ops_strategy(1, 80)) {
        run_against_model(1, BgpqOptions { node_capacity: 1, max_nodes: 512, ..Default::default() }, &ops)?;
    }

    #[test]
    fn history_always_linearizes(ops in ops_strategy(4, 60)) {
        let q: CpuBgpq<u32, ()> = CpuBgpq::new(BgpqOptions {
            node_capacity: 4,
            max_nodes: 512,
            ..Default::default()
        }).with_history();
        let mut out = Vec::new();
        for op in &ops {
            match op {
                Op::Insert(keys) => {
                    let items: Vec<Entry<u32, ()>> =
                        keys.iter().map(|&x| Entry::new(x, ())).collect();
                    q.insert_batch(&items);
                }
                Op::Delete(n) => {
                    out.clear();
                    q.delete_min_batch(&mut out, (*n).min(4));
                }
            }
        }
        let events = q.inner().take_history();
        prop_assert!(bgpq::check_history(&events).is_none());
    }
}
