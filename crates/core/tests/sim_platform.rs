//! BGPQ on the virtual-time GPU simulator: deterministic concurrent
//! interleavings (a seeded run always interleaves identically), virtual
//! makespans that show real parallel scaling, and a deterministic
//! trigger for the TARGET/MARKED collaboration protocol.

use bgpq::{check_history, Bgpq, BgpqOptions};
use bgpq_runtime::SimPlatform;
use gpu_sim::{launch, GpuConfig, SimReport};
use pq_api::Entry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

type SimQueue = Bgpq<u32, u32, SimPlatform>;

fn sim_queue(
    sched: &std::sync::Arc<gpu_sim::Scheduler>,
    cfg: &GpuConfig,
    opts: BgpqOptions,
) -> SimQueue {
    let platform = SimPlatform::new(sched, opts.max_nodes + 1, cfg.cost, cfg.block_dim);
    Bgpq::with_platform(platform, opts).with_history()
}

/// Each block inserts `rounds` random batches then deletes them back.
fn mixed_kernel(cfg: GpuConfig, k: usize, rounds: usize, seed: u64) -> (SimReport, SimQueue) {
    let opts = BgpqOptions {
        node_capacity: k,
        max_nodes: 4 * cfg.num_blocks * rounds + 8,
        ..Default::default()
    };
    launch(
        cfg,
        |sched| sim_queue(sched, &cfg, opts),
        move |ctx, q: &SimQueue| {
            let mut rng = StdRng::seed_from_u64(seed ^ ctx.block_id() as u64);
            let mut out = Vec::new();
            for _ in 0..rounds {
                if rng.gen_bool(0.5) {
                    let n = rng.gen_range(1..=k);
                    let items: Vec<Entry<u32, u32>> = (0..n)
                        .map(|_| Entry::new(rng.gen_range(0..1 << 30), ctx.block_id() as u32))
                        .collect();
                    q.insert(ctx.worker(), &items);
                } else {
                    let n = rng.gen_range(1..=k);
                    q.delete_min(ctx.worker(), &mut out, n);
                }
            }
        },
    )
}

#[test]
fn sim_history_linearizes() {
    let (report, q) = mixed_kernel(GpuConfig::new(8, 128), 8, 40, 0xC0FFEE);
    assert!(report.makespan_cycles > 0);
    let events = q.take_history();
    assert!(!events.is_empty());
    if let Some(v) = check_history(&events) {
        panic!("history violation at seq {}: {}", v.seq, v.detail);
    }
    q.check_invariants();
}

#[test]
fn sim_runs_are_deterministic() {
    let (r1, q1) = mixed_kernel(GpuConfig::new(6, 128), 4, 30, 42);
    let (r2, q2) = mixed_kernel(GpuConfig::new(6, 128), 4, 30, 42);
    assert_eq!(r1.makespan_cycles, r2.makespan_cycles);
    assert_eq!(r1.metrics, r2.metrics);
    assert_eq!(q1.len(), q2.len());
    let h1 = q1.take_history();
    let h2 = q2.take_history();
    assert_eq!(h1, h2, "interleavings must be identical");
}

#[test]
fn sim_collaboration_triggers_deterministically() {
    // Tiny nodes (k = 1) mean every insert heapifies to a TARGET node
    // and every delete refills from the last node — with several blocks
    // doing tight insert/delete pairs, a delete is bound to catch an
    // in-flight TARGET.
    let cfg = GpuConfig::new(8, 32);
    let opts = BgpqOptions { node_capacity: 1, max_nodes: 8192, ..Default::default() };
    let (_report, q) = launch(
        cfg,
        |sched| sim_queue(sched, &cfg, opts),
        |ctx, q: &SimQueue| {
            let mut out = Vec::new();
            let bid = ctx.block_id() as u32;
            for i in 0..60u32 {
                q.insert(ctx.worker(), &[Entry::new(i * 8 + bid, 0)]);
                q.delete_min(ctx.worker(), &mut out, 1);
            }
        },
    );
    let snap = q.stats().snapshot();
    eprintln!("sim collaborations: {}", snap.collaborations);
    let events = q.take_history();
    if let Some(v) = check_history(&events) {
        panic!("history violation at seq {}: {}", v.seq, v.detail);
    }
    q.check_invariants();
    assert!(
        snap.collaborations > 0,
        "expected TARGET/MARKED collaborations in this adversarial schedule"
    );
}

#[test]
fn sim_more_blocks_speed_up_bulk_insert_then_delete() {
    // The headline claim (Fig. 6c left side): more thread blocks ⇒ more
    // inter-node parallelism ⇒ smaller makespan, until contention.
    let total_batches = 64usize;
    let k = 64usize;
    let run = |blocks: usize| {
        let cfg = GpuConfig::new(blocks, 128);
        let opts = BgpqOptions {
            node_capacity: k,
            max_nodes: total_batches * 2 + 8,
            ..Default::default()
        };
        let per_block = total_batches / blocks;
        let (report, q) = launch(
            cfg,
            |sched| sim_queue(sched, &cfg, opts),
            move |ctx, q: &SimQueue| {
                let mut rng = StdRng::seed_from_u64(ctx.block_id() as u64);
                let mut out = Vec::new();
                for _ in 0..per_block {
                    let items: Vec<Entry<u32, u32>> =
                        (0..k).map(|_| Entry::new(rng.gen_range(0..1 << 30), 0)).collect();
                    q.insert(ctx.worker(), &items);
                }
                for _ in 0..per_block {
                    out.clear();
                    q.delete_min(ctx.worker(), &mut out, k);
                }
            },
        );
        q.check_invariants();
        report.makespan_cycles
    };
    let one = run(1);
    let four = run(4);
    let sixteen = run(16);
    eprintln!("makespans: 1 block={one}, 4 blocks={four}, 16 blocks={sixteen}");
    assert!(four < one, "4 blocks should beat 1 ({four} !< {one})");
    assert!(sixteen < one, "16 blocks should beat 1 ({sixteen} !< {one})");
}

#[test]
fn sim_larger_nodes_are_faster_per_key() {
    // Fig. 6a/6b shape: at fixed block size, larger node capacity gives
    // more intra-node parallelism, so cycles *per key* drop.
    let keys = 4096usize;
    let run = |k: usize| {
        let cfg = GpuConfig::new(4, 512);
        let opts =
            BgpqOptions { node_capacity: k, max_nodes: 2 * keys / k + 8, ..Default::default() };
        let per_block = keys / 4 / k;
        let (report, q) = launch(
            cfg,
            |sched| sim_queue(sched, &cfg, opts),
            move |ctx, q: &SimQueue| {
                let mut rng = StdRng::seed_from_u64(ctx.block_id() as u64);
                for _ in 0..per_block {
                    let items: Vec<Entry<u32, u32>> =
                        (0..k).map(|_| Entry::new(rng.gen_range(0..1 << 30), 0)).collect();
                    q.insert(ctx.worker(), &items);
                }
            },
        );
        q.check_invariants();
        report.makespan_cycles as f64 / keys as f64
    };
    let small = run(64);
    let large = run(1024);
    eprintln!("cycles/key: k=64 -> {small:.1}, k=1024 -> {large:.1}");
    assert!(large < small, "larger batches must amortize better: {large} !< {small}");
}

/// Schedule fuzzing: seeded tie-break randomization explores many
/// distinct legal interleavings; every one must linearize. This is the
/// closest thing to a model checker the suite has.
#[test]
fn fuzzed_schedules_all_linearize() {
    let mut distinct_makespans = std::collections::HashSet::new();
    for seed in 0..24u64 {
        let cfg = GpuConfig::new(6, 64).with_fuzz_seed(seed);
        let opts = BgpqOptions { node_capacity: 2, max_nodes: 4096, ..Default::default() };
        let (report, q) = launch(
            cfg,
            |sched| sim_queue(sched, &cfg, opts),
            |ctx, q: &SimQueue| {
                let bid = ctx.block_id() as u32;
                let mut out = Vec::new();
                for i in 0..25u32 {
                    q.insert(
                        ctx.worker(),
                        &[Entry::new(i * 16 + bid, 0), Entry::new(i * 16 + bid + 8, 0)],
                    );
                    out.clear();
                    q.delete_min(ctx.worker(), &mut out, 2);
                }
            },
        );
        distinct_makespans.insert(report.makespan_cycles);
        let events = q.take_history();
        if let Some(v) = check_history(&events) {
            panic!("seed {seed}: history violation at seq {}: {}", v.seq, v.detail);
        }
        q.check_invariants();
    }
    // Fuzzing must actually change the schedule.
    assert!(
        distinct_makespans.len() > 3,
        "expected diverse interleavings, got {} distinct makespans",
        distinct_makespans.len()
    );
}

/// The same fuzz seed reproduces the same interleaving exactly.
#[test]
fn fuzzed_schedule_is_reproducible_per_seed() {
    let run = |seed: u64| {
        let cfg = GpuConfig::new(4, 64).with_fuzz_seed(seed);
        let opts = BgpqOptions { node_capacity: 4, max_nodes: 1024, ..Default::default() };
        let (report, q) = launch(
            cfg,
            |sched| sim_queue(sched, &cfg, opts),
            |ctx, q: &SimQueue| {
                let bid = ctx.block_id() as u32;
                let mut out = Vec::new();
                for i in 0..15u32 {
                    q.insert(ctx.worker(), &[Entry::new(i * 8 + bid, 0)]);
                    out.clear();
                    q.delete_min(ctx.worker(), &mut out, 1);
                }
            },
        );
        (report.makespan_cycles, q.take_history())
    };
    let (m1, h1) = run(9);
    let (m2, h2) = run(9);
    assert_eq!(m1, m2);
    assert_eq!(h1, h2);
    let (m3, _) = run(10);
    let _ = m3; // may or may not differ; determinism per seed is the claim
}

/// The ablation modes must also survive fuzzed schedules.
#[test]
fn fuzzed_schedules_linearize_with_ablations_disabled() {
    for (collab, buffer) in [(false, true), (true, false), (false, false)] {
        for seed in 0..8u64 {
            let cfg = GpuConfig::new(5, 64).with_fuzz_seed(seed);
            let opts = BgpqOptions {
                node_capacity: 2,
                max_nodes: 4096,
                use_collaboration: collab,
                use_partial_buffer: buffer,
                ..Default::default()
            };
            let (_, q) = launch(
                cfg,
                |sched| sim_queue(sched, &cfg, opts),
                |ctx, q: &SimQueue| {
                    let bid = ctx.block_id() as u32;
                    let mut out = Vec::new();
                    for i in 0..20u32 {
                        q.insert(
                            ctx.worker(),
                            &[Entry::new(i * 8 + bid, 0), Entry::new(i * 8 + bid + 4, 0)],
                        );
                        out.clear();
                        q.delete_min(ctx.worker(), &mut out, 2);
                    }
                },
            );
            let events = q.take_history();
            if let Some(v) = check_history(&events) {
                panic!(
                    "collab={collab} buffer={buffer} seed={seed}: violation at seq {}: {}",
                    v.seq, v.detail
                );
            }
            q.check_invariants();
        }
    }
}
