//! Core-level salvage semantics: `Bgpq::salvage_reset` walks settled
//! keys out of node storage and resets the queue, on healthy and
//! poisoned instances alike. End-to-end recovery (lock force-reset,
//! report accounting, rebuild) lives in `bgpq-recover`.

use bgpq::{Bgpq, BgpqOptions, CpuBgpq};
use bgpq_runtime::{CpuPlatform, CpuWorker, FaultAction, FaultPlan, InjectionPoint};
use pq_api::{BatchPriorityQueue, Entry, QueueError};
use std::sync::Arc;
use std::time::Duration;

fn opts(k: usize, max_nodes: usize) -> BgpqOptions {
    BgpqOptions { node_capacity: k, max_nodes, ..Default::default() }
}

#[test]
fn healthy_queue_salvages_to_its_exact_contents() {
    let q: CpuBgpq<u32, u32> = CpuBgpq::new(opts(4, 64));
    let keys: Vec<u32> = (0..37).map(|i| (i * 7919) % 1000).collect();
    for chunk in keys.chunks(3) {
        q.insert_batch(&chunk.iter().map(|&k| Entry::new(k, k)).collect::<Vec<_>>());
    }
    let mut out = Vec::new();
    q.delete_min_batch(&mut out, 4);
    out.clear();

    let mut w = CpuWorker::new();
    let outcome = q.inner().salvage_reset(&mut w, &mut out);
    assert!(!outcome.was_poisoned);
    assert_eq!(outcome.recovered, keys.len() - 4);
    assert_eq!(outcome.expected, keys.len() - 4);
    assert_eq!(outcome.lost(), 0, "quiescent healthy salvage loses nothing");

    let mut expect: Vec<u32> = keys.clone();
    expect.sort_unstable();
    let mut got: Vec<u32> = out.iter().map(|e| e.key).collect();
    got.sort_unstable();
    assert_eq!(got, expect[4..].to_vec(), "salvage returns the exact multiset");

    // The queue is reset to a working empty state.
    assert_eq!(q.len(), 0);
    q.inner().check_invariants();
    q.insert_batch(&[Entry::new(5, 5)]);
    out.clear();
    assert_eq!(q.delete_min_batch(&mut out, 1), 1);
    assert_eq!(q.inner().stats().snapshot().salvages, 1);
}

#[test]
fn poisoned_queue_salvages_and_serves_again() {
    // Panic a worker mid delete-heapify so the queue poisons with keys
    // stranded inside the heap body.
    let plan = Arc::new(FaultPlan::new().with_rule(
        InjectionPoint::MidDeleteHeapify,
        2,
        FaultAction::Panic,
    ));
    let platform =
        CpuPlatform::new(129).with_watchdog(Duration::from_millis(200)).with_faults(plan.clone());
    let q: CpuBgpq<u32, u32> = CpuBgpq::on_platform(platform, opts(4, 128));

    let total = 200u32;
    q.insert_batch(&(0..total).map(|i| Entry::new(i, i)).collect::<Vec<_>>()[..4]);
    for chunk in (4..total).collect::<Vec<_>>().chunks(4) {
        q.insert_batch(&chunk.iter().map(|&k| Entry::new(k, k)).collect::<Vec<_>>());
    }
    let mut deleted: Vec<Entry<u32, u32>> = Vec::new();
    let mut poisoned = false;
    for _ in 0..total {
        // The injected fault panics the calling worker (as in a real
        // crash); the RAII guard poisons the queue on the way out.
        let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut batch = Vec::new();
            let r = q.try_delete_min_batch(&mut batch, 4);
            (r, batch)
        }));
        match step {
            Ok((Ok(0), _)) => break,
            Ok((Ok(_), batch)) => deleted.extend(batch),
            Ok((Err(_), _)) | Err(_) => {
                poisoned = true;
                break;
            }
        }
    }
    assert!(poisoned, "injected panic must surface");
    assert!(q.inner().is_poisoned());
    assert_eq!(q.try_insert_batch(&[Entry::new(1, 1)]), Err(QueueError::Poisoned));

    // Salvage: locks first (the crashed worker may have held some),
    // then walk + reset.
    q.inner().platform().force_reset_locks();
    let mut out = Vec::new();
    let mut w = CpuWorker::new();
    let outcome = q.inner().salvage_reset(&mut w, &mut out);
    assert!(outcome.was_poisoned);
    assert!(outcome.recovered > 0, "settled keys are recoverable");
    assert_eq!(outcome.recovered, out.len());

    // Conservation, conservatively: recovered + reported-lost covers
    // everything not already returned to callers.
    assert_eq!(outcome.recovered + outcome.lost(), outcome.expected);
    assert!(deleted.len() + outcome.recovered <= total as usize, "salvage must never invent keys");
    // No duplicates between what callers got and what salvage found.
    let mut all: Vec<u32> =
        deleted.iter().map(|e| e.key).chain(out.iter().map(|e| e.key)).collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), deleted.len() + out.len(), "a key was double-counted");

    // Back in service.
    assert!(!q.inner().is_poisoned());
    q.inner().check_invariants();
    q.insert_batch(&[Entry::new(9, 9), Entry::new(2, 2)]);
    out.clear();
    assert_eq!(q.delete_min_batch(&mut out, 2), 2);
    assert_eq!(out[0].key, 2);
}

#[test]
fn salvage_skips_inflight_target_nodes_and_reports_them() {
    // Build a queue, then hand-poison it with a node frozen in TARGET
    // state (as an inserter that died right after reserving it leaves
    // it). Reach in via the generic heap on a raw platform.
    let o = opts(2, 16);
    let platform = CpuPlatform::new(o.max_nodes + 1);
    let q: Bgpq<u32, u32, CpuPlatform> = Bgpq::with_platform(platform, o);
    let mut w = CpuWorker::new();
    for i in 0..5 {
        q.insert(&mut w, &[Entry::new(i * 2, 0), Entry::new(i * 2 + 1, 0)]);
    }
    let settled = q.len();

    // A crashed inserter: panic exactly when the target node is
    // reserved (first MidInsertHeapify hit has TARGET set).
    let plan = Arc::new(FaultPlan::new().with_rule(
        InjectionPoint::MidInsertHeapify,
        1,
        FaultAction::Panic,
    ));
    let platform2 = CpuPlatform::new(17).with_faults(plan);
    let q2: Bgpq<u32, u32, CpuPlatform> = Bgpq::with_platform(platform2, opts(2, 16));
    let mut lost_batch = false;
    for i in 0..12u32 {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut w2 = CpuWorker::new();
            q2.insert(&mut w2, &[Entry::new(100 + i, 0), Entry::new(200 + i, 0)]);
        }));
        if r.is_err() {
            lost_batch = true;
            break;
        }
    }
    assert!(lost_batch, "fault plan must kill one insert");
    assert!(q2.is_poisoned());
    q2.platform().force_reset_locks();
    let mut out = Vec::new();
    let outcome = q2.salvage_reset(&mut w, &mut out);
    assert!(outcome.skipped_target >= 1, "the reserved TARGET node is visible: {outcome:?}");
    assert!(outcome.lost() >= 2, "the in-flight batch is accounted lost, not silent");

    // And the first (healthy) queue still reports zero skips.
    let mut out1 = Vec::new();
    let o1 = q.salvage_reset(&mut w, &mut out1);
    assert_eq!(o1.skipped_target + o1.skipped_marked, 0);
    assert_eq!(o1.recovered, settled);
}

#[test]
fn salvage_walk_injection_point_can_refault_and_resalvage() {
    // A fault during the salvage walk unwinds before the reset — the
    // queue stays poisoned and a second salvage still recovers all.
    let o = opts(2, 32);
    let plan =
        Arc::new(FaultPlan::new().with_rule(InjectionPoint::SalvageWalk, 2, FaultAction::Panic));
    let platform = CpuPlatform::new(o.max_nodes + 1).with_faults(plan);
    let q: Bgpq<u32, u32, CpuPlatform> = Bgpq::with_platform(platform, o);
    let mut w = CpuWorker::new();
    for i in 0..10u32 {
        q.insert(&mut w, &[Entry::new(i, i), Entry::new(i + 50, i)]);
    }
    let settled = q.len();

    let mut out: Vec<Entry<u32, u32>> = Vec::new();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut w2 = CpuWorker::new();
        let mut partial = Vec::new();
        q.salvage_reset(&mut w2, &mut partial);
    }));
    assert!(r.is_err(), "salvage-walk fault fires");
    assert_eq!(q.stats().snapshot().salvages, 0, "aborted walk is not a salvage");

    // Storage untouched: a re-run recovers the full multiset.
    let outcome = q.salvage_reset(&mut w, &mut out);
    assert_eq!(outcome.recovered, settled);
    assert_eq!(outcome.lost(), 0);
    assert_eq!(q.stats().snapshot().salvages, 1);
    q.check_invariants();
}
