//! Metamorphic tests for the linearizability checker itself: histories
//! generated from a correct sequential model must always pass, and
//! random single-point corruptions must be caught.

use bgpq::{check_history, HistoryEvent, HistoryOp};
use proptest::prelude::*;
use std::collections::BinaryHeap;

/// Generate a *valid* history by simulating a sequential batched queue.
fn valid_history(ops: &[(bool, Vec<u32>, usize)]) -> Vec<HistoryEvent<u32>> {
    let mut model: BinaryHeap<std::cmp::Reverse<u32>> = BinaryHeap::new();
    let mut events = Vec::new();
    let mut clock = 0u64;
    for (i, (is_insert, keys, want)) in ops.iter().enumerate() {
        let seq = i as u64 + 1;
        let invoked = clock;
        clock += 1;
        let op = if *is_insert {
            for &k in keys {
                model.push(std::cmp::Reverse(k));
            }
            HistoryOp::Insert { keys: keys.clone() }
        } else {
            let n = (*want).max(1);
            let mut got = Vec::new();
            for _ in 0..n {
                match model.pop() {
                    Some(std::cmp::Reverse(k)) => got.push(k),
                    None => break,
                }
            }
            HistoryOp::DeleteMin { requested: n, keys: got }
        };
        let responded = clock;
        clock += 1;
        events.push(HistoryEvent { seq, invoked, responded, op });
    }
    events
}

fn ops_strategy() -> impl Strategy<Value = Vec<(bool, Vec<u32>, usize)>> {
    proptest::collection::vec(
        (any::<bool>(), proptest::collection::vec(0u32..1000, 1..5), 1usize..5),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn model_generated_histories_always_pass(ops in ops_strategy()) {
        let events = valid_history(&ops);
        prop_assert_eq!(check_history(&events), None);
    }

    #[test]
    fn corrupted_delete_results_are_caught(ops in ops_strategy(), pick in any::<prop::sample::Index>()) {
        let mut events = valid_history(&ops);
        // Find a delete that returned at least one key and corrupt it.
        let del_idxs: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(&e.op, HistoryOp::DeleteMin { keys, .. } if !keys.is_empty()))
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!del_idxs.is_empty());
        let idx = del_idxs[pick.index(del_idxs.len())];
        if let HistoryOp::DeleteMin { keys, .. } = &mut events[idx].op {
            // Shift a returned key above the key domain: it can never be
            // the model's minimum.
            keys[0] = 5_000;
        }
        prop_assert!(check_history(&events).is_some(), "corruption must be detected");
    }

    #[test]
    fn swapped_linearization_order_of_dependent_ops_is_caught(
        k in 0u32..100,
    ) {
        // Delete returns k before any insert of k happened.
        let events = vec![
            HistoryEvent {
                seq: 1,
                invoked: 0,
                responded: 1,
                op: HistoryOp::DeleteMin { requested: 1, keys: vec![k] },
            },
            HistoryEvent {
                seq: 2,
                invoked: 2,
                responded: 3,
                op: HistoryOp::Insert { keys: vec![k] },
            },
        ];
        prop_assert!(check_history(&events).is_some());
    }
}
