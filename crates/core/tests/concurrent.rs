//! Concurrent correctness: many real threads hammer one queue; we then
//! verify (a) the multiset of keys is conserved, (b) the heap invariants
//! hold at quiescence, and (c) the recorded root-lock history is a valid
//! linearization (mechanizing the paper's Section 5 argument).

use bgpq::{check_history, BgpqOptions, CpuBgpq};
use pq_api::{BatchPriorityQueue, Entry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

fn opts(k: usize, max_nodes: usize) -> BgpqOptions {
    BgpqOptions { node_capacity: k, max_nodes, ..Default::default() }
}

/// Run `threads` workers, each performing `ops` random batched ops.
/// Returns (queue, per-thread deleted keys).
fn hammer(
    q: &CpuBgpq<u32, u32>,
    threads: usize,
    ops: usize,
    seed: u64,
    insert_bias: f64,
) -> Vec<Entry<u32, u32>> {
    let k = q.batch_capacity();
    let uid = AtomicU64::new(0);
    let deleted: Vec<Entry<u32, u32>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let uid = &uid;
                let q = &q;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64));
                    let mut mine = Vec::new();
                    for _ in 0..ops {
                        if rng.gen_bool(insert_bias) {
                            let n = rng.gen_range(1..=k);
                            let items: Vec<Entry<u32, u32>> = (0..n)
                                .map(|_| {
                                    let id = uid.fetch_add(1, Ordering::Relaxed) as u32;
                                    Entry::new(rng.gen_range(0..1u32 << 30), id)
                                })
                                .collect();
                            q.insert_batch(&items);
                        } else {
                            let n = rng.gen_range(1..=k);
                            q.delete_min_batch(&mut mine, n);
                        }
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    deleted
}

#[test]
fn concurrent_multiset_conservation() {
    let q: CpuBgpq<u32, u32> = CpuBgpq::new(opts(8, 4096));
    let deleted = hammer(&q, 8, 400, 0xBEEF, 0.6);
    let in_queue = q.inner().check_invariants();
    let stats = q.inner().stats().snapshot();
    assert_eq!(
        stats.items_inserted,
        stats.items_deleted + in_queue as u64,
        "keys lost or duplicated"
    );
    // Unique payloads: no entry may be returned twice.
    let mut ids: Vec<u32> = deleted.iter().map(|e| e.value).collect();
    ids.sort_unstable();
    let before = ids.len();
    ids.dedup();
    assert_eq!(before, ids.len(), "an entry was delivered twice");
}

#[test]
fn concurrent_history_linearizes() {
    let q: CpuBgpq<u32, u32> = CpuBgpq::new(opts(4, 4096)).with_history();
    let _ = hammer(&q, 8, 300, 77, 0.55);
    let events = q.inner().take_history();
    assert!(!events.is_empty());
    if let Some(v) = check_history(&events) {
        panic!("history violation at seq {}: {}", v.seq, v.detail);
    }
}

#[test]
fn concurrent_history_linearizes_delete_heavy() {
    let q: CpuBgpq<u32, u32> = CpuBgpq::new(opts(4, 4096)).with_history();
    // Preload so deletes dominate against a full heap.
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..200 {
        let items: Vec<Entry<u32, u32>> =
            (0..4).map(|i| Entry::new(rng.gen_range(0..1 << 30), i)).collect();
        q.insert_batch(&items);
    }
    let _ = hammer(&q, 8, 300, 99, 0.3);
    let events = q.inner().take_history();
    if let Some(v) = check_history(&events) {
        panic!("history violation at seq {}: {}", v.seq, v.detail);
    }
    q.inner().check_invariants();
}

#[test]
fn concurrent_insert_only_then_drain_sorted() {
    let q: CpuBgpq<u32, u32> = CpuBgpq::new(opts(16, 2048));
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let q = &q;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                for _ in 0..100 {
                    let items: Vec<Entry<u32, u32>> =
                        (0..16).map(|_| Entry::new(rng.gen_range(0..1 << 30), 0)).collect();
                    q.insert_batch(&items);
                }
            });
        }
    });
    assert_eq!(q.len(), 8 * 100 * 16);
    q.inner().check_invariants();
    let mut out = Vec::new();
    while q.delete_min_batch(&mut out, 16) > 0 {}
    assert_eq!(out.len(), 8 * 100 * 16);
    assert!(out.windows(2).all(|w| w[0].key <= w[1].key), "drain not globally sorted");
}

#[test]
fn collaboration_fires_under_mixed_load() {
    // Small capacity forces constant heapifies; mixed inserts/deletes
    // make TARGET/MARKED stealing likely. We can't force the exact
    // interleaving with real threads, so assert only that the protocol
    // never corrupts state across many runs, and report collaborations
    // when they occur.
    let mut total_collabs = 0;
    for seed in 0..10u64 {
        let q: CpuBgpq<u32, u32> = CpuBgpq::new(opts(2, 8192)).with_history();
        let _ = hammer(&q, 8, 200, seed, 0.5);
        let events = q.inner().take_history();
        if let Some(v) = check_history(&events) {
            panic!("seed {seed}: history violation at seq {}: {}", v.seq, v.detail);
        }
        q.inner().check_invariants();
        total_collabs += q.inner().stats().snapshot().collaborations;
    }
    // Informational: single-core hosts may rarely interleave tightly
    // enough; the deterministic-sim tests cover the protocol itself.
    eprintln!("total collaborations across runs: {total_collabs}");
}

#[test]
fn collaboration_disabled_still_correct() {
    let o = BgpqOptions { use_collaboration: false, ..opts(2, 8192) };
    let q: CpuBgpq<u32, u32> = CpuBgpq::new(o).with_history();
    let _ = hammer(&q, 8, 200, 31, 0.5);
    let events = q.inner().take_history();
    if let Some(v) = check_history(&events) {
        panic!("history violation at seq {}: {}", v.seq, v.detail);
    }
    assert_eq!(q.inner().stats().snapshot().collaborations, 0);
    q.inner().check_invariants();
}

#[test]
fn no_buffer_ablation_still_correct() {
    let o = BgpqOptions { use_partial_buffer: false, ..opts(8, 2048) };
    let q: CpuBgpq<u32, u32> = CpuBgpq::new(o).with_history();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let q = &q;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                let mut out = Vec::new();
                for _ in 0..150 {
                    if rng.gen_bool(0.6) {
                        // Full batches bypass the buffer in this mode.
                        let items: Vec<Entry<u32, u32>> =
                            (0..8).map(|_| Entry::new(rng.gen_range(0..1 << 30), 0)).collect();
                        q.insert_batch(&items);
                    } else {
                        q.delete_min_batch(&mut out, rng.gen_range(1..=8));
                    }
                }
            });
        }
    });
    let events = q.inner().take_history();
    if let Some(v) = check_history(&events) {
        panic!("history violation at seq {}: {}", v.seq, v.detail);
    }
    q.inner().check_invariants();
}

#[test]
fn pairs_preserve_utilization() {
    // The paper's utilization experiment shape: each thread does an
    // insert/delete pair, so the queue size stays near its initial
    // level.
    let q: CpuBgpq<u32, u32> = CpuBgpq::new(opts(8, 4096));
    for i in 0..100u32 {
        let items: Vec<Entry<u32, u32>> = (0..8).map(|j| Entry::new(i * 8 + j, 0)).collect();
        q.insert_batch(&items);
    }
    let initial = q.len();
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let q = &q;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                let mut out = Vec::new();
                for _ in 0..100 {
                    let items: Vec<Entry<u32, u32>> =
                        (0..8).map(|_| Entry::new(rng.gen_range(0..1 << 30), 0)).collect();
                    q.insert_batch(&items);
                    out.clear();
                    let got = q.delete_min_batch(&mut out, 8);
                    assert_eq!(got, 8);
                }
            });
        }
    });
    assert_eq!(q.len(), initial);
    q.inner().check_invariants();
}
