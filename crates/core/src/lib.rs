//! # bgpq — a heap-based, batched, linearizable priority queue for
//! (simulated) GPUs
//!
//! Reproduction of *BGPQ: A Heap-Based Priority Queue Design for GPUs*
//! (Chen, Hua, Jin, Zhang — ICPP 2021). The queue stores `k` sorted keys
//! per heap node, exploits **data parallelism** inside node operations
//! (bitonic sort + merge path `SORT_SPLIT`s) and **task parallelism**
//! across nodes (one fine-grained lock per node, hand-over-hand,
//! top-down traversal for both INSERT and DELETEMIN), and is
//! linearizable with every operation's linearization point inside its
//! root-lock critical section.
//!
//! Thread-collaboration features (§4.3):
//! * the **partial buffer** batches many INSERTs into one insert-heapify;
//! * the **root cache** serves many DELETEMINs from one refill;
//! * **TARGET/MARKED key stealing** lets a DELETEMIN that finds its
//!   refill node still in flight delegate the root refill to the
//!   inserting thread.
//!
//! ```
//! use bgpq::{BgpqOptions, CpuBgpq};
//! use pq_api::{BatchPriorityQueue, Entry};
//!
//! let q: CpuBgpq<u32, ()> = CpuBgpq::new(BgpqOptions::with_capacity_for(16, 1_000));
//! q.insert_batch(&[Entry::new(7, ()), Entry::new(3, ())]);
//! let mut out = Vec::new();
//! q.delete_min_batch(&mut out, 2);
//! assert_eq!(out.iter().map(|e| e.key).collect::<Vec<_>>(), vec![3, 7]);
//! ```
//!
//! For the simulated-GPU instantiation, build a
//! [`bgpq_runtime::SimPlatform`] inside a [`gpu_sim::launch`] setup
//! closure and share the [`Bgpq`] across blocks; see the `bench` crate
//! and `examples/` for complete kernels.

pub mod cpu;
pub mod heap;
pub mod history;
pub mod options;
pub mod scratch;
pub(crate) mod soa;
pub mod storage;
pub mod tree;

pub use cpu::{CpuBgpq, CpuBgpqFactory};
pub use heap::{Bgpq, SalvageOutcome};
pub use history::{
    check_collaboration, check_history, HistoryEvent, HistoryOp, HistoryViolation, ProtocolEvent,
    ProtocolKind,
};
pub use options::{BgpqOptions, Mutation};
pub use pq_api::QueueError;
pub use scratch::OpScratch;
pub use storage::NodeState;
