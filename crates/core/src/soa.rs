//! SoA kernel routing — vector `SORT_SPLIT` over `(key, value)` nodes.
//!
//! The paper's GPU nodes hold bare keys, so its kernels sort keys
//! directly. Our nodes carry an `Entry<K, V>` payload, which the AVX2
//! kernels in `primitives::simd` cannot move as one lane. This module
//! bridges the two with a split key-lane / value-permutation layout:
//!
//! 1. **Stage** both sorted source runs contiguously into the
//!    operation's merge scratch (`orig`) — the entries never move again
//!    until the final gather.
//! 2. **Partition** the output with Merge Path (`merge_path_partition`)
//!    into chunks of at most [`SOA_CHUNK`] entries. A chunk whose input
//!    comes entirely from one run is a *pure* chunk: the merged output
//!    is just that input, so it is emitted as a bulk `copy_from_slice`
//!    and never touches a vector register. Heapify merges are dominated
//!    by long single-run stretches, which is where the speedup lives.
//! 3. **Pack** each mixed chunk's keys as `KeyIdxLane`s — the key's
//!    32-bit order-embedding (`KeyType::to_lane32`) in the high half,
//!    the entry's staged index in the low half — and merge them with
//!    the in-register bitonic network. Because `a`-side indices are
//!    strictly below `b`-side indices, lane order *is* the stable merge
//!    order (`a` wins ties), matching `merge_path_search` exactly.
//! 4. **Gather** whole entries out of `orig` by lane index, so values
//!    follow their keys without ever being packed.
//!
//! Routing: a call takes this path only when the key type embeds into a
//! 32-bit lane (`K::HAS_LANE32`), runtime dispatch resolved to a vector
//! ISA (`simd::vector_enabled()`, which also honours
//! `BGPQ_FORCE_SCALAR`), and the merge is big enough to amortize
//! packing ([`SOA_MIN_TOTAL`]). Everything else falls through to the
//! scalar `primitives::sort_split` path, which doubles as the
//! differential oracle in the test suites.
//!
//! The full-split shape (`sort_split_full_entries`, both runs the same
//! length, A keeps the small half — every heapify split is this shape)
//! adds two adaptive short-cuts in front of the kernels. A Merge Path
//! probe at diagonal `a.len()` counts how many B entries belong in the
//! small half (`j`). `j == 0` means the runs are already split — a
//! no-op, and the common case once a subtree has settled. A *narrow*
//! crossing (`j ≤ a.len() /` [`INPLACE_MAX_CROSS_FRAC`]) is resolved in
//! place: stash the `j` displaced A-tail entries, merge B's head into
//! A backwards, merge the stash into B forwards — `O(crossing)` moves
//! and zero bulk copies, ~2.5× the streaming kernel on sparse crossings
//! (E11). Wide crossings fall through to the streaming merge + split
//! write-back above, which wins once most of both runs must move.

use crate::scratch::LaneScratch;
use pq_api::{Entry, KeyType, ValueType};
use primitives::simd::{self, KeyIdxLane};
use primitives::{merge_into, merge_path_partition, merge_path_search, SortSplitResult};

/// Output entries per Merge Path chunk. Bounds the lane buffers in
/// [`LaneScratch`] and sets the pure-chunk granularity: larger chunks
/// amortize partitioning but detect fewer pure stretches. 64 catches
/// the sparse-crossing merges that dominate steady state (root vs a
/// random batch crosses only where the batch undercuts the root max)
/// while keeping the partition's binary searches under 1% of the work.
pub(crate) const SOA_CHUNK: usize = 64;

/// Merges smaller than this skip chunking entirely — partition
/// overhead beats any pure-chunk savings on short runs.
const SOA_MIN_TOTAL: usize = 64;

/// Entries at or below this size take the scalar inner kernel on mixed
/// chunks: an 8-byte `Entry` moves as one machine word, and E11 shows
/// the well-predicted 4-wide scalar merge at ~3.5 cycles/entry — the
/// pack + 4-lane merge + gather round trip cannot beat that. Wider
/// payloads shift the balance toward the lane kernel (scalar moves
/// grow with the entry, the packed lane does not).
const LANE_ENTRY_BYTES: usize = 8;

/// Whether a merge of `total` entries should take the staged vector
/// path. Word-sized entries stay on the scalar primitive outright:
/// E11 measured it at ~1.2 cycles/entry — effectively the memory
/// floor — so even the staging copy is overhead there.
#[inline]
fn soa_eligible<K: KeyType, V: ValueType>(total: usize) -> bool {
    K::HAS_LANE32
        && core::mem::size_of::<Entry<K, V>>() > LANE_ENTRY_BYTES
        && total >= SOA_MIN_TOTAL
        && simd::vector_enabled()
}

/// Emit the stable merge of `orig[ar]` and `orig[br]` into `dst`
/// (`a` wins ties), chunked so single-run stretches become bulk copies
/// and only genuinely interleaved chunks pay for the vector kernel.
fn emit_merge<K: KeyType, V: ValueType>(
    orig: &[Entry<K, V>],
    ar: core::ops::Range<usize>,
    br: core::ops::Range<usize>,
    dst: &mut [Entry<K, V>],
    lanes: &mut LaneScratch,
) {
    let a = &orig[ar.clone()];
    let b = &orig[br.clone()];
    debug_assert_eq!(dst.len(), a.len() + b.len());
    let lane_worthy = core::mem::size_of::<Entry<K, V>>() > LANE_ENTRY_BYTES;
    merge_path_partition(a, b, SOA_CHUNK, |d, ia, jb| {
        let out = &mut dst[d];
        if jb.is_empty() {
            out.copy_from_slice(&a[ia]);
        } else if ia.is_empty() {
            out.copy_from_slice(&b[jb]);
        } else if !lane_worthy {
            merge_into(&a[ia], &b[jb], out);
        } else {
            let n = ia.len() + jb.len();
            lanes.a.clear();
            lanes.a.extend(
                a[ia.clone()]
                    .iter()
                    .zip(ar.start + ia.start..)
                    .map(|(e, gi)| KeyIdxLane::pack(e.key.to_lane32(), gi as u32)),
            );
            lanes.b.clear();
            lanes.b.extend(
                b[jb.clone()]
                    .iter()
                    .zip(br.start + jb.start..)
                    .map(|(e, gi)| KeyIdxLane::pack(e.key.to_lane32(), gi as u32)),
            );
            let merged = &mut lanes.out[..n];
            simd::merge_into(&lanes.a, &lanes.b, merged);
            for (slot, lane) in out.iter_mut().zip(merged.iter()) {
                // SAFETY: every lane index was packed above from a
                // position inside `orig`'s staged runs.
                *slot = *unsafe { orig.get_unchecked(lane.idx() as usize) };
            }
        }
    });
}

/// `SORT_SPLIT` with the same contract as `primitives::sort_split`, but
/// routed: eligible merges run the staged/chunked/pack-gather vector
/// path, everything else the scalar primitive.
pub(crate) fn sort_split_entries<K: KeyType, V: ValueType>(
    z: &mut [Entry<K, V>],
    na: usize,
    w: &mut [Entry<K, V>],
    nb: usize,
    ma: usize,
    orig: &mut Vec<Entry<K, V>>,
    lanes: &mut LaneScratch,
) -> SortSplitResult {
    let total = na + nb;
    assert!(ma <= total, "cannot take more smallest elements than exist");
    let mb = total - ma;
    // Disjoint fast path shared by both routes: when the split point
    // coincides with the run boundary and every `z` key is at most
    // every `w` key, both halves already hold their output.
    if ma == na && (na == 0 || nb == 0 || z[na - 1] <= w[0]) {
        return SortSplitResult { ma, mb };
    }
    if !soa_eligible::<K, V>(total) {
        return primitives::sort_split(z, na, w, nb, ma, orig);
    }
    assert!(na <= z.len() && nb <= w.len(), "valid prefix exceeds buffer");
    assert!(ma <= z.len(), "small side does not fit");
    assert!(mb <= w.len(), "large side does not fit");
    debug_assert!(z[..na].windows(2).all(|p| p[0] <= p[1]), "Z not sorted");
    debug_assert!(w[..nb].windows(2).all(|p| p[0] <= p[1]), "W not sorted");

    orig.clear();
    orig.extend_from_slice(&z[..na]);
    orig.extend_from_slice(&w[..nb]);
    let orig_ref: &[Entry<K, V>] = orig;
    let (i, j) = merge_path_search(&orig_ref[..na], &orig_ref[na..], ma);
    emit_merge(orig_ref, 0..i, na..na + j, &mut z[..ma], lanes);
    emit_merge(orig_ref, i..na, na + j..total, &mut w[..mb], lanes);
    SortSplitResult { ma, mb }
}

/// `SORT_SPLIT` between two full batches (`primitives::sort_split_full`
/// contract: `a` keeps the `a.len()` smallest, `a` wins ties), computed
/// **in place** with work proportional to the crossing region.
///
/// The merge-path cut `(i, j)` at `a.len()` splits the outputs into
/// `a' = merge(a[..i], b[..j])` and `b' = merge(a[i..], b[j..])`. Both
/// are built inside their own node:
///
/// * `a'` by a *backward* merge — the write cursor descends from the
///   top of `a` and stays strictly above the `a` read cursor until
///   `b[..j]` drains, at which point the untouched prefix of `a` is
///   already in place. Elements of `a` below `b[0]` are never moved.
/// * `b'` by a *forward* merge of the stashed `a[i..]` into `b` — the
///   mirror-image invariant of [`merge_suffixes_in_place`]. Elements
///   of `b` above `max(a)` are never moved.
///
/// The in-place form loses its element-wise loops' race against the
/// unrolled merge + `memcpy` primitive once the crossing widens
/// (measured ~10% slower at full interleave, 2.5× faster at narrow
/// crossings — E11), so routing is adaptive on the measured cut: the
/// crossing `j` must stay under [`INPLACE_MAX_CROSS_FRAC`] of the
/// node. The routing predicate depends only on key values, so both
/// BGPQ_FORCE_SCALAR modes take identical paths and results and sim
/// histories cannot diverge.
pub(crate) fn sort_split_full_entries<K: KeyType, V: ValueType>(
    a: &mut [Entry<K, V>],
    b: &mut [Entry<K, V>],
    orig: &mut Vec<Entry<K, V>>,
    lanes: &mut LaneScratch,
) {
    debug_assert!(a.windows(2).all(|p| p[0] <= p[1]), "A not sorted");
    debug_assert!(b.windows(2).all(|p| p[0] <= p[1]), "B not sorted");
    let (i, j) = merge_path_search(a, b, a.len());
    if j == 0 {
        // Already split: every a key is at most every b key.
        return;
    }
    if j > a.len() / INPLACE_MAX_CROSS_FRAC {
        // Wide crossing: the streaming primitive wins.
        let na = a.len();
        sort_split_entries(a, na, b, b.len(), na, orig, lanes);
        return;
    }
    // len(a[i..]) == a.len() - i == j: exactly the stash the forward
    // in-place merge needs to stay ahead of its write cursor.
    orig.clear();
    orig.extend_from_slice(&a[i..]);
    merge_prefixes_in_place(a, i, &b[..j]);
    merge_suffixes_in_place(b, j, orig);
}

/// In-place full splits are taken only when the crossing is at most
/// `1/this` of the small side (see [`sort_split_full_entries`]).
const INPLACE_MAX_CROSS_FRAC: usize = 8;

/// Merge `bs` with `a[..i]` into `a[..]` (`a.len() == i + bs.len()`),
/// the `a` side winning ties, writing *backward* from the top.
///
/// In place without scratch: the write cursor `w` descends from
/// `a.len()` while the read cursor `ra` descends from `i`, and
/// `w - ra` equals the unconsumed part of `bs` — strictly positive
/// until `bs` drains, at which point `a[..ra]` is already in its final
/// position and the loop stops. Descending emit order puts a `b`
/// instance *above* an equal `a` instance, which is exactly the
/// stable-merge (`a` wins) order.
fn merge_prefixes_in_place<T: Ord + Copy>(a: &mut [T], i: usize, bs: &[T]) {
    debug_assert_eq!(a.len(), i + bs.len());
    let (mut w, mut ra) = (a.len(), i);
    for &be in bs.iter().rev() {
        while ra > 0 && a[ra - 1] > be {
            w -= 1;
            a[w] = a[ra - 1];
            ra -= 1;
        }
        w -= 1;
        a[w] = be;
    }
    debug_assert!(w == ra, "prefix must land in place");
}

/// Routed in-place absorb merge: `dst[..na]` (sorted) is merged with
/// `add` (sorted) into `dst[..na + add.len()]`, `dst` winning ties —
/// the pBuffer-absorb step of INSERT. The scalar route stashes the
/// `dst` prefix in `orig` first (as the pre-SoA code did); the vector
/// route stages both runs there anyway, so it comes for free.
pub(crate) fn merge_absorb<K: KeyType, V: ValueType>(
    dst: &mut [Entry<K, V>],
    na: usize,
    add: &[Entry<K, V>],
    orig: &mut Vec<Entry<K, V>>,
    lanes: &mut LaneScratch,
) {
    let nb = add.len();
    let total = na + nb;
    debug_assert!(dst.len() >= total);
    orig.clear();
    orig.extend_from_slice(&dst[..na]);
    if !soa_eligible::<K, V>(total) {
        merge_into(&orig[..na], add, &mut dst[..total]);
        return;
    }
    orig.extend_from_slice(add);
    emit_merge(orig, 0..na, na..total, &mut dst[..total], lanes);
}

/// Merge `ys` (length `j`) with `x[j..]` into `x[..]` in place, `ys`
/// winning ties (it is the `a`-side suffix of the sibling merge).
///
/// Safe without scratch because the write cursor trails the `x` read
/// cursor by exactly `j - (ys consumed)`, which stays positive until
/// `ys` is drained — at which point the remaining `x[rx..]` tail is
/// already in its final position, so the loop stops there.
fn merge_suffixes_in_place<T: Ord + Copy>(x: &mut [T], j: usize, ys: &[T]) {
    debug_assert_eq!(ys.len(), j);
    let (mut w, mut rx) = (0usize, j);
    for &ye in ys {
        while rx < x.len() && x[rx] < ye {
            x[w] = x[rx];
            w += 1;
            rx += 1;
        }
        x[w] = ye;
        w += 1;
    }
    debug_assert!(w == rx, "tail must land in place");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch() -> (Vec<Entry<u32, u32>>, LaneScratch) {
        (Vec::new(), LaneScratch::new())
    }

    fn run(start: u32, step: u32, n: usize, tag: u32) -> Vec<Entry<u32, u32>> {
        (0..n as u32).map(|i| Entry::new(start + i * step, tag + i)).collect()
    }

    #[test]
    fn routed_split_matches_scalar_primitive() {
        let (mut orig, mut lanes) = scratch();
        for (na, nb, ma) in
            [(0, 0, 0), (1, 0, 1), (7, 9, 7), (128, 128, 128), (300, 200, 300), (200, 400, 150)]
        {
            let mb = na + nb - ma;
            let mut z = run(0, 3, na, 1000);
            z.resize(na.max(ma), Entry::sentinel());
            let mut w = run(1, 2, nb, 5000);
            w.resize(nb.max(mb), Entry::sentinel());
            let mut z2 = z.clone();
            let mut w2 = w.clone();
            let mut s = Vec::new();
            let r1 = sort_split_entries(&mut z, na, &mut w, nb, ma, &mut orig, &mut lanes);
            let r2 = primitives::sort_split(&mut z2, na, &mut w2, nb, ma, &mut s);
            assert_eq!((r1.ma, r1.mb), (r2.ma, r2.mb));
            assert_eq!(&z[..r1.ma], &z2[..r1.ma], "na={na} nb={nb} ma={ma}");
            assert_eq!(&w[..r1.mb], &w2[..r1.mb], "na={na} nb={nb} ma={ma}");
        }
    }

    #[test]
    fn gather_preserves_payloads_and_tie_order() {
        let (mut orig, mut lanes) = scratch();
        // All keys equal: output must be a-run payloads then b-run
        // payloads, in original order (stability).
        let n = 96;
        let mut a: Vec<Entry<u32, u32>> = (0..n).map(|i| Entry::new(7, i)).collect();
        let mut b: Vec<Entry<u32, u32>> = (0..n).map(|i| Entry::new(7, 1000 + i)).collect();
        sort_split_full_entries(&mut a, &mut b, &mut orig, &mut lanes);
        let vals: Vec<u32> = a.iter().chain(b.iter()).map(|e| e.value).collect();
        let want: Vec<u32> = (0..n).chain(1000..1000 + n).collect();
        assert_eq!(vals, want);
    }

    #[test]
    fn absorb_matches_merge_into() {
        let (mut orig, mut lanes) = scratch();
        for (na, nb) in [(0, 5), (80, 80), (200, 56), (3, 250)] {
            let mut dst = run(0, 2, na, 0);
            dst.resize(na + nb, Entry::sentinel());
            let add = run(1, 2, nb, 9000);
            let mut want = vec![Entry::sentinel(); na + nb];
            let stash: Vec<_> = dst[..na].to_vec();
            merge_into(&stash, &add, &mut want);
            merge_absorb(&mut dst, na, &add, &mut orig, &mut lanes);
            assert_eq!(dst, want, "na={na} nb={nb}");
        }
    }

    // Not a correctness test: `cargo test -p bgpq --release soa_timing
    // -- --ignored --nocapture` prints per-route ns/entry on the two
    // patterns that bracket the hot path (sparse crossings, full
    // interleave), for tuning SOA_CHUNK / SOA_MIN_TOTAL.
    #[test]
    #[ignore]
    fn soa_timing() {
        let (mut orig, mut lanes) = scratch();
        let k = 1024;
        for (name, astep, bstep) in [("interleaved", 2u32, 2u32), ("sparse", 1, 97)] {
            let z0 = run(0, astep, k, 0);
            let w0: Vec<Entry<u32, u32>> =
                (0..k as u32).map(|i| Entry::new(1 + i * bstep, i)).collect();
            for route in ["routed", "scalar"] {
                let mut z: Vec<_> = z0.clone();
                let mut w: Vec<_> = w0.clone();
                let t0 = std::time::Instant::now();
                let reps = 20_000;
                for _ in 0..reps {
                    z.copy_from_slice(&z0);
                    w.copy_from_slice(&w0);
                    if route == "routed" {
                        sort_split_entries(&mut z, k, &mut w, k, k, &mut orig, &mut lanes);
                    } else {
                        primitives::sort_split(&mut z, k, &mut w, k, k, &mut orig);
                    }
                }
                let ns = t0.elapsed().as_secs_f64() * 1e9 / (reps * 2 * k) as f64;
                println!("{name:12} {route:7} {ns:.3} ns/entry");
            }
        }
    }

    #[test]
    fn inplace_full_split_matches_primitive() {
        let (mut orig, mut lanes) = scratch();
        let k = 128;
        // Patterns: interleaved, disjoint both ways, all-equal keys
        // (pure tie-order check), duplicate-heavy, single-crossing.
        type KeyFn = Box<dyn Fn(u32) -> u32>;
        let cases: [(KeyFn, KeyFn); 6] = [
            (Box::new(|i| 2 * i), Box::new(|i| 2 * i + 1)),
            (Box::new(|i| i), Box::new(|i| i + 1000)),
            (Box::new(|i| i + 1000), Box::new(|i| i)),
            (Box::new(|_| 7), Box::new(|_| 7)),
            (Box::new(|i| i / 4), Box::new(|i| i / 3)),
            (Box::new(|i| i), Box::new(|i| i + 120)),
        ];
        for (ci, (fa, fb)) in cases.iter().enumerate() {
            let mk = |f: &dyn Fn(u32) -> u32, tag: u32| -> Vec<Entry<u32, u32>> {
                let mut v: Vec<Entry<u32, u32>> =
                    (0..k as u32).map(|i| Entry::new(f(i), tag + i)).collect();
                v.sort_by_key(|e| e.key);
                v
            };
            let (mut a, mut b) = (mk(fa, 0), mk(fb, 10_000));
            let (mut a2, mut b2) = (a.clone(), b.clone());
            sort_split_full_entries(&mut a, &mut b, &mut orig, &mut lanes);
            let mut s = Vec::new();
            primitives::sort_split_full(&mut a2, &mut b2, &mut s);
            assert_eq!(a, a2, "small side mismatch, case {ci}");
            assert_eq!(b, b2, "large side mismatch, case {ci}");
        }
    }

    #[test]
    fn inplace_full_split_unequal_sizes() {
        let (mut orig, mut lanes) = scratch();
        let mut a = vec![
            Entry::<u32, u32>::new(10, 0),
            Entry::new(20, 1),
            Entry::new(30, 2),
            Entry::new(40, 3),
            Entry::new(50, 4),
            Entry::new(60, 5),
        ];
        let mut b = vec![Entry::<u32, u32>::new(15, 10), Entry::new(35, 11)];
        sort_split_full_entries(&mut a, &mut b, &mut orig, &mut lanes);
        let keys: Vec<u32> = a.iter().map(|e| e.key).collect();
        assert_eq!(keys, [10, 15, 20, 30, 35, 40]);
        let keys: Vec<u32> = b.iter().map(|e| e.key).collect();
        assert_eq!(keys, [50, 60]);
    }

    // Not a correctness test: `cargo test -p bgpq --release
    // inplace_timing -- --ignored --nocapture` compares the in-place
    // crossing-bounded full split against the merge-to-scratch
    // primitive on a full random interleave (its worst case) and a
    // narrow crossing (its best case).
    #[test]
    #[ignore]
    fn inplace_timing() {
        let (mut orig, mut lanes) = scratch();
        let k = 1024;
        let mk = |seed: u32, base: u32| -> Vec<Entry<u32, u32>> {
            let mut s = seed;
            let mut v: Vec<Entry<u32, u32>> = (0..k as u32)
                .map(|i| {
                    s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                    Entry::new(base + (s >> 8) % 100_000, i)
                })
                .collect();
            v.sort_by_key(|e| e.key);
            v
        };
        for (name, a0, b0) in
            [("interleaved", mk(1, 0), mk(2, 0)), ("narrow-cross", mk(3, 0), mk(4, 95_000))]
        {
            let mut s = Vec::new();
            for route in ["in-place", "primitive"] {
                let (mut a, mut b) = (a0.clone(), b0.clone());
                let reps = 20_000;
                let t0 = std::time::Instant::now();
                for _ in 0..reps {
                    a.copy_from_slice(&a0);
                    b.copy_from_slice(&b0);
                    if route == "in-place" {
                        sort_split_full_entries(&mut a, &mut b, &mut orig, &mut lanes);
                    } else {
                        primitives::sort_split_full(&mut a, &mut b, &mut s);
                    }
                }
                let ns = t0.elapsed().as_secs_f64() * 1e9 / (reps * 2 * k) as f64;
                println!("{name:12} {route:9} {ns:.3} ns/entry");
            }
        }
    }

    #[test]
    fn disjoint_fast_path_is_a_noop() {
        let (mut orig, mut lanes) = scratch();
        let mut a = run(0, 1, 128, 0);
        let mut b = run(1000, 1, 128, 500);
        let (a0, b0) = (a.clone(), b.clone());
        sort_split_full_entries(&mut a, &mut b, &mut orig, &mut lanes);
        assert_eq!(a, a0);
        assert_eq!(b, b0);
        assert!(orig.is_empty(), "fast path must not stage");
    }
}
