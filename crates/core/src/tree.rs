//! Implicit-binary-tree index arithmetic.
//!
//! The batched heap is stored as an array with 1-based node indices
//! (root = 1, children of `i` at `2i` and `2i+1`) — "the index of child
//! or parent nodes can be calculated using simple arithmetic operations"
//! (§2.1). Insertion heapify walks the unique root→target path, which is
//! encoded in the target index's binary representation.

/// Index of the root node.
pub const ROOT: usize = 1;

/// Parent of node `i` (`i >= 2`).
#[inline]
pub fn parent(i: usize) -> usize {
    debug_assert!(i >= 2, "root has no parent");
    i >> 1
}

/// Left child of node `i`.
#[inline]
pub fn left(i: usize) -> usize {
    i << 1
}

/// Right child of node `i`.
#[inline]
pub fn right(i: usize) -> usize {
    (i << 1) | 1
}

/// Depth of node `i` (root at level 0).
#[inline]
pub fn level(i: usize) -> u32 {
    debug_assert!(i >= 1);
    usize::BITS - 1 - i.leading_zeros()
}

/// True if `a` is an ancestor of (or equal to) `b`.
#[inline]
pub fn is_ancestor_or_self(a: usize, b: usize) -> bool {
    let (la, lb) = (level(a), level(b));
    la <= lb && (b >> (lb - la)) == a
}

/// The next node after `cur` on the root→`tar` path (`cur` must be a
/// strict ancestor of `tar`). This is the paper's `NEXT(cur, tar)`.
#[inline]
pub fn next_on_path(cur: usize, tar: usize) -> usize {
    debug_assert!(is_ancestor_or_self(cur, tar) && cur != tar, "cur={cur} tar={tar}");
    let d = level(tar) - level(cur);
    tar >> (d - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_relations() {
        assert_eq!(left(1), 2);
        assert_eq!(right(1), 3);
        assert_eq!(parent(2), 1);
        assert_eq!(parent(3), 1);
        assert_eq!(parent(7), 3);
        assert_eq!(left(5), 10);
        assert_eq!(right(5), 11);
    }

    #[test]
    fn levels() {
        assert_eq!(level(1), 0);
        assert_eq!(level(2), 1);
        assert_eq!(level(3), 1);
        assert_eq!(level(4), 2);
        assert_eq!(level(7), 2);
        assert_eq!(level(8), 3);
    }

    #[test]
    fn ancestry() {
        assert!(is_ancestor_or_self(1, 13));
        assert!(is_ancestor_or_self(3, 13));
        assert!(is_ancestor_or_self(6, 13));
        assert!(is_ancestor_or_self(13, 13));
        assert!(!is_ancestor_or_self(2, 13));
        assert!(!is_ancestor_or_self(12, 13));
    }

    #[test]
    fn path_walk_reaches_target() {
        // Path to 13: 1 -> 3 -> 6 -> 13.
        let mut cur = ROOT;
        let mut path = vec![cur];
        while cur != 13 {
            cur = next_on_path(cur, 13);
            path.push(cur);
        }
        assert_eq!(path, vec![1, 3, 6, 13]);
    }

    #[test]
    fn path_walk_all_targets() {
        for tar in 1usize..=64 {
            let mut cur = ROOT;
            let mut steps = 0;
            while cur != tar {
                let next = next_on_path(cur, tar);
                assert!(next == left(cur) || next == right(cur), "must step to a child");
                assert!(is_ancestor_or_self(next, tar));
                cur = next;
                steps += 1;
                assert!(steps <= 7, "path too long for tar={tar}");
            }
            assert_eq!(steps, level(tar));
        }
    }
}
