//! Linearization-point history recording and checking.
//!
//! Section 5 of the paper proves BGPQ linearizable by placing every
//! operation's linearization point inside its root-lock critical
//! section and showing the induced sequential history is valid. This
//! module mechanizes that proof obligation:
//!
//! * while an operation holds the root lock (for the last time), the
//!   heap assigns it a globally increasing sequence number and records
//!   the keys it logically inserted/removed;
//! * [`check_history`] replays the events in sequence-number order
//!   against a trivially correct sequential batched priority queue and
//!   verifies every DELETEMIN returned exactly the smallest keys then
//!   present.
//!
//! Because the sequence numbers are drawn inside the critical sections,
//! the replay order is a legal linearization; if the real results match
//! it, the concurrent execution was linearizable.

use parking_lot::Mutex;
use pq_api::KeyType;
use std::collections::BinaryHeap;

/// One linearized operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryOp<K> {
    /// Keys inserted.
    Insert { keys: Vec<K> },
    /// Keys returned by a delete-min that asked for `requested` keys.
    DeleteMin { requested: usize, keys: Vec<K> },
}

/// A recorded operation with its timing metadata (the paper's
/// `op[s, acR, reR, t](x)` tuples, §5): `seq` is drawn inside the
/// root-lock critical section (between `acR` and `reR`); `invoked` and
/// `responded` are global logical timestamps taken at operation start
/// and end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEvent<K> {
    /// Linearization order (drawn while holding the root lock).
    pub seq: u64,
    /// Invocation timestamp (`s` in the paper's notation).
    pub invoked: u64,
    /// Response timestamp (`t`).
    pub responded: u64,
    pub op: HistoryOp<K>,
}

/// A TARGET/MARKED collaboration-protocol transition (§4.3), recorded at
/// the storage state transition itself — not at the root-lock
/// linearization points — so the key-stealing handshake can be checked
/// independently of operation results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// An INSERT reserved heap node `node` for its batch
    /// (`EMPTY → TARGET`).
    TargetSet,
    /// A DELETEMIN requested collaboration on its refill node
    /// (`TARGET → MARKED`); it now spins on the root.
    MarkedSet,
    /// The INSERT observed `MARKED`, refilled the root with its batch
    /// and released the node (`MARKED → EMPTY`, root → `AVAIL`).
    CollabRefill,
    /// The INSERT filled its TARGET node normally
    /// (`TARGET → AVAIL`) — no steal happened.
    TargetFilled,
}

/// One recorded protocol transition: `at` is drawn from the recorder's
/// logical clock, so protocol events are totally ordered with the
/// invocation/response timestamps of [`HistoryEvent`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolEvent {
    pub kind: ProtocolKind,
    /// Heap node index the transition happened on.
    pub node: usize,
    /// Logical timestamp (shared clock with `tick`).
    pub at: u64,
}

/// Thread-safe event sink attached to a queue under test.
#[derive(Debug, Default)]
pub struct HistoryRecorder<K> {
    events: Mutex<Vec<HistoryEvent<K>>>,
    protocol: Mutex<Vec<ProtocolEvent>>,
    /// Global logical clock for invocation/response timestamps.
    clock: std::sync::atomic::AtomicU64,
}

impl<K: KeyType> HistoryRecorder<K> {
    pub fn new() -> Self {
        Self {
            events: Mutex::new(Vec::new()),
            protocol: Mutex::new(Vec::new()),
            clock: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Draw an invocation/response timestamp.
    pub fn tick(&self) -> u64 {
        self.clock.fetch_add(1, std::sync::atomic::Ordering::AcqRel)
    }

    /// Record one completed operation.
    pub fn record(&self, event: HistoryEvent<K>) {
        self.events.lock().push(event);
    }

    /// Drain all events, sorted by sequence number.
    pub fn take(&self) -> Vec<HistoryEvent<K>> {
        let mut ev = std::mem::take(&mut *self.events.lock());
        ev.sort_by_key(|e| e.seq);
        ev
    }

    /// Record one collaboration-protocol transition on `node` (the
    /// timestamp is drawn internally).
    pub fn record_protocol(&self, kind: ProtocolKind, node: usize) {
        let at = self.tick();
        self.protocol.lock().push(ProtocolEvent { kind, node, at });
    }

    /// Drain all protocol events in recording order. Per-node order is
    /// exact: every transition is recorded while holding the lock of the
    /// node it describes.
    pub fn take_protocol(&self) -> Vec<ProtocolEvent> {
        std::mem::take(&mut *self.protocol.lock())
    }
}

/// Validate the TARGET/MARKED state machine over a protocol event log:
/// each node cycles `TargetSet → (MarkedSet → CollabRefill | TargetFilled)`,
/// with no transition out of sequence. When `complete` is set (the run
/// finished without crashing and the queue is quiescent), every node
/// must also have returned to the idle state — in particular, no
/// DELETEMIN may be left spinning on an unanswered `MarkedSet`. Returns
/// a description of the first violation, or `None`.
pub fn check_collaboration(events: &[ProtocolEvent], complete: bool) -> Option<String> {
    use std::collections::HashMap;
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum NodeState {
        InFlight,
        Marked,
    }
    let mut state: HashMap<usize, NodeState> = HashMap::new();
    for e in events {
        let cur = state.get(&e.node).copied();
        match (e.kind, cur) {
            (ProtocolKind::TargetSet, None) => {
                state.insert(e.node, NodeState::InFlight);
            }
            (ProtocolKind::TargetSet, Some(s)) => {
                return Some(format!("node {} re-TARGETed while {s:?} (at {})", e.node, e.at));
            }
            (ProtocolKind::MarkedSet, Some(NodeState::InFlight)) => {
                state.insert(e.node, NodeState::Marked);
            }
            (ProtocolKind::MarkedSet, s) => {
                return Some(format!(
                    "node {} MARKED without an in-flight TARGET (state {s:?}, at {})",
                    e.node, e.at
                ));
            }
            (ProtocolKind::CollabRefill, Some(NodeState::Marked)) => {
                state.remove(&e.node);
            }
            (ProtocolKind::CollabRefill, s) => {
                return Some(format!(
                    "node {} collaboration refill without MARKED (state {s:?}, at {})",
                    e.node, e.at
                ));
            }
            (ProtocolKind::TargetFilled, Some(NodeState::InFlight)) => {
                state.remove(&e.node);
            }
            (ProtocolKind::TargetFilled, Some(NodeState::Marked)) => {
                return Some(format!(
                    "node {} filled normally despite MARKED — the waiting delete is stranded \
                     (at {})",
                    e.node, e.at
                ));
            }
            (ProtocolKind::TargetFilled, None) => {
                return Some(format!("node {} filled without TARGET (at {})", e.node, e.at));
            }
        }
    }
    if complete {
        if let Some((node, s)) = state.iter().min_by_key(|(n, _)| **n) {
            return Some(format!("node {node} left {s:?} at the end of a complete run"));
        }
    }
    None
}

/// Failure description from [`check_history`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryViolation {
    pub seq: u64,
    pub detail: String,
}

/// Replay `events` (must be sorted by sequence number) against a
/// sequential model and verify real-time consistency. Returns the first
/// violation, or `None` if the history is a valid linearization.
///
/// Two obligations (Herlihy & Wing, as instantiated by the paper's §5):
///
/// 1. **Legal sequential history**: replaying the operations in `seq`
///    order against a sequential batched priority queue reproduces every
///    DELETEMIN's result exactly.
/// 2. **Real-time order**: if operation `a` responded before operation
///    `b` was invoked, then `a` is linearized before `b`
///    (`seq_a < seq_b`) — linearization points lie within each
///    operation's execution interval.
pub fn check_history<K: KeyType>(events: &[HistoryEvent<K>]) -> Option<HistoryViolation> {
    // Real-time order: in seq order, an event must never be invoked
    // after the response of a *later-linearized* event. Equivalently,
    // with suffix minima of `responded` over seq order, no event's
    // `invoked` may exceed... check the pairwise condition via a
    // running suffix-min scan from the right.
    let n = events.len();
    let mut suffix_min_resp = vec![u64::MAX; n + 1];
    for i in (0..n).rev() {
        suffix_min_resp[i] = suffix_min_resp[i + 1].min(events[i].responded);
    }
    for (i, e) in events.iter().enumerate() {
        if suffix_min_resp[i + 1] < e.invoked {
            return Some(HistoryViolation {
                seq: e.seq,
                detail: format!(
                    "real-time order violated: an operation responded (t={}) before this \
                     operation was invoked (s={}) yet was linearized after it",
                    suffix_min_resp[i + 1],
                    e.invoked
                ),
            });
        }
    }

    // Legal sequential history: min-heap model of the abstract multiset.
    let mut model: BinaryHeap<std::cmp::Reverse<K>> = BinaryHeap::new();
    let mut last_seq = None;
    for HistoryEvent { seq, op, .. } in events {
        if let Some(prev) = last_seq {
            if *seq <= prev {
                return Some(HistoryViolation {
                    seq: *seq,
                    detail: format!("sequence numbers not strictly increasing ({prev} then {seq})"),
                });
            }
        }
        last_seq = Some(*seq);
        match op {
            HistoryOp::Insert { keys } => {
                for &k in keys {
                    model.push(std::cmp::Reverse(k));
                }
            }
            HistoryOp::DeleteMin { requested, keys } => {
                let expect_n = (*requested).min(model.len());
                if keys.len() != expect_n {
                    return Some(HistoryViolation {
                        seq: *seq,
                        detail: format!(
                            "delete-min returned {} keys; expected {} (requested {}, model had {})",
                            keys.len(),
                            expect_n,
                            requested,
                            model.len()
                        ),
                    });
                }
                // The returned keys must be exactly the model's smallest,
                // as multisets.
                let mut expected = Vec::with_capacity(expect_n);
                for _ in 0..expect_n {
                    expected.push(model.pop().expect("sized above").0);
                }
                let mut got = keys.clone();
                got.sort_unstable();
                // `expected` pops in ascending order already.
                if got != expected {
                    return Some(HistoryViolation {
                        seq: *seq,
                        detail: format!(
                            "delete-min returned {:?}... expected smallest {:?}...",
                            &got[..got.len().min(8)],
                            &expected[..expected.len().min(8)]
                        ),
                    });
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build an event whose execution interval is the instant
    /// `2*seq` — sequential, non-overlapping, in seq order.
    fn ev(seq: u64, op: HistoryOp<u32>) -> HistoryEvent<u32> {
        HistoryEvent { seq, invoked: 2 * seq, responded: 2 * seq + 1, op }
    }

    #[test]
    fn valid_history_passes() {
        let events = vec![
            ev(1, HistoryOp::Insert { keys: vec![5, 1, 9] }),
            ev(2, HistoryOp::DeleteMin { requested: 2, keys: vec![1, 5] }),
            ev(3, HistoryOp::Insert { keys: vec![0] }),
            ev(4, HistoryOp::DeleteMin { requested: 5, keys: vec![0, 9] }),
            ev(5, HistoryOp::DeleteMin { requested: 1, keys: vec![] }),
        ];
        assert_eq!(check_history(&events), None);
    }

    #[test]
    fn wrong_minimum_is_caught() {
        let events = vec![
            ev(1, HistoryOp::Insert { keys: vec![5, 1] }),
            ev(2, HistoryOp::DeleteMin { requested: 1, keys: vec![5] }),
        ];
        let v = check_history(&events).expect("must fail");
        assert_eq!(v.seq, 2);
    }

    #[test]
    fn short_return_with_nonempty_model_is_caught() {
        let events = vec![
            ev(1, HistoryOp::Insert { keys: vec![5, 1] }),
            ev(2, HistoryOp::DeleteMin { requested: 2, keys: vec![1] }),
        ];
        assert!(check_history(&events).is_some());
    }

    #[test]
    fn nonmonotone_seq_is_caught() {
        let events = vec![
            HistoryEvent {
                seq: 2,
                invoked: 0,
                responded: 1,
                op: HistoryOp::Insert { keys: vec![1u32] },
            },
            HistoryEvent {
                seq: 2,
                invoked: 2,
                responded: 3,
                op: HistoryOp::Insert { keys: vec![2] },
            },
        ];
        assert!(check_history(&events).is_some());
    }

    #[test]
    fn real_time_violation_is_caught() {
        // Op B (seq 2) responded at t=3 *before* op A (seq 1) was even
        // invoked at t=10 — linearizing A before B is illegal.
        let events = vec![
            HistoryEvent {
                seq: 1,
                invoked: 10,
                responded: 12,
                op: HistoryOp::Insert { keys: vec![1u32] },
            },
            HistoryEvent {
                seq: 2,
                invoked: 2,
                responded: 3,
                op: HistoryOp::Insert { keys: vec![2] },
            },
        ];
        let v = check_history(&events).expect("must fail");
        assert!(v.detail.contains("real-time"), "{}", v.detail);
    }

    #[test]
    fn overlapping_intervals_may_linearize_either_way() {
        // Both ops run concurrently (intervals overlap); either seq
        // order is legal.
        let events = vec![
            HistoryEvent {
                seq: 1,
                invoked: 5,
                responded: 20,
                op: HistoryOp::Insert { keys: vec![1u32] },
            },
            HistoryEvent {
                seq: 2,
                invoked: 0,
                responded: 30,
                op: HistoryOp::Insert { keys: vec![2] },
            },
        ];
        assert_eq!(check_history(&events), None);
    }

    #[test]
    fn recorder_sorts_by_seq() {
        let rec = HistoryRecorder::<u32>::new();
        rec.record(HistoryEvent {
            seq: 3,
            invoked: 0,
            responded: 1,
            op: HistoryOp::Insert { keys: vec![3] },
        });
        rec.record(HistoryEvent {
            seq: 1,
            invoked: 2,
            responded: 3,
            op: HistoryOp::Insert { keys: vec![1] },
        });
        rec.record(HistoryEvent {
            seq: 2,
            invoked: 4,
            responded: 5,
            op: HistoryOp::Insert { keys: vec![2] },
        });
        let e = rec.take();
        assert_eq!(e.iter().map(|x| x.seq).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(rec.take().is_empty(), "take drains");
    }

    #[test]
    fn ticks_are_unique_and_increasing() {
        let rec = HistoryRecorder::<u32>::new();
        let a = rec.tick();
        let b = rec.tick();
        let c = rec.tick();
        assert!(a < b && b < c);
    }

    fn pe(kind: ProtocolKind, node: usize, at: u64) -> ProtocolEvent {
        ProtocolEvent { kind, node, at }
    }

    #[test]
    fn collaboration_state_machine_accepts_both_outcomes() {
        let events = vec![
            pe(ProtocolKind::TargetSet, 4, 0),
            pe(ProtocolKind::TargetFilled, 4, 1),
            pe(ProtocolKind::TargetSet, 4, 2),
            pe(ProtocolKind::MarkedSet, 4, 3),
            pe(ProtocolKind::CollabRefill, 4, 4),
            // Interleaved with an independent node.
            pe(ProtocolKind::TargetSet, 5, 5),
            pe(ProtocolKind::TargetFilled, 5, 6),
        ];
        assert_eq!(check_collaboration(&events, true), None);
    }

    #[test]
    fn collaboration_rejects_out_of_sequence_transitions() {
        let stranded = vec![
            pe(ProtocolKind::TargetSet, 2, 0),
            pe(ProtocolKind::MarkedSet, 2, 1),
            pe(ProtocolKind::TargetFilled, 2, 2),
        ];
        assert!(check_collaboration(&stranded, false).unwrap().contains("stranded"));
        let orphan_mark = vec![pe(ProtocolKind::MarkedSet, 2, 0)];
        assert!(check_collaboration(&orphan_mark, false).is_some());
        let orphan_refill =
            vec![pe(ProtocolKind::TargetSet, 2, 0), pe(ProtocolKind::CollabRefill, 2, 1)];
        assert!(check_collaboration(&orphan_refill, false).is_some());
    }

    #[test]
    fn unanswered_mark_fails_only_complete_runs() {
        let events = vec![pe(ProtocolKind::TargetSet, 3, 0), pe(ProtocolKind::MarkedSet, 3, 1)];
        // Truncated (crashed) run: an in-flight handshake is fine.
        assert_eq!(check_collaboration(&events, false), None);
        // Quiescent run: the delete would still be spinning.
        assert!(check_collaboration(&events, true).is_some());
    }

    #[test]
    fn recorder_protocol_events_share_the_clock() {
        let rec = HistoryRecorder::<u32>::new();
        let before = rec.tick();
        rec.record_protocol(ProtocolKind::TargetSet, 7);
        let after = rec.tick();
        let pv = rec.take_protocol();
        assert_eq!(pv.len(), 1);
        assert!(before < pv[0].at && pv[0].at < after);
        assert!(rec.take_protocol().is_empty(), "take_protocol drains");
    }

    #[test]
    fn duplicate_keys_compare_as_multisets() {
        let events = vec![
            ev(1, HistoryOp::Insert { keys: vec![2, 2, 2, 1] }),
            ev(2, HistoryOp::DeleteMin { requested: 3, keys: vec![1, 2, 2] }),
            ev(3, HistoryOp::DeleteMin { requested: 2, keys: vec![2] }),
        ];
        assert_eq!(check_history(&events), None);
    }
}
