//! Host-side convenience wrapper: BGPQ on real threads.

use crate::heap::Bgpq;
use crate::options::BgpqOptions;
use bgpq_runtime::{with_thread_worker, CpuPlatform, Platform};
use pq_api::{
    BatchPriorityQueue, Entry, KeyType, QueueError, QueueFactory, TryBatchPriorityQueue, ValueType,
};

/// BGPQ running on [`CpuPlatform`] (real `parking_lot` locks, real
/// threads). Implements [`BatchPriorityQueue`] so the application
/// drivers (knapsack, A*) and the bench harness can use it
/// interchangeably with the baselines.
pub struct CpuBgpq<K, V> {
    inner: Bgpq<K, V, CpuPlatform>,
}

impl<K: KeyType, V: ValueType> CpuBgpq<K, V> {
    pub fn new(opts: BgpqOptions) -> Self {
        opts.validate();
        let platform = CpuPlatform::new(opts.max_nodes + 1);
        Self { inner: Bgpq::with_platform(platform, opts) }
    }

    /// Build on a caller-configured [`CpuPlatform`] (watchdog, fault
    /// plan). The platform must hold at least `opts.max_nodes + 1`
    /// locks.
    pub fn on_platform(platform: CpuPlatform, opts: BgpqOptions) -> Self {
        opts.validate();
        assert!(platform.num_locks() > opts.max_nodes, "platform has too few locks for max_nodes");
        Self { inner: Bgpq::with_platform(platform, opts) }
    }

    /// Enable linearization-history recording (before sharing).
    pub fn with_history(mut self) -> Self {
        self.inner = self.inner.with_history();
        self
    }

    /// The underlying generic heap.
    pub fn inner(&self) -> &Bgpq<K, V, CpuPlatform> {
        &self.inner
    }

    /// Non-panicking insert: backpressure ([`QueueError::Full`]) and
    /// failure ([`QueueError::Poisoned`] / [`QueueError::LockTimeout`])
    /// surface as errors; on any `Err` no key was taken.
    pub fn try_insert_batch(&self, items: &[Entry<K, V>]) -> Result<(), QueueError> {
        with_thread_worker(|w| self.inner.try_insert(w, items))
    }

    /// Non-panicking delete: failures surface as errors; on `Err`,
    /// `out` is unchanged.
    pub fn try_delete_min_batch(
        &self,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> Result<usize, QueueError> {
        with_thread_worker(|w| self.inner.try_delete_min(w, out, count))
    }
}

impl<K: KeyType, V: ValueType> BatchPriorityQueue<K, V> for CpuBgpq<K, V> {
    fn batch_capacity(&self) -> usize {
        self.inner.node_capacity()
    }

    fn insert_batch(&self, items: &[Entry<K, V>]) {
        with_thread_worker(|w| self.inner.insert(w, items));
    }

    fn delete_min_batch(&self, out: &mut Vec<Entry<K, V>>, count: usize) -> usize {
        with_thread_worker(|w| self.inner.delete_min(w, out, count))
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

/// Route the trait's fallible entry points to the real hardened paths
/// so generic fronts (the coalescing combiner) see `Full` / `Poisoned`
/// / `LockTimeout` as values instead of panics.
impl<K: KeyType, V: ValueType> TryBatchPriorityQueue<K, V> for CpuBgpq<K, V> {
    fn try_insert_batch(&self, items: &[Entry<K, V>]) -> Result<(), QueueError> {
        CpuBgpq::try_insert_batch(self, items)
    }

    fn try_delete_min_batch(
        &self,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> Result<usize, QueueError> {
        CpuBgpq::try_delete_min_batch(self, out, count)
    }
}

/// Factory for the bench harness.
pub struct CpuBgpqFactory {
    /// Node capacity `k`.
    pub node_capacity: usize,
}

impl Default for CpuBgpqFactory {
    fn default() -> Self {
        Self { node_capacity: 1024 }
    }
}

impl<K: KeyType, V: ValueType> QueueFactory<K, V> for CpuBgpqFactory {
    type Queue = CpuBgpq<K, V>;

    fn name(&self) -> &str {
        "BGPQ"
    }

    fn build(&self, capacity_hint: usize) -> CpuBgpq<K, V> {
        CpuBgpq::new(BgpqOptions::with_capacity_for(self.node_capacity, capacity_hint.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CpuBgpq<u32, u32> {
        CpuBgpq::new(BgpqOptions { node_capacity: 4, max_nodes: 64, ..Default::default() })
    }

    #[test]
    fn batch_roundtrip() {
        let q = small();
        let items: Vec<Entry<u32, u32>> =
            [(9, 0), (1, 1), (5, 2)].iter().map(|&(k, v)| Entry::new(k, v)).collect();
        q.insert_batch(&items);
        assert_eq!(q.len(), 3);
        let mut out = Vec::new();
        let n = q.delete_min_batch(&mut out, 4);
        assert_eq!(n, 3);
        assert_eq!(out.iter().map(|e| e.key).collect::<Vec<_>>(), vec![1, 5, 9]);
        assert!(q.is_empty());
    }

    #[test]
    fn values_travel_with_keys() {
        let q = small();
        q.insert_batch(&[Entry::new(3u32, 33u32), Entry::new(1, 11), Entry::new(2, 22)]);
        let mut out = Vec::new();
        q.delete_min_batch(&mut out, 3);
        assert_eq!(
            out.iter().map(|e| (e.key, e.value)).collect::<Vec<_>>(),
            vec![(1, 11), (2, 22), (3, 33)]
        );
    }

    #[test]
    fn factory_builds_working_queue() {
        let f = CpuBgpqFactory { node_capacity: 8 };
        let q: CpuBgpq<u32, ()> = f.build(1000);
        assert_eq!(<CpuBgpqFactory as QueueFactory<u32, ()>>::name(&f), "BGPQ");
        q.insert_batch(&[Entry::new(42u32, ())]);
        let mut out = Vec::new();
        assert_eq!(q.delete_min_batch(&mut out, 1), 1);
        assert_eq!(out[0].key, 42);
    }
}
