//! Construction options and ablation toggles.

use primitives::SortAlgo;

/// Deliberately re-introducible protocol bugs, used by the
/// `bgpq-explore` schedule explorer to prove it can catch real ordering
/// violations (a verification self-test, never a production switch).
/// Only honored in test builds or under the `mutations` cargo feature;
/// [`BgpqOptions::validate`] rejects a non-`None` mutation otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// The correct protocol, unmodified.
    #[default]
    None,
    /// Tear open the §4.3 MARKED-handoff ownership transfer: the
    /// in-flight INSERT publishes the root `AVAIL` *before* writing the
    /// stolen keys and `root_len`. A collaborating DELETEMIN scheduled
    /// into that window observes a stale (typically empty) root and
    /// under-returns keys — a linearizability violation the explorer
    /// must find.
    MarkedHandoffEarlyAvail,
    /// Sharded-router rollback bug (honored by `bgpq-shard`'s exact
    /// delete sweep): when the sweep observes a circuit-breaker trip
    /// that happened mid-delete, the mutated router "rolls back" the
    /// keys a shard *already handed over* and retries from a clean
    /// miss — the shard no longer has them, so they are silently lost.
    /// Caught by the explorer's strict front-level accounting oracle
    /// (delivered + resident must equal acknowledged inserts).
    SweepDiscardsOnTrip,
    /// Flat-combining delegation bug (honored by `bgpq-combine`'s
    /// round issue): the combiner acknowledges a *delegated* insert —
    /// one gathered from another thread's lane — as complete
    /// (`Ok(None)`) without ever issuing it to the backend. Its own
    /// inserts still go through, so every sequential schedule stays
    /// clean; only a schedule where combining actually happens (one
    /// thread serving another's request) loses a key, and because the
    /// backend never sees the insert, only the explorer's front-level
    /// accounting oracle can flag it.
    CombinerDropsForeignInsert,
}

/// Configuration of a [`crate::Bgpq`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BgpqOptions {
    /// Batch node capacity `k` (keys per node). The paper's default
    /// configuration uses 1024 (§6.1). Any `k >= 1` works; `k = 1`
    /// degenerates to a classical one-key-per-node concurrent heap.
    pub node_capacity: usize,
    /// Maximum number of heap nodes. Total key capacity is
    /// `node_capacity * max_nodes` (+ the partial buffer).
    pub max_nodes: usize,
    /// Ablation (a): route inserts through the partial buffer (§3.2).
    /// When disabled, full batches trigger an insert-heapify
    /// immediately; partial batches still use the buffer (they cannot
    /// form a full node).
    pub use_partial_buffer: bool,
    /// Ablation (b): TARGET/MARKED key stealing between a DELETEMIN and
    /// an in-flight INSERT (§4.3). When disabled, a delete finding its
    /// refill node in state TARGET waits for the insertion to finish
    /// instead of collaborating.
    pub use_collaboration: bool,
    /// Which GPU sorting primitive batch pre-sorts are *costed* as on
    /// the simulator (§4 names bitonic, merge and radix sort; the paper
    /// uses bitonic). The sorted result is identical for all three, so
    /// this knob affects only the virtual-time charge.
    pub sort_algo: SortAlgo,
    /// Maximum iterations a DELETEMIN spends spinning on a MARKED/TARGET
    /// collaboration before giving up and poisoning the queue (the
    /// counterpart insert has evidently died; see DESIGN.md "Failure
    /// model"). Spins escalate to the platform's long backoff well
    /// before this bound, so a merely-slow peer does not trip it.
    pub marked_spin_bound: u64,
    /// Verification self-test mutation (see [`Mutation`]). Must stay
    /// [`Mutation::None`] outside schedule-exploration self-tests.
    pub mutation: Mutation,
}

impl BgpqOptions {
    /// The paper's evaluation configuration: k = 1024.
    pub fn paper_default() -> Self {
        Self::with_capacity_for(1024, 64 << 20)
    }

    /// Options sized to hold at least `items` keys with node capacity
    /// `k`.
    pub fn with_capacity_for(k: usize, items: usize) -> Self {
        let max_nodes = (items.div_ceil(k.max(1)) + 2).max(3);
        Self {
            node_capacity: k,
            max_nodes,
            use_partial_buffer: true,
            use_collaboration: true,
            sort_algo: SortAlgo::Bitonic,
            marked_spin_bound: Self::DEFAULT_MARKED_SPIN_BOUND,
            mutation: Mutation::None,
        }
    }

    /// Default collaboration-spin bound (~10⁶ iterations — orders of
    /// magnitude above any healthy refill, cheap enough to trip fast in
    /// a drill).
    pub const DEFAULT_MARKED_SPIN_BOUND: u64 = 1 << 20;

    pub fn validate(&self) {
        assert!(self.node_capacity >= 1, "node capacity must be >= 1");
        assert!(self.max_nodes >= 1, "need at least the root node");
        assert!(self.marked_spin_bound >= 1, "spin bound must be >= 1");
        // Mutations exist solely so the schedule explorer can prove it
        // catches protocol bugs; without the self-test cfg the heap would
        // silently ignore the field — reject instead.
        #[cfg(not(any(test, feature = "mutations")))]
        assert!(
            self.mutation == Mutation::None,
            "BgpqOptions::mutation requires the `mutations` feature (verification self-tests only)"
        );
    }

    /// Total key capacity of the heap body (excluding the buffer).
    pub fn capacity_items(&self) -> usize {
        self.node_capacity * self.max_nodes
    }
}

impl Default for BgpqOptions {
    fn default() -> Self {
        Self {
            node_capacity: 1024,
            max_nodes: 1 << 16,
            use_partial_buffer: true,
            use_collaboration: true,
            sort_algo: SortAlgo::Bitonic,
            marked_spin_bound: Self::DEFAULT_MARKED_SPIN_BOUND,
            mutation: Mutation::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_for_holds_requested_items() {
        let o = BgpqOptions::with_capacity_for(256, 100_000);
        assert!(o.capacity_items() >= 100_000);
        o.validate();
    }

    #[test]
    fn defaults_are_valid() {
        BgpqOptions::default().validate();
        BgpqOptions::paper_default().validate();
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        BgpqOptions { node_capacity: 0, ..Default::default() }.validate();
    }
}
