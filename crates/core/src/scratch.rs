//! Per-worker operation scratch — the zero-allocation hot path.
//!
//! Every INSERT needs a staging buffer for the incoming batch (sorted,
//! then pushed down the heapify path) and every `SORT_SPLIT` needs a
//! merge scratch of up to `2k` entries. Allocating these per operation
//! (the original shape of `insert_inner` / `delete_min_inner`) puts two
//! `malloc`/`free` pairs on a path whose whole point is to be a handful
//! of branchless merge passes.
//!
//! [`OpScratch`] is the arena that removes them: one per platform
//! worker, parked in the worker's [`pq_api::ScratchSlot`] between
//! operations, sized once from the queue's node capacity `k` at first
//! use. Ownership rules (see DESIGN.md "Scratch ownership"):
//!
//! * **One worker, one arena, never shared.** The arena is taken out of
//!   the slot at operation entry and put back at exit; it is never
//!   reachable from two operations at once, and never crosses threads
//!   except by moving with its worker.
//! * **Content is garbage between operations.** Nothing may read stale
//!   entries; each operation overwrites the prefixes it uses.
//! * **Fault poisoning interaction:** if an operation unwinds (injected
//!   panic, watchdog), the taken-out arena is simply dropped with the
//!   stack — the slot is left empty and the next operation on that
//!   worker re-allocates. A crashed queue is poisoned anyway, so the
//!   steady-state guarantee only covers non-faulting operation streams.
//! * **Capacity adapts, never thrashes downward.** A worker serving
//!   queues with different `k` keeps the largest sizing it has seen;
//!   [`OpScratch::reset`] only grows.

use crate::soa::SOA_CHUNK;
use pq_api::{Entry, KeyType, ValueType};
use primitives::simd::KeyIdxLane;

/// Chunk-sized lane buffers for the SoA (split key-lane /
/// value-permutation) kernel path — see `crate::soa`. The vector
/// kernels sort packed (key, index) lanes; the index is then used to
/// gather full entries out of the staged originals, so values ride the
/// key permutation without ever being packed themselves.
pub(crate) struct LaneScratch {
    /// Packed lanes of the `a`-side chunk.
    pub(crate) a: Vec<KeyIdxLane>,
    /// Packed lanes of the `b`-side chunk.
    pub(crate) b: Vec<KeyIdxLane>,
    /// Merged lanes (kept at fixed length `SOA_CHUNK`; each merge
    /// overwrites the prefix it needs).
    pub(crate) out: Vec<KeyIdxLane>,
}

impl LaneScratch {
    pub(crate) fn new() -> Self {
        let mut s = Self { a: Vec::new(), b: Vec::new(), out: Vec::new() };
        s.ensure();
        s
    }

    /// Size the chunk buffers once; they are `k`-independent.
    fn ensure(&mut self) {
        if self.out.len() < SOA_CHUNK {
            self.a.reserve(SOA_CHUNK - self.a.len());
            self.b.reserve(SOA_CHUNK - self.b.len());
            self.out.resize(SOA_CHUNK, KeyIdxLane::default());
        }
    }
}

/// Reusable buffers for one queue operation, owned by a platform
/// worker. See the module docs for the ownership rules.
pub struct OpScratch<K, V> {
    /// Node capacity the buffers are currently sized for.
    k: usize,
    /// INSERT staging batch: always exactly `k` entries long, so the
    /// insert-heapify can treat it as a full node after the overflow
    /// `SORT_SPLIT` deposited the `k` smallest keys into it.
    pub(crate) ins: Vec<Entry<K, V>>,
    /// Merge scratch for `SORT_SPLIT` (up to `2k` entries). Passed as
    /// the caller-provided scratch of `primitives::sort_split`; the
    /// SoA path stages both source runs here (`crate::soa`).
    pub(crate) merge: Vec<Entry<K, V>>,
    /// Staging for the iterator-driven paths (`insert_all`'s batch
    /// assembly, `clear`'s discard sink). Taken with `mem::take` so it
    /// can live alongside `ins`/`merge` borrows.
    pub(crate) stage: Vec<Entry<K, V>>,
    /// Lane buffers for the vector kernels.
    pub(crate) lanes: LaneScratch,
}

impl<K: KeyType, V: ValueType> OpScratch<K, V> {
    /// Build an arena sized for node capacity `k`.
    pub fn new(k: usize) -> Self {
        let mut s = Self {
            k: 0,
            ins: Vec::new(),
            merge: Vec::new(),
            stage: Vec::new(),
            lanes: LaneScratch::new(),
        };
        s.reset(k);
        s
    }

    /// Ensure the buffers fit node capacity `k`. Growth-only: a worker
    /// alternating between queues of different `k` keeps the largest
    /// sizing instead of reallocating per queue.
    pub fn reset(&mut self, k: usize) {
        if k > self.k {
            self.ins.resize(k, Entry::sentinel());
            if self.merge.capacity() < 2 * k {
                self.merge.reserve(2 * k - self.merge.len());
            }
            if self.stage.capacity() < k {
                self.stage.reserve(k - self.stage.len());
            }
            self.lanes.ensure();
            self.k = k;
        }
    }

    /// Capacity the buffers are sized for.
    pub fn capacity_k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_from_k() {
        let s: OpScratch<u32, u32> = OpScratch::new(8);
        assert_eq!(s.capacity_k(), 8);
        assert_eq!(s.ins.len(), 8);
        assert!(s.merge.capacity() >= 16);
        assert!(s.stage.capacity() >= 8);
    }

    #[test]
    fn reset_grows_but_never_shrinks() {
        let mut s: OpScratch<u32, ()> = OpScratch::new(16);
        s.reset(4);
        assert_eq!(s.capacity_k(), 16, "smaller k keeps the larger sizing");
        assert_eq!(s.ins.len(), 16);
        s.reset(32);
        assert_eq!(s.capacity_k(), 32);
        assert_eq!(s.ins.len(), 32);
        assert!(s.merge.capacity() >= 64);
    }
}
