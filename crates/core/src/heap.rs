//! The BGPQ batched heap (Algorithms 1–3 of the paper).
//!
//! One generic implementation of the paper's pseudocode, parameterized
//! over a [`Platform`]: on [`bgpq_runtime::CpuPlatform`] it is a real
//! concurrent priority queue under OS threads; on
//! [`bgpq_runtime::SimPlatform`] the same code runs inside the
//! virtual-time GPU simulator with every primitive charged to the
//! simulated clock.
//!
//! Layout (see [`crate::storage`]): node `1` is the root (≤ k keys),
//! node `0` the partial buffer (≤ k-1 keys, shares the root's lock),
//! nodes `2..` are full batch nodes. The heap invariant is the paper's:
//! each non-root node's smallest key ≥ its parent's largest key, and the
//! buffer's smallest key ≥ the root's largest.
//!
//! Deviation from the pseudocode (documented in DESIGN.md): the paper
//! keeps `pBuffer` unsorted and sorts it lazily on overflow (Alg. 1
//! line 26), but then uses it in sorted `SORT_SPLIT`s elsewhere (Alg. 2
//! lines 13/25) without sorting. We keep the buffer sorted at all times
//! by merging insertions into it — same asymptotics on the GPU (one
//! merge-path pass), no ambiguity.

use crate::history::{HistoryOp, HistoryRecorder};
use crate::options::BgpqOptions;
use crate::storage::{NodeState, NodeStorage, PBUFFER};
use crate::tree::{next_on_path, ROOT};
use bgpq_runtime::Platform;
use pq_api::{Entry, KeyType, OpStats, ValueType};
use primitives::{sort_split, sort_split_full, PrimitiveCost};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A batched, heap-based, lock-based, linearizable concurrent priority
/// queue — the paper's contribution.
pub struct Bgpq<K, V, P: Platform> {
    platform: P,
    storage: NodeStorage<K, V>,
    opts: BgpqOptions,
    /// Linearization sequence, drawn while holding the root lock.
    seq: AtomicU64,
    /// Approximate item count (exact at quiescence).
    items: AtomicI64,
    /// Published lower-priority-bound of the queue: the root cache's
    /// smallest key as `KeyType::to_ordered_bits`, refreshed at every
    /// root-lock release; `u64::MAX` when no cheap bound exists (queue
    /// empty, or root and buffer both drained mid-heapify). Lets a
    /// sharded router compare shard minima without taking root locks.
    root_min_bits: AtomicU64,
    stats: OpStats,
    history: Option<HistoryRecorder<K>>,
}

impl<K: KeyType, V: ValueType, P: Platform> Bgpq<K, V, P> {
    /// Build a queue on `platform`, which must provide at least
    /// `opts.max_nodes + 1` locks (one per node slot; index 0 is unused
    /// because the buffer shares the root's lock).
    pub fn with_platform(platform: P, opts: BgpqOptions) -> Self {
        opts.validate();
        assert!(
            platform.num_locks() > opts.max_nodes,
            "platform must provide max_nodes + 1 locks ({} > {})",
            platform.num_locks(),
            opts.max_nodes
        );
        Self {
            storage: NodeStorage::new(opts.node_capacity, opts.max_nodes),
            platform,
            opts,
            seq: AtomicU64::new(0),
            items: AtomicI64::new(0),
            root_min_bits: AtomicU64::new(u64::MAX),
            stats: OpStats::new(),
            history: None,
        }
    }

    /// Enable linearization-history recording (Section 5 checking).
    /// Must be called before the queue is shared.
    pub fn with_history(mut self) -> Self {
        self.history = Some(HistoryRecorder::new());
        self
    }

    /// Drain the recorded linearization history (if enabled).
    pub fn take_history(&self) -> Vec<crate::history::HistoryEvent<K>> {
        self.history.as_ref().map(|h| h.take()).unwrap_or_default()
    }

    /// Node capacity `k`.
    pub fn node_capacity(&self) -> usize {
        self.opts.node_capacity
    }

    /// Configuration.
    pub fn options(&self) -> &BgpqOptions {
        &self.opts
    }

    /// Operation statistics.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// The platform (for inspection).
    pub fn platform(&self) -> &P {
        &self.platform
    }

    /// Approximate number of stored items (exact at quiescence).
    pub fn len(&self) -> usize {
        self.items.load(Ordering::Relaxed).max(0) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cheap root-min peek: the smallest key in the root cache as of
    /// the last root-lock release, in [`KeyType::to_ordered_bits`]
    /// order. `u64::MAX` means "no cheap bound" — the queue is empty or
    /// its root cache is cold. Advisory: it may lag in-flight
    /// operations, but at quiescence it is exactly the true minimum
    /// whenever the root holds keys and an over-estimate (never an
    /// under-estimate) otherwise, so sampling routers comparing shards
    /// at rest never under-rank one.
    pub fn min_hint_bits(&self) -> u64 {
        self.root_min_bits.load(Ordering::Relaxed)
    }

    /// Total key capacity of the heap body.
    pub fn capacity_items(&self) -> usize {
        self.opts.capacity_items()
    }

    /// Resident bytes of the preallocated node storage (the paper's
    /// memory-efficiency criterion: `k + O(1)` words for `k` keys —
    /// Table 1 footnote b). Entries plus one state byte per node.
    pub fn memory_bytes(&self) -> usize {
        (self.opts.max_nodes + 1)
            * (self.opts.node_capacity * std::mem::size_of::<Entry<K, V>>() + 1)
    }

    /// Insert an arbitrary number of entries, splitting them into
    /// `node_capacity`-sized batches (each batch is one linearized
    /// INSERT). Returns the number inserted.
    pub fn insert_all<I>(&self, w: &mut P::Worker, items: I) -> usize
    where
        I: IntoIterator<Item = Entry<K, V>>,
    {
        let k = self.opts.node_capacity;
        let mut batch: Vec<Entry<K, V>> = Vec::with_capacity(k);
        let mut n = 0;
        for e in items {
            batch.push(e);
            if batch.len() == k {
                self.insert(w, &batch);
                n += k;
                batch.clear();
            }
        }
        if !batch.is_empty() {
            n += batch.len();
            self.insert(w, &batch);
        }
        n
    }

    /// Remove every entry, appending them to `out` in ascending key
    /// order. Concurrent-safe (each batch is one linearized DELETEMIN);
    /// with concurrent inserts running, "every" means "until a moment
    /// the queue was observed empty". Returns the number drained.
    pub fn drain(&self, w: &mut P::Worker, out: &mut Vec<Entry<K, V>>) -> usize {
        let start = out.len();
        let k = self.opts.node_capacity;
        while self.delete_min(w, out, k) > 0 {}
        out.len() - start
    }

    /// Discard every entry (a drain into a throwaway buffer — the
    /// batched heap has no cheaper structural reset that preserves
    /// concurrent safety). Returns the number discarded.
    pub fn clear(&self, w: &mut P::Worker) -> usize {
        let mut sink = Vec::with_capacity(self.opts.node_capacity);
        let mut n = 0;
        loop {
            sink.clear();
            let got = self.delete_min(w, &mut sink, self.opts.node_capacity);
            if got == 0 {
                return n;
            }
            n += got;
        }
    }

    // ------------------------------------------------------------------
    // helpers
    // ------------------------------------------------------------------

    #[inline]
    fn charge(&self, w: &mut P::Worker, c: PrimitiveCost) {
        self.platform.charge(w, c);
    }

    /// Draw the linearization point for the operation currently holding
    /// the root lock. Must be called *before* releasing the root lock,
    /// exactly once per operation.
    fn linearize(&self, seq_out: &mut Option<u64>) {
        let s = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        debug_assert!(seq_out.is_none(), "operation linearized twice");
        *seq_out = Some(s);
    }

    /// Refresh [`Self::min_hint_bits`]. Caller holds the root lock (the
    /// buffer shares it); must run before every root-lock release so
    /// the published value reflects the state being made visible.
    fn publish_root_min(&self) {
        // SAFETY: root lock held; reads cover only the root/buffer
        // region that lock protects.
        let bits = unsafe {
            let m = self.storage.meta_mut();
            if m.root_len > 0 {
                self.storage.node_ref(ROOT)[0].key.to_ordered_bits()
            } else if m.buf_len > 0 {
                self.storage.node_ref(PBUFFER)[0].key.to_ordered_bits()
            } else {
                u64::MAX
            }
        };
        self.root_min_bits.store(bits, Ordering::Relaxed);
    }

    /// Release a path lock; if it is the root's, draw the linearization
    /// point first.
    fn unlock_path(&self, w: &mut P::Worker, lock: usize, seq_out: &mut Option<u64>) {
        if lock == ROOT {
            self.linearize(seq_out);
            self.publish_root_min();
        }
        self.platform.unlock(w, lock);
    }

    /// Record a completed operation in the history (if enabled).
    fn record_history(
        &self,
        invoked: Option<u64>,
        seq: Option<u64>,
        op: impl FnOnce() -> HistoryOp<K>,
    ) {
        if let Some(rec) = self.history.as_ref() {
            rec.record(crate::history::HistoryEvent {
                seq: seq.expect("operation completed without a linearization point"),
                invoked: invoked.expect("invocation timestamp missing"),
                responded: rec.tick(),
                op: op(),
            });
        }
    }

    /// `EXTRACT_ROOT` (Alg. 2 lines 32-35): move up to `want` smallest
    /// keys from the root into `out`, compacting the root. Caller holds
    /// the root lock. Returns the number extracted.
    fn extract_root(&self, w: &mut P::Worker, out: &mut Vec<Entry<K, V>>, want: usize) -> usize {
        // SAFETY: root lock held (caller), references scoped to this fn.
        let taken = unsafe {
            let rl = self.storage.meta_mut().root_len;
            let s = want.min(rl);
            if s > 0 {
                let root = self.storage.node_mut(ROOT);
                out.extend_from_slice(&root[..s]);
                root.copy_within(s..rl, 0);
                self.storage.meta_mut().root_len = rl - s;
            }
            s
        };
        if taken > 0 {
            self.charge(w, PrimitiveCost::GlobalRead { n: taken });
            self.charge(w, PrimitiveCost::GlobalWrite { n: taken });
        }
        taken
    }

    // ------------------------------------------------------------------
    // INSERT (Alg. 1)
    // ------------------------------------------------------------------

    /// Insert 1..=k `(key, value)` entries.
    ///
    /// Panics if `items` is empty, exceeds the node capacity, or the
    /// heap body is out of node slots.
    pub fn insert(&self, w: &mut P::Worker, items: &[Entry<K, V>]) {
        let invoked = self.history.as_ref().map(|h| h.tick());
        let keys: Option<Vec<K>> =
            self.history.as_ref().map(|_| items.iter().map(|e| e.key).collect());
        let mut seq = None;
        self.insert_inner(w, items, &mut seq);
        self.record_history(invoked, seq, || HistoryOp::Insert { keys: keys.unwrap() });
    }

    fn insert_inner(&self, w: &mut P::Worker, items: &[Entry<K, V>], seq_out: &mut Option<u64>) {
        let k = self.opts.node_capacity;
        let size = items.len();
        assert!(size >= 1 && size <= k, "insert batch must have 1..=k items, got {size}");

        // Sort the incoming batch (Alg. 1 line 2). `buf` is k slots so
        // the overflow SORT_SPLIT can deposit a full batch into it.
        let mut buf: Vec<Entry<K, V>> = Vec::with_capacity(k);
        buf.extend_from_slice(items);
        buf.resize(k, Entry::sentinel());
        self.charge(w, PrimitiveCost::SortWith { n: size, algo: self.opts.sort_algo });
        buf[..size].sort_unstable();
        let mut scratch: Vec<Entry<K, V>> = Vec::with_capacity(2 * k);

        self.platform.lock(w, ROOT);
        OpStats::bump(&self.stats.inserts);
        OpStats::add(&self.stats.items_inserted, size as u64);
        self.items.fetch_add(size as i64, Ordering::Relaxed);

        // ---- PARTIAL_INSERT (Alg. 1 lines 15-29) ----
        // SAFETY throughout: root lock held; buffer shares it.
        let heap_size = unsafe { self.storage.meta_mut().heap_size };
        if heap_size == 0 {
            unsafe {
                self.storage.node_mut(ROOT)[..size].copy_from_slice(&buf[..size]);
                let m = self.storage.meta_mut();
                m.root_len = size;
                m.heap_size = 1;
            }
            self.charge(w, PrimitiveCost::GlobalWrite { n: size });
            self.storage.set_state(ROOT, NodeState::Avail);
            OpStats::bump(&self.stats.inserts_buffered);
            self.linearize(seq_out);
            self.publish_root_min();
            self.platform.unlock(w, ROOT);
            return;
        }

        // Merge with the root so it keeps the |root| smallest keys
        // (Alg. 1 line 20).
        let root_len = unsafe { self.storage.meta_mut().root_len };
        if root_len > 0 {
            self.charge(w, PrimitiveCost::GlobalRead { n: root_len });
            self.charge(w, PrimitiveCost::SortSplit { na: root_len, nb: size });
            unsafe {
                let root = self.storage.node_mut(ROOT);
                sort_split(root, root_len, &mut buf, size, root_len, &mut scratch);
            }
            self.charge(w, PrimitiveCost::GlobalWrite { n: root_len });
        }

        let buf_len = unsafe { self.storage.meta_mut().buf_len };
        let direct_full_batch = !self.opts.use_partial_buffer && size == k;
        if !direct_full_batch && buf_len + size < k {
            // Buffer absorbs the batch (Alg. 1 lines 21-24); kept sorted
            // by merging (see module docs).
            self.charge(w, PrimitiveCost::GlobalRead { n: buf_len });
            self.charge(w, PrimitiveCost::Merge { n: buf_len + size });
            unsafe {
                let pb = self.storage.node_mut(PBUFFER);
                // Merge buf[..size] into pb[..buf_len]: both sorted.
                scratch.clear();
                scratch.extend_from_slice(&pb[..buf_len]);
                let mut i = 0;
                let mut j = 0;
                for slot in pb.iter_mut().take(buf_len + size) {
                    *slot = if i < buf_len && (j >= size || scratch[i] <= buf[j]) {
                        i += 1;
                        scratch[i - 1]
                    } else {
                        j += 1;
                        buf[j - 1]
                    };
                }
                self.storage.meta_mut().buf_len = buf_len + size;
            }
            self.charge(w, PrimitiveCost::GlobalWrite { n: buf_len + size });
            OpStats::bump(&self.stats.inserts_buffered);
            self.linearize(seq_out);
            self.publish_root_min();
            self.platform.unlock(w, ROOT);
            return;
        }

        if !direct_full_batch {
            // Overflow (Alg. 1 lines 25-29): extract the k smallest of
            // (batch ∪ buffer) into `buf`, leave the rest in the buffer.
            debug_assert!(buf_len + size >= k);
            self.charge(w, PrimitiveCost::GlobalRead { n: buf_len });
            self.charge(w, PrimitiveCost::SortSplit { na: size, nb: buf_len });
            unsafe {
                let pb = self.storage.node_mut(PBUFFER);
                sort_split(&mut buf, size, pb, buf_len, k, &mut scratch);
                self.storage.meta_mut().buf_len = buf_len + size - k;
            }
            self.charge(w, PrimitiveCost::GlobalWrite { n: buf_len + size - k });
        }

        // ---- full insert-heapify (Alg. 1 lines 5-14) ----
        OpStats::bump(&self.stats.insert_heapifies);
        let tar = {
            // SAFETY: root lock held.
            let full = unsafe { self.storage.meta_mut().heap_size >= self.opts.max_nodes };
            if full {
                // Release the root before unwinding so the queue stays
                // usable. The k largest keys of (root ∪ buffer ∪ batch)
                // — the full node that has nowhere to go — are dropped;
                // the item counter is adjusted so `len()` stays exact.
                self.items.fetch_sub(k as i64, Ordering::Relaxed);
                self.linearize(seq_out);
                self.publish_root_min();
                self.platform.unlock(w, ROOT);
                panic!(
                    "BGPQ out of node slots (max_nodes = {}); size the queue larger",
                    self.opts.max_nodes
                );
            }
            // SAFETY: root lock held.
            unsafe {
                let m = self.storage.meta_mut();
                m.heap_size += 1;
                m.heap_size
            }
        };
        self.platform.lock(w, tar);
        self.storage.set_state(tar, NodeState::Target);
        self.platform.unlock(w, tar);

        // INSERT_HEAPIFY (Alg. 1 lines 30-34), iteratively. `held` is
        // the lock we currently hold — initially the root.
        let mut held = ROOT;
        let mut cur = next_on_path(ROOT, tar);
        while cur != tar && self.storage.state(tar) != NodeState::Marked {
            self.platform.lock(w, cur);
            self.unlock_path(w, held, seq_out);
            held = cur;
            self.charge(w, PrimitiveCost::GlobalRead { n: k });
            self.charge(w, PrimitiveCost::SortSplit { na: k, nb: k });
            // SAFETY: we hold `cur`'s lock; path nodes are full AVAIL.
            unsafe {
                sort_split_full(self.storage.node_mut(cur), &mut buf, &mut scratch);
            }
            self.charge(w, PrimitiveCost::GlobalWrite { n: k });
            cur = next_on_path(cur, tar);
        }

        // Alg. 1 lines 8-14.
        self.platform.lock(w, tar);
        self.unlock_path(w, held, seq_out);
        if self.storage.state(tar) == NodeState::Target {
            // SAFETY: we hold tar's lock and it is TARGET (reserved for
            // us; no keys yet).
            unsafe {
                self.storage.node_mut(tar).copy_from_slice(&buf[..k]);
            }
            self.charge(w, PrimitiveCost::GlobalWrite { n: k });
            self.storage.set_state(tar, NodeState::Avail);
        } else {
            // MARKED: a DELETEMIN is spinning on the root (holding the
            // root lock); refill the root for it (§4.3).
            debug_assert_eq!(self.storage.state(tar), NodeState::Marked);
            // SAFETY: collaboration-phase ownership of the root entries
            // and root_len (see storage module docs) — the deleter will
            // not touch them until it observes AVAIL.
            unsafe {
                self.storage.node_mut(ROOT).copy_from_slice(&buf[..k]);
                self.storage.meta_mut().root_len = k;
            }
            self.charge(w, PrimitiveCost::GlobalWrite { n: k });
            self.storage.set_state(ROOT, NodeState::Avail);
            self.storage.set_state(tar, NodeState::Empty);
            OpStats::bump(&self.stats.collaborations);
        }
        self.platform.unlock(w, tar);
    }

    // ------------------------------------------------------------------
    // DELETEMIN (Alg. 2 + 3)
    // ------------------------------------------------------------------

    /// Delete up to `count` (1..=k) smallest entries, appending them to
    /// `out` in ascending key order. Returns how many were deleted
    /// (fewer than `count` only if the queue ran out of items).
    pub fn delete_min(&self, w: &mut P::Worker, out: &mut Vec<Entry<K, V>>, count: usize) -> usize {
        let invoked = self.history.as_ref().map(|h| h.tick());
        let mut seq = None;
        let start = out.len();
        let got = self.delete_min_inner(w, out, count, &mut seq);
        self.record_history(invoked, seq, || HistoryOp::DeleteMin {
            requested: count,
            keys: out[start..].iter().map(|e| e.key).collect(),
        });
        got
    }

    fn delete_min_inner(
        &self,
        w: &mut P::Worker,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
        seq_out: &mut Option<u64>,
    ) -> usize {
        let k = self.opts.node_capacity;
        assert!(count >= 1 && count <= k, "delete batch must request 1..=k items, got {count}");
        let start = out.len();
        let mut scratch: Vec<Entry<K, V>> = Vec::with_capacity(2 * k);

        self.platform.lock(w, ROOT);
        OpStats::bump(&self.stats.delete_mins);

        // ---- PARTIAL_DELETEMIN (Alg. 2 lines 15-31) ----
        // SAFETY throughout: root lock held.
        let (heap_size, root_len) = unsafe {
            let m = self.storage.meta_mut();
            (m.heap_size, m.root_len)
        };

        if heap_size == 0 {
            self.finish_delete(w, out, start, ROOT, true, seq_out);
            return 0;
        }

        if count < root_len {
            // Root alone satisfies the request (Alg. 2 lines 18-20).
            self.extract_root(w, out, count);
            OpStats::bump(&self.stats.deletes_from_root);
            self.finish_delete(w, out, start, ROOT, true, seq_out);
            return count;
        }

        // Take everything the root has (Alg. 2 line 22).
        self.extract_root(w, out, root_len);

        if heap_size == 1 {
            // No full nodes: serve the remainder from the buffer
            // (Alg. 2 lines 23-29).
            unsafe {
                let buf_len = self.storage.meta_mut().buf_len;
                if buf_len > 0 {
                    let pb_ptr = self.storage.node_mut(PBUFFER);
                    let root = self.storage.node_mut(ROOT);
                    root[..buf_len].copy_from_slice(&pb_ptr[..buf_len]);
                    let m = self.storage.meta_mut();
                    m.root_len = buf_len;
                    m.buf_len = 0;
                }
            }
            self.charge(w, PrimitiveCost::GlobalRead { n: k });
            let remaining = count - (out.len() - start);
            self.extract_root(w, out, remaining);
            unsafe {
                let m = self.storage.meta_mut();
                if m.root_len == 0 {
                    // Heap fully drained; reset to the empty state.
                    m.heap_size = 0;
                    self.storage.set_state(ROOT, NodeState::Empty);
                }
            }
            OpStats::bump(&self.stats.deletes_from_root);
            self.finish_delete(w, out, start, ROOT, true, seq_out);
            return out.len() - start;
        }

        // ---- refill the root from a heap node (Alg. 2 lines 4-14) ----
        self.storage.set_state(ROOT, NodeState::Empty);
        let remained = count - (out.len() - start);
        let tar = unsafe {
            let m = self.storage.meta_mut();
            let t = m.heap_size;
            m.heap_size -= 1;
            t
        };
        debug_assert!(tar >= 2);
        self.platform.lock(w, tar);
        self.charge(w, PrimitiveCost::Atomic);

        if self.storage.state(tar) == NodeState::Target {
            if self.opts.use_collaboration {
                // Collaborate: the in-flight insertion refills the root
                // directly (§4.3; footnote 2: we spin holding the root
                // lock).
                self.storage.set_state(tar, NodeState::Marked);
                self.platform.unlock(w, tar);
                while self.storage.state(ROOT) != NodeState::Avail {
                    self.platform.backoff(w);
                }
            } else {
                // Ablation: wait for the insertion to finish filling
                // `tar`, then take its keys like any AVAIL node.
                self.platform.unlock(w, tar);
                while self.storage.state(tar) != NodeState::Avail {
                    self.platform.backoff(w);
                }
                self.platform.lock(w, tar);
                debug_assert_eq!(self.storage.state(tar), NodeState::Avail);
                self.move_node_to_root(w, tar, k);
            }
        } else {
            debug_assert_eq!(self.storage.state(tar), NodeState::Avail);
            self.move_node_to_root(w, tar, k);
        }

        // Re-establish root ≤ buffer (Alg. 2 line 13).
        let buf_len = unsafe { self.storage.meta_mut().buf_len };
        if buf_len > 0 {
            self.charge(w, PrimitiveCost::SortSplit { na: k, nb: buf_len });
            // SAFETY: root lock held covers both the root and buffer.
            unsafe {
                let root = self.storage.node_mut(ROOT);
                let pb = self.storage.node_mut(PBUFFER);
                sort_split(root, k, pb, buf_len, k, &mut scratch);
            }
        }

        OpStats::bump(&self.stats.delete_heapifies);
        self.delete_heapify(w, out, start, remained, &mut scratch, seq_out);
        out.len() - start
    }

    /// Move AVAIL node `tar`'s full batch into the (empty) root and
    /// release `tar`. Caller holds both the root and `tar` locks.
    fn move_node_to_root(&self, w: &mut P::Worker, tar: usize, k: usize) {
        self.charge(w, PrimitiveCost::GlobalRead { n: k });
        // SAFETY: both locks held; nodes are disjoint (tar >= 2).
        unsafe {
            let src = self.storage.node_ref(tar);
            let dst = self.storage.node_mut(ROOT);
            dst.copy_from_slice(src);
            self.storage.meta_mut().root_len = k;
        }
        self.charge(w, PrimitiveCost::GlobalWrite { n: k });
        self.storage.set_state(tar, NodeState::Empty);
        self.platform.unlock(w, tar);
        self.storage.set_state(ROOT, NodeState::Avail);
    }

    /// `DELETEMIN_HEAPIFY` (Alg. 3), iteratively. On entry the caller
    /// holds `cur = root`'s lock; `remained` keys still owed to the
    /// caller are extracted from the root before it is released.
    fn delete_heapify(
        &self,
        w: &mut P::Worker,
        out: &mut Vec<Entry<K, V>>,
        start: usize,
        remained: usize,
        scratch: &mut Vec<Entry<K, V>>,
        seq_out: &mut Option<u64>,
    ) {
        let k = self.opts.node_capacity;
        let max = self.opts.max_nodes;
        let mut cur = ROOT;
        loop {
            let l = crate::tree::left(cur);
            let r = crate::tree::right(cur);
            let l_in = l <= max;
            let r_in = r <= max;
            if l_in {
                self.platform.lock(w, l);
            }
            if r_in {
                self.platform.lock(w, r);
            }
            let l_has = l_in && self.storage.state(l) == NodeState::Avail;
            let r_has = r_in && self.storage.state(r) == NodeState::Avail;

            // SAFETY: we hold cur (and child) locks; AVAIL non-root
            // nodes are full and sorted.
            let cur_max = unsafe { self.storage.node_ref(cur)[k - 1].key };
            let min_child = unsafe {
                match (l_has, r_has) {
                    (true, true) => {
                        Some(self.storage.node_ref(l)[0].key.min(self.storage.node_ref(r)[0].key))
                    }
                    (true, false) => Some(self.storage.node_ref(l)[0].key),
                    (false, true) => Some(self.storage.node_ref(r)[0].key),
                    (false, false) => None,
                }
            };
            self.charge(w, PrimitiveCost::GlobalRead { n: if l_has { k } else { 0 } });
            self.charge(w, PrimitiveCost::GlobalRead { n: if r_has { k } else { 0 } });

            // Alg. 3 lines 4-8: heap property already satisfied (TARGET
            // and EMPTY children hold no keys).
            if min_child.is_none_or(|m| cur_max <= m) {
                if cur == ROOT {
                    self.extract_root(w, out, remained);
                }
                if r_in {
                    self.platform.unlock(w, r);
                }
                if l_in {
                    self.platform.unlock(w, l);
                }
                self.finish_delete(w, out, start, cur, cur == ROOT, seq_out);
                return;
            }

            // Descend. If only one child holds keys, SORT_SPLIT with it
            // directly; otherwise Alg. 3 lines 9-12.
            let y = if l_has && r_has {
                let (x, y) = unsafe {
                    let lmax = self.storage.node_ref(l)[k - 1].key;
                    let rmax = self.storage.node_ref(r)[k - 1].key;
                    if lmax > rmax {
                        (l, r)
                    } else {
                        (r, l)
                    }
                };
                self.charge(w, PrimitiveCost::SortSplit { na: k, nb: k });
                // SAFETY: both child locks held; disjoint nodes.
                unsafe {
                    sort_split_two(self.storage.node_mut(y), self.storage.node_mut(x), scratch);
                }
                self.charge(w, PrimitiveCost::GlobalWrite { n: k });
                self.platform.unlock(w, x);
                y
            } else {
                let y = if l_has { l } else { r };
                // Release the keyless sibling immediately.
                let other = if l_has { r } else { l };
                if other == r && r_in {
                    self.platform.unlock(w, r);
                } else if other == l && l_in {
                    self.platform.unlock(w, l);
                }
                y
            };

            // SORT_SPLIT(cur, y): cur keeps the k smallest (Alg. 3
            // line 12).
            self.charge(w, PrimitiveCost::SortSplit { na: k, nb: k });
            // SAFETY: cur and y locks held; disjoint nodes.
            unsafe {
                sort_split_two(self.storage.node_mut(cur), self.storage.node_mut(y), scratch);
            }
            self.charge(w, PrimitiveCost::GlobalWrite { n: 2 * k });

            if cur == ROOT {
                self.extract_root(w, out, remained);
            }
            self.finish_delete(w, out, start, cur, cur == ROOT, seq_out);
            cur = y;
        }
    }

    /// Release `lock` on the delete path; when it is the root lock this
    /// is the operation's linearization point (the result set is final
    /// by then), so draw the sequence number and update the item count.
    fn finish_delete(
        &self,
        w: &mut P::Worker,
        out: &[Entry<K, V>],
        start: usize,
        lock: usize,
        is_root: bool,
        seq_out: &mut Option<u64>,
    ) {
        if is_root {
            let got = &out[start..];
            self.items.fetch_sub(got.len() as i64, Ordering::Relaxed);
            OpStats::add(&self.stats.items_deleted, got.len() as u64);
            self.linearize(seq_out);
            self.publish_root_min();
        }
        self.platform.unlock(w, lock);
    }
}

/// `SORT_SPLIT` between two full nodes where the *first* argument
/// receives the smallest keys — inputs are each sorted but their union
/// order is arbitrary.
fn sort_split_two<K: KeyType, V: ValueType>(
    small_side: &mut [Entry<K, V>],
    large_side: &mut [Entry<K, V>],
    scratch: &mut Vec<Entry<K, V>>,
) {
    sort_split_full(small_side, large_side, scratch);
}

// ----------------------------------------------------------------------
// Quiescent invariant checking (test support)
// ----------------------------------------------------------------------

impl<K: KeyType, V: ValueType, P: Platform> Bgpq<K, V, P> {
    /// Verify the batched-heap invariants. **Quiescent only**: no
    /// concurrent operations may be running. Panics with a description
    /// on violation; returns the total key count on success.
    pub fn check_invariants(&self) -> usize {
        // SAFETY: quiescence is the caller's contract; no other thread
        // touches storage.
        unsafe {
            let k = self.opts.node_capacity;
            let m = *self.storage.meta_mut();
            assert!(m.heap_size <= self.opts.max_nodes, "heap_size exceeds max_nodes");
            assert!(m.root_len <= k, "root over capacity");
            assert!(m.buf_len <= k.saturating_sub(1), "buffer over capacity");
            let mut total = 0usize;

            if m.heap_size == 0 {
                assert_eq!(m.root_len, 0, "empty heap with keys in root");
                assert_eq!(m.buf_len, 0, "empty heap with keys in buffer");
                assert_eq!(self.min_hint_bits(), u64::MAX, "empty heap publishing a min hint");
                return 0;
            }
            assert_eq!(self.storage.state(ROOT), NodeState::Avail, "root not AVAIL");
            let root = self.storage.node_ref(ROOT);
            assert!(root[..m.root_len].windows(2).all(|p| p[0] <= p[1]), "root not sorted");
            if m.root_len > 0 {
                assert_eq!(
                    self.min_hint_bits(),
                    root[0].key.to_ordered_bits(),
                    "stale root-min hint at quiescence"
                );
            }
            total += m.root_len;

            let pb = self.storage.node_ref(PBUFFER);
            assert!(pb[..m.buf_len].windows(2).all(|p| p[0] <= p[1]), "buffer not sorted");
            if m.buf_len > 0 && m.root_len > 0 {
                assert!(root[m.root_len - 1].key <= pb[0].key, "buffer min below root max");
            }
            total += m.buf_len;

            for node in 2..=m.heap_size {
                assert_eq!(
                    self.storage.state(node),
                    NodeState::Avail,
                    "node {node} within heap_size not AVAIL"
                );
                let n = self.storage.node_ref(node);
                assert!(n.windows(2).all(|p| p[0] <= p[1]), "node {node} not sorted");
                let parent = crate::tree::parent(node);
                if parent == ROOT {
                    if m.root_len > 0 {
                        assert!(
                            root[m.root_len - 1].key <= n[0].key,
                            "node {node} min below root max"
                        );
                    }
                } else {
                    let p = self.storage.node_ref(parent);
                    assert!(p[k - 1].key <= n[0].key, "node {node} min below parent {parent} max");
                }
                total += k;
            }
            for node in (m.heap_size + 1).max(2)..=self.opts.max_nodes {
                assert_eq!(
                    self.storage.state(node),
                    NodeState::Empty,
                    "node {node} beyond heap_size not EMPTY"
                );
            }
            assert_eq!(total as i64, self.items.load(Ordering::Relaxed), "item count drift");
            total
        }
    }
}
