//! The BGPQ batched heap (Algorithms 1–3 of the paper).
//!
//! One generic implementation of the paper's pseudocode, parameterized
//! over a [`Platform`]: on [`bgpq_runtime::CpuPlatform`] it is a real
//! concurrent priority queue under OS threads; on
//! [`bgpq_runtime::SimPlatform`] the same code runs inside the
//! virtual-time GPU simulator with every primitive charged to the
//! simulated clock.
//!
//! Layout (see [`crate::storage`]): node `1` is the root (≤ k keys),
//! node `0` the partial buffer (≤ k-1 keys, shares the root's lock),
//! nodes `2..` are full batch nodes. The heap invariant is the paper's:
//! each non-root node's smallest key ≥ its parent's largest key, and the
//! buffer's smallest key ≥ the root's largest.
//!
//! Deviation from the pseudocode (documented in DESIGN.md): the paper
//! keeps `pBuffer` unsorted and sorts it lazily on overflow (Alg. 1
//! line 26), but then uses it in sorted `SORT_SPLIT`s elsewhere (Alg. 2
//! lines 13/25) without sorting. We keep the buffer sorted at all times
//! by merging insertions into it — same asymptotics on the GPU (one
//! merge-path pass), no ambiguity.

use crate::history::{HistoryEvent, HistoryOp, HistoryRecorder, ProtocolKind};
use crate::options::BgpqOptions;
use crate::scratch::{LaneScratch, OpScratch};
use crate::soa;
use crate::storage::{NodeState, NodeStorage, PBUFFER};
use crate::tree::{next_on_path, ROOT};
use bgpq_runtime::{InjectionPoint, Platform};
use pq_api::{Entry, KeyType, OpStats, QueueError, ValueType};
use primitives::{simd, PrimitiveCost};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Spin iterations before a collaboration wait escalates from the cheap
/// platform backoff to [`Platform::backoff_long`] (the awaited worker
/// looks stalled, stop burning its CPU).
const SPIN_ESCALATE_AFTER: u64 = 1 << 10;

/// Most locks any single operation holds at once (delete-heapify holds
/// a node plus both children).
const MAX_HELD: usize = 4;

/// A batched, heap-based, lock-based, linearizable concurrent priority
/// queue — the paper's contribution.
pub struct Bgpq<K, V, P: Platform> {
    platform: P,
    storage: NodeStorage<K, V>,
    opts: BgpqOptions,
    /// Linearization sequence, drawn while holding the root lock.
    seq: AtomicU64,
    /// Approximate item count (exact at quiescence).
    items: AtomicI64,
    /// Published lower-priority-bound of the queue: the root cache's
    /// smallest key as `KeyType::to_ordered_bits`, refreshed at every
    /// root-lock release; `u64::MAX` when no cheap bound exists (queue
    /// empty, or root and buffer both drained mid-heapify). Lets a
    /// sharded router compare shard minima without taking root locks.
    root_min_bits: AtomicU64,
    /// Set when a worker died (panicked or timed out) mid-restructure:
    /// the heap invariants can no longer be trusted, so every subsequent
    /// operation fails with [`QueueError::Poisoned`] instead of reading
    /// a possibly-corrupt structure (fail-stop; DESIGN.md "Failure
    /// model").
    poisoned: AtomicBool,
    stats: OpStats,
    history: Option<HistoryRecorder<K>>,
}

/// RAII critical-section guard: tracks which node locks the current
/// operation holds so that an unwinding worker (injected panic, watchdog
/// panic, any bug) releases its whole lock chain — peers un-wedge — and
/// poisons the queue *before* the locks become grabbable, so those peers
/// observe the crash as a typed error rather than corrupt state.
struct Crit<'a, K: KeyType, V: ValueType, P: Platform> {
    q: &'a Bgpq<K, V, P>,
    w: &'a mut P::Worker,
    held: [usize; MAX_HELD],
    n: usize,
}

impl<'a, K: KeyType, V: ValueType, P: Platform> Crit<'a, K, V, P> {
    fn new(q: &'a Bgpq<K, V, P>, w: &'a mut P::Worker) -> Self {
        Crit { q, w, held: [0; MAX_HELD], n: 0 }
    }

    #[inline]
    fn inject(&mut self, point: InjectionPoint) {
        self.q.platform.inject(self.w, point);
    }

    #[inline]
    fn charge(&mut self, c: PrimitiveCost) {
        self.q.platform.charge(self.w, c);
    }

    #[inline]
    fn backoff(&mut self) {
        self.q.platform.backoff(self.w);
    }

    #[inline]
    fn backoff_long(&mut self) {
        self.q.platform.backoff_long(self.w);
    }

    /// Tag a lock-free access to `lock`'s co-located state word (node
    /// state, root-min hint) for schedule exploration; no-op elsewhere.
    #[inline]
    fn touch(&mut self, lock: usize, write: bool) {
        self.q.platform.touch(self.w, lock, write);
    }

    /// Tag a lock-free queue-wide access (the poison flag).
    #[inline]
    fn touch_domain(&mut self, write: bool) {
        self.q.platform.touch_domain(self.w, write);
    }

    /// Acquire `lock` and track it. A watchdog failure is counted and
    /// surfaced; the caller decides whether it poisons (see
    /// [`Crit::lock_or_poison`]).
    fn acquire(&mut self, lock: usize) -> Result<(), QueueError> {
        self.inject(InjectionPoint::PreLockAcquire);
        match self.q.platform.lock_checked(self.w, lock) {
            Ok(()) => {
                debug_assert!(self.n < MAX_HELD, "lock chain deeper than MAX_HELD");
                self.held[self.n] = lock;
                self.n += 1;
                self.inject(InjectionPoint::PostLockAcquire);
                Ok(())
            }
            Err(f) => {
                OpStats::bump(&self.q.stats.lock_timeouts);
                Err(QueueError::LockTimeout { lock: f.lock, detail: f.detail })
            }
        }
    }

    /// First lock of an operation: nothing is held and nothing has been
    /// mutated yet, so failure (or an existing poison) is clean — the
    /// operation simply never starts.
    fn lock_entry(&mut self, lock: usize) -> Result<(), QueueError> {
        self.touch_domain(false);
        if self.q.is_poisoned() {
            return Err(QueueError::Poisoned);
        }
        self.acquire(lock)
    }

    /// Mid-operation lock: the operation holds locks with a batch in
    /// flight, so failing to advance strands keys — poison the queue and
    /// release the chain.
    fn lock_or_poison(&mut self, lock: usize) -> Result<(), QueueError> {
        match self.acquire(lock) {
            Ok(()) => {
                if self.q.is_poisoned() {
                    self.release_all();
                    return Err(QueueError::Poisoned);
                }
                Ok(())
            }
            Err(e) => {
                self.touch_domain(true);
                self.q.poison_now();
                self.release_all();
                Err(e)
            }
        }
    }

    /// Normal-path release (with the pre-release injection point).
    fn unlock(&mut self, lock: usize) {
        self.inject(InjectionPoint::PreLockRelease);
        let pos = self.held[..self.n]
            .iter()
            .rposition(|&l| l == lock)
            .expect("releasing a lock this operation does not hold");
        for i in pos..self.n - 1 {
            self.held[i] = self.held[i + 1];
        }
        self.n -= 1;
        self.q.platform.unlock(self.w, lock);
    }

    /// Abandon-path release: raw unlocks (no injection hooks, so a
    /// teardown cannot re-fault), newest first.
    fn release_all(&mut self) {
        while self.n > 0 {
            self.n -= 1;
            self.q.platform.unlock(self.w, self.held[self.n]);
        }
    }
}

impl<K: KeyType, V: ValueType, P: Platform> Drop for Crit<'_, K, V, P> {
    fn drop(&mut self) {
        // Only reached with locks held when unwinding out of a critical
        // section (normal paths release explicitly). Poison FIRST: a
        // peer that wins a freed lock must already see the flag.
        if self.n > 0 {
            self.q.poison_now();
            self.release_all();
        }
    }
}

/// Per-operation linearization context: invocation timestamp and (for
/// history-recording queues) the data needed to emit the history event
/// *at the linearization point* — so an operation that linearized and
/// then crashed still appears in the truncated history.
struct OpCtx<K> {
    invoked: Option<u64>,
    insert_keys: Option<Vec<K>>,
    requested: usize,
    seq: Option<u64>,
}

impl<K: KeyType, V: ValueType, P: Platform> Bgpq<K, V, P> {
    /// Build a queue on `platform`, which must provide at least
    /// `opts.max_nodes + 1` locks (one per node slot; index 0 is unused
    /// because the buffer shares the root's lock).
    pub fn with_platform(platform: P, opts: BgpqOptions) -> Self {
        opts.validate();
        assert!(
            platform.num_locks() > opts.max_nodes,
            "platform must provide max_nodes + 1 locks ({} > {})",
            platform.num_locks(),
            opts.max_nodes
        );
        Self {
            storage: NodeStorage::new(opts.node_capacity, opts.max_nodes),
            platform,
            opts,
            seq: AtomicU64::new(0),
            items: AtomicI64::new(0),
            root_min_bits: AtomicU64::new(u64::MAX),
            poisoned: AtomicBool::new(false),
            stats: OpStats::new(),
            history: None,
        }
    }

    /// Whether a crashed worker has poisoned this queue (all operations
    /// now fail with [`QueueError::Poisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Transition to the poisoned state (idempotent; first transition
    /// counts a poison event and retracts the min hint so routers stop
    /// considering this queue).
    fn poison_now(&self) {
        if !self.poisoned.swap(true, Ordering::SeqCst) {
            OpStats::bump(&self.stats.poison_events);
            self.root_min_bits.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Enable linearization-history recording (Section 5 checking).
    /// Must be called before the queue is shared.
    pub fn with_history(mut self) -> Self {
        self.history = Some(HistoryRecorder::new());
        self
    }

    /// Drain the recorded linearization history (if enabled).
    pub fn take_history(&self) -> Vec<crate::history::HistoryEvent<K>> {
        self.history.as_ref().map(|h| h.take()).unwrap_or_default()
    }

    /// Drain the recorded TARGET/MARKED protocol transitions (empty
    /// unless history recording is enabled). Check with
    /// [`crate::history::check_collaboration`].
    pub fn take_protocol(&self) -> Vec<crate::history::ProtocolEvent> {
        self.history.as_ref().map(|h| h.take_protocol()).unwrap_or_default()
    }

    #[inline]
    fn record_protocol(&self, kind: ProtocolKind, node: usize) {
        if let Some(rec) = self.history.as_ref() {
            rec.record_protocol(kind, node);
        }
    }

    /// Node capacity `k`.
    pub fn node_capacity(&self) -> usize {
        self.opts.node_capacity
    }

    /// Configuration.
    pub fn options(&self) -> &BgpqOptions {
        &self.opts
    }

    /// Operation statistics.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// The platform (for inspection).
    pub fn platform(&self) -> &P {
        &self.platform
    }

    /// Approximate number of stored items (exact at quiescence).
    pub fn len(&self) -> usize {
        self.items.load(Ordering::Relaxed).max(0) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cheap root-min peek: the smallest key in the root cache as of
    /// the last root-lock release, in [`KeyType::to_ordered_bits`]
    /// order. `u64::MAX` means "no cheap bound" — the queue is empty or
    /// its root cache is cold. Advisory: it may lag in-flight
    /// operations, but at quiescence it is exactly the true minimum
    /// whenever the root holds keys and an over-estimate (never an
    /// under-estimate) otherwise, so sampling routers comparing shards
    /// at rest never under-rank one.
    pub fn min_hint_bits(&self) -> u64 {
        self.root_min_bits.load(Ordering::Relaxed)
    }

    /// Total key capacity of the heap body.
    pub fn capacity_items(&self) -> usize {
        self.opts.capacity_items()
    }

    /// Resident bytes of the preallocated node storage (the paper's
    /// memory-efficiency criterion: `k + O(1)` words for `k` keys —
    /// Table 1 footnote b). Entries plus one state byte per node.
    pub fn memory_bytes(&self) -> usize {
        (self.opts.max_nodes + 1)
            * (self.opts.node_capacity * std::mem::size_of::<Entry<K, V>>() + 1)
    }

    /// Insert an arbitrary number of entries, splitting them into
    /// `node_capacity`-sized batches (each batch is one linearized
    /// INSERT). Returns the number inserted.
    pub fn insert_all<I>(&self, w: &mut P::Worker, items: I) -> usize
    where
        I: IntoIterator<Item = Entry<K, V>>,
    {
        let k = self.opts.node_capacity;
        // One scratch take for the whole iterator: every batch reuses
        // the worker's staging buffer (`stage`, detached so it can
        // coexist with the arena borrow inside each insert).
        let mut s = self.take_scratch(w);
        let mut batch = std::mem::take(&mut s.stage);
        batch.clear();
        let mut n = 0;
        for e in items {
            batch.push(e);
            if batch.len() == k {
                self.insert_with(w, &batch, &mut s);
                n += k;
                batch.clear();
            }
        }
        if !batch.is_empty() {
            n += batch.len();
            self.insert_with(w, &batch, &mut s);
        }
        batch.clear();
        s.stage = batch;
        self.put_scratch(w, s);
        n
    }

    /// Remove every entry, appending them to `out` in ascending key
    /// order. Concurrent-safe (each batch is one linearized DELETEMIN);
    /// with concurrent inserts running, "every" means "until a moment
    /// the queue was observed empty". Returns the number drained.
    pub fn drain(&self, w: &mut P::Worker, out: &mut Vec<Entry<K, V>>) -> usize {
        let start = out.len();
        let k = self.opts.node_capacity;
        let mut s = self.take_scratch(w);
        while self.delete_min_with(w, out, k, &mut s) > 0 {}
        self.put_scratch(w, s);
        out.len() - start
    }

    /// Discard every entry (a drain into a throwaway buffer — the
    /// batched heap has no cheaper structural reset that preserves
    /// concurrent safety). Returns the number discarded.
    pub fn clear(&self, w: &mut P::Worker) -> usize {
        let k = self.opts.node_capacity;
        let mut s = self.take_scratch(w);
        let mut sink = std::mem::take(&mut s.stage);
        let mut n = 0;
        loop {
            sink.clear();
            let got = self.delete_min_with(w, &mut sink, k, &mut s);
            if got == 0 {
                break;
            }
            n += got;
        }
        sink.clear();
        s.stage = sink;
        self.put_scratch(w, s);
        n
    }

    // ------------------------------------------------------------------
    // helpers
    // ------------------------------------------------------------------

    /// Take the worker's operation arena out of its scratch slot (or
    /// build one on first use / after a panic dropped it), sized for
    /// this queue's `k`. Taking (moving the `Box` out) rather than
    /// borrowing lets the heap hold the arena across a [`Crit`] that
    /// mutably borrows the same worker, and makes nested users (e.g.
    /// the shard router, which parks its own scratch type in the same
    /// slot) compose without aliasing.
    fn take_scratch(&self, w: &mut P::Worker) -> Box<OpScratch<K, V>> {
        let k = self.opts.node_capacity;
        match self.platform.scratch_slot(w).take::<OpScratch<K, V>>() {
            Some(mut s) => {
                s.reset(k);
                s
            }
            None => Box::new(OpScratch::new(k)),
        }
    }

    /// Park the arena back in the worker's slot for the next operation.
    /// Not called on unwind: a panicking operation drops the taken-out
    /// arena with its stack, and the next operation re-allocates (the
    /// queue is poisoned by then anyway).
    fn put_scratch(&self, w: &mut P::Worker, s: Box<OpScratch<K, V>>) {
        self.platform.scratch_slot(w).put(s);
    }

    fn begin_insert(&self, items: &[Entry<K, V>]) -> OpCtx<K> {
        OpCtx {
            invoked: self.history.as_ref().map(|h| h.tick()),
            insert_keys: self.history.as_ref().map(|_| items.iter().map(|e| e.key).collect()),
            requested: 0,
            seq: None,
        }
    }

    fn begin_delete(&self, count: usize) -> OpCtx<K> {
        OpCtx {
            invoked: self.history.as_ref().map(|h| h.tick()),
            insert_keys: None,
            requested: count,
            seq: None,
        }
    }

    /// Draw the linearization point of an INSERT and (if recording)
    /// emit its history event right away, so a crash after this instant
    /// leaves the committed operation visible in the truncated history.
    /// Must run while holding the root lock, once per operation.
    fn linearize_insert(&self, ctx: &mut OpCtx<K>) {
        let s = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        debug_assert!(ctx.seq.is_none(), "operation linearized twice");
        ctx.seq = Some(s);
        if let Some(rec) = self.history.as_ref() {
            rec.record(HistoryEvent {
                seq: s,
                invoked: ctx.invoked.expect("invocation timestamp missing"),
                responded: rec.tick(),
                op: HistoryOp::Insert {
                    keys: ctx.insert_keys.take().expect("insert keys missing"),
                },
            });
        }
    }

    /// Draw the linearization point of a DELETEMIN (its result set
    /// `out[start..]` is final by then) and emit the history event.
    fn linearize_delete(&self, ctx: &mut OpCtx<K>, out: &[Entry<K, V>], start: usize) {
        let s = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        debug_assert!(ctx.seq.is_none(), "operation linearized twice");
        ctx.seq = Some(s);
        if let Some(rec) = self.history.as_ref() {
            rec.record(HistoryEvent {
                seq: s,
                invoked: ctx.invoked.expect("invocation timestamp missing"),
                responded: rec.tick(),
                op: HistoryOp::DeleteMin {
                    requested: ctx.requested,
                    keys: out[start..].iter().map(|e| e.key).collect(),
                },
            });
        }
    }

    /// Refresh [`Self::min_hint_bits`]. Caller holds the root lock (the
    /// buffer shares it); must run before every root-lock release so
    /// the published value reflects the state being made visible.
    fn publish_root_min(&self) {
        // SAFETY: root lock held; reads cover only the root/buffer
        // region that lock protects.
        let bits = unsafe {
            let m = self.storage.meta_mut();
            if m.root_len > 0 {
                self.storage.node_ref(ROOT)[0].key.to_ordered_bits()
            } else if m.buf_len > 0 {
                self.storage.node_ref(PBUFFER)[0].key.to_ordered_bits()
            } else {
                u64::MAX
            }
        };
        self.root_min_bits.store(bits, Ordering::Relaxed);
    }

    /// Release a path lock on the insert path; if it is the root's,
    /// draw the linearization point first.
    fn unlock_path(&self, c: &mut Crit<'_, K, V, P>, lock: usize, ctx: &mut OpCtx<K>) {
        if lock == ROOT {
            self.linearize_insert(ctx);
            c.touch(ROOT, true);
            self.publish_root_min();
        }
        c.unlock(lock);
    }

    /// `EXTRACT_ROOT` (Alg. 2 lines 32-35): move up to `want` smallest
    /// keys from the root into `out`, compacting the root. Caller holds
    /// the root lock. Returns the number extracted.
    fn extract_root(
        &self,
        c: &mut Crit<'_, K, V, P>,
        out: &mut Vec<Entry<K, V>>,
        want: usize,
    ) -> usize {
        // SAFETY: root lock held (caller), references scoped to this fn.
        let taken = unsafe {
            let rl = self.storage.meta_mut().root_len;
            let s = want.min(rl);
            if s > 0 {
                let root = self.storage.node_mut(ROOT);
                out.extend_from_slice(&root[..s]);
                root.copy_within(s..rl, 0);
                self.storage.meta_mut().root_len = rl - s;
            }
            s
        };
        if taken > 0 {
            c.charge(PrimitiveCost::GlobalRead { n: taken });
            c.charge(PrimitiveCost::GlobalWrite { n: taken });
        }
        taken
    }

    // ------------------------------------------------------------------
    // INSERT (Alg. 1)
    // ------------------------------------------------------------------

    /// Insert 1..=k `(key, value)` entries — the panicking convenience
    /// API. Prefer [`Bgpq::try_insert`] anywhere failure must be
    /// handled: this wrapper turns every [`QueueError`] into a panic
    /// (`Full` keeps its historical "out of node slots" message).
    ///
    /// Panics if `items` is empty, exceeds the node capacity, the heap
    /// body is out of node slots, the queue is poisoned, or a lock
    /// watchdog fires.
    pub fn insert(&self, w: &mut P::Worker, items: &[Entry<K, V>]) {
        match self.try_insert(w, items) {
            Ok(()) => {}
            Err(QueueError::Full { max_nodes }) => {
                panic!("BGPQ out of node slots (max_nodes = {max_nodes}); size the queue larger")
            }
            Err(e) => panic!("BGPQ insert failed: {e}"),
        }
    }

    /// Insert 1..=k `(key, value)` entries, surfacing failures as
    /// [`QueueError`] instead of panicking.
    ///
    /// On `Err` the batch was **not** inserted and the caller still owns
    /// every key — in particular [`QueueError::Full`] is raised *before*
    /// any state changes, so backpressure loses nothing (contrast with
    /// the historical behavior of dropping the overflowing node).
    /// An operation already linearized when a fault strikes returns
    /// `Ok`: its effect is committed (and recorded in the history) even
    /// though the queue may now be poisoned.
    ///
    /// Panics only on misuse (empty or oversized batch).
    pub fn try_insert(&self, w: &mut P::Worker, items: &[Entry<K, V>]) -> Result<(), QueueError> {
        let mut s = self.take_scratch(w);
        let r = self.try_insert_with(w, items, &mut s);
        self.put_scratch(w, s);
        if r.is_ok() {
            self.stats.record_batch_occupancy(items.len(), self.opts.node_capacity);
        }
        r
    }

    /// [`Bgpq::insert`] with a caller-held arena (batched paths like
    /// [`Bgpq::insert_all`] take the scratch once for many operations).
    fn insert_with(&self, w: &mut P::Worker, items: &[Entry<K, V>], s: &mut OpScratch<K, V>) {
        match self.try_insert_with(w, items, s) {
            Ok(()) => {}
            Err(QueueError::Full { max_nodes }) => {
                panic!("BGPQ out of node slots (max_nodes = {max_nodes}); size the queue larger")
            }
            Err(e) => panic!("BGPQ insert failed: {e}"),
        }
    }

    fn try_insert_with(
        &self,
        w: &mut P::Worker,
        items: &[Entry<K, V>],
        s: &mut OpScratch<K, V>,
    ) -> Result<(), QueueError> {
        let mut ctx = self.begin_insert(items);
        let mut c = Crit::new(self, w);
        self.insert_inner(&mut c, items, &mut ctx, s)
    }

    /// Map a mid-flight insert fault to the API result: after the
    /// linearization point the operation is committed (`Ok`), before it
    /// the operation never happened (`Err`).
    fn insert_tail(&self, ctx: &OpCtx<K>, e: QueueError) -> Result<(), QueueError> {
        if ctx.seq.is_some() {
            Ok(())
        } else {
            Err(e)
        }
    }

    fn insert_inner(
        &self,
        c: &mut Crit<'_, K, V, P>,
        items: &[Entry<K, V>],
        ctx: &mut OpCtx<K>,
        s: &mut OpScratch<K, V>,
    ) -> Result<(), QueueError> {
        let k = self.opts.node_capacity;
        let size = items.len();
        assert!(size >= 1 && size <= k, "insert batch must have 1..=k items, got {size}");

        // Stage the incoming batch in the worker's arena (Alg. 1
        // line 2). `buf` is k slots so the overflow SORT_SPLIT can
        // deposit a full batch into it; arena contents past `size` are
        // stale from earlier operations and never read before being
        // overwritten.
        let buf = &mut s.ins[..k];
        let scratch = &mut s.merge;
        let lanes = &mut s.lanes;
        buf[..size].copy_from_slice(items);
        c.charge(PrimitiveCost::SortWith { n: size, algo: self.opts.sort_algo });
        buf[..size].sort_unstable();

        c.lock_entry(ROOT)?;
        if self.is_poisoned() {
            c.release_all();
            return Err(QueueError::Poisoned);
        }

        // ---- PARTIAL_INSERT (Alg. 1 lines 15-29) ----
        // SAFETY throughout: root lock held; buffer shares it.
        let (heap_size, buf_len) = unsafe {
            let m = self.storage.meta_mut();
            (m.heap_size, m.buf_len)
        };
        let direct_full_batch = !self.opts.use_partial_buffer && size == k;

        // Backpressure precheck, *before any state is touched*: a batch
        // that will need an insert-heapify when no node slot is free is
        // refused outright — the caller keeps every key. (The root
        // merge below changes neither `buf_len` nor `heap_size`, so the
        // predicate is exact.)
        let needs_heapify = heap_size > 0 && (direct_full_batch || buf_len + size >= k);
        if needs_heapify && heap_size >= self.opts.max_nodes {
            let max_nodes = self.opts.max_nodes;
            c.unlock(ROOT);
            return Err(QueueError::Full { max_nodes });
        }

        OpStats::bump(&self.stats.inserts);
        OpStats::add(&self.stats.items_inserted, size as u64);
        self.items.fetch_add(size as i64, Ordering::Relaxed);

        if heap_size == 0 {
            unsafe {
                self.storage.node_mut(ROOT)[..size].copy_from_slice(&buf[..size]);
                let m = self.storage.meta_mut();
                m.root_len = size;
                m.heap_size = 1;
            }
            c.charge(PrimitiveCost::GlobalWrite { n: size });
            c.touch(ROOT, true);
            self.storage.set_state(ROOT, NodeState::Avail);
            OpStats::bump(&self.stats.inserts_buffered);
            self.linearize_insert(ctx);
            self.publish_root_min();
            c.unlock(ROOT);
            return Ok(());
        }

        // Merge with the root so it keeps the |root| smallest keys
        // (Alg. 1 line 20).
        let root_len = unsafe { self.storage.meta_mut().root_len };
        if root_len > 0 {
            c.charge(PrimitiveCost::GlobalRead { n: root_len });
            c.charge(PrimitiveCost::SortSplit { na: root_len, nb: size });
            unsafe {
                let root = self.storage.node_mut(ROOT);
                soa::sort_split_entries(root, root_len, buf, size, root_len, scratch, lanes);
            }
            c.charge(PrimitiveCost::GlobalWrite { n: root_len });
        }

        if !direct_full_batch && buf_len + size < k {
            // Buffer absorbs the batch (Alg. 1 lines 21-24); kept sorted
            // by merging (see module docs).
            c.charge(PrimitiveCost::GlobalRead { n: buf_len });
            c.charge(PrimitiveCost::Merge { n: buf_len + size });
            unsafe {
                let pb = self.storage.node_mut(PBUFFER);
                // Merge buf[..size] into pb[..buf_len]: both sorted,
                // the old buffer winning ties (stable — same order the
                // scalar loop gave). The routed absorb stashes the old
                // buffer contents in the arena so it can write pb in
                // place.
                soa::merge_absorb(&mut pb[..buf_len + size], buf_len, &buf[..size], scratch, lanes);
                self.storage.meta_mut().buf_len = buf_len + size;
            }
            c.charge(PrimitiveCost::GlobalWrite { n: buf_len + size });
            OpStats::bump(&self.stats.inserts_buffered);
            self.linearize_insert(ctx);
            c.touch(ROOT, true);
            self.publish_root_min();
            c.unlock(ROOT);
            return Ok(());
        }

        if !direct_full_batch {
            // Overflow (Alg. 1 lines 25-29): extract the k smallest of
            // (batch ∪ buffer) into `buf`, leave the rest in the buffer.
            debug_assert!(buf_len + size >= k);
            c.charge(PrimitiveCost::GlobalRead { n: buf_len });
            c.charge(PrimitiveCost::SortSplit { na: size, nb: buf_len });
            unsafe {
                let pb = self.storage.node_mut(PBUFFER);
                soa::sort_split_entries(buf, size, pb, buf_len, k, scratch, lanes);
                self.storage.meta_mut().buf_len = buf_len + size - k;
            }
            c.charge(PrimitiveCost::GlobalWrite { n: buf_len + size - k });
        }

        // ---- full insert-heapify (Alg. 1 lines 5-14) ----
        OpStats::bump(&self.stats.insert_heapifies);
        // The precheck above guaranteed a free slot.
        debug_assert!(unsafe { self.storage.meta_mut().heap_size } < self.opts.max_nodes);
        // SAFETY: root lock held.
        let tar = unsafe {
            let m = self.storage.meta_mut();
            m.heap_size += 1;
            m.heap_size
        };
        if let Err(e) = c.lock_or_poison(tar) {
            return self.insert_tail(ctx, e);
        }
        c.touch(tar, true);
        self.storage.set_state(tar, NodeState::Target);
        self.record_protocol(ProtocolKind::TargetSet, tar);
        c.unlock(tar);

        // INSERT_HEAPIFY (Alg. 1 lines 30-34), iteratively. `held` is
        // the lock we currently hold — initially the root.
        let mut held = ROOT;
        let mut cur = next_on_path(ROOT, tar);
        c.touch(tar, false);
        while cur != tar && self.storage.state(tar) != NodeState::Marked {
            c.inject(InjectionPoint::MidInsertHeapify);
            if let Err(e) = c.lock_or_poison(cur) {
                return self.insert_tail(ctx, e);
            }
            self.unlock_path(c, held, ctx);
            held = cur;
            c.charge(PrimitiveCost::GlobalRead { n: k });
            c.charge(PrimitiveCost::SortSplit { na: k, nb: k });
            // Pull the next path node into L2 while this level's merge
            // runs (same overlap trick as the delete path).
            let nxt = next_on_path(cur, tar);
            if nxt != tar && simd::vector_enabled() {
                self.prefetch_node_full(nxt, k);
            }
            // SAFETY: we hold `cur`'s lock; path nodes are full AVAIL.
            unsafe {
                soa::sort_split_full_entries(self.storage.node_mut(cur), buf, scratch, lanes);
            }
            c.charge(PrimitiveCost::GlobalWrite { n: k });
            cur = next_on_path(cur, tar);
            c.touch(tar, false);
        }

        // Alg. 1 lines 8-14.
        c.inject(InjectionPoint::MidInsertHeapify);
        if let Err(e) = c.lock_or_poison(tar) {
            return self.insert_tail(ctx, e);
        }
        self.unlock_path(c, held, ctx);
        c.touch(tar, false);
        if self.storage.state(tar) == NodeState::Target {
            // SAFETY: we hold tar's lock and it is TARGET (reserved for
            // us; no keys yet).
            unsafe {
                self.storage.node_mut(tar).copy_from_slice(&buf[..k]);
            }
            c.charge(PrimitiveCost::GlobalWrite { n: k });
            c.touch(tar, true);
            self.storage.set_state(tar, NodeState::Avail);
            self.record_protocol(ProtocolKind::TargetFilled, tar);
        } else {
            // MARKED: a DELETEMIN is spinning on the root (holding the
            // root lock); refill the root for it (§4.3).
            debug_assert_eq!(self.storage.state(tar), NodeState::Marked);
            #[cfg(any(test, feature = "mutations"))]
            let early_avail =
                self.opts.mutation == crate::options::Mutation::MarkedHandoffEarlyAvail;
            #[cfg(not(any(test, feature = "mutations")))]
            let early_avail = false;
            if early_avail {
                // DELIBERATE BUG (schedule-explorer self-test, see
                // `Mutation::MarkedHandoffEarlyAvail`): publish AVAIL
                // before the stolen keys land. A deleter scheduled into
                // the charge below reads a stale root.
                c.touch(ROOT, true);
                self.storage.set_state(ROOT, NodeState::Avail);
                c.charge(PrimitiveCost::GlobalWrite { n: k });
                unsafe {
                    self.storage.node_mut(ROOT).copy_from_slice(&buf[..k]);
                    self.storage.meta_mut().root_len = k;
                }
            } else {
                // SAFETY: collaboration-phase ownership of the root
                // entries and root_len (see storage module docs) — the
                // deleter will not touch them until it observes AVAIL.
                unsafe {
                    self.storage.node_mut(ROOT).copy_from_slice(&buf[..k]);
                    self.storage.meta_mut().root_len = k;
                }
                c.charge(PrimitiveCost::GlobalWrite { n: k });
                c.touch(ROOT, true);
                self.storage.set_state(ROOT, NodeState::Avail);
            }
            c.touch(tar, true);
            self.storage.set_state(tar, NodeState::Empty);
            OpStats::bump(&self.stats.collaborations);
            self.record_protocol(ProtocolKind::CollabRefill, tar);
        }
        c.unlock(tar);
        Ok(())
    }

    // ------------------------------------------------------------------
    // DELETEMIN (Alg. 2 + 3)
    // ------------------------------------------------------------------

    /// Delete up to `count` (1..=k) smallest entries, appending them to
    /// `out` in ascending key order — the panicking convenience API.
    /// Prefer [`Bgpq::try_delete_min`] anywhere failure must be
    /// handled. Returns how many were deleted (fewer than `count` only
    /// if the queue ran out of items).
    ///
    /// Panics on any [`QueueError`] (poisoned queue, watchdog timeout).
    pub fn delete_min(&self, w: &mut P::Worker, out: &mut Vec<Entry<K, V>>, count: usize) -> usize {
        self.try_delete_min(w, out, count).unwrap_or_else(|e| panic!("BGPQ delete_min failed: {e}"))
    }

    /// Delete up to `count` (1..=k) smallest entries, surfacing
    /// failures as [`QueueError`] instead of panicking.
    ///
    /// On `Err` nothing was appended to `out` (a partially-assembled
    /// result is rolled back) and the operation did not linearize. An
    /// operation already linearized when a fault strikes returns `Ok`
    /// with its final result set — committed and recorded — even though
    /// the queue may now be poisoned.
    ///
    /// Panics only on misuse (`count` outside `1..=k`).
    pub fn try_delete_min(
        &self,
        w: &mut P::Worker,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> Result<usize, QueueError> {
        let mut s = self.take_scratch(w);
        let r = self.try_delete_min_with(w, out, count, &mut s);
        self.put_scratch(w, s);
        if let Ok(n) = r {
            if n > 0 {
                self.stats.record_batch_occupancy(n, self.opts.node_capacity);
            }
        }
        r
    }

    /// Delete up to `count` smallest entries where `count` may exceed
    /// the node width `k` — the partial-batch refill entry point for
    /// buffered fronts whose deletion buffers are wider than one node.
    ///
    /// Issues a sequence of `≤ k`-wide linearized deletes sharing one
    /// scratch arena, stopping early when the queue runs short. Each
    /// inner batch commits independently: on a fault after at least one
    /// batch delivered, the delivered entries stay appended to `out`
    /// and `Ok(delivered)` is returned (the queue is poisoned and the
    /// *next* call surfaces the error); `Err` is returned only when the
    /// first batch fails, in which case nothing was appended.
    ///
    /// Panics only on misuse (`count == 0`).
    pub fn try_delete_up_to(
        &self,
        w: &mut P::Worker,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
    ) -> Result<usize, QueueError> {
        assert!(count >= 1, "delete batch must request at least one entry");
        let k = self.opts.node_capacity;
        let mut s = self.take_scratch(w);
        let mut total = 0;
        let r = loop {
            let step = (count - total).min(k);
            match self.try_delete_min_with(w, out, step, &mut s) {
                Ok(0) => break Ok(total),
                Ok(n) => {
                    self.stats.record_batch_occupancy(n, k);
                    total += n;
                    if n < step || total >= count {
                        break Ok(total);
                    }
                }
                Err(e) if total == 0 => break Err(e),
                Err(_) => break Ok(total),
            }
        };
        self.put_scratch(w, s);
        r
    }

    /// [`Bgpq::delete_min`] with a caller-held arena (batched paths
    /// like [`Bgpq::drain`] and [`Bgpq::clear`] take the scratch once
    /// for many operations).
    fn delete_min_with(
        &self,
        w: &mut P::Worker,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
        s: &mut OpScratch<K, V>,
    ) -> usize {
        self.try_delete_min_with(w, out, count, s)
            .unwrap_or_else(|e| panic!("BGPQ delete_min failed: {e}"))
    }

    fn try_delete_min_with(
        &self,
        w: &mut P::Worker,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
        s: &mut OpScratch<K, V>,
    ) -> Result<usize, QueueError> {
        let mut ctx = self.begin_delete(count);
        let start = out.len();
        let r = {
            let mut c = Crit::new(self, w);
            self.delete_min_inner(&mut c, out, count, &mut ctx, s)
        };
        match r {
            Ok(n) => Ok(n),
            Err(e) => self.delete_tail(&ctx, out, start, e),
        }
    }

    /// Map a mid-flight delete fault to the API result: post-linearize
    /// the result set is committed, pre-linearize it is rolled back.
    fn delete_tail(
        &self,
        ctx: &OpCtx<K>,
        out: &mut Vec<Entry<K, V>>,
        start: usize,
        e: QueueError,
    ) -> Result<usize, QueueError> {
        if ctx.seq.is_some() {
            Ok(out.len() - start)
        } else {
            out.truncate(start);
            Err(e)
        }
    }

    /// Bounded collaboration wait: spin until `node`'s state is `want`,
    /// escalating the backoff once the peer looks stalled and giving up
    /// (poisoning) at `opts.marked_spin_bound` — the peer has evidently
    /// died and the awaited refill will never come. Also aborts as soon
    /// as an existing poison is observed. Caller handles lock release.
    fn bounded_wait(
        &self,
        c: &mut Crit<'_, K, V, P>,
        node: usize,
        want: NodeState,
    ) -> Result<(), QueueError> {
        let mut iters: u64 = 0;
        // Each poll reads the awaited state word and the poison flag;
        // the domain-read covers both (reads commute with other polls).
        c.touch_domain(false);
        while self.storage.state(node) != want {
            if self.is_poisoned() {
                return Err(QueueError::Poisoned);
            }
            iters += 1;
            if iters > self.opts.marked_spin_bound {
                c.touch_domain(true);
                self.poison_now();
                return Err(QueueError::Poisoned);
            }
            c.inject(InjectionPoint::MarkedSpin);
            if iters >= SPIN_ESCALATE_AFTER {
                if iters == SPIN_ESCALATE_AFTER {
                    OpStats::bump(&self.stats.spin_escalations);
                }
                c.backoff_long();
            } else {
                c.backoff();
            }
            c.touch_domain(false);
        }
        Ok(())
    }

    fn delete_min_inner(
        &self,
        c: &mut Crit<'_, K, V, P>,
        out: &mut Vec<Entry<K, V>>,
        count: usize,
        ctx: &mut OpCtx<K>,
        s: &mut OpScratch<K, V>,
    ) -> Result<usize, QueueError> {
        let k = self.opts.node_capacity;
        assert!(count >= 1 && count <= k, "delete batch must request 1..=k items, got {count}");
        let start = out.len();
        let scratch = &mut s.merge;
        let lanes = &mut s.lanes;

        c.lock_entry(ROOT)?;
        if self.is_poisoned() {
            c.release_all();
            return Err(QueueError::Poisoned);
        }
        OpStats::bump(&self.stats.delete_mins);

        // ---- PARTIAL_DELETEMIN (Alg. 2 lines 15-31) ----
        // SAFETY throughout: root lock held.
        let (heap_size, root_len) = unsafe {
            let m = self.storage.meta_mut();
            (m.heap_size, m.root_len)
        };

        // The root refill below will stream the last heap node; start
        // pulling it into L2 now so the fetch overlaps the root
        // extraction and lock work in between.
        if heap_size > 1 && simd::vector_enabled() {
            self.prefetch_node_full(heap_size, k);
        }

        if heap_size == 0 {
            self.finish_delete(c, out, start, ROOT, true, ctx)?;
            return Ok(0);
        }

        if count < root_len {
            // Root alone satisfies the request (Alg. 2 lines 18-20).
            self.extract_root(c, out, count);
            OpStats::bump(&self.stats.deletes_from_root);
            self.finish_delete(c, out, start, ROOT, true, ctx)?;
            return Ok(count);
        }

        // Take everything the root has (Alg. 2 line 22).
        self.extract_root(c, out, root_len);

        if heap_size == 1 {
            // No full nodes: serve the remainder from the buffer
            // (Alg. 2 lines 23-29).
            unsafe {
                let buf_len = self.storage.meta_mut().buf_len;
                if buf_len > 0 {
                    let pb_ptr = self.storage.node_mut(PBUFFER);
                    let root = self.storage.node_mut(ROOT);
                    root[..buf_len].copy_from_slice(&pb_ptr[..buf_len]);
                    let m = self.storage.meta_mut();
                    m.root_len = buf_len;
                    m.buf_len = 0;
                }
            }
            c.charge(PrimitiveCost::GlobalRead { n: k });
            let remaining = count - (out.len() - start);
            self.extract_root(c, out, remaining);
            unsafe {
                let m = self.storage.meta_mut();
                if m.root_len == 0 {
                    // Heap fully drained; reset to the empty state.
                    m.heap_size = 0;
                    c.touch(ROOT, true);
                    self.storage.set_state(ROOT, NodeState::Empty);
                }
            }
            OpStats::bump(&self.stats.deletes_from_root);
            self.finish_delete(c, out, start, ROOT, true, ctx)?;
            return Ok(out.len() - start);
        }

        // ---- refill the root from a heap node (Alg. 2 lines 4-14) ----
        c.touch(ROOT, true);
        self.storage.set_state(ROOT, NodeState::Empty);
        let remained = count - (out.len() - start);
        let tar = unsafe {
            let m = self.storage.meta_mut();
            let t = m.heap_size;
            m.heap_size -= 1;
            t
        };
        debug_assert!(tar >= 2);
        c.lock_or_poison(tar)?;
        c.charge(PrimitiveCost::Atomic);

        c.touch(tar, false);
        if self.storage.state(tar) == NodeState::Target {
            if self.opts.use_collaboration {
                // Collaborate: the in-flight insertion refills the root
                // directly (§4.3; footnote 2: we spin holding the root
                // lock). Bounded: a dead inserter must not wedge us.
                c.touch(tar, true);
                self.storage.set_state(tar, NodeState::Marked);
                self.record_protocol(ProtocolKind::MarkedSet, tar);
                c.unlock(tar);
                if let Err(e) = self.bounded_wait(c, ROOT, NodeState::Avail) {
                    c.release_all();
                    return Err(e);
                }
            } else {
                // Ablation: wait for the insertion to finish filling
                // `tar`, then take its keys like any AVAIL node.
                c.unlock(tar);
                if let Err(e) = self.bounded_wait(c, tar, NodeState::Avail) {
                    c.release_all();
                    return Err(e);
                }
                c.lock_or_poison(tar)?;
                debug_assert_eq!(self.storage.state(tar), NodeState::Avail);
                self.move_node_to_root(c, tar, k);
            }
        } else {
            debug_assert_eq!(self.storage.state(tar), NodeState::Avail);
            self.move_node_to_root(c, tar, k);
        }

        // Re-establish root ≤ buffer (Alg. 2 line 13).
        let buf_len = unsafe { self.storage.meta_mut().buf_len };
        if buf_len > 0 {
            c.charge(PrimitiveCost::SortSplit { na: k, nb: buf_len });
            // SAFETY: root lock held covers both the root and buffer.
            unsafe {
                let root = self.storage.node_mut(ROOT);
                let pb = self.storage.node_mut(PBUFFER);
                soa::sort_split_entries(root, k, pb, buf_len, k, scratch, lanes);
            }
        }

        OpStats::bump(&self.stats.delete_heapifies);
        self.delete_heapify(c, out, start, remained, scratch, lanes, ctx)?;
        Ok(out.len() - start)
    }

    /// Hint-prefetch the cache lines of node `node` that the next
    /// heapify level touches first: the head (`[0]` min probe, merge
    /// stream start) and the tail (`[k-1]` max probe). The body streams
    /// in behind the hardware prefetcher once the merge starts. Issued
    /// before the node's lock is taken, so the loads overlap the
    /// acquisition; prefetching is a hint, so racing a writer is safe.
    #[inline]
    fn prefetch_node(&self, node: usize, k: usize) {
        let p = self.storage.node_ptr(node);
        simd::prefetch_read(p);
        simd::prefetch_read(p.wrapping_add(k - 1));
    }

    /// Bulk-prefetch every cache line of node `node` into L2. Issued
    /// one full merge *ahead* of the level that will stream the node,
    /// so the fetch overlaps real work — at steady state the heap's
    /// nodes live far down the cache hierarchy (the working set is
    /// `max_nodes * k` entries) and the hand-over-hand traversal
    /// otherwise stalls on them level after level.
    fn prefetch_node_full(&self, node: usize, k: usize) {
        let p = self.storage.node_ptr(node);
        let per_line = (64 / core::mem::size_of::<Entry<K, V>>()).max(1);
        let mut i = 0;
        while i < k {
            simd::prefetch_read_l2(p.wrapping_add(i));
            i += per_line;
        }
    }

    /// Move AVAIL node `tar`'s full batch into the (empty) root and
    /// release `tar`. Caller holds both the root and `tar` locks.
    fn move_node_to_root(&self, c: &mut Crit<'_, K, V, P>, tar: usize, k: usize) {
        c.charge(PrimitiveCost::GlobalRead { n: k });
        // SAFETY: both locks held; nodes are disjoint (tar >= 2).
        unsafe {
            let src = self.storage.node_ref(tar);
            let dst = self.storage.node_mut(ROOT);
            dst.copy_from_slice(src);
            self.storage.meta_mut().root_len = k;
        }
        c.charge(PrimitiveCost::GlobalWrite { n: k });
        c.touch(tar, true);
        self.storage.set_state(tar, NodeState::Empty);
        c.unlock(tar);
        c.touch(ROOT, true);
        self.storage.set_state(ROOT, NodeState::Avail);
    }

    /// `DELETEMIN_HEAPIFY` (Alg. 3), iteratively. On entry the caller
    /// holds `cur = root`'s lock; `remained` keys still owed to the
    /// caller are extracted from the root before it is released.
    // The scratch pieces arrive disassembled from the op's arena — they
    // alias distinct OpScratch fields, so they can't ride in as one
    // `&mut OpScratch` alongside `out` (which is also arena-owned).
    #[allow(clippy::too_many_arguments)]
    fn delete_heapify(
        &self,
        c: &mut Crit<'_, K, V, P>,
        out: &mut Vec<Entry<K, V>>,
        start: usize,
        remained: usize,
        scratch: &mut Vec<Entry<K, V>>,
        lanes: &mut LaneScratch,
        ctx: &mut OpCtx<K>,
    ) -> Result<(), QueueError> {
        let k = self.opts.node_capacity;
        let max = self.opts.max_nodes;
        let mut cur = ROOT;
        loop {
            c.inject(InjectionPoint::MidDeleteHeapify);
            let l = crate::tree::left(cur);
            let r = crate::tree::right(cur);
            let l_in = l <= max;
            let r_in = r <= max;
            // Software-prefetch the child entries this level is about
            // to read (the min/max probes below, then the SORT_SPLIT
            // streams), so the loads overlap the hand-over-hand lock
            // acquisitions. Gated on the same runtime dispatch as the
            // vector kernels so BGPQ_FORCE_SCALAR A/B runs measure it
            // too; a no-op off x86_64. See EXPERIMENTS.md E11.
            if simd::vector_enabled() {
                if l_in {
                    self.prefetch_node(l, k);
                }
                if r_in {
                    self.prefetch_node(r, k);
                }
            }
            if l_in {
                c.lock_or_poison(l)?;
            }
            if r_in {
                c.lock_or_poison(r)?;
            }
            if l_in {
                c.touch(l, false);
            }
            if r_in {
                c.touch(r, false);
            }
            let l_has = l_in && self.storage.state(l) == NodeState::Avail;
            let r_has = r_in && self.storage.state(r) == NodeState::Avail;

            // SAFETY: we hold cur (and child) locks; AVAIL non-root
            // nodes are full and sorted.
            let cur_max = unsafe { self.storage.node_ref(cur)[k - 1].key };
            let min_child = unsafe {
                match (l_has, r_has) {
                    (true, true) => {
                        Some(self.storage.node_ref(l)[0].key.min(self.storage.node_ref(r)[0].key))
                    }
                    (true, false) => Some(self.storage.node_ref(l)[0].key),
                    (false, true) => Some(self.storage.node_ref(r)[0].key),
                    (false, false) => None,
                }
            };
            c.charge(PrimitiveCost::GlobalRead { n: if l_has { k } else { 0 } });
            c.charge(PrimitiveCost::GlobalRead { n: if r_has { k } else { 0 } });

            // Alg. 3 lines 4-8: heap property already satisfied (TARGET
            // and EMPTY children hold no keys).
            if min_child.is_none_or(|m| cur_max <= m) {
                if cur == ROOT {
                    self.extract_root(c, out, remained);
                }
                if r_in {
                    c.unlock(r);
                }
                if l_in {
                    c.unlock(l);
                }
                self.finish_delete(c, out, start, cur, cur == ROOT, ctx)?;
                return Ok(());
            }

            // Descend. If only one child holds keys, SORT_SPLIT with it
            // directly; otherwise Alg. 3 lines 9-12. Both splits run
            // the crossing-bounded in-place routine
            // (`soa::sort_split_full_entries`); fusing the two into one
            // three-stream merge was tried and rejected — the 3-way
            // select defeats branch if-conversion and costs more than
            // the traffic it saves (EXPERIMENTS.md E11).
            let y = if l_has && r_has {
                let (x, y) = unsafe {
                    let lmax = self.storage.node_ref(l)[k - 1].key;
                    let rmax = self.storage.node_ref(r)[k - 1].key;
                    if lmax > rmax {
                        (l, r)
                    } else {
                        (r, l)
                    }
                };
                c.charge(PrimitiveCost::SortSplit { na: k, nb: k });
                // SAFETY: both child locks held; disjoint nodes.
                unsafe {
                    sort_split_two(
                        self.storage.node_mut(y),
                        self.storage.node_mut(x),
                        scratch,
                        lanes,
                    );
                }
                c.charge(PrimitiveCost::GlobalWrite { n: k });
                c.unlock(x);
                y
            } else {
                let y = if l_has { l } else { r };
                // Release the keyless sibling immediately.
                let other = if l_has { r } else { l };
                if other == r && r_in {
                    c.unlock(r);
                } else if other == l && l_in {
                    c.unlock(l);
                }
                y
            };

            // The next iteration streams `y`'s children in its sibling
            // SORT_SPLIT; start pulling them into L2 so the fetch
            // overlaps the full merge below.
            if simd::vector_enabled() {
                let (yl, yr) = (crate::tree::left(y), crate::tree::right(y));
                if yl <= max {
                    self.prefetch_node_full(yl, k);
                }
                if yr <= max {
                    self.prefetch_node_full(yr, k);
                }
            }

            // SORT_SPLIT(cur, y): cur keeps the k smallest (Alg. 3
            // line 12).
            c.charge(PrimitiveCost::SortSplit { na: k, nb: k });
            // SAFETY: cur and y locks held; disjoint nodes.
            unsafe {
                sort_split_two(
                    self.storage.node_mut(cur),
                    self.storage.node_mut(y),
                    scratch,
                    lanes,
                );
            }
            c.charge(PrimitiveCost::GlobalWrite { n: 2 * k });

            if cur == ROOT {
                self.extract_root(c, out, remained);
            }
            self.finish_delete(c, out, start, cur, cur == ROOT, ctx)?;
            cur = y;
        }
    }

    /// Release `lock` on the delete path; when it is the root lock this
    /// is the operation's linearization point (the result set is final
    /// by then), so draw the sequence number and update the item count.
    fn finish_delete(
        &self,
        c: &mut Crit<'_, K, V, P>,
        out: &[Entry<K, V>],
        start: usize,
        lock: usize,
        is_root: bool,
        ctx: &mut OpCtx<K>,
    ) -> Result<(), QueueError> {
        if is_root {
            // Last pre-commit poison check: if a peer died while we
            // worked, abort before publishing the result rather than
            // hand out keys from a queue in an unknown state.
            if self.is_poisoned() && ctx.seq.is_none() {
                c.release_all();
                return Err(QueueError::Poisoned);
            }
            let got = &out[start..];
            self.items.fetch_sub(got.len() as i64, Ordering::Relaxed);
            OpStats::add(&self.stats.items_deleted, got.len() as u64);
            self.linearize_delete(ctx, out, start);
            c.touch(ROOT, true);
            self.publish_root_min();
        }
        c.unlock(lock);
        Ok(())
    }
}

/// `SORT_SPLIT` between two full nodes where the *first* argument
/// receives the smallest keys — inputs are each sorted but their union
/// order is arbitrary.
fn sort_split_two<K: KeyType, V: ValueType>(
    small_side: &mut [Entry<K, V>],
    large_side: &mut [Entry<K, V>],
    scratch: &mut Vec<Entry<K, V>>,
    lanes: &mut LaneScratch,
) {
    soa::sort_split_full_entries(small_side, large_side, scratch, lanes);
}

/// What a [`Bgpq::salvage_reset`] walk found and did. The caller-facing
/// accounting lives in `bgpq-recover`'s `SalvageReport`; this is the
/// raw storage-level outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SalvageOutcome {
    /// Entries walked out of node storage into the caller's buffer.
    pub recovered: usize,
    /// The queue's item count at the moment of salvage (clamped at 0).
    /// An upper bound on the keys that were settled: a worker that
    /// crashed *before* its insert linearized has already bumped the
    /// count for keys its caller still owns (see `try_insert` docs), so
    /// `expected - recovered` can over-report loss — never under.
    pub expected: usize,
    /// Nodes skipped in TARGET state: reserved by an in-flight insert
    /// whose keys died on the crashed worker's stack.
    pub skipped_target: usize,
    /// Nodes skipped in MARKED state: a collaboration was in flight;
    /// the stolen keys died with whichever worker held them.
    pub skipped_marked: usize,
    /// Whether the queue was poisoned when salvage began.
    pub was_poisoned: bool,
}

impl SalvageOutcome {
    /// Keys confirmed or conservatively presumed lost to in-flight
    /// operations: everything the item count promised but the walk
    /// could not find. Zero on a quiescent healthy queue.
    pub fn lost(&self) -> usize {
        self.expected.saturating_sub(self.recovered)
    }
}

impl<K: KeyType, V: ValueType, P: Platform> Bgpq<K, V, P> {
    /// Salvage: walk every settled key out of node storage into `out`,
    /// then reset the queue to a fresh empty (un-poisoned) state.
    ///
    /// **Exclusive and quiescent only** — the same contract as
    /// [`Bgpq::check_invariants`], but stronger in practice: every
    /// worker that ever operated on this queue must have returned or
    /// unwound, and none may call in while salvage runs. Lock words
    /// abandoned by crashed workers are *not* touched here (a generic
    /// platform cannot force-release them); CPU recovery resets them
    /// first via `CpuPlatform::force_reset_locks`.
    ///
    /// The walk trusts node *states*, which every mutation path keeps
    /// accurate between injection points:
    ///
    /// * root — counted when `AVAIL` (`root_len` live entries). An
    ///   `EMPTY` root mid-refill is skipped; its keys are reported
    ///   lost rather than risk double-counting the refill source node.
    /// * partial buffer — `buf_len` entries, always (it shares the
    ///   root's lock and has no state machine of its own).
    /// * every other node slot, `2..=max_nodes` — counted when `AVAIL`
    ///   (full `k` entries), *regardless of `heap_size`*: a crashed
    ///   delete may have already decremented `heap_size` while its
    ///   refill source still holds keys. `TARGET`/`MARKED` slots are
    ///   skipped and tallied — those keys were in flight on a dead
    ///   worker's stack.
    ///
    /// The reset happens only after the walk completes: a second fault
    /// during the walk (the `SalvageWalk` injection point fires per
    /// visited node) leaves the queue still poisoned and salvageable
    /// again. `out` may then hold a partial walk — callers re-running
    /// salvage must discard it (the entries are still in storage).
    ///
    /// Works on healthy queues too (drain-and-reset), where
    /// `lost() == 0` at quiescence.
    pub fn salvage_reset(&self, w: &mut P::Worker, out: &mut Vec<Entry<K, V>>) -> SalvageOutcome {
        // The walk reads, and the reset rewrites, the entire queue:
        // conflicts with every operation on it.
        self.platform.touch_domain(w, true);
        let was_poisoned = self.is_poisoned();
        let k = self.opts.node_capacity;
        let expected = self.items.load(Ordering::SeqCst).max(0) as usize;
        let mut recovered = 0usize;
        let mut skipped_target = 0usize;
        let mut skipped_marked = 0usize;

        // ---- walk (no mutation) ----
        // SAFETY: exclusivity/quiescence is the caller's contract; no
        // other thread touches storage or meta.
        unsafe {
            let m = *self.storage.meta_mut();
            self.platform.inject(w, InjectionPoint::SalvageWalk);
            if self.storage.state(ROOT) == NodeState::Avail && m.root_len > 0 {
                out.extend_from_slice(&self.storage.node_ref(ROOT)[..m.root_len.min(k)]);
                recovered += m.root_len.min(k);
            }
            if m.buf_len > 0 {
                out.extend_from_slice(&self.storage.node_ref(PBUFFER)[..m.buf_len.min(k)]);
                recovered += m.buf_len.min(k);
            }
            for node in 2..=self.opts.max_nodes {
                match self.storage.state(node) {
                    NodeState::Avail => {
                        self.platform.inject(w, InjectionPoint::SalvageWalk);
                        out.extend_from_slice(self.storage.node_ref(node));
                        recovered += k;
                    }
                    NodeState::Target => skipped_target += 1,
                    NodeState::Marked => skipped_marked += 1,
                    NodeState::Empty => {}
                }
            }
        }

        // ---- reset to the fresh empty state ----
        // SAFETY: same exclusivity contract.
        unsafe {
            let m = self.storage.meta_mut();
            m.heap_size = 0;
            m.root_len = 0;
            m.buf_len = 0;
        }
        for node in 0..=self.opts.max_nodes {
            self.storage.set_state(node, NodeState::Empty);
        }
        self.items.store(0, Ordering::SeqCst);
        self.root_min_bits.store(u64::MAX, Ordering::SeqCst);
        // Un-poison last: a freshly grabbable queue must already look
        // empty. `seq` is deliberately preserved — linearization
        // ordinals stay monotone across the queue's lifetimes.
        self.poisoned.store(false, Ordering::SeqCst);
        OpStats::bump(&self.stats.salvages);

        SalvageOutcome { recovered, expected, skipped_target, skipped_marked, was_poisoned }
    }
}

// ----------------------------------------------------------------------
// Quiescent invariant checking (test support)
// ----------------------------------------------------------------------

impl<K: KeyType, V: ValueType, P: Platform> Bgpq<K, V, P> {
    /// Verify the batched-heap invariants. **Quiescent only**: no
    /// concurrent operations may be running. Panics with a description
    /// on violation; returns the total key count on success.
    pub fn check_invariants(&self) -> usize {
        assert!(!self.is_poisoned(), "queue is poisoned; invariants are void");
        // SAFETY: quiescence is the caller's contract; no other thread
        // touches storage.
        unsafe {
            let k = self.opts.node_capacity;
            let m = *self.storage.meta_mut();
            assert!(m.heap_size <= self.opts.max_nodes, "heap_size exceeds max_nodes");
            assert!(m.root_len <= k, "root over capacity");
            assert!(m.buf_len <= k.saturating_sub(1), "buffer over capacity");
            let mut total = 0usize;

            if m.heap_size == 0 {
                assert_eq!(m.root_len, 0, "empty heap with keys in root");
                assert_eq!(m.buf_len, 0, "empty heap with keys in buffer");
                assert_eq!(self.min_hint_bits(), u64::MAX, "empty heap publishing a min hint");
                return 0;
            }
            assert_eq!(self.storage.state(ROOT), NodeState::Avail, "root not AVAIL");
            let root = self.storage.node_ref(ROOT);
            assert!(root[..m.root_len].windows(2).all(|p| p[0] <= p[1]), "root not sorted");
            if m.root_len > 0 {
                assert_eq!(
                    self.min_hint_bits(),
                    root[0].key.to_ordered_bits(),
                    "stale root-min hint at quiescence"
                );
            }
            total += m.root_len;

            let pb = self.storage.node_ref(PBUFFER);
            assert!(pb[..m.buf_len].windows(2).all(|p| p[0] <= p[1]), "buffer not sorted");
            if m.buf_len > 0 && m.root_len > 0 {
                assert!(root[m.root_len - 1].key <= pb[0].key, "buffer min below root max");
            }
            total += m.buf_len;

            for node in 2..=m.heap_size {
                assert_eq!(
                    self.storage.state(node),
                    NodeState::Avail,
                    "node {node} within heap_size not AVAIL"
                );
                let n = self.storage.node_ref(node);
                assert!(n.windows(2).all(|p| p[0] <= p[1]), "node {node} not sorted");
                let parent = crate::tree::parent(node);
                if parent == ROOT {
                    if m.root_len > 0 {
                        assert!(
                            root[m.root_len - 1].key <= n[0].key,
                            "node {node} min below root max"
                        );
                    }
                } else {
                    let p = self.storage.node_ref(parent);
                    assert!(p[k - 1].key <= n[0].key, "node {node} min below parent {parent} max");
                }
                total += k;
            }
            for node in (m.heap_size + 1).max(2)..=self.opts.max_nodes {
                assert_eq!(
                    self.storage.state(node),
                    NodeState::Empty,
                    "node {node} beyond heap_size not EMPTY"
                );
            }
            assert_eq!(total as i64, self.items.load(Ordering::Relaxed), "item count drift");
            total
        }
    }
}
