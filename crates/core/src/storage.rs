//! Lock-protected node storage.
//!
//! The heap lives in one contiguous allocation: node `i` occupies
//! entries `[i*k, (i+1)*k)`, with node `0` reserved for the partial
//! buffer (`pBuffer`) and node `1` the root. "Each batch node is stored
//! in aligned consecutive memory blocks. When loading a batch node,
//! consecutive memory blocks are loaded, and thus the memory throughput
//! is maximized" (§3.3).
//!
//! # Safety protocol
//!
//! Node contents (and the root/buffer size metadata) are plain memory
//! guarded by the platform's lock table, exactly like the CUDA
//! implementation guards them with per-node lock words:
//!
//! * node `i`'s entries may be accessed only while holding lock `i`
//!   (lock `1` for both the root and the buffer, which share it — §4);
//! * **collaboration exception** (§4.3, footnote 2): a DELETEMIN holding
//!   the root lock that finds its refill node in state `TARGET` sets it
//!   to `MARKED` and *delegates* the root refill to the inserting
//!   thread. From that point until the root's state becomes `AVAIL`
//!   again, the *inserter* (which holds the target's lock) owns the root
//!   entries and `root_len`, and the deleter — despite holding the root
//!   lock — must not touch them. Ownership returns to the root lock
//!   holder with the `AVAIL` store (release) / load (acquire) pair.
//!
//! Node *states* are atomics and may be read optimistically anywhere;
//! writes occur only by the protocol owner above.

use pq_api::{Entry, KeyType, ValueType};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// State of a heap node (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum NodeState {
    /// Holds no keys.
    Empty = 0,
    /// Holds keys (full, except the root and buffer).
    Avail = 1,
    /// Reserved by an in-flight insertion's heapify.
    Target = 2,
    /// A DELETEMIN requested collaboration from the inserting thread.
    Marked = 3,
}

impl NodeState {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => NodeState::Empty,
            1 => NodeState::Avail,
            2 => NodeState::Target,
            3 => NodeState::Marked,
            _ => unreachable!("invalid node state {v}"),
        }
    }
}

/// Size metadata mutated under the root lock (with the collaboration
/// exception for `root_len`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Meta {
    /// Number of heap nodes in use, *including* the root (0 = empty).
    pub heap_size: usize,
    /// Keys currently in the root node (≤ k).
    pub root_len: usize,
    /// Keys currently in the partial buffer (≤ k-1).
    pub buf_len: usize,
}

/// Index of the partial buffer's storage slot.
pub const PBUFFER: usize = 0;

pub struct NodeStorage<K, V> {
    entries: Box<[UnsafeCell<Entry<K, V>>]>,
    states: Box<[AtomicU8]>,
    meta: UnsafeCell<Meta>,
    k: usize,
    max_nodes: usize,
}

// SAFETY: access to `entries` and `meta` follows the lock protocol in
// the module docs; `states` are atomics.
unsafe impl<K: Send, V: Send> Send for NodeStorage<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for NodeStorage<K, V> {}

impl<K: KeyType, V: ValueType> NodeStorage<K, V> {
    /// Allocate storage for `max_nodes` heap nodes of capacity `k` plus
    /// the partial buffer. All nodes start `Empty` and sentinel-filled.
    pub fn new(k: usize, max_nodes: usize) -> Self {
        assert!(k >= 1, "node capacity must be positive");
        assert!(max_nodes >= 1, "need at least the root node");
        let slots = (max_nodes + 1) * k;
        let entries: Box<[UnsafeCell<Entry<K, V>>]> =
            (0..slots).map(|_| UnsafeCell::new(Entry::sentinel())).collect();
        let states: Box<[AtomicU8]> =
            (0..max_nodes + 1).map(|_| AtomicU8::new(NodeState::Empty as u8)).collect();
        Self { entries, states, meta: UnsafeCell::new(Meta::default()), k, max_nodes }
    }

    /// Node capacity `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Maximum number of heap nodes (excluding the buffer slot).
    #[inline]
    pub fn max_nodes(&self) -> usize {
        self.max_nodes
    }

    /// Mutable view of node `node`'s `k` entry slots.
    ///
    /// # Safety
    /// Caller must own node `node` per the module's protocol (hold its
    /// lock, or be the collaboration-phase owner), and must not hold
    /// another live reference to the same node.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn node_mut(&self, node: usize) -> &mut [Entry<K, V>] {
        debug_assert!(node <= self.max_nodes);
        let base = self.entries[node * self.k].get();
        // SAFETY: `base` points at `k` contiguous `UnsafeCell<Entry>`
        // slots; `UnsafeCell<T>` has the same layout as `T`; exclusivity
        // is the caller's protocol obligation.
        unsafe { std::slice::from_raw_parts_mut(base.cast::<Entry<K, V>>(), self.k) }
    }

    /// Raw pointer to node `node`'s first entry. Safe to produce
    /// (never dereferenced here); used to issue software prefetches
    /// before the node's lock is acquired — a prefetch is a hint, so
    /// racing with a concurrent writer is harmless.
    pub fn node_ptr(&self, node: usize) -> *const Entry<K, V> {
        debug_assert!(node <= self.max_nodes);
        self.entries[node * self.k].get().cast::<Entry<K, V>>().cast_const()
    }

    /// Shared view of node `node` (same ownership obligation).
    ///
    /// # Safety
    /// As [`Self::node_mut`], except aliasing shared views are fine.
    #[inline]
    pub unsafe fn node_ref(&self, node: usize) -> &[Entry<K, V>] {
        debug_assert!(node <= self.max_nodes);
        let base = self.entries[node * self.k].get();
        unsafe { std::slice::from_raw_parts(base.cast::<Entry<K, V>>(), self.k) }
    }

    /// Mutable view of the size metadata.
    ///
    /// # Safety
    /// Caller must hold the root lock (or own the collaboration phase,
    /// for `root_len` only) and must scope the reference tightly.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn meta_mut(&self) -> &mut Meta {
        unsafe { &mut *self.meta.get() }
    }

    /// Read node `node`'s state (acquire).
    #[inline]
    pub fn state(&self, node: usize) -> NodeState {
        NodeState::from_u8(self.states[node].load(Ordering::Acquire))
    }

    /// Write node `node`'s state (release). Only the protocol owner may
    /// call this.
    #[inline]
    pub fn set_state(&self, node: usize, s: NodeState) {
        self.states[node].store(s as u8, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_storage_is_empty_sentinels() {
        let st = NodeStorage::<u32, ()>::new(4, 8);
        assert_eq!(st.k(), 4);
        assert_eq!(st.max_nodes(), 8);
        for node in 0..=8 {
            assert_eq!(st.state(node), NodeState::Empty);
            let entries = unsafe { st.node_ref(node) };
            assert!(entries.iter().all(|e| e.is_sentinel()));
        }
    }

    #[test]
    fn nodes_are_disjoint() {
        let st = NodeStorage::<u32, u32>::new(2, 4);
        unsafe {
            let a = st.node_mut(1);
            let b = st.node_mut(2);
            a[0] = Entry::new(10, 0);
            b[0] = Entry::new(20, 0);
            assert_eq!(st.node_ref(1)[0].key, 10);
            assert_eq!(st.node_ref(2)[0].key, 20);
        }
    }

    #[test]
    fn state_roundtrip() {
        let st = NodeStorage::<u32, ()>::new(1, 2);
        for s in [NodeState::Avail, NodeState::Target, NodeState::Marked, NodeState::Empty] {
            st.set_state(1, s);
            assert_eq!(st.state(1), s);
        }
    }

    #[test]
    fn meta_roundtrip() {
        let st = NodeStorage::<u32, ()>::new(1, 2);
        unsafe {
            st.meta_mut().heap_size = 2;
            st.meta_mut().root_len = 1;
            assert_eq!(st.meta_mut().heap_size, 2);
            assert_eq!(st.meta_mut().root_len, 1);
        }
    }
}
