//! Property-based tests of the virtual-time scheduler: for arbitrary
//! agent programs, the simulation invariants must hold.

use gpu_sim::{launch, GpuConfig, Scheduler};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

/// A tiny agent program: a sequence of steps.
#[derive(Debug, Clone)]
enum Step {
    /// Advance the clock by this many cycles.
    Work(u16),
    /// Lock the given lock (of 3), work, unlock.
    Critical(u8, u16),
}

fn program_strategy() -> impl Strategy<Value = Vec<Step>> {
    let step = prop_oneof![
        (1u16..2000).prop_map(Step::Work),
        ((0u8..3), (1u16..500)).prop_map(|(l, w)| Step::Critical(l, w)),
    ];
    proptest::collection::vec(step, 1..12)
}

fn run_programs(programs: &[Vec<Step>]) -> (u64, Vec<u64>, Vec<(u8, u64, u64)>) {
    let n = programs.len();
    let sched = Scheduler::new(n);
    let locks = sched.create_locks(3);
    let spans: Mutex<Vec<(u8, u64, u64)>> = Mutex::new(Vec::new());
    let finish: Mutex<Vec<u64>> = Mutex::new(vec![0; n]);
    std::thread::scope(|s| {
        for (id, prog) in programs.iter().enumerate() {
            let mut w = sched.worker(id);
            let spans = &spans;
            let finish = &finish;
            s.spawn(move || {
                w.begin();
                for step in prog {
                    match *step {
                        Step::Work(c) => w.advance(c as u64),
                        Step::Critical(l, c) => {
                            w.lock(locks + l as usize, 10);
                            let start = w.now();
                            w.advance(c as u64);
                            spans.lock().push((l, start, w.now()));
                            w.unlock(locks + l as usize, 10);
                        }
                    }
                }
                finish.lock()[id] = w.now();
                w.finish();
            });
        }
    });
    (sched.makespan(), finish.into_inner(), spans.into_inner())
}

fn sequential_time(prog: &[Step]) -> u64 {
    prog.iter()
        .map(|s| match *s {
            Step::Work(c) => c as u64,
            // lock + unlock atomics (10 each) + critical work.
            Step::Critical(_, c) => c as u64 + 20,
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Makespan is bounded below by every agent's own work and above by
    /// total serialization (plus lock handoff overheads).
    #[test]
    fn makespan_bounds(programs in proptest::collection::vec(program_strategy(), 1..6)) {
        let (makespan, finish, _) = run_programs(&programs);
        let per_agent: Vec<u64> = programs.iter().map(|p| sequential_time(p)).collect();
        let max_alone = per_agent.iter().copied().max().unwrap();
        let total: u64 = per_agent.iter().sum();
        prop_assert!(makespan >= max_alone, "makespan {makespan} below longest agent {max_alone}");
        // Upper bound: full serialization + generous handoff slack.
        let slack = 1000 * programs.iter().map(|p| p.len() as u64).sum::<u64>();
        prop_assert!(makespan <= total + slack, "makespan {makespan} above serial bound {total}+{slack}");
        for (id, f) in finish.iter().enumerate() {
            prop_assert!(*f <= makespan, "agent {id} finished after makespan");
            prop_assert!(*f >= per_agent[id], "agent {id} finished before its own work");
        }
    }

    /// Critical sections on the same lock never overlap in virtual time.
    #[test]
    fn critical_sections_exclusive(programs in proptest::collection::vec(program_strategy(), 2..6)) {
        let (_, _, mut spans) = run_programs(&programs);
        spans.sort();
        for pair in spans.windows(2) {
            let (l1, _s1, e1) = pair[0];
            let (l2, s2, _e2) = pair[1];
            if l1 == l2 {
                prop_assert!(e1 <= s2, "overlap on lock {l1}: {pair:?}");
            }
        }
    }

    /// Identical inputs produce identical simulations.
    #[test]
    fn simulation_is_a_function(programs in proptest::collection::vec(program_strategy(), 1..5)) {
        let a = run_programs(&programs);
        let b = run_programs(&programs);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }

    /// The launch harness composes with arbitrary per-block work.
    #[test]
    fn launch_makespan_dominates_blocks(works in proptest::collection::vec(1u64..100_000, 1..8)) {
        let n = works.len();
        let works = Arc::new(works);
        let w2 = Arc::clone(&works);
        let (report, _) = launch(GpuConfig::new(n, 128), |_s| (), move |ctx, _| {
            ctx.advance(w2[ctx.block_id()]);
        });
        let c = GpuConfig::new(n, 128).cost;
        let max = works.iter().copied().max().unwrap();
        prop_assert!(report.makespan_cycles >= max + c.c_dispatch);
    }
}
