//! SM-occupancy (wave execution) and phased-launch behaviour.

use gpu_sim::{launch, launch_phased, GpuConfig};
use primitives::CostModel;
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn resident_block_formula() {
    // TITAN X Pascal defaults: 28 SMs x 2048 threads.
    assert_eq!(GpuConfig::new(128, 512).resident_blocks(), 28 * 4);
    assert_eq!(GpuConfig::new(128, 1024).resident_blocks(), 28 * 2);
    // Small blocks hit the per-SM block cap (32).
    assert_eq!(GpuConfig::new(4096, 32).resident_blocks(), 28 * 32);
    // At least one block is always resident.
    assert!(GpuConfig::new(1, 4096).resident_blocks() >= 1);
}

#[test]
fn blocks_beyond_residency_execute_in_waves() {
    // Device with a single slot: blocks serialize fully.
    let mut cfg = GpuConfig::new(4, 128);
    cfg.sm_count = 1;
    cfg.max_threads_per_sm = 128; // exactly one resident block
    let (serial, _) = launch(cfg, |_s| (), |ctx, _| ctx.advance(10_000));
    let per_block = 10_000 + cfg.cost.c_dispatch;
    assert!(
        serial.makespan_cycles >= 4 * per_block,
        "1-resident device must serialize: {} < {}",
        serial.makespan_cycles,
        4 * per_block
    );

    // Same launch on a roomy device overlaps fully.
    let roomy = GpuConfig::new(4, 128);
    let (parallel, _) = launch(roomy, |_s| (), |ctx, _| ctx.advance(10_000));
    assert!(parallel.makespan_cycles < 2 * per_block, "{}", parallel.makespan_cycles);
}

#[test]
fn two_waves_when_grid_is_oversubscribed_by_half() {
    let mut cfg = GpuConfig::new(8, 128);
    cfg.sm_count = 4;
    cfg.max_threads_per_sm = 128; // 4 resident, 8 launched -> 2 waves
    let (r, _) = launch(cfg, |_s| (), |ctx, _| ctx.advance(50_000));
    let one_wave = 50_000 + cfg.cost.c_dispatch;
    assert!(
        r.makespan_cycles >= 2 * one_wave && r.makespan_cycles < 3 * one_wave,
        "expected two waves: {} vs wave {}",
        r.makespan_cycles,
        one_wave
    );
}

#[test]
fn phased_launch_orders_phases_in_virtual_time() {
    let counter = AtomicUsize::new(0);
    let phase1 = |ctx: &mut gpu_sim::BlockCtx, c: &AtomicUsize| {
        c.fetch_add(1, Ordering::Relaxed);
        ctx.advance(1000);
    };
    let phase2 = |ctx: &mut gpu_sim::BlockCtx, c: &AtomicUsize| {
        // Every phase-1 block must be done before any phase-2 work.
        assert_eq!(c.load(Ordering::Relaxed), 8, "phase 1 incomplete");
        ctx.advance(500);
    };
    let (reports, _) = launch_phased(GpuConfig::new(8, 128), |_s| counter, &[&phase1, &phase2]);
    assert_eq!(reports.len(), 2);
    assert!(reports[1].makespan_cycles > reports[0].makespan_cycles);
    // Phase 2 starts at phase-1 makespan + relaunch cost.
    let c = CostModel::default();
    assert_eq!(
        reports[1].makespan_cycles,
        reports[0].makespan_cycles + c.c_dispatch /* relaunch */ + c.c_dispatch /* block dispatch */ + 500
    );
}

#[test]
fn phased_launch_is_deterministic() {
    let run = || {
        let p1 = |ctx: &mut gpu_sim::BlockCtx, _: &()| {
            ctx.advance(100 + ctx.block_id() as u64 * 7);
        };
        let p2 = |ctx: &mut gpu_sim::BlockCtx, _: &()| {
            ctx.advance(300 - ctx.block_id() as u64 * 3);
        };
        launch_phased(GpuConfig::new(6, 256), |_s| (), &[&p1, &p2]).0
    };
    let a = run();
    let b = run();
    assert_eq!(a[0].makespan_cycles, b[0].makespan_cycles);
    assert_eq!(a[1].makespan_cycles, b[1].makespan_cycles);
}

#[test]
#[should_panic(expected = "need at least one phase")]
fn empty_phase_list_is_rejected() {
    let phases: &[gpu_sim::PhaseKernel<()>] = &[];
    let _ = launch_phased(GpuConfig::new(2, 128), |_s| (), phases);
}
