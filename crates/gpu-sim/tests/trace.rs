//! Event-trace facility tests.

use gpu_sim::{Scheduler, TraceEvent, TraceKind};

fn kinds_for(agent: usize, trace: &[TraceEvent]) -> Vec<TraceKind> {
    trace.iter().filter(|e| e.agent == agent).map(|e| e.kind).collect()
}

#[test]
fn trace_records_lock_protocol() {
    let sched = Scheduler::new(2);
    sched.enable_trace(1024);
    let l = sched.create_locks(1);
    std::thread::scope(|s| {
        for id in 0..2 {
            let mut w = sched.worker(id);
            s.spawn(move || {
                w.begin();
                w.advance(id as u64 * 10); // stagger: agent 0 first
                w.lock(l, 5);
                w.advance(100);
                w.unlock(l, 5);
                w.finish();
            });
        }
    });
    let trace = sched.take_trace();
    assert!(!trace.is_empty());
    // Virtual times are non-decreasing in emission order per agent.
    for id in 0..2 {
        let times: Vec<u64> = trace.iter().filter(|e| e.agent == id).map(|e| e.vtime).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "agent {id} times {times:?}");
    }
    // Agent 0 acquires without waiting; agent 1 waits then acquires.
    let k0 = kinds_for(0, &trace);
    assert!(k0.contains(&TraceKind::LockAcquired(l)));
    assert!(!k0.contains(&TraceKind::LockWait(l)), "agent 0 should not wait: {k0:?}");
    let k1 = kinds_for(1, &trace);
    let wait_pos = k1.iter().position(|k| *k == TraceKind::LockWait(l)).expect("agent 1 waits");
    let acq_pos = k1.iter().position(|k| *k == TraceKind::LockAcquired(l)).expect("then acquires");
    assert!(wait_pos < acq_pos);
    // Both finish.
    assert!(k0.contains(&TraceKind::Finished));
    assert!(k1.contains(&TraceKind::Finished));
    // Releases present for both.
    assert_eq!(trace.iter().filter(|e| e.kind == TraceKind::LockReleased(l)).count(), 2);
}

#[test]
fn trace_is_bounded() {
    let sched = Scheduler::new(1);
    sched.enable_trace(4);
    let l = sched.create_locks(1);
    std::thread::scope(|s| {
        let mut w = sched.worker(0);
        s.spawn(move || {
            w.begin();
            for _ in 0..50 {
                w.lock(l, 1);
                w.unlock(l, 1);
            }
            w.finish();
        });
    });
    let trace = sched.take_trace();
    assert_eq!(trace.len(), 4, "capacity bound must hold");
}

#[test]
fn trace_disabled_by_default() {
    let sched = Scheduler::new(1);
    let l = sched.create_locks(1);
    std::thread::scope(|s| {
        let mut w = sched.worker(0);
        s.spawn(move || {
            w.begin();
            w.lock(l, 1);
            w.unlock(l, 1);
            w.finish();
        });
    });
    assert!(sched.take_trace().is_empty());
}
