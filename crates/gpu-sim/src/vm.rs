//! Kernel launch harness: runs one closure per simulated thread block
//! and reports the virtual makespan.

use crate::config::GpuConfig;
use crate::sched::{Scheduler, SimMetrics, SimWorker};
use primitives::{CostModel, PrimitiveCost};
use std::sync::Arc;

/// Per-block execution context handed to the kernel closure.
///
/// Wraps the raw [`SimWorker`] with the launch's cost model so kernels
/// charge primitives (`ctx.charge(PrimitiveCost::Sort { n })`) instead of
/// raw cycles.
pub struct BlockCtx {
    worker: SimWorker,
    block_id: usize,
    block_dim: u32,
    cost: CostModel,
}

impl BlockCtx {
    /// This block's index within the launch grid.
    pub fn block_id(&self) -> usize {
        self.block_id
    }

    /// Threads in this block.
    pub fn block_dim(&self) -> u32 {
        self.block_dim
    }

    /// The launch's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Current virtual time (cycles).
    pub fn now(&self) -> u64 {
        self.worker.now()
    }

    /// Charge the virtual cost of executing `p` with this block's width.
    pub fn charge(&mut self, p: PrimitiveCost) {
        let cycles = self.cost.cycles(p, self.block_dim);
        self.worker.advance(cycles);
    }

    /// Charge a raw cycle count.
    pub fn advance(&mut self, cycles: u64) {
        self.worker.advance(cycles);
    }

    /// Access the underlying scheduler worker (locks, barriers).
    pub fn worker(&mut self) -> &mut SimWorker {
        &mut self.worker
    }

    /// The scheduler owning this run (for lock/barrier creation).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        self.worker.scheduler()
    }
}

/// Result of a simulated kernel launch.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Virtual cycles from launch to the last block's retirement.
    pub makespan_cycles: u64,
    /// Simulated milliseconds at the device clock.
    pub makespan_ms: f64,
    /// Scheduler counters.
    pub metrics: SimMetrics,
    /// Per-block finish times (virtual cycles) — load-balance
    /// diagnostics.
    pub block_finish_cycles: Vec<u64>,
}

impl SimReport {
    /// Mean block utilization: average finish time over makespan (1.0 =
    /// perfectly balanced blocks).
    pub fn balance(&self) -> f64 {
        if self.makespan_cycles == 0 || self.block_finish_cycles.is_empty() {
            return 1.0;
        }
        let mean = self.block_finish_cycles.iter().sum::<u64>() as f64
            / self.block_finish_cycles.len() as f64;
        mean / self.makespan_cycles as f64
    }
}

/// Run one wave (one kernel) over an existing scheduler.
fn run_wave<T: Sync>(
    sched: &Arc<Scheduler>,
    config: GpuConfig,
    slot_base: usize,
    shared: &T,
    kernel: &(dyn Fn(&mut BlockCtx, &T) + Sync),
) {
    let resident = config.resident_blocks().min(config.num_blocks).max(1);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(config.num_blocks);
        for block_id in 0..config.num_blocks {
            let worker = sched.worker(block_id);
            let cost = config.cost;
            let block_dim = config.block_dim;
            handles.push(scope.spawn(move || {
                let mut ctx = BlockCtx { worker, block_id, block_dim, cost };
                ctx.worker.begin();
                // SM occupancy: at most `resident` blocks execute
                // concurrently; excess blocks wait for a slot in launch
                // order (wave execution, as on real hardware).
                let slot = slot_base + block_id % resident;
                ctx.worker.lock(slot, 0);
                ctx.charge(PrimitiveCost::Dispatch);
                kernel(&mut ctx, shared);
                ctx.worker.unlock(slot, 0);
                ctx.worker.finish();
            }));
        }
        for h in handles {
            if let Err(e) = h.join() {
                std::panic::resume_unwind(e);
            }
        }
    });
}

fn report_of(sched: &Scheduler, config: &GpuConfig) -> SimReport {
    SimReport {
        makespan_cycles: sched.makespan(),
        makespan_ms: config.cost.cycles_to_ms(sched.makespan()),
        metrics: sched.metrics(),
        block_finish_cycles: sched.agent_vtimes(),
    }
}

/// Launch `kernel` on a simulated GPU: one agent per thread block, each
/// charged a per-block dispatch cost, executing concurrently in virtual
/// time. Blocks communicate through whatever shared state the closure
/// captures plus scheduler locks/barriers.
///
/// The closure receives a fresh [`BlockCtx`] per block. `setup` runs
/// before the launch with the scheduler, letting callers allocate locks
/// and barriers; its output is passed by reference to every block.
///
/// **Occupancy rule** (as on real CUDA cooperative launches): a
/// device-wide barrier across all `num_blocks` blocks is only legal
/// when `num_blocks <= config.resident_blocks()` — blocks beyond the
/// residency limit run in later waves and can never reach an in-kernel
/// grid barrier. Use [`launch_phased`] (kernel relaunch) instead.
pub fn launch<S, F, T>(config: GpuConfig, setup: S, kernel: F) -> (SimReport, T)
where
    S: FnOnce(&Arc<Scheduler>) -> T,
    F: Fn(&mut BlockCtx, &T) + Sync,
    T: Sync,
{
    let sched = Scheduler::new(config.num_blocks);
    if let Some(seed) = config.fuzz_seed {
        sched.set_tie_seed(seed);
    }
    let resident = config.resident_blocks().min(config.num_blocks).max(1);
    let slot_base = sched.create_locks(resident);
    let shared = setup(&sched);
    run_wave(&sched, config, slot_base, &shared, &kernel);
    (report_of(&sched, &config), shared)
}

/// A phase kernel: one closure per relaunch in [`launch_phased`].
pub type PhaseKernel<'a, T> = &'a (dyn Fn(&mut BlockCtx, &T) + Sync);

/// Launch a *sequence* of kernels against shared state — the CUDA
/// "relaunch" pattern for device-wide phase separation. Each phase runs
/// all `num_blocks` blocks to completion; the next phase starts at the
/// previous phase's makespan plus one dispatch latency. Returns one
/// report per phase (cumulative makespans) plus the shared state.
pub fn launch_phased<S, T>(
    config: GpuConfig,
    setup: S,
    phases: &[PhaseKernel<'_, T>],
) -> (Vec<SimReport>, T)
where
    S: FnOnce(&Arc<Scheduler>) -> T,
    T: Sync,
{
    assert!(!phases.is_empty(), "need at least one phase");
    let sched = Scheduler::new(config.num_blocks);
    if let Some(seed) = config.fuzz_seed {
        sched.set_tie_seed(seed);
    }
    let resident = config.resident_blocks().min(config.num_blocks).max(1);
    let slot_base = sched.create_locks(resident);
    let shared = setup(&sched);
    let mut reports = Vec::with_capacity(phases.len());
    for (i, phase) in phases.iter().enumerate() {
        if i > 0 {
            sched.begin_wave(config.cost.c_dispatch);
        }
        run_wave(&sched, config, slot_base, &shared, *phase);
        reports.push(report_of(&sched, &config));
    }
    (reports, shared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn launch_runs_every_block_once() {
        let cfg = GpuConfig::new(16, 128);
        let (report, hits) = launch(
            cfg,
            |_s| AtomicU64::new(0),
            |ctx, hits: &AtomicU64| {
                hits.fetch_add(1, Ordering::Relaxed);
                ctx.charge(PrimitiveCost::Sort { n: 256 });
            },
        );
        assert_eq!(hits.load(Ordering::Relaxed), 16);
        assert!(report.makespan_cycles > 0);
    }

    #[test]
    fn independent_blocks_overlap_in_virtual_time() {
        // N blocks doing identical independent work should take barely
        // more than one block's time (perfect task parallelism).
        let one = launch(
            GpuConfig::new(1, 128),
            |_s| (),
            |ctx, _| {
                ctx.advance(10_000);
            },
        )
        .0;
        let many = launch(
            GpuConfig::new(32, 128),
            |_s| (),
            |ctx, _| {
                ctx.advance(10_000);
            },
        )
        .0;
        assert_eq!(one.makespan_cycles, many.makespan_cycles);
    }

    #[test]
    fn serialized_blocks_accumulate_in_virtual_time() {
        // N blocks fighting over one lock serialize: makespan scales
        // with N (contention — the downside of Fig. 6c's right edge).
        let run = |blocks| {
            launch(
                GpuConfig::new(blocks, 128),
                |s: &Arc<Scheduler>| s.create_locks(1),
                |ctx, &lock| {
                    ctx.worker().lock(lock, 100);
                    ctx.advance(10_000);
                    ctx.worker().unlock(lock, 100);
                },
            )
            .0
            .makespan_cycles
        };
        let one = run(1);
        let eight = run(8);
        assert!(eight >= 7 * one, "serialized work must accumulate: {one} vs {eight}");
    }

    #[test]
    fn launch_is_deterministic() {
        let run = || {
            launch(
                GpuConfig::new(8, 256),
                |s: &Arc<Scheduler>| s.create_locks(4),
                |ctx, &base| {
                    for i in 0..10usize {
                        let l = base + (ctx.block_id() + i) % 4;
                        ctx.worker().lock(l, 50);
                        ctx.charge(PrimitiveCost::Merge { n: 512 });
                        ctx.worker().unlock(l, 50);
                    }
                },
            )
            .0
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn dispatch_cost_is_charged() {
        let (report, _) = launch(GpuConfig::new(1, 128), |_s| (), |_ctx, _| {});
        assert_eq!(report.makespan_cycles, CostModel::default().c_dispatch);
    }
}
