//! Simulated-GPU launch configuration.

use primitives::CostModel;

/// Launch geometry of a simulated kernel, mirroring the paper's
/// configuration space (§6.1: "128 thread blocks per kernel, 512 threads
/// per block, and 1024 keys per batch").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Number of thread blocks (concurrent agents).
    pub num_blocks: usize,
    /// Threads per block.
    pub block_dim: u32,
    /// Streaming multiprocessors on the simulated device (TITAN X
    /// Pascal: 28).
    pub sm_count: usize,
    /// Maximum resident threads per SM (2048 on Maxwell/Pascal).
    pub max_threads_per_sm: u32,
    /// Hardware cap on resident blocks per SM (32 on Maxwell/Pascal).
    pub max_blocks_per_sm: u32,
    /// Schedule-fuzzing seed (None = deterministic arrival-order ties).
    /// See [`crate::Scheduler::set_tie_seed`].
    pub fuzz_seed: Option<u64>,
    /// Cycle-cost parameters of the simulated device.
    pub cost: CostModel,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            num_blocks: 128,
            block_dim: 512,
            sm_count: 28,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            fuzz_seed: None,
            cost: CostModel::default(),
        }
    }
}

impl GpuConfig {
    pub fn new(num_blocks: usize, block_dim: u32) -> Self {
        Self { num_blocks, block_dim, ..Self::default() }
    }

    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    pub fn with_sms(mut self, sm_count: usize) -> Self {
        self.sm_count = sm_count;
        self
    }

    /// Enable schedule fuzzing (tie-order exploration) for this launch.
    pub fn with_fuzz_seed(mut self, seed: u64) -> Self {
        self.fuzz_seed = Some(seed);
        self
    }

    /// Total simulated threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.num_blocks * self.block_dim as usize
    }

    /// How many blocks the device can keep resident at once — the
    /// occupancy limit. Launches with more blocks execute in waves, as
    /// on real hardware: with 512-thread blocks a 28-SM Pascal part
    /// keeps 4 per SM = 112 resident, so a 128-block launch has a
    /// second (partial) wave.
    pub fn resident_blocks(&self) -> usize {
        let per_sm =
            (self.max_threads_per_sm / self.block_dim.max(1)).clamp(1, self.max_blocks_per_sm);
        (self.sm_count * per_sm as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_config() {
        let c = GpuConfig::default();
        assert_eq!(c.num_blocks, 128);
        assert_eq!(c.block_dim, 512);
        assert_eq!(c.total_threads(), 65536);
    }
}
