//! # gpu-sim — a virtual-time SIMT execution simulator
//!
//! The paper evaluates BGPQ on an NVIDIA TITAN X; this environment has
//! neither a GPU nor mature Rust CUDA tooling (repro band 3), and a
//! single host core cannot demonstrate parallel speedups by wall clock.
//! This crate substitutes the device with a **discrete-event simulation
//! in virtual time**:
//!
//! * each simulated *thread block* is an agent backed by an OS thread;
//! * agents advance a virtual clock by the cycle cost of the primitives
//!   they execute (costs from [`primitives::CostModel`], derived from the
//!   primitives' actual lock-step schedules);
//! * scheduler-mediated locks and barriers model inter-block
//!   synchronization, with waiting time accounted in virtual cycles;
//! * the scheduler always runs the minimal-virtual-time ready agent, so
//!   a run is deterministic and its *makespan* (max agent finish time)
//!   is the simulated kernel duration — independent work overlaps,
//!   contended work serializes, exactly the effects Fig. 6 and Table 2
//!   measure.
//!
//! See `DESIGN.md` §2 for why this substitution preserves the paper's
//! claims and what it cannot capture (absolute milliseconds).
//!
//! ```
//! use gpu_sim::{launch, GpuConfig};
//! use primitives::PrimitiveCost;
//!
//! // 8 blocks each bitonic-sort a 1024-key batch, fully in parallel.
//! let (report, ()) = launch(GpuConfig::new(8, 512), |_sched| (), |ctx, _| {
//!     ctx.charge(PrimitiveCost::GlobalRead { n: 1024 });
//!     ctx.charge(PrimitiveCost::Sort { n: 1024 });
//!     ctx.charge(PrimitiveCost::GlobalWrite { n: 1024 });
//! });
//! assert!(report.makespan_ms > 0.0);
//! ```

pub mod config;
pub mod sched;
pub mod vm;

pub use config::GpuConfig;
pub use sched::{
    footprints_conflict, Access, AgentId, BarrierId, Decision, LockId, PickPoint,
    ScheduleController, Scheduler, SimMetrics, SimWorker, TraceEvent, TraceKind, AGENT_BASE,
};
pub use vm::{launch, launch_phased, BlockCtx, PhaseKernel, SimReport};
