//! Virtual-time scheduler.
//!
//! Every simulated thread block is an *agent* backed by an OS thread. The
//! scheduler enforces the discrete-event-simulation invariant:
//!
//! > at any moment exactly one agent executes, and it is always a ready
//! > agent with the minimal virtual time (ties broken deterministically).
//!
//! Agents advance their own clocks by calling [`SimWorker::advance`] with
//! the cycle cost of whatever they just simulated; blocking operations
//! (locks, barriers) park the agent until another agent's event releases
//! it, resuming its clock at the release's virtual time. Because agents
//! only interact through scheduler-mediated operations, a run is fully
//! deterministic: same kernel + same parameters ⇒ same interleaving and
//! same final virtual time, regardless of host thread scheduling. That
//! determinism is what lets a 1-core host reproduce the *parallel*
//! performance shapes of a 28-SM GPU (see DESIGN.md §2).
//!
//! Blocked agents are excluded from the min-time rule: their next event
//! time is unknown but provably ≥ the virtual time of the (ordered)
//! release event that will wake them, so running the min *ready* agent
//! never violates causality.

use parking_lot::{Condvar, Mutex};
use pq_api::ScratchSlot;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// Index of an agent (simulated thread block) within one simulation run.
pub type AgentId = usize;

/// Index of a simulated lock in the scheduler's lock arena.
pub type LockId = usize;

/// Index of a simulated barrier.
pub type BarrierId = usize;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Thread not yet registered via `begin`.
    NotStarted,
    /// In the ready heap, waiting for the grant.
    Ready,
    /// Currently executing (at most one agent).
    Running,
    /// Parked in some lock's waiter queue.
    BlockedOnLock(LockId),
    /// Parked at a barrier.
    BlockedOnBarrier(BarrierId),
    /// Finished (or unwound).
    Done,
}

#[derive(Debug, Default)]
struct LockState {
    holder: Option<AgentId>,
    /// FIFO queue; enqueues happen in virtual-time order because every
    /// acquire attempt executes in global virtual-time order.
    waiters: VecDeque<(AgentId, u64 /* enqueue vtime */)>,
}

#[derive(Debug, Default)]
struct BarrierState {
    parties: usize,
    arrived: Vec<AgentId>,
    max_vtime: u64,
}

/// What happened at a traced instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Agent was granted the (virtual) processor.
    Granted,
    /// Agent blocked waiting for a lock.
    LockWait(LockId),
    /// Agent acquired a lock (immediately or by handoff).
    LockAcquired(LockId),
    /// Agent released a lock.
    LockReleased(LockId),
    /// Agent arrived at a barrier.
    BarrierArrive(BarrierId),
    /// Agent finished.
    Finished,
}

/// One trace record: `(virtual time, agent, event)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub vtime: u64,
    pub agent: AgentId,
    pub kind: TraceKind,
}

/// One tagged shared-memory access interval, the unit of the
/// independence relation used by sleep-set partial-order reduction.
///
/// Addresses live in an abstract u64 space with disjoint regions:
///
/// * `[l, l]` — simulated lock `l` (the scheduler tags every
///   lock/try_lock/unlock automatically). A platform's lock arena is a
///   contiguous range, so an interval covering the whole arena
///   conflicts with every lock op inside it.
/// * `[AGENT_BASE | id, ..]` — agent-private progress: every grant is
///   tagged, so even a macro step that touches nothing shared still
///   conflicts with later steps of the *same* agent (program order is
///   never commuted away).
/// * `[0, u64::MAX]` — whole-run events (barriers, fail-stop lock
///   handoff in `Drop`): conflict with everything.
///
/// Two accesses conflict when their intervals overlap and at least one
/// side is a write; two macro steps commute when no pair of their
/// accesses conflicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    pub lo: u64,
    pub hi: u64,
    pub write: bool,
}

/// Base of the agent-tag region (high bit: no lock arena reaches it).
pub const AGENT_BASE: u64 = 1 << 63;

impl Access {
    /// Point access at a single address.
    pub fn point(addr: u64, write: bool) -> Self {
        Self { lo: addr, hi: addr, write }
    }

    /// The whole address space (conflicts with everything).
    pub fn global() -> Self {
        Self { lo: 0, hi: u64::MAX, write: true }
    }

    fn agent(id: AgentId) -> Self {
        Self::point(AGENT_BASE | id as u64, true)
    }

    /// Overlapping intervals with at least one write.
    pub fn conflicts(&self, other: &Access) -> bool {
        (self.write || other.write) && self.lo <= other.hi && other.lo <= self.hi
    }
}

/// Whether any access of `a` conflicts with any access of `b` — the
/// dependence test between two recorded macro-step footprints.
pub fn footprints_conflict(a: &[Access], b: &[Access]) -> bool {
    a.iter().any(|x| b.iter().any(|y| x.conflicts(y)))
}

/// A yield point where the controlled scheduler has a real choice
/// (at least two ready agents).
#[derive(Debug)]
pub struct PickPoint<'a> {
    /// Decision ordinal within the run (0-based): the index this
    /// consultation will occupy in the decision log.
    pub step: u64,
    /// Agents that can run now, ascending by id. Never fewer than two.
    pub ready: &'a [AgentId],
    /// The agent that just yielded, when it is still ready — it *could*
    /// keep running, so choosing anyone else is a preemption. `None`
    /// when the previously running agent blocked or finished: a switch
    /// is forced and costs no preemption budget.
    pub yielder: Option<AgentId>,
    /// The yield came from a spin-wait ([`SimWorker::spin`]): re-running
    /// the yielder is a stutter step (no shared state changed), and
    /// switching away is free.
    pub spin: bool,
}

/// External scheduling strategy for controlled (model-checking) runs.
///
/// When attached via [`Scheduler::set_controller`], the min-virtual-time
/// rule is replaced: at every yield point with more than one ready agent
/// the scheduler asks the controller which agent runs next, and records
/// the consultation as a [`Decision`]. Yield points with exactly one
/// ready agent are granted directly (forced, not recorded), which keeps
/// decision logs small and stable across strategies.
///
/// Implementations must be deterministic functions of the pick point
/// (plus their own immutable configuration) for replay to reproduce a
/// run bit-for-bit.
pub trait ScheduleController: Send + Sync {
    /// Choose the next agent to run; must be a member of `point.ready`.
    fn pick(&self, point: &PickPoint<'_>) -> AgentId;
}

/// One recorded controller consultation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Index of this decision in the run's log.
    pub step: u64,
    /// See [`PickPoint::yielder`].
    pub yielder: Option<AgentId>,
    /// See [`PickPoint::spin`].
    pub spin: bool,
    /// The ready set offered, ascending by id.
    pub ready: Vec<AgentId>,
    /// The controller's choice.
    pub chosen: AgentId,
    /// Shared-memory accesses of the macro step this decision started:
    /// everything executed from this grant until the next logged
    /// decision (singleton grants in between fold into the same step).
    /// The scheduler tags lock traffic and per-agent progress
    /// automatically; platforms tag lock-free accesses via
    /// [`SimWorker::touch`]. Empty unless a controller is attached.
    pub footprint: Vec<Access>,
}

impl Decision {
    /// True when the yielder could have kept doing real work (non-spin
    /// yield) but a different agent was chosen — the unit of the
    /// context-bounding budget (Musuvathi/Qadeer iterative context
    /// bounding: forced and spin switches are free, preemptions are
    /// bounded).
    pub fn is_preemption(&self) -> bool {
        !self.spin && self.yielder.is_some_and(|y| y != self.chosen)
    }
}

/// Aggregate counters for one simulation run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimMetrics {
    /// Successful lock acquisitions.
    pub lock_acquisitions: u64,
    /// Acquisitions that had to wait for a holder.
    pub lock_contended: u64,
    /// Total virtual cycles agents spent parked in lock queues.
    pub lock_wait_cycles: u64,
    /// `advance` calls (≈ charge points executed).
    pub advances: u64,
    /// Times the grant moved between different agents (context switches
    /// in virtual time).
    pub switches: u64,
}

struct SchedInner {
    vtime: Vec<u64>,
    status: Vec<Status>,
    /// Grant flags: `granted[i]` set ⇒ agent `i` may transition to
    /// Running as soon as its thread observes it.
    granted: Vec<bool>,
    ready: BinaryHeap<Reverse<(u64, u64, AgentId)>>,
    seq: u64,
    live: usize,
    not_started: usize,
    last_running: Option<AgentId>,
    locks: Vec<LockState>,
    barriers: Vec<BarrierState>,
    metrics: SimMetrics,
    /// Set if an agent unwound; the run will propagate the panic.
    poisoned: bool,
    /// Schedule-fuzzing seed: randomizes tie-breaking among equal
    /// virtual times so repeated runs explore different (deterministic
    /// per seed) interleavings.
    tie_seed: Option<u64>,
    /// Event trace (empty unless enabled); bounded by `trace_capacity`.
    trace: Vec<TraceEvent>,
    trace_capacity: usize,
    /// Attached schedule-exploration controller, if any. Replaces the
    /// min-virtual-time rule: readiness is tracked in `status` only and
    /// the `ready` heap is bypassed entirely.
    controller: Option<Arc<dyn ScheduleController>>,
    /// Log of controller consultations.
    decisions: Vec<Decision>,
    /// Accesses accumulated since the last logged decision; flushed into
    /// that decision's `footprint` when the next one is logged (or at
    /// `take_decisions`). Accesses before the first decision (the
    /// deterministic prologue) are discarded.
    cur_fp: Vec<Access>,
    /// Set by a spin-flavored yield, consumed by the next controlled
    /// dispatch (tells the controller that staying on the yielder is a
    /// stutter step).
    spin_yield: bool,
}

/// The virtual-time scheduler shared by all agents of one run.
pub struct Scheduler {
    inner: Mutex<SchedInner>,
    /// One condvar per agent, all paired with `inner`.
    cvs: Vec<Condvar>,
    /// Extra virtual cycles charged when a lock is handed to a waiter
    /// (models the atomic release/acquire round trip).
    lock_handoff_cycles: u64,
}

impl Scheduler {
    /// Create a scheduler for `agents` simulated blocks.
    pub fn new(agents: usize) -> Arc<Self> {
        assert!(agents >= 1, "need at least one agent");
        Arc::new(Self {
            inner: Mutex::new(SchedInner {
                vtime: vec![0; agents],
                status: vec![Status::NotStarted; agents],
                granted: vec![false; agents],
                ready: BinaryHeap::new(),
                // Tie keys 0..agents are reserved for the (deterministic,
                // id-ordered) registration pushes; runtime pushes start
                // above them.
                seq: agents as u64,
                live: agents,
                not_started: agents,
                last_running: None,
                locks: Vec::new(),
                barriers: Vec::new(),
                metrics: SimMetrics::default(),
                poisoned: false,
                tie_seed: None,
                trace: Vec::new(),
                trace_capacity: 0,
                controller: None,
                decisions: Vec::new(),
                cur_fp: Vec::new(),
                spin_yield: false,
            }),
            cvs: (0..agents).map(|_| Condvar::new()).collect(),
            lock_handoff_cycles: 200,
        })
    }

    /// Number of agents in this run.
    pub fn agent_count(&self) -> usize {
        self.cvs.len()
    }

    /// Allocate `n` simulated locks; returns the id of the first (ids are
    /// contiguous). May be called before or during the run.
    pub fn create_locks(&self, n: usize) -> LockId {
        let mut inner = self.inner.lock();
        let base = inner.locks.len();
        inner.locks.resize_with(base + n, LockState::default);
        base
    }

    /// Allocate a barrier for `parties` agents.
    pub fn create_barrier(&self, parties: usize) -> BarrierId {
        assert!(parties >= 1);
        let mut inner = self.inner.lock();
        let id = inner.barriers.len();
        inner.barriers.push(BarrierState { parties, arrived: Vec::new(), max_vtime: 0 });
        id
    }

    /// Build the worker handle for agent `id`. Each id must be claimed by
    /// exactly one thread, which must call [`SimWorker::begin`] before
    /// any other operation.
    pub fn worker(self: &Arc<Self>, id: AgentId) -> SimWorker {
        assert!(id < self.cvs.len(), "agent id out of range");
        SimWorker {
            id,
            sched: Arc::clone(self),
            started: false,
            finished: false,
            controlled: false,
            scratch: ScratchSlot::new(),
        }
    }

    /// Snapshot metrics (exact once the run has finished).
    pub fn metrics(&self) -> SimMetrics {
        self.inner.lock().metrics
    }

    /// Enable schedule fuzzing: agents with *equal* virtual times are
    /// ordered pseudo-randomly (deterministically per `seed`) instead of
    /// by arrival, and the keep-running fast path is disabled, so
    /// different seeds explore different legal interleavings — a
    /// systematic-concurrency-testing aid for the linearizability suite.
    /// Must be called before any agent begins.
    pub fn set_tie_seed(&self, seed: u64) {
        self.inner.lock().tie_seed = Some(seed);
    }

    /// Attach a [`ScheduleController`] that picks which ready agent runs
    /// at every yield point, replacing the min-virtual-time rule (and any
    /// tie-seed fuzzing). Must be called before any agent begins —
    /// typically from the `launch` setup closure. Virtual times still
    /// advance, but a makespan under a controller measures the *explored
    /// schedule*, not the performance model.
    pub fn set_controller(&self, ctrl: Arc<dyn ScheduleController>) {
        let mut inner = self.inner.lock();
        assert!(
            inner.not_started == inner.status.len(),
            "set_controller must be called before any agent begins"
        );
        inner.controller = Some(ctrl);
    }

    /// Drain the decision log recorded by controlled dispatch (one entry
    /// per controller consultation, i.e. per yield point that offered a
    /// real choice). Empty when no controller is attached.
    pub fn take_decisions(&self) -> Vec<Decision> {
        let mut inner = self.inner.lock();
        let fp = std::mem::take(&mut inner.cur_fp);
        if let Some(prev) = inner.decisions.last_mut() {
            prev.footprint = fp;
        }
        std::mem::take(&mut inner.decisions)
    }

    /// Enable event tracing, keeping at most `capacity` events (older
    /// events are dropped first).
    pub fn enable_trace(&self, capacity: usize) {
        let mut inner = self.inner.lock();
        inner.trace_capacity = capacity;
        inner.trace.reserve(capacity.min(1 << 20));
    }

    /// Drain the recorded trace (in emission order).
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.inner.lock().trace)
    }

    fn trace(inner: &mut SchedInner, agent: AgentId, kind: TraceKind) {
        if inner.trace_capacity == 0 {
            return;
        }
        if inner.trace.len() >= inner.trace_capacity {
            inner.trace.remove(0);
        }
        let vtime = inner.vtime[agent];
        inner.trace.push(TraceEvent { vtime, agent, kind });
    }

    /// Prepare the scheduler for another wave of agents (a kernel
    /// relaunch): every agent slot is reset to `NotStarted` with its
    /// clock advanced to the previous wave's makespan plus
    /// `relaunch_cycles`. All agents of the previous wave must have
    /// finished.
    pub fn begin_wave(&self, relaunch_cycles: u64) {
        let mut inner = self.inner.lock();
        assert_eq!(inner.live, 0, "begin_wave with agents still live");
        assert!(!inner.poisoned, "begin_wave on a poisoned scheduler");
        let resume = inner.vtime.iter().copied().max().unwrap_or(0) + relaunch_cycles;
        let n = inner.status.len();
        for i in 0..n {
            inner.vtime[i] = resume;
            inner.status[i] = Status::NotStarted;
            inner.granted[i] = false;
        }
        inner.ready.clear();
        inner.live = n;
        inner.not_started = n;
        inner.last_running = None;
        inner.spin_yield = false;
        inner.cur_fp.clear();
        // Lock arena is preserved: all locks must be free between waves.
        for (i, l) in inner.locks.iter().enumerate() {
            assert!(
                l.holder.is_none() && l.waiters.is_empty(),
                "lock {i} still held across a wave boundary"
            );
        }
    }

    /// Maximum virtual finish time across agents — the simulated
    /// wall-clock of the kernel, valid after all agents finished.
    pub fn makespan(&self) -> u64 {
        let inner = self.inner.lock();
        inner.vtime.iter().copied().max().unwrap_or(0)
    }

    /// Per-agent virtual clocks (finish times once the run completed).
    pub fn agent_vtimes(&self) -> Vec<u64> {
        self.inner.lock().vtime.clone()
    }

    // ------------------------------------------------------------------
    // internals — all take the inner guard
    // ------------------------------------------------------------------

    /// Record a shared access into the current macro step's footprint.
    /// No-op without a controller; consecutive identical accesses dedup.
    fn tag(inner: &mut SchedInner, acc: Access) {
        if inner.controller.is_none() {
            return;
        }
        if inner.cur_fp.last() == Some(&acc) {
            return;
        }
        inner.cur_fp.push(acc);
    }

    fn push_ready(inner: &mut SchedInner, id: AgentId) {
        inner.status[id] = Status::Ready;
        if inner.controller.is_some() {
            // Controlled mode tracks readiness in `status` only; pushing
            // here would just grow a heap that dispatch never pops.
            return;
        }
        inner.seq += 1;
        let seq = inner.seq;
        // Tie key: arrival order normally; a seeded hash under fuzzing.
        let tie = match inner.tie_seed {
            None => seq,
            Some(s) => {
                let mut z = s ^ seq.wrapping_mul(0x9E3779B97F4A7C15) ^ (id as u64) << 32;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            }
        };
        inner.ready.push(Reverse((inner.vtime[id], tie, id)));
    }

    /// Grant the CPU to the minimal ready agent if nothing is running.
    fn dispatch(&self, inner: &mut SchedInner) {
        if inner.poisoned {
            // Wake everyone so blocked threads can unwind.
            for id in 0..inner.status.len() {
                if inner.status[id] != Status::Done {
                    inner.granted[id] = true;
                    self.cvs[id].notify_one();
                }
            }
            return;
        }
        // Start gate: no agent may execute until every agent has
        // registered, otherwise an early thread could run ahead of
        // virtual time while its peers are still spawning.
        if inner.not_started > 0 {
            return;
        }
        if let Some(running) = inner.last_running {
            if inner.status[running] == Status::Running {
                return; // someone is executing
            }
        }
        if inner.controller.is_some() {
            if let Some(id) = self.pick_controlled(inner) {
                if inner.last_running != Some(id) {
                    inner.metrics.switches += 1;
                }
                // Every grant (logged or singleton-forced) marks the
                // granted agent's program-order progress in the current
                // macro step.
                Self::tag(inner, Access::agent(id));
                inner.last_running = Some(id);
                inner.status[id] = Status::Running;
                inner.granted[id] = true;
                Self::trace(inner, id, TraceKind::Granted);
                self.cvs[id].notify_one();
                return;
            }
            // No ready agent → fall through to the deadlock detector.
        } else {
            while let Some(&Reverse((_, _, id))) = inner.ready.peek() {
                // Lazily skip stale heap entries (an agent can be
                // re-pushed).
                if inner.status[id] != Status::Ready {
                    inner.ready.pop();
                    continue;
                }
                inner.ready.pop();
                if inner.last_running != Some(id) {
                    inner.metrics.switches += 1;
                }
                inner.last_running = Some(id);
                inner.status[id] = Status::Running;
                inner.granted[id] = true;
                Self::trace(inner, id, TraceKind::Granted);
                self.cvs[id].notify_one();
                return;
            }
        }
        // Nothing ready. If agents remain but none can ever run, the
        // simulated program deadlocked: poison the run and release every
        // parked thread so they can unwind instead of hanging.
        if inner.live > 0 && inner.not_started == 0 {
            let states: Vec<(AgentId, Status, u64)> = inner
                .status
                .iter()
                .enumerate()
                .filter(|(_, s)| !matches!(s, Status::Done))
                .map(|(i, s)| (i, *s, inner.vtime[i]))
                .collect();
            inner.poisoned = true;
            for id in 0..inner.status.len() {
                if inner.status[id] != Status::Done {
                    inner.granted[id] = true;
                    self.cvs[id].notify_one();
                }
            }
            panic!("gpu-sim: deadlock — all live agents are blocked: {states:?}");
        }
    }

    /// Controlled-mode agent selection: collect the ready set and, when
    /// there is a real choice, consult the attached
    /// [`ScheduleController`] and log the [`Decision`]. Returns `None`
    /// when no agent is ready (the deadlock check follows).
    fn pick_controlled(&self, inner: &mut SchedInner) -> Option<AgentId> {
        let ready: Vec<AgentId> =
            (0..inner.status.len()).filter(|&i| inner.status[i] == Status::Ready).collect();
        let &first = ready.first()?;
        let spin = std::mem::replace(&mut inner.spin_yield, false);
        if ready.len() == 1 {
            return Some(first);
        }
        let yielder = inner.last_running.filter(|&r| inner.status[r] == Status::Ready);
        let spin = spin && yielder.is_some();
        let step = inner.decisions.len() as u64;
        let ctrl = Arc::clone(inner.controller.as_ref().expect("controlled dispatch"));
        let chosen = ctrl.pick(&PickPoint { step, ready: &ready, yielder, spin });
        assert!(
            ready.contains(&chosen),
            "schedule controller chose agent {chosen}, not in ready set {ready:?}"
        );
        // The macro step of the *previous* decision ends here: flush the
        // accesses accumulated since it was logged. The pre-decision-0
        // prologue is schedule-independent and is simply discarded.
        let fp = std::mem::take(&mut inner.cur_fp);
        if let Some(prev) = inner.decisions.last_mut() {
            prev.footprint = fp;
        }
        inner.decisions.push(Decision {
            step,
            yielder,
            spin,
            ready,
            chosen,
            footprint: Vec::new(),
        });
        Some(chosen)
    }

    /// Park the calling agent until its grant flag is raised.
    fn wait_for_grant(&self, inner: &mut parking_lot::MutexGuard<'_, SchedInner>, id: AgentId) {
        loop {
            if inner.granted[id] {
                inner.granted[id] = false;
                if inner.poisoned {
                    panic!("gpu-sim: aborting agent {id}: another agent panicked");
                }
                inner.status[id] = Status::Running;
                inner.last_running = Some(id);
                return;
            }
            self.cvs[id].wait(inner);
        }
    }
}

/// Per-agent handle through which a simulated block interacts with
/// virtual time. Not `Clone`: exactly one per agent.
pub struct SimWorker {
    id: AgentId,
    sched: Arc<Scheduler>,
    started: bool,
    finished: bool,
    /// Cached at `begin()`: a controller is attached, so access tagging
    /// ([`SimWorker::touch`]) is live. Keeps the uncontrolled hot path
    /// free of a scheduler-lock round trip per tag call.
    controlled: bool,
    /// Parking spot for queue hot-path scratch arenas (zero-allocation
    /// steady state); owned by the agent, untouched by the scheduler.
    scratch: ScratchSlot,
}

impl SimWorker {
    /// This agent's id.
    pub fn id(&self) -> AgentId {
        self.id
    }

    /// The scheduler this worker belongs to.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// The worker's scratch parking spot (see [`ScratchSlot`]).
    pub fn scratch_slot(&mut self) -> &mut ScratchSlot {
        &mut self.scratch
    }

    /// Register with the scheduler and wait for the first grant. Must be
    /// the first call made on the worker.
    pub fn begin(&mut self) {
        assert!(!self.started, "begin() called twice");
        self.started = true;
        let sched = Arc::clone(&self.sched);
        let mut inner = sched.inner.lock();
        self.controlled = inner.controller.is_some();
        inner.not_started -= 1;
        // Registration order is OS-scheduling dependent; use the agent
        // id (optionally hashed under fuzzing) as the tie key so the
        // initial schedule is deterministic regardless of which thread
        // registered first.
        inner.status[self.id] = Status::Ready;
        if inner.controller.is_none() {
            let tie = match inner.tie_seed {
                None => self.id as u64,
                Some(s) => {
                    let mut z = s ^ (self.id as u64).wrapping_mul(0x9E3779B97F4A7C15);
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                    z ^ (z >> 31)
                }
            };
            let vt = inner.vtime[self.id];
            inner.ready.push(Reverse((vt, tie, self.id)));
        }
        // Mark nothing-running if we are first; dispatch picks min.
        if inner.last_running.is_none()
            || inner.status[inner.last_running.unwrap()] != Status::Running
        {
            sched.dispatch(&mut inner);
        }
        sched.wait_for_grant(&mut inner, self.id);
    }

    /// Current virtual time of this agent.
    pub fn now(&self) -> u64 {
        self.sched.inner.lock().vtime[self.id]
    }

    /// Advance this agent's clock by `cycles` and yield to any agent with
    /// a smaller virtual time.
    pub fn advance(&mut self, cycles: u64) {
        self.advance_inner(cycles, false);
    }

    /// Advance like [`SimWorker::advance`], but flag the yield as a
    /// spin-wait: the agent learned nothing new and is polling shared
    /// state. Under a [`ScheduleController`] this marks switching away
    /// as free (and re-running the spinner as a stutter step); without a
    /// controller it behaves exactly like `advance`.
    pub fn spin(&mut self, cycles: u64) {
        self.advance_inner(cycles, true);
    }

    fn advance_inner(&mut self, cycles: u64, spin: bool) {
        debug_assert!(self.started && !self.finished);
        let sched = Arc::clone(&self.sched);
        let mut inner = sched.inner.lock();
        inner.vtime[self.id] += cycles;
        inner.metrics.advances += 1;
        // An unwinding agent on an already-poisoned run must not re-enter
        // the grant protocol: `wait_for_grant` panics on poison, and a
        // second panic while unwinding aborts the process. Time still
        // advances; the agent retires in `Drop`.
        if inner.poisoned && std::thread::panicking() {
            return;
        }
        if inner.controller.is_some() {
            // Controlled mode: every advance is a yield point — the
            // keep-running fast path below would hide schedules from the
            // explorer.
            inner.spin_yield = spin;
            Scheduler::push_ready(&mut inner, self.id);
            sched.dispatch(&mut inner);
            sched.wait_for_grant(&mut inner, self.id);
            return;
        }
        // Fast path: still the minimum → keep running, no switch.
        // Disabled under schedule fuzzing so ties reshuffle.
        let my_t = inner.vtime[self.id];
        let fuzzing = inner.tie_seed.is_some();
        loop {
            match inner.ready.peek() {
                Some(&Reverse((t, _, cand))) => {
                    if inner.status[cand] != Status::Ready {
                        inner.ready.pop(); // stale
                        continue;
                    }
                    if !fuzzing && t >= my_t {
                        return; // we remain the minimum
                    }
                    if fuzzing && t > my_t {
                        return;
                    }
                    break; // someone earlier (or tied, fuzzing) → yield
                }
                None => return,
            }
        }
        Scheduler::push_ready(&mut inner, self.id);
        sched.dispatch(&mut inner);
        sched.wait_for_grant(&mut inner, self.id);
    }

    /// Yield without advancing time (lets equal-time agents interleave).
    pub fn yield_now(&mut self) {
        self.advance(0);
    }

    /// Tag a lock-free shared-memory access `[lo, hi]` into the current
    /// macro step's footprint (see [`Access`]). Lock-protected state
    /// needs no tagging — the scheduler tags lock traffic itself and
    /// mutual exclusion orders the protected accesses. No-op unless a
    /// [`ScheduleController`] is attached.
    pub fn touch(&mut self, lo: u64, hi: u64, write: bool) {
        if !self.controlled {
            return;
        }
        let sched = Arc::clone(&self.sched);
        let mut inner = sched.inner.lock();
        Scheduler::tag(&mut inner, Access { lo, hi, write });
    }

    /// Acquire simulated lock `lock`. FIFO; blocks in virtual time while
    /// held. The caller is charged `atomic_cycles` for the lock word
    /// round trip before the attempt.
    pub fn lock(&mut self, lock: LockId, atomic_cycles: u64) {
        self.advance(atomic_cycles);
        let sched = Arc::clone(&self.sched);
        let mut inner = sched.inner.lock();
        inner.metrics.lock_acquisitions += 1;
        Scheduler::tag(&mut inner, Access::point(lock as u64, true));
        let me = self.id;
        let now = inner.vtime[me];
        if inner.locks[lock].holder.is_none() {
            inner.locks[lock].holder = Some(me);
            Scheduler::trace(&mut inner, me, TraceKind::LockAcquired(lock));
        } else {
            inner.metrics.lock_contended += 1;
            inner.locks[lock].waiters.push_back((me, now));
            inner.status[me] = Status::BlockedOnLock(lock);
            Scheduler::trace(&mut inner, me, TraceKind::LockWait(lock));
            sched.dispatch(&mut inner);
            sched.wait_for_grant(&mut inner, me);
            // When granted here the releaser already made us holder.
            debug_assert_eq!(inner.locks[lock].holder, Some(me));
            Scheduler::trace(&mut inner, me, TraceKind::LockAcquired(lock));
        }
    }

    /// Try to acquire `lock`; never blocks. Charged like a lock attempt.
    pub fn try_lock(&mut self, lock: LockId, atomic_cycles: u64) -> bool {
        self.advance(atomic_cycles);
        let sched = Arc::clone(&self.sched);
        let mut inner = sched.inner.lock();
        inner.metrics.lock_acquisitions += 1;
        Scheduler::tag(&mut inner, Access::point(lock as u64, true));
        let me = self.id;
        if inner.locks[lock].holder.is_none() {
            inner.locks[lock].holder = Some(me);
            true
        } else {
            inner.metrics.lock_contended += 1;
            false
        }
    }

    /// Release `lock`, handing it to the oldest waiter (whose clock jumps
    /// to the release time plus the handoff cost).
    pub fn unlock(&mut self, lock: LockId, atomic_cycles: u64) {
        if std::thread::panicking() {
            let sched = Arc::clone(&self.sched);
            let mut inner = sched.inner.lock();
            if inner.poisoned {
                // Teardown release on a dead run: every surviving thread
                // is being woken to unwind anyway, so a best-effort clear
                // (no handoff, no grant protocol) is enough — and the
                // normal path's `wait_for_grant` would double-panic.
                if inner.locks[lock].holder == Some(self.id) {
                    inner.locks[lock].holder = None;
                }
                return;
            }
        }
        self.advance(atomic_cycles);
        let sched = Arc::clone(&self.sched);
        let mut inner = sched.inner.lock();
        let me = self.id;
        let now = inner.vtime[me];
        let handoff = sched.lock_handoff_cycles;
        Scheduler::tag(&mut inner, Access::point(lock as u64, true));
        assert_eq!(inner.locks[lock].holder, Some(me), "unlock of a lock not held by agent {me}");
        Scheduler::trace(&mut inner, me, TraceKind::LockReleased(lock));
        match inner.locks[lock].waiters.pop_front() {
            Some((next, enq_t)) => {
                inner.locks[lock].holder = Some(next);
                let resume = now.max(enq_t) + handoff;
                inner.metrics.lock_wait_cycles += resume.saturating_sub(enq_t);
                inner.vtime[next] = inner.vtime[next].max(resume);
                Scheduler::push_ready(&mut inner, next);
                // The new holder may now be the global minimum; yield if
                // our own time is no longer minimal.
                drop(inner);
                self.yield_now();
            }
            None => {
                inner.locks[lock].holder = None;
            }
        }
    }

    /// Wait at barrier `b`. All parties resume at the max arrival time.
    pub fn barrier_wait(&mut self, b: BarrierId, sync_cycles: u64) {
        let sched = Arc::clone(&self.sched);
        let mut inner = sched.inner.lock();
        let me = self.id;
        let now = inner.vtime[me];
        Scheduler::tag(&mut inner, Access::global());
        Scheduler::trace(&mut inner, me, TraceKind::BarrierArrive(b));
        let max_vtime = inner.barriers[b].max_vtime.max(now);
        inner.barriers[b].max_vtime = max_vtime;
        inner.barriers[b].arrived.push(me);
        if inner.barriers[b].arrived.len() == inner.barriers[b].parties {
            let resume = max_vtime + sync_cycles;
            let arrived = std::mem::take(&mut inner.barriers[b].arrived);
            inner.barriers[b].max_vtime = 0;
            for a in arrived {
                inner.vtime[a] = resume;
                if a != me {
                    Scheduler::push_ready(&mut inner, a);
                }
            }
            // Ourselves: keep running but maybe no longer minimal.
            drop(inner);
            self.yield_now();
        } else {
            inner.status[me] = Status::BlockedOnBarrier(b);
            sched.dispatch(&mut inner);
            sched.wait_for_grant(&mut inner, me);
        }
    }

    /// Mark this agent finished and hand the CPU on.
    pub fn finish(&mut self) {
        if self.finished || !self.started {
            self.finished = true;
            return;
        }
        self.finished = true;
        let sched = Arc::clone(&self.sched);
        let mut inner = sched.inner.lock();
        inner.status[self.id] = Status::Done;
        Scheduler::trace(&mut inner, self.id, TraceKind::Finished);
        inner.live -= 1;
        if inner.last_running == Some(self.id) {
            inner.last_running = None;
        }
        if inner.live > 0 {
            sched.dispatch(&mut inner);
        }
    }
}

impl Drop for SimWorker {
    /// Fail-stop retirement of an agent that unwound without `finish`.
    ///
    /// The agent is purged from every waiter queue and each lock it still
    /// holds is handed to its oldest waiter with normal handoff
    /// accounting, so the *rest of the run keeps executing* — survivors
    /// observe the crash at the data-structure level (queue poisoning, a
    /// watchdog timeout), which is exactly what the crash drills
    /// exercise. Only an already-poisoned run (deadlock detection, or a
    /// previous hard abort) skips the release and merely retires.
    fn drop(&mut self) {
        if !self.started || self.finished {
            return;
        }
        let sched = Arc::clone(&self.sched);
        let mut inner = sched.inner.lock();
        let me = self.id;
        if !inner.poisoned {
            // Fail-stop retirement perturbs every waiter queue and may
            // hand off locks: conservatively conflict with everything.
            Scheduler::tag(&mut inner, Access::global());
            let now = inner.vtime[me];
            let handoff = sched.lock_handoff_cycles;
            for lock in 0..inner.locks.len() {
                inner.locks[lock].waiters.retain(|&(a, _)| a != me);
            }
            for lock in 0..inner.locks.len() {
                if inner.locks[lock].holder != Some(me) {
                    continue;
                }
                Scheduler::trace(&mut inner, me, TraceKind::LockReleased(lock));
                match inner.locks[lock].waiters.pop_front() {
                    Some((next, enq_t)) => {
                        inner.locks[lock].holder = Some(next);
                        let resume = now.max(enq_t) + handoff;
                        inner.metrics.lock_wait_cycles += resume.saturating_sub(enq_t);
                        inner.vtime[next] = inner.vtime[next].max(resume);
                        Scheduler::push_ready(&mut inner, next);
                    }
                    None => inner.locks[lock].holder = None,
                }
            }
        }
        inner.status[me] = Status::Done;
        Scheduler::trace(&mut inner, me, TraceKind::Finished);
        inner.live = inner.live.saturating_sub(1);
        if inner.last_running == Some(me) {
            inner.last_running = None;
        }
        // `dispatch` can detect a deadlock *caused by this death* (e.g.
        // the dead agent never reached a barrier its peers wait at) and
        // panic. We may already be unwinding — a second panic escaping a
        // destructor aborts — so contain it; `dispatch` has already
        // poisoned the run and woken every parked thread in that case.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sched.dispatch(&mut inner);
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run `n` agents, each executing `f(worker, agent_id)`.
    fn run_agents<F>(n: usize, f: F) -> Arc<Scheduler>
    where
        F: Fn(&mut SimWorker, AgentId) + Sync,
    {
        let sched = Scheduler::new(n);
        std::thread::scope(|s| {
            for id in 0..n {
                let mut w = sched.worker(id);
                let f = &f;
                s.spawn(move || {
                    w.begin();
                    f(&mut w, id);
                    w.finish();
                });
            }
        });
        sched
    }

    #[test]
    fn single_agent_advances() {
        let sched = run_agents(1, |w, _| {
            w.advance(10);
            w.advance(32);
            assert_eq!(w.now(), 42);
        });
        assert_eq!(sched.makespan(), 42);
    }

    #[test]
    fn agents_run_in_virtual_time_order() {
        use std::sync::Mutex as StdMutex;
        let order: StdMutex<Vec<(AgentId, u64)>> = StdMutex::new(Vec::new());
        run_agents(3, |w, id| {
            // Agent i advances in steps of (i+1)*10; record each step.
            for _ in 0..3 {
                w.advance((id as u64 + 1) * 10);
                order.lock().unwrap().push((id, w.now()));
            }
        });
        let events = order.into_inner().unwrap();
        // Events must be observed in nondecreasing virtual time.
        assert!(events.windows(2).all(|e| e[0].1 <= e[1].1), "events out of order: {events:?}");
    }

    #[test]
    fn lock_is_mutually_exclusive_in_virtual_time() {
        let sched = Scheduler::new(4);
        let l = sched.create_locks(1);
        let spans: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for id in 0..4 {
                let mut w = sched.worker(id);
                let spans = &spans;
                s.spawn(move || {
                    w.begin();
                    w.advance(id as u64); // stagger arrivals
                    w.lock(l, 10);
                    let start = w.now();
                    w.advance(100); // critical section
                    let end = w.now();
                    spans.lock().push((start, end));
                    w.unlock(l, 10);
                    w.finish();
                });
            }
        });
        let mut spans = spans.into_inner();
        spans.sort();
        for pair in spans.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "overlapping critical sections: {spans:?}");
        }
        assert!(sched.metrics().lock_contended >= 1, "expected contention");
    }

    #[test]
    fn try_lock_fails_while_held() {
        let sched = Scheduler::new(2);
        let l = sched.create_locks(1);
        let got: Mutex<Vec<bool>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            {
                let mut w = sched.worker(0);
                s.spawn(move || {
                    w.begin();
                    w.lock(l, 1);
                    w.advance(1000); // hold for a long virtual time
                    w.unlock(l, 1);
                    w.finish();
                });
            }
            {
                let mut w = sched.worker(1);
                let got = &got;
                s.spawn(move || {
                    w.begin();
                    w.advance(10); // arrive while agent 0 holds the lock
                    got.lock().push(w.try_lock(l, 1));
                    w.advance(2000); // after agent 0 released
                    got.lock().push(w.try_lock(l, 1));
                    w.unlock(l, 1);
                    w.finish();
                });
            }
        });
        assert_eq!(got.into_inner(), vec![false, true]);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let sched = Scheduler::new(3);
        let b = sched.create_barrier(3);
        let after: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for id in 0..3 {
                let mut w = sched.worker(id);
                let after = &after;
                s.spawn(move || {
                    w.begin();
                    w.advance((id as u64 + 1) * 100);
                    w.barrier_wait(b, 50);
                    after.lock().push(w.now());
                    w.finish();
                });
            }
        });
        let after = after.into_inner();
        assert_eq!(after, vec![350, 350, 350], "all resume at max(100,200,300)+50");
    }

    #[test]
    fn barrier_is_reusable() {
        let sched = Scheduler::new(2);
        let b = sched.create_barrier(2);
        std::thread::scope(|s| {
            for id in 0..2 {
                let mut w = sched.worker(id);
                s.spawn(move || {
                    w.begin();
                    for round in 0..3u64 {
                        w.advance((id as u64 + 1) * 10);
                        w.barrier_wait(b, 0);
                        // After each barrier both clocks agree.
                        assert_eq!(w.now() % 10, 0, "round {round}");
                    }
                    w.finish();
                });
            }
        });
    }

    #[test]
    fn deterministic_makespan() {
        let run = || {
            let sched = Scheduler::new(8);
            let l = sched.create_locks(1);
            std::thread::scope(|s| {
                for id in 0..8 {
                    let mut w = sched.worker(id);
                    s.spawn(move || {
                        w.begin();
                        for i in 0..20u64 {
                            w.advance((id as u64 * 7 + i) % 13 + 1);
                            w.lock(l, 5);
                            w.advance(3);
                            w.unlock(l, 5);
                        }
                        w.finish();
                    });
                }
            });
            (sched.makespan(), sched.metrics())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "simulation must be deterministic");
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let sched = Scheduler::new(2);
        let l = sched.create_locks(2);
        let panics: Mutex<u32> = Mutex::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                for id in 0..2 {
                    let mut w = sched.worker(id);
                    let panics = &panics;
                    s.spawn(move || {
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            w.begin();
                            // Classic ABBA deadlock.
                            w.lock(l + id, 1);
                            w.advance(10);
                            w.lock(l + (1 - id), 1);
                            w.unlock(l + (1 - id), 1);
                            w.unlock(l + id, 1);
                        }));
                        if r.is_err() {
                            *panics.lock() += 1;
                        }
                        w.finish();
                        if r.is_err() {
                            std::panic::resume_unwind(Box::new("agent deadlocked"));
                        }
                    });
                }
            });
        }));
        assert!(result.is_err());
        assert!(*panics.lock() >= 1);
        panic!("deadlock was detected as expected");
    }

    #[test]
    fn dead_agents_locks_are_handed_off() {
        // Agent 0 dies (unwinds without finish) while holding the lock
        // agent 1 waits on. Fail-stop: the lock is handed over and the
        // survivor completes; the run is NOT poisoned.
        let sched = Scheduler::new(2);
        let l = sched.create_locks(1);
        let survivor_done = Mutex::new(false);
        std::thread::scope(|s| {
            {
                let mut w = sched.worker(0);
                s.spawn(move || {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        w.begin();
                        w.lock(l, 1);
                        w.advance(100);
                        panic!("injected agent death");
                    }));
                    assert!(r.is_err());
                    drop(w); // retire via Drop, lock still held
                });
            }
            {
                let mut w = sched.worker(1);
                let survivor_done = &survivor_done;
                s.spawn(move || {
                    w.begin();
                    w.advance(10);
                    w.lock(l, 1); // parked behind the dying agent
                    w.advance(5);
                    w.unlock(l, 1);
                    w.finish();
                    *survivor_done.lock() = true;
                });
            }
        });
        assert!(*survivor_done.lock(), "survivor must complete after handoff");
        // Handoff accounting ran: the survivor resumed at or after the
        // dead agent's release time plus the handoff cost.
        assert!(sched.makespan() >= 100 + 200, "makespan {}", sched.makespan());
    }

    #[test]
    fn dead_agent_is_purged_from_waiter_queues() {
        // Agent 1 dies while *waiting* for a lock; the holder's later
        // release must not hand the lock to a corpse.
        let sched = Scheduler::new(3);
        let l = sched.create_locks(1);
        std::thread::scope(|s| {
            {
                let mut w = sched.worker(0);
                s.spawn(move || {
                    w.begin();
                    w.lock(l, 1);
                    w.advance(10_000); // hold long enough for both to queue up
                    w.unlock(l, 1);
                    w.finish();
                });
            }
            {
                let mut w = sched.worker(1);
                s.spawn(move || {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        w.begin();
                        w.advance(10);
                        w.try_lock(l, 1); // contended: fails
                        panic!("death before ever holding the lock");
                    }));
                    assert!(r.is_err());
                    drop(w);
                });
            }
            {
                let mut w = sched.worker(2);
                s.spawn(move || {
                    w.begin();
                    w.advance(20);
                    w.lock(l, 1); // must be granted despite the corpse
                    w.unlock(l, 1);
                    w.finish();
                });
            }
        });
        assert!(sched.makespan() >= 10_000);
    }

    /// Continue the yielder on real yields; on spin yields (or forced
    /// switches) run the smallest other ready agent.
    struct ContinueStrategy;
    impl ScheduleController for ContinueStrategy {
        fn pick(&self, p: &PickPoint<'_>) -> AgentId {
            match p.yielder {
                Some(y) if !p.spin => y,
                _ => *p.ready.iter().find(|&&a| Some(a) != p.yielder).unwrap_or(&p.ready[0]),
            }
        }
    }

    fn run_controlled<C, F>(n: usize, ctrl: C, f: F) -> (Arc<Scheduler>, Vec<Decision>)
    where
        C: ScheduleController + 'static,
        F: Fn(&mut SimWorker, AgentId) + Sync,
    {
        let sched = Scheduler::new(n);
        sched.set_controller(Arc::new(ctrl));
        std::thread::scope(|s| {
            for id in 0..n {
                let mut w = sched.worker(id);
                let f = &f;
                s.spawn(move || {
                    w.begin();
                    f(&mut w, id);
                    w.finish();
                });
            }
        });
        let decisions = sched.take_decisions();
        (sched, decisions)
    }

    #[test]
    fn controlled_run_is_deterministic_and_logs_decisions() {
        let run = || {
            run_controlled(3, ContinueStrategy, |w, id| {
                for i in 0..5u64 {
                    w.advance((id as u64 + 1) * 3 + i);
                }
            })
        };
        let (_, a) = run();
        let (_, b) = run();
        assert!(!a.is_empty(), "multi-agent run must offer real choices");
        assert_eq!(a, b, "controlled runs must be deterministic");
        for (i, d) in a.iter().enumerate() {
            assert_eq!(d.step, i as u64);
            assert!(d.ready.contains(&d.chosen));
            assert!(d.ready.len() >= 2, "singleton ready sets must not be logged");
            assert!(d.ready.windows(2).all(|w| w[0] < w[1]), "ready must be sorted");
        }
    }

    #[test]
    fn controller_choice_overrides_virtual_time_order() {
        // Agent 1's clock races far ahead of agent 0's, yet the
        // continue-strategy keeps running it: the min-vtime rule is
        // fully replaced.
        struct PreferOne;
        impl ScheduleController for PreferOne {
            fn pick(&self, p: &PickPoint<'_>) -> AgentId {
                if p.ready.contains(&1) {
                    1
                } else {
                    p.ready[0]
                }
            }
        }
        use std::sync::atomic::{AtomicUsize, Ordering};
        let finish_order = AtomicUsize::new(0);
        let finished_first = Mutex::new(None);
        let sched = Scheduler::new(2);
        sched.set_controller(Arc::new(PreferOne));
        std::thread::scope(|s| {
            for id in 0..2 {
                let mut w = sched.worker(id);
                let finish_order = &finish_order;
                let finished_first = &finished_first;
                s.spawn(move || {
                    w.begin();
                    for _ in 0..4 {
                        w.advance(1_000_000); // huge steps for agent 1 too
                    }
                    if finish_order.fetch_add(1, Ordering::SeqCst) == 0 {
                        finished_first.lock().get_or_insert(id);
                    }
                    w.finish();
                });
            }
        });
        assert_eq!(
            *finished_first.lock(),
            Some(1),
            "controller must be able to run the larger-vtime agent first"
        );
    }

    #[test]
    fn spin_yields_are_flagged_and_preemptions_marked() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let flag = AtomicBool::new(false);
        let sched = Scheduler::new(2);
        sched.set_controller(Arc::new(ContinueStrategy));
        std::thread::scope(|s| {
            {
                let mut w = sched.worker(0);
                let flag = &flag;
                s.spawn(move || {
                    w.begin();
                    while !flag.load(Ordering::SeqCst) {
                        w.spin(1);
                    }
                    w.finish();
                });
            }
            {
                let mut w = sched.worker(1);
                let flag = &flag;
                s.spawn(move || {
                    w.begin();
                    w.advance(5);
                    w.advance(5);
                    flag.store(true, Ordering::SeqCst);
                    w.advance(5);
                    w.finish();
                });
            }
        });
        let decisions = sched.take_decisions();
        let spins: Vec<&Decision> = decisions.iter().filter(|d| d.spin).collect();
        assert!(!spins.is_empty(), "agent 0's polling must surface as spin decisions");
        for d in &spins {
            assert_eq!(d.yielder, Some(0));
            assert_eq!(d.chosen, 1, "ContinueStrategy switches away from spinners");
            assert!(!d.is_preemption(), "spin switches are free");
        }
        // The first decision has no yielder (nobody ran yet): forced.
        assert_eq!(decisions[0].yielder, None);
        assert!(!decisions[0].is_preemption());
    }

    #[test]
    fn footprints_capture_locks_and_agent_progress() {
        let sched = Scheduler::new(2);
        let l = sched.create_locks(2);
        sched.set_controller(Arc::new(ContinueStrategy));
        std::thread::scope(|s| {
            for id in 0..2 {
                let mut w = sched.worker(id);
                s.spawn(move || {
                    w.begin();
                    w.advance(1);
                    w.lock(l + id, 1);
                    w.touch(1000 + id as u64, 1000 + id as u64, id == 0);
                    w.advance(3);
                    w.unlock(l + id, 1);
                    w.advance(1);
                    w.finish();
                });
            }
        });
        let decisions = sched.take_decisions();
        assert!(!decisions.is_empty());
        // Every decision's step ran at least its chosen agent: the agent
        // tag must be present (program order is never commuted away).
        for d in &decisions {
            assert!(
                d.footprint.contains(&Access::agent(d.chosen)),
                "decision {} missing agent tag: {:?}",
                d.step,
                d.footprint
            );
        }
        let all: Vec<Access> = decisions.iter().flat_map(|d| d.footprint.clone()).collect();
        // Both lock words and both explicit touches surface somewhere.
        for lock in [l as u64, l as u64 + 1] {
            assert!(all.contains(&Access::point(lock, true)), "lock {lock} untagged");
        }
        assert!(all.contains(&Access { lo: 1000, hi: 1000, write: true }));
        assert!(all.contains(&Access { lo: 1001, hi: 1001, write: false }));
        // Independence relation sanity: the two agents' touches are to
        // distinct addresses and commute; same-address write/read do not.
        let a = Access::point(1000, true);
        let b = Access::point(1001, false);
        assert!(!a.conflicts(&b));
        assert!(a.conflicts(&Access::point(1000, false)));
        assert!(!b.conflicts(&Access::point(1001, false)), "read/read commutes");
        assert!(footprints_conflict(&[a, b], &[Access::global()]));
        assert!(!footprints_conflict(&[a], &[b]));
    }

    #[test]
    fn footprints_are_empty_without_controller() {
        let sched = run_agents(2, |w, _| {
            w.touch(7, 7, true);
            w.advance(5);
        });
        assert!(sched.take_decisions().is_empty());
    }

    #[test]
    fn makespan_reflects_parallelism() {
        // 4 agents x 100 independent cycles: parallel makespan is 100,
        // not 400 — the whole point of virtual time on a 1-core host.
        let sched = run_agents(4, |w, _| {
            w.advance(100);
        });
        assert_eq!(sched.makespan(), 100);
    }
}
