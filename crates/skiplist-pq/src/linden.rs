//! Lindén & Jonsson-style priority queue: logical deletes + batched
//! physical unlinking over the shared skiplist.

use crate::list::SkipList;
use pq_api::{Entry, ItemwiseBatch, KeyType, PriorityQueue, QueueFactory, ValueType};

/// Skiplist priority queue with deferred, batched physical deletion
/// (the "LJSL" column of Table 2).
pub struct LindenJonssonPq<K, V> {
    list: SkipList<K, V>,
}

impl<K: KeyType, V: ValueType> LindenJonssonPq<K, V> {
    /// `cleanup_threshold` is the dead-prefix length that triggers one
    /// batched restructuring pass (Lindén & Jonsson's `BoundOffset`).
    pub fn new(cleanup_threshold: usize) -> Self {
        Self { list: SkipList::new(cleanup_threshold) }
    }

    pub fn list(&self) -> &SkipList<K, V> {
        &self.list
    }
}

impl<K: KeyType, V: ValueType> Default for LindenJonssonPq<K, V> {
    fn default() -> Self {
        Self::new(32)
    }
}

impl<K: KeyType, V: ValueType> PriorityQueue<K, V> for LindenJonssonPq<K, V> {
    fn insert(&self, key: K, value: V) {
        self.list.insert(Entry::new(key, value));
    }

    fn delete_min(&self) -> Option<Entry<K, V>> {
        self.list.claim_min()
    }

    fn len(&self) -> usize {
        self.list.len()
    }
}

/// Factory for the bench harness.
pub struct LindenJonssonPqFactory {
    pub batch: usize,
    pub cleanup_threshold: usize,
}

impl Default for LindenJonssonPqFactory {
    fn default() -> Self {
        Self { batch: 1024, cleanup_threshold: 32 }
    }
}

impl<K: KeyType, V: ValueType> QueueFactory<K, V> for LindenJonssonPqFactory {
    type Queue = ItemwiseBatch<LindenJonssonPq<K, V>>;

    fn name(&self) -> &str {
        "LJSL"
    }

    fn build(&self, _capacity_hint: usize) -> Self::Queue {
        ItemwiseBatch::new(LindenJonssonPq::new(self.cleanup_threshold), self.batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn model_equivalence() {
        let q = LindenJonssonPq::<u32, u32>::new(8);
        let mut model = std::collections::BinaryHeap::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            if rng.gen_bool(0.5) || model.is_empty() {
                let k = rng.gen_range(0..1 << 20);
                q.insert(k, k);
                model.push(std::cmp::Reverse(k));
            } else {
                assert_eq!(q.delete_min().map(|e| e.key), model.pop().map(|r| r.0));
            }
        }
        q.list().check_invariants();
    }

    #[test]
    fn concurrent_run_keeps_invariants() {
        let q = LindenJonssonPq::<u32, u32>::new(4);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let q = &q;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t);
                    for _ in 0..300 {
                        if rng.gen_bool(0.55) {
                            q.insert(rng.gen_range(0..1 << 30), 0);
                        } else {
                            q.delete_min();
                        }
                    }
                });
            }
        });
        q.list().check_invariants();
    }
}
