//! The shared concurrent skiplist substrate.
//!
//! * `p = 1/2` level distribution, tower height ≤ [`MAX_LEVEL`] (§2.1 of
//!   the paper describes the structure).
//! * Inserts link new towers with CAS, retrying on contention; nodes are
//!   owned by an append-only arena so raw pointers stay valid for the
//!   queue's lifetime (no ABA: memory is never reused).
//! * Logical deletion is one atomic flag claim; deleted nodes remain
//!   linked until a *batched* physical cleanup unlinks the deleted
//!   prefix — Lindén & Jonsson's key idea.
//! * Cleanup takes the structure lock in write mode; inserts and scans
//!   hold it in read mode, so pointer chasing never races an unlink.

use parking_lot::{Mutex, RwLock};
use pq_api::{Entry, KeyType, ValueType};
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicPtr, AtomicU64, Ordering};

/// Maximum tower height; 2^24 expected keys is ample for the bench
/// scales.
pub const MAX_LEVEL: usize = 24;

pub(crate) struct Node<K, V> {
    pub entry: Entry<K, V>,
    pub deleted: AtomicBool,
    pub level: usize,
    /// `next[l]` is valid for `l < level`.
    pub next: Vec<AtomicPtr<Node<K, V>>>,
}

impl<K: KeyType, V: ValueType> Node<K, V> {
    fn new(entry: Entry<K, V>, level: usize) -> Box<Self> {
        Box::new(Self {
            entry,
            deleted: AtomicBool::new(false),
            level,
            next: (0..level).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect(),
        })
    }
}

pub struct SkipList<K, V> {
    head: Box<Node<K, V>>,
    arena: Mutex<Vec<Box<Node<K, V>>>>,
    /// Read = traverse/insert; write = physically unlink.
    structure: RwLock<()>,
    len: AtomicIsize,
    level_seed: AtomicU64,
    /// Logical deletes observed since the last cleanup; triggers the
    /// batched physical unlink when it exceeds `cleanup_threshold`.
    dead_since_cleanup: AtomicIsize,
    cleanup_threshold: isize,
}

// SAFETY: nodes are shared via raw pointers but (a) owned by the arena
// for the list's lifetime, (b) link mutations are atomic, (c) unlinking
// is exclusive via `structure`.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for SkipList<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for SkipList<K, V> {}

impl<K: KeyType, V: ValueType> SkipList<K, V> {
    pub fn new(cleanup_threshold: usize) -> Self {
        Self {
            head: Node::new(Entry::new(K::MIN_KEY, V::default()), MAX_LEVEL),
            arena: Mutex::new(Vec::new()),
            structure: RwLock::new(()),
            len: AtomicIsize::new(0),
            level_seed: AtomicU64::new(0x9E3779B97F4A7C15),
            dead_since_cleanup: AtomicIsize::new(0),
            cleanup_threshold: cleanup_threshold.max(1) as isize,
        }
    }

    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed).max(0) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Geometric level draw (p = 1/2) from a shared splitmix64 stream.
    fn random_level(&self) -> usize {
        let mut z = self.level_seed.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        ((z.trailing_ones() as usize) + 1).min(MAX_LEVEL)
    }

    /// Predecessors of `key` at every level (nodes with key < `key`,
    /// deleted or not — deleted nodes stay linked until cleanup).
    fn find_preds(&self, key: K, preds: &mut [*const Node<K, V>; MAX_LEVEL]) {
        let mut pred: *const Node<K, V> = &*self.head;
        for lvl in (0..MAX_LEVEL).rev() {
            loop {
                // SAFETY: linked nodes live in the arena; structure read
                // lock (held by callers) excludes unlinking.
                let curr = unsafe { (&*pred).next[lvl].load(Ordering::Acquire) };
                if curr.is_null() {
                    break;
                }
                let curr_ref = unsafe { &*curr };
                if curr_ref.entry.key < key {
                    pred = curr;
                } else {
                    break;
                }
            }
            preds[lvl] = pred;
        }
    }

    /// Insert an entry.
    pub fn insert(&self, entry: Entry<K, V>) {
        let _g = self.structure.read();
        let level = self.random_level();
        let node_ptr: *mut Node<K, V> = {
            let mut boxed = Node::new(entry, level);
            let p: *mut Node<K, V> = &mut *boxed;
            self.arena.lock().push(boxed);
            p
        };
        let mut preds = [std::ptr::null::<Node<K, V>>(); MAX_LEVEL];
        // Link bottom-up; CAS per level, re-searching on contention.
        for lvl in 0..level {
            loop {
                self.find_preds(entry.key, &mut preds);
                let pred = preds[lvl];
                // SAFETY: pred is the head or an arena node.
                let succ = unsafe { (&*pred).next[lvl].load(Ordering::Acquire) };
                // Validate: another insert may have linked a smaller key
                // after `pred` since the search; CASing past it would
                // break level order. Keys are immutable, so a key check
                // plus the CAS (which detects any further change) is
                // sufficient.
                if !succ.is_null() && unsafe { (&*succ).entry.key } < entry.key {
                    continue;
                }
                unsafe { (&*node_ptr).next[lvl].store(succ, Ordering::Release) };
                let cas = unsafe {
                    (&*pred).next[lvl].compare_exchange(
                        succ,
                        node_ptr,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                };
                if cas.is_ok() {
                    break;
                }
            }
        }
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Claim the head-most live node (logical delete). Returns its entry.
    pub fn claim_min(&self) -> Option<Entry<K, V>> {
        let skipped;
        let result;
        {
            let _g = self.structure.read();
            let mut curr = self.head.next[0].load(Ordering::Acquire);
            let mut dead = 0isize;
            loop {
                if curr.is_null() {
                    return None;
                }
                // SAFETY: arena-owned node; read lock excludes unlink.
                let node = unsafe { &*curr };
                if !node.deleted.swap(true, Ordering::AcqRel) {
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    result = node.entry;
                    skipped = dead;
                    break;
                }
                dead += 1;
                curr = node.next[0].load(Ordering::Acquire);
            }
        }
        // Lindén-Jonsson batching: only restructure when the dead prefix
        // has grown past the threshold. Opportunistic cleanup can starve
        // under oversubscription (some reader always holds the structure
        // lock), so a long prefix forces a blocking cleanup — bounding
        // the scan cost every claimer pays.
        let dead_total = self.dead_since_cleanup.fetch_add(1, Ordering::Relaxed) + 1;
        if skipped >= self.cleanup_threshold * 8 {
            self.cleanup_blocking();
        } else if skipped >= self.cleanup_threshold || dead_total >= self.cleanup_threshold * 4 {
            self.cleanup();
        }
        Some(result)
    }

    /// Claim a specific node if still live (used by the spray walk).
    pub(crate) fn try_claim(&self, node: &Node<K, V>) -> bool {
        if !node.deleted.swap(true, Ordering::AcqRel) {
            self.len.fetch_sub(1, Ordering::Relaxed);
            self.dead_since_cleanup.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    pub(crate) fn head_node(&self) -> &Node<K, V> {
        &self.head
    }

    /// Physically unlink the deleted prefix at every level (batched
    /// restructuring). No-op if another thread is already cleaning.
    pub fn cleanup(&self) {
        let Some(w) = self.structure.try_write() else {
            return;
        };
        self.cleanup_locked(w);
    }

    /// Like [`Self::cleanup`], but waits for exclusive access — used
    /// when the dead prefix has grown so long that every scan pays for
    /// it (cleanup starvation under oversubscription).
    pub fn cleanup_blocking(&self) {
        let w = self.structure.write();
        self.cleanup_locked(w);
    }

    fn cleanup_locked(&self, _w: parking_lot::RwLockWriteGuard<'_, ()>) {
        self.dead_since_cleanup.store(0, Ordering::Relaxed);
        for lvl in (0..MAX_LEVEL).rev() {
            let mut first = self.head.next[lvl].load(Ordering::Relaxed);
            loop {
                if first.is_null() {
                    break;
                }
                // SAFETY: exclusive access via the write lock.
                let node = unsafe { &*first };
                if !node.deleted.load(Ordering::Relaxed) {
                    break;
                }
                first = node.next[lvl].load(Ordering::Relaxed);
            }
            self.head.next[lvl].store(first, Ordering::Relaxed);
        }
    }

    /// Approximate resident bytes: every arena node's struct plus its
    /// tower pointers (the paper's §2.1 memory argument: towers make a
    /// skiplist store "keys (or pointers to them) that appear at
    /// different layers").
    pub fn memory_bytes(&self) -> usize {
        let arena = self.arena.lock();
        let node_fixed = std::mem::size_of::<Node<K, V>>();
        arena
            .iter()
            .map(|n| node_fixed + n.level * std::mem::size_of::<AtomicPtr<Node<K, V>>>())
            .sum::<usize>()
            + node_fixed
            + MAX_LEVEL * std::mem::size_of::<AtomicPtr<Node<K, V>>>()
    }

    /// Number of nodes ever allocated (live + logically deleted; the
    /// arena frees nothing until drop).
    pub fn allocated_nodes(&self) -> usize {
        self.arena.lock().len()
    }

    /// Quiescent check: level-0 order is sorted; `len` matches the
    /// number of live nodes; every live node is reachable at level 0.
    pub fn check_invariants(&self) {
        let _g = self.structure.read();
        let mut live = 0usize;
        let mut prev_key: Option<K> = None;
        let mut curr = self.head.next[0].load(Ordering::Acquire);
        while !curr.is_null() {
            let node = unsafe { &*curr };
            if let Some(p) = prev_key {
                assert!(p <= node.entry.key, "level-0 order violated");
            }
            prev_key = Some(node.entry.key);
            if !node.deleted.load(Ordering::Relaxed) {
                live += 1;
            }
            curr = node.next[0].load(Ordering::Acquire);
        }
        assert_eq!(live, self.len(), "len counter drift");
        // Every upper-level node must also appear in level-0 order:
        // upper links only skip, never diverge.
        for lvl in 1..MAX_LEVEL {
            let mut c = self.head.next[lvl].load(Ordering::Acquire);
            let mut prev: Option<K> = None;
            while !c.is_null() {
                let node = unsafe { &*c };
                assert!(node.level > lvl, "node linked above its height");
                if let Some(p) = prev {
                    assert!(p <= node.entry.key, "level-{lvl} order violated");
                }
                prev = Some(node.entry.key);
                c = node.next[lvl].load(Ordering::Acquire);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sorted_claims() {
        let sl = SkipList::<u32, u32>::new(8);
        for k in [5u32, 2, 9, 2, 7, 0] {
            sl.insert(Entry::new(k, k));
        }
        let mut got = Vec::new();
        while let Some(e) = sl.claim_min() {
            got.push(e.key);
        }
        assert_eq!(got, vec![0, 2, 2, 5, 7, 9]);
        assert!(sl.is_empty());
    }

    #[test]
    fn cleanup_unlinks_dead_prefix() {
        let sl = SkipList::<u32, ()>::new(1);
        for k in 0..100u32 {
            sl.insert(Entry::new(k, ()));
        }
        for _ in 0..50 {
            sl.claim_min();
        }
        sl.cleanup();
        // After cleanup the first level-0 node must be live (key 50).
        let first = sl.head.next[0].load(Ordering::Acquire);
        let node = unsafe { &*first };
        assert_eq!(node.entry.key, 50);
        assert!(!node.deleted.load(Ordering::Relaxed));
        sl.check_invariants();
    }

    #[test]
    fn interleaved_insert_claim_matches_model() {
        let sl = SkipList::<u32, u32>::new(4);
        let mut model = std::collections::BinaryHeap::new();
        let mut rng = StdRng::seed_from_u64(77);
        for step in 0..3000 {
            if rng.gen_bool(0.55) || model.is_empty() {
                let k = rng.gen_range(0..10_000u32);
                sl.insert(Entry::new(k, k));
                model.push(std::cmp::Reverse(k));
            } else {
                let got = sl.claim_min().map(|e| e.key);
                let expect = model.pop().map(|r| r.0);
                assert_eq!(got, expect, "step {step}");
            }
        }
        sl.check_invariants();
    }

    #[test]
    fn concurrent_conservation() {
        let sl = SkipList::<u32, u32>::new(16);
        let removed = AtomicIsize::new(0);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let sl = &sl;
                let removed = &removed;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t);
                    for _ in 0..400 {
                        if rng.gen_bool(0.6) {
                            sl.insert(Entry::new(rng.gen_range(0..1 << 30), 0));
                        } else if sl.claim_min().is_some() {
                            removed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        sl.check_invariants();
        let mut drained = 0;
        while sl.claim_min().is_some() {
            drained += 1;
        }
        let _ = drained + removed.load(Ordering::Relaxed) as usize;
        assert!(sl.is_empty());
    }

    #[test]
    fn concurrent_inserts_stay_sorted() {
        let sl = SkipList::<u32, ()>::new(16);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let sl = &sl;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t + 50);
                    for _ in 0..300 {
                        sl.insert(Entry::new(rng.gen_range(0..1 << 30), ()));
                    }
                });
            }
        });
        sl.check_invariants();
        let mut prev = 0u32;
        let mut n = 0;
        while let Some(e) = sl.claim_min() {
            assert!(e.key >= prev);
            prev = e.key;
            n += 1;
        }
        assert_eq!(n, 8 * 300);
    }

    #[test]
    fn level_distribution_is_geometric_ish() {
        let sl = SkipList::<u32, ()>::new(1024);
        let mut counts = [0usize; MAX_LEVEL + 1];
        for _ in 0..10_000 {
            counts[sl.random_level()] += 1;
        }
        // Roughly half of all draws are level 1; level 2 about a quarter.
        assert!(counts[1] > 4000 && counts[1] < 6000, "level-1 count {}", counts[1]);
        assert!(counts[2] > 1800 && counts[2] < 3200, "level-2 count {}", counts[2]);
    }
}
