//! # skiplist-pq — skiplist-based priority-queue baselines
//!
//! The paper compares BGPQ against two skiplist designs:
//!
//! * **LJSL** — Lindén & Jonsson's priority queue: delete-min marks the
//!   head-most live node with a *logical delete* flag and defers the
//!   physical unlinking, batching many unlinks into one restructuring
//!   pass to cut memory contention at the head. Implemented by
//!   [`LindenJonssonPq`] on the shared [`list::SkipList`] substrate.
//! * **SprayList** — Alistarh et al.'s relaxed queue: delete-min takes a
//!   random "spray" walk from the head and claims a node among the
//!   first `O(p·log³p)` keys, trading strict min-ordering for head
//!   contention relief. Implemented by [`SprayListPq`].
//!
//! Substitutions versus the originals (see DESIGN.md §2): the published
//! implementations are lock-free with epoch reclamation; here inserts
//! use CAS linking, logical deletes are a single atomic flag (as in the
//! originals), and only the *physical unlinking* is serialized behind an
//! RwLock (writers) against inserts (readers). Unlinked nodes stay in an
//! arena until the queue drops, sidestepping reclamation. The measured
//! behaviours the paper relies on — head contention, batched unlink,
//! spray relaxation — are all present.

pub mod linden;
pub mod list;
pub mod lotan;
pub mod spray;

pub use linden::{LindenJonssonPq, LindenJonssonPqFactory};
pub use lotan::{LotanShavitPq, LotanShavitPqFactory};
pub use spray::{SprayListPq, SprayListPqFactory};
