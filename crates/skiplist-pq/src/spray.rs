//! SprayList (Alistarh, Kopinsky, Li, Shavit — PPoPP'15): a relaxed
//! priority queue whose delete-min "sprays" a random walk from the head
//! and claims a node among the first `O(p·log³p)` keys, relieving head
//! contention at the cost of strict min ordering.

use crate::list::{SkipList, MAX_LEVEL};
use pq_api::{Entry, ItemwiseBatch, KeyType, PriorityQueue, QueueFactory, ValueType};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::sync::atomic::Ordering;

thread_local! {
    static SPRAY_RNG: RefCell<SmallRng> = RefCell::new(SmallRng::seed_from_u64(
        // Distinct stream per thread; determinism is not required for a
        // relaxed structure.
        std::time::UNIX_EPOCH.elapsed().map(|d| d.as_nanos() as u64).unwrap_or(7) ^ 0xA5A5_5A5A,
    ));
}

/// Relaxed skiplist priority queue with spray deletions.
pub struct SprayListPq<K, V> {
    list: SkipList<K, V>,
    /// Expected number of concurrent deleters `p`; sets the spray
    /// height/width (the paper tunes for `p` threads).
    threads_hint: usize,
}

impl<K: KeyType, V: ValueType> SprayListPq<K, V> {
    pub fn new(threads_hint: usize, cleanup_threshold: usize) -> Self {
        Self { list: SkipList::new(cleanup_threshold), threads_hint: threads_hint.max(1) }
    }

    pub fn list(&self) -> &SkipList<K, V> {
        &self.list
    }

    /// One spray descent: returns a claimed entry, or `None` when the
    /// spray found nothing claimable (caller falls back to a precise
    /// scan).
    fn spray_once(&self) -> Option<Entry<K, V>> {
        let p = self.threads_hint;
        let log_p = (usize::BITS - p.leading_zeros()) as usize; // ⌈log2 p⌉+1-ish
        let height = (log_p + 1).min(MAX_LEVEL - 1);
        let max_jump = (log_p + 2).max(2);

        let jumps: Vec<usize> = SPRAY_RNG.with(|r| {
            let mut r = r.borrow_mut();
            (0..=height).map(|_| r.gen_range(0..=max_jump)).collect()
        });

        // Walk: at each level, jump a random number of nodes, then
        // descend one level.
        let mut node = self.list.head_node() as *const crate::list::Node<K, V>;
        for lvl in (0..=height).rev() {
            let mut hops = jumps[height - lvl];
            while hops > 0 {
                // SAFETY: nodes are arena-owned; claim/scan protocols in
                // `list` keep linked pointers valid.
                let next = unsafe { (&*node).next[lvl].load(Ordering::Acquire) };
                if next.is_null() {
                    break;
                }
                node = next;
                hops -= 1;
            }
        }
        // Claim scan forward from the landing point at level 0.
        let head = self.list.head_node() as *const crate::list::Node<K, V>;
        let mut curr = if std::ptr::eq(node, head) {
            unsafe { (&*head).next[0].load(Ordering::Acquire) }
        } else {
            node as *mut crate::list::Node<K, V>
        };
        let mut budget = 4 * max_jump + 4;
        while !curr.is_null() && budget > 0 {
            let r = unsafe { &*curr };
            if self.list.try_claim(r) {
                return Some(r.entry);
            }
            curr = r.next[0].load(Ordering::Acquire);
            budget -= 1;
        }
        None
    }
}

impl<K: KeyType, V: ValueType> PriorityQueue<K, V> for SprayListPq<K, V> {
    fn insert(&self, key: K, value: V) {
        self.list.insert(Entry::new(key, value));
    }

    /// Relaxed delete-min: returns an entry near (not necessarily at)
    /// the minimum — the SprayList contract.
    fn delete_min(&self) -> Option<Entry<K, V>> {
        for _ in 0..3 {
            if let Some(e) = self.spray_once() {
                return Some(e);
            }
            if self.list.is_empty() {
                break;
            }
        }
        // Fall back to a precise claim so emptiness is detected exactly.
        self.list.claim_min()
    }

    fn len(&self) -> usize {
        self.list.len()
    }
}

/// Factory for the bench harness.
pub struct SprayListPqFactory {
    pub batch: usize,
    pub threads_hint: usize,
}

impl Default for SprayListPqFactory {
    fn default() -> Self {
        Self { batch: 1024, threads_hint: 8 }
    }
}

impl<K: KeyType, V: ValueType> QueueFactory<K, V> for SprayListPqFactory {
    type Queue = ItemwiseBatch<SprayListPq<K, V>>;

    fn name(&self) -> &str {
        "SprayList"
    }

    fn build(&self, _capacity_hint: usize) -> Self::Queue {
        ItemwiseBatch::new(SprayListPq::new(self.threads_hint, 64), self.batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_everything_eventually() {
        let q = SprayListPq::<u32, u32>::new(8, 16);
        for k in 0..500u32 {
            q.insert(k, k);
        }
        let mut got = Vec::new();
        while let Some(e) = q.delete_min() {
            got.push(e.key);
        }
        assert_eq!(got.len(), 500);
        got.sort_unstable();
        assert_eq!(got, (0..500).collect::<Vec<_>>(), "multiset must be conserved");
    }

    #[test]
    fn relaxed_deletes_stay_near_the_head() {
        let q = SprayListPq::<u32, ()>::new(8, 1 << 20);
        let n = 10_000u32;
        for k in 0..n {
            q.insert(k, ());
        }
        // The first delete must return a key within the spray window,
        // not something from the middle of the list.
        for _ in 0..50 {
            let e = q.delete_min().expect("non-empty");
            assert!(e.key < 2_000, "spray strayed too far: {}", e.key);
        }
    }

    #[test]
    fn concurrent_conservation() {
        let q = SprayListPq::<u32, u32>::new(8, 32);
        let taken = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let q = &q;
                let taken = &taken;
                s.spawn(move || {
                    use rand::rngs::StdRng;
                    let mut rng = StdRng::seed_from_u64(t);
                    for _ in 0..300 {
                        if rng.gen_bool(0.6) {
                            q.insert(rng.gen_range(0..1 << 30), 0);
                        } else if q.delete_min().is_some() {
                            taken.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        q.list().check_invariants();
        let mut drained = 0usize;
        while q.delete_min().is_some() {
            drained += 1;
        }
        assert!(q.list().is_empty());
        let _ = drained;
    }

    #[test]
    fn empty_returns_none() {
        let q = SprayListPq::<u32, ()>::new(4, 8);
        assert!(q.delete_min().is_none());
    }
}
