//! Lotan–Shavit / Sundell–Tsigas-style skiplist priority queue:
//! logical delete-min with *eager* physical unlinking.
//!
//! The paper's Table 1 lists STSL (Sundell & Tsigas) alongside LJSL;
//! the structural difference the evaluation cares about is that the
//! pre-Lindén designs unlink every deleted node promptly, paying the
//! restructuring (and, on CPUs, cache-coherence) cost per deletion,
//! where LJSL batches it. This wrapper reproduces that behaviour on the
//! shared substrate: cleanup threshold 1 plus a forced unlink pass
//! after every claim.

use crate::list::SkipList;
use pq_api::{Entry, ItemwiseBatch, KeyType, PriorityQueue, QueueFactory, ValueType};

/// Eager-unlink skiplist priority queue (the "STSL" design point).
pub struct LotanShavitPq<K, V> {
    list: SkipList<K, V>,
}

impl<K: KeyType, V: ValueType> LotanShavitPq<K, V> {
    pub fn new() -> Self {
        Self { list: SkipList::new(1) }
    }

    pub fn list(&self) -> &SkipList<K, V> {
        &self.list
    }
}

impl<K: KeyType, V: ValueType> Default for LotanShavitPq<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: KeyType, V: ValueType> PriorityQueue<K, V> for LotanShavitPq<K, V> {
    fn insert(&self, key: K, value: V) {
        self.list.insert(Entry::new(key, value));
    }

    fn delete_min(&self) -> Option<Entry<K, V>> {
        let e = self.list.claim_min();
        // Eager physical deletion: restructure immediately (skipped
        // only if another thread is mid-restructure).
        self.list.cleanup();
        e
    }

    fn len(&self) -> usize {
        self.list.len()
    }
}

/// Factory for the bench harness.
pub struct LotanShavitPqFactory {
    pub batch: usize,
}

impl Default for LotanShavitPqFactory {
    fn default() -> Self {
        Self { batch: 1024 }
    }
}

impl<K: KeyType, V: ValueType> QueueFactory<K, V> for LotanShavitPqFactory {
    type Queue = ItemwiseBatch<LotanShavitPq<K, V>>;

    fn name(&self) -> &str {
        "STSL"
    }

    fn build(&self, _capacity_hint: usize) -> Self::Queue {
        ItemwiseBatch::new(LotanShavitPq::new(), self.batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn model_equivalence() {
        let q = LotanShavitPq::<u32, u32>::new();
        let mut model = std::collections::BinaryHeap::new();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1500 {
            if rng.gen_bool(0.5) || model.is_empty() {
                let k = rng.gen_range(0..1 << 20);
                q.insert(k, k);
                model.push(std::cmp::Reverse(k));
            } else {
                assert_eq!(q.delete_min().map(|e| e.key), model.pop().map(|r| r.0));
            }
        }
        q.list().check_invariants();
    }

    #[test]
    fn concurrent_conservation() {
        let q = LotanShavitPq::<u32, u32>::new();
        let taken = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..6u64 {
                let q = &q;
                let taken = &taken;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(t);
                    for _ in 0..300 {
                        if rng.gen_bool(0.6) {
                            q.insert(rng.gen_range(0..1 << 30), 0);
                        } else if q.delete_min().is_some() {
                            taken.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        q.list().check_invariants();
        let mut rest = 0usize;
        while q.delete_min().is_some() {
            rest += 1;
        }
        let _ = rest;
        assert!(q.list().is_empty());
    }

    #[test]
    fn eager_cleanup_keeps_prefix_short() {
        let q = LotanShavitPq::<u32, ()>::new();
        for k in 0..200u32 {
            q.insert(k, ());
        }
        for expect in 0..100u32 {
            assert_eq!(q.delete_min().unwrap().key, expect);
        }
        q.list().check_invariants();
        assert_eq!(q.len(), 100);
    }
}
