//! Quantifies SprayList's relaxation: deleted keys must come from a
//! bounded window near the head (Alistarh et al. prove O(p·log³p) whp),
//! and the queue must never "lose" priority order wholesale.

use pq_api::PriorityQueue;
use skiplist_pq::SprayListPq;
use std::collections::BTreeSet;

/// Insert `n` distinct keys, spray-delete half of them one at a time,
/// and measure each deletion's *rank* among the keys live at that
/// moment (rank 0 = exact minimum).
fn rank_profile(n: u32, threads_hint: usize) -> Vec<usize> {
    let q = SprayListPq::<u32, ()>::new(threads_hint, 1 << 20);
    for k in 0..n {
        q.insert(k, ());
    }
    let mut live: BTreeSet<u32> = (0..n).collect();
    let mut ranks = Vec::new();
    for _ in 0..n / 2 {
        let e = q.delete_min().expect("non-empty");
        let rank = live.range(..e.key).count();
        ranks.push(rank);
        assert!(live.remove(&e.key), "key {} deleted twice", e.key);
    }
    ranks
}

#[test]
fn spray_rank_error_is_bounded() {
    let ranks = rank_profile(20_000, 8);
    let max = *ranks.iter().max().unwrap();
    let mean = ranks.iter().sum::<usize>() as f64 / ranks.len() as f64;
    eprintln!("spray ranks: mean {mean:.2}, max {max}");
    // p = 8 ⇒ window of a few dozen; enforce a generous envelope that
    // still catches a broken spray (which would show ranks in the
    // thousands).
    assert!(max < 512, "spray strayed outside its window: max rank {max}");
    assert!(mean < 32.0, "mean rank error too high: {mean:.2}");
}

#[test]
fn smaller_thread_hint_sprays_tighter() {
    let mean = |ranks: &[usize]| ranks.iter().sum::<usize>() as f64 / ranks.len() as f64;
    let tight = rank_profile(10_000, 1);
    let wide = rank_profile(10_000, 64);
    let (mt, mw) = (mean(&tight), mean(&wide));
    eprintln!("mean rank: p=1 -> {mt:.2}, p=64 -> {mw:.2}");
    assert!(mt <= mw + 1.0, "spray width must grow with the thread hint: {mt:.2} vs {mw:.2}");
}

#[test]
fn exact_fallback_after_spray_exhaustion() {
    // With 2 keys and a huge spray window, sprays may land past the end;
    // the fallback must still deliver exact minima and emptiness.
    let q = SprayListPq::<u32, ()>::new(64, 4);
    q.insert(10, ());
    q.insert(5, ());
    let a = q.delete_min().unwrap().key;
    let b = q.delete_min().unwrap().key;
    assert_eq!(
        {
            let mut v = vec![a, b];
            v.sort();
            v
        },
        vec![5, 10]
    );
    assert!(q.delete_min().is_none());
}
