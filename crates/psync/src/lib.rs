//! # psync — the P-Sync pipelined batched-heap GPU baseline
//!
//! He, Agarwal & Prasad (HiPC'12) extended Deo & Prasad's parallel heap
//! to GPUs: a heap of `k`-key batch nodes where operations move through
//! the tree **level by level in lock step**, with a device-wide barrier
//! (in practice a kernel relaunch) between every two pipeline stages.
//! The paper uses it as the GPU baseline ("P-Sync") and attributes its
//! 7–11× deficit to exactly this strict pipeline synchronization
//! (§6.3), plus the fixed batch-size restriction ("requires to insert
//! or delete a fixed number of keys at once") and no concurrent
//! insert/delete phases (footnote 5).
//!
//! This crate provides:
//!
//! * [`SeqBatchHeap`] — the underlying batched heap (same `SORT_SPLIT`
//!   node algebra as BGPQ, no concurrency), exhaustively tested;
//! * [`pipeline`] — the virtual-time pipeline driver: ops enter one per
//!   step, each op occupies `depth` stages, every step ends in a
//!   device-wide barrier whose cost models the kernel relaunch. Heap
//!   mutations are performed for real (sequentially, in op order); the
//!   virtual clock reflects the pipeline schedule.

pub mod pipeline;
pub mod seq_heap;

pub use pipeline::{run_phase, PhaseKind, PsyncConfig, PsyncPhaseResult};
pub use seq_heap::SeqBatchHeap;
