//! Sequential batched heap: the data structure under P-Sync's pipeline.
//!
//! Same node algebra as BGPQ (sorted `k`-key nodes, `SORT_SPLIT`
//! between them, top-down traversals) without the concurrency
//! machinery: He et al.'s heap processes one pipeline stage at a time,
//! so the structure itself is sequential.

use pq_api::{Entry, KeyType, ValueType};
use primitives::{sort_split, sort_split_full};

/// A sequential batched min-heap with fixed node capacity `k`.
///
/// Inserts accept 1..=k items (padded internally into the root/tail
/// handling); deletes return up to `k` smallest. All non-root nodes are
/// full.
pub struct SeqBatchHeap<K, V> {
    /// 1-based node array; `nodes[0]` unused.
    nodes: Vec<Vec<Entry<K, V>>>,
    /// Number of nodes in use including the root; 0 = empty.
    heap_size: usize,
    /// Keys in the root (≤ k).
    root_len: usize,
    /// Partial-batch staging (like BGPQ's buffer, but sequential).
    buffer: Vec<Entry<K, V>>,
    k: usize,
    len: usize,
    scratch: Vec<Entry<K, V>>,
}

impl<K: KeyType, V: ValueType> SeqBatchHeap<K, V> {
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        Self {
            nodes: vec![Vec::new()],
            heap_size: 0,
            root_len: 0,
            buffer: Vec::new(),
            k,
            len: 0,
            scratch: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn node_capacity(&self) -> usize {
        self.k
    }

    /// Depth (levels) of the current heap; the pipeline length.
    pub fn depth(&self) -> u32 {
        if self.heap_size == 0 {
            1
        } else {
            usize::BITS - self.heap_size.leading_zeros()
        }
    }

    fn node(&mut self, i: usize) -> &mut Vec<Entry<K, V>> {
        while self.nodes.len() <= i {
            self.nodes.push(Vec::new());
        }
        &mut self.nodes[i]
    }

    /// Insert a batch of 1..=k items.
    pub fn insert_batch(&mut self, items: &[Entry<K, V>]) {
        assert!(!items.is_empty() && items.len() <= self.k);
        self.len += items.len();
        let k = self.k;
        let mut batch: Vec<Entry<K, V>> = items.to_vec();
        batch.sort_unstable();

        if self.heap_size == 0 {
            self.nodes[0].clear();
            let root = self.node(1);
            root.clear();
            root.extend_from_slice(&batch);
            self.root_len = batch.len();
            self.heap_size = 1;
            return;
        }

        // Keep the smallest keys in the root.
        if self.root_len > 0 {
            let rl = self.root_len;
            let bl = batch.len();
            let mut root = std::mem::take(&mut self.nodes[1]);
            sort_split(&mut root, rl, &mut batch, bl, rl, &mut self.scratch);
            self.nodes[1] = root;
        }

        // Stage partial batches in the buffer until a full node forms.
        self.buffer.extend_from_slice(&batch);
        self.buffer.sort_unstable();
        if self.root_len + self.buffer.len() <= self.k && self.heap_size == 1 {
            // Top up a partial root directly while the heap is trivial.
            let mut root = std::mem::take(&mut self.nodes[1]);
            root.truncate(self.root_len);
            root.extend_from_slice(&self.buffer);
            root.sort_unstable();
            self.root_len = root.len();
            self.buffer.clear();
            self.nodes[1] = root;
            return;
        }
        while self.buffer.len() >= k {
            let full: Vec<Entry<K, V>> = self.buffer.drain(..k).collect();
            self.push_full_node(full);
        }
    }

    /// Sift a full sorted node down the root→target path, SORT_SPLITting
    /// with every node on the path (including a possibly-partial root,
    /// since buffered batches can hold keys below a refilled root).
    fn push_full_node(&mut self, mut batch: Vec<Entry<K, V>>) {
        debug_assert_eq!(batch.len(), self.k);
        let tar = self.heap_size + 1;
        self.heap_size = tar;
        let mut cur = 1usize;
        while cur != tar {
            let mut node = std::mem::take(&mut self.nodes[cur]);
            let nl = node.len();
            if nl == self.k {
                sort_split_full(&mut node, &mut batch, &mut self.scratch);
            } else if nl > 0 {
                sort_split(&mut node, nl, &mut batch, self.k, nl, &mut self.scratch);
            }
            self.nodes[cur] = node;
            let lt = usize::BITS - tar.leading_zeros();
            let lc = usize::BITS - cur.leading_zeros();
            cur = tar >> (lt - lc - 1);
        }
        let slot = self.node(tar);
        debug_assert!(slot.is_empty());
        *slot = batch;
    }

    /// Delete up to `count ≤ k` smallest items into `out`; returns how
    /// many were produced.
    pub fn delete_min_batch(&mut self, out: &mut Vec<Entry<K, V>>, count: usize) -> usize {
        assert!(count >= 1 && count <= self.k);
        let start = out.len();
        if self.heap_size == 0 {
            return 0;
        }
        let k = self.k;

        // Gather candidates: root ∪ buffer hold the global minimum set.
        while out.len() - start < count {
            if self.root_len == 0 && !self.refill_root() {
                // Root refused: take from the buffer directly.
                if self.buffer.is_empty() {
                    break;
                }
                let take = (count - (out.len() - start)).min(self.buffer.len());
                out.extend(self.buffer.drain(..take));
                continue;
            }
            // Extract min(root head, buffer head) to respect the buffer.
            let root_head = self.nodes[1][0];
            if let Some(&buf_head) = self.buffer.first() {
                if buf_head < root_head {
                    out.push(buf_head);
                    self.buffer.remove(0);
                    continue;
                }
            }
            out.push(root_head);
            self.nodes[1].remove(0);
            self.root_len -= 1;
        }
        let got = out.len() - start;
        self.len -= got;
        if self.len == 0 {
            self.heap_size = 0;
            self.root_len = 0;
            self.buffer.clear();
            self.nodes[1].clear();
        }
        let _ = k;
        got
    }

    /// Refill an empty root from the last node, sift down. Returns false
    /// if no full node exists.
    fn refill_root(&mut self) -> bool {
        if self.heap_size <= 1 {
            return false;
        }
        let last = self.heap_size;
        self.heap_size -= 1;
        let node = std::mem::take(&mut self.nodes[last]);
        self.nodes[1] = node;
        self.root_len = self.k;
        // Sift down.
        let mut cur = 1usize;
        loop {
            let (l, r) = (2 * cur, 2 * cur + 1);
            let l_full = l <= self.heap_size && self.nodes.get(l).is_some_and(|n| !n.is_empty());
            let r_full = r <= self.heap_size && self.nodes.get(r).is_some_and(|n| !n.is_empty());
            if !l_full && !r_full {
                break;
            }
            let y = if l_full && r_full {
                let (x, y) =
                    if self.nodes[l].last() > self.nodes[r].last() { (l, r) } else { (r, l) };
                let mut ln = std::mem::take(&mut self.nodes[y]);
                let mut rn = std::mem::take(&mut self.nodes[x]);
                sort_split_full(&mut ln, &mut rn, &mut self.scratch);
                self.nodes[y] = ln;
                self.nodes[x] = rn;
                y
            } else if l_full {
                l
            } else {
                r
            };
            if self.nodes[cur].last() <= self.nodes[y].first() {
                break;
            }
            let mut cn = std::mem::take(&mut self.nodes[cur]);
            let mut yn = std::mem::take(&mut self.nodes[y]);
            sort_split_full(&mut cn, &mut yn, &mut self.scratch);
            self.nodes[cur] = cn;
            self.nodes[y] = yn;
            cur = y;
        }
        true
    }

    /// Quiescent invariant check; returns total stored keys.
    pub fn check_invariants(&self) -> usize {
        if self.heap_size == 0 {
            assert_eq!(self.len, 0);
            return 0;
        }
        let mut total = self.root_len + self.buffer.len();
        assert_eq!(self.nodes[1].len(), self.root_len);
        assert!(self.nodes[1].windows(2).all(|p| p[0] <= p[1]), "root unsorted");
        assert!(self.buffer.windows(2).all(|p| p[0] <= p[1]), "buffer unsorted");
        for i in 2..=self.heap_size {
            let n = &self.nodes[i];
            assert_eq!(n.len(), self.k, "node {i} not full");
            assert!(n.windows(2).all(|p| p[0] <= p[1]), "node {i} unsorted");
            let parent = i / 2;
            if parent == 1 {
                if self.root_len > 0 {
                    assert!(self.nodes[1][self.root_len - 1] <= n[0], "node {i} below root");
                }
            } else {
                assert!(self.nodes[parent][self.k - 1] <= n[0], "node {i} below parent");
            }
            total += self.k;
        }
        assert_eq!(total, self.len, "len drift");
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn random_ops_match_model() {
        let mut h = SeqBatchHeap::<u32, u32>::new(8);
        let mut model = std::collections::BinaryHeap::new();
        let mut rng = StdRng::seed_from_u64(17);
        let mut out = Vec::new();
        for step in 0..3000 {
            if rng.gen_bool(0.55) || model.is_empty() {
                let n = rng.gen_range(1..=8usize);
                let items: Vec<Entry<u32, u32>> =
                    (0..n).map(|_| Entry::new(rng.gen_range(0..1 << 30), 0)).collect();
                for e in &items {
                    model.push(std::cmp::Reverse(e.key));
                }
                h.insert_batch(&items);
            } else {
                out.clear();
                let n = rng.gen_range(1..=8usize);
                h.delete_min_batch(&mut out, n);
                let mut expect = Vec::new();
                for _ in 0..n {
                    match model.pop() {
                        Some(std::cmp::Reverse(x)) => expect.push(x),
                        None => break,
                    }
                }
                let got: Vec<u32> = out.iter().map(|e| e.key).collect();
                assert_eq!(got, expect, "step {step}");
            }
            assert_eq!(h.len(), model.len(), "step {step}");
        }
        h.check_invariants();
    }

    #[test]
    fn full_batch_cycle() {
        let mut h = SeqBatchHeap::<u32, ()>::new(4);
        for c in (0..64u32).collect::<Vec<_>>().chunks(4) {
            let items: Vec<Entry<u32, ()>> = c.iter().map(|&k| Entry::new(k, ())).collect();
            h.insert_batch(&items);
        }
        h.check_invariants();
        let mut out = Vec::new();
        while h.delete_min_batch(&mut out, 4) > 0 {}
        let keys: Vec<u32> = out.iter().map(|e| e.key).collect();
        assert_eq!(keys, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn depth_grows_logarithmically() {
        let mut h = SeqBatchHeap::<u32, ()>::new(2);
        assert_eq!(h.depth(), 1);
        for c in (0..32u32).collect::<Vec<_>>().chunks(2) {
            let items: Vec<Entry<u32, ()>> = c.iter().map(|&k| Entry::new(k, ())).collect();
            h.insert_batch(&items);
        }
        assert!(h.depth() >= 4 && h.depth() <= 5, "depth = {}", h.depth());
    }

    #[test]
    fn empty_behaviour() {
        let mut h = SeqBatchHeap::<u32, ()>::new(4);
        let mut out = Vec::new();
        assert_eq!(h.delete_min_batch(&mut out, 4), 0);
        h.insert_batch(&[Entry::new(3, ())]);
        assert_eq!(h.delete_min_batch(&mut out, 4), 1);
        assert_eq!(h.delete_min_batch(&mut out, 4), 0);
        assert!(h.is_empty());
    }
}
